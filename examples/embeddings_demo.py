#!/usr/bin/env python
"""Section 4 embeddings, constructed and verified live.

Demonstrates every embedding family the paper claims for ``HB(m, n)``:

* all even cycles from 4 up to the full node count (Lemma 2) — including
  a fully constructive Hamiltonian cycle of the butterfly factor, which
  the paper only cites;
* wrap-around meshes / tori (Lemma 1 setup);
* the complete binary tree ``T(m+n-1)`` (Figure 1 row, via Lemma 3);
* the mesh of trees ``MT(2^p, 2^q)`` (Theorem 4).

Run:  python examples/embeddings_demo.py
"""

from repro import HyperButterfly
from repro.embeddings import (
    hb_even_cycle,
    hb_even_cycle_max_length,
    hb_mesh_of_trees_embedding,
    hb_torus_embedding,
    hb_tree_embedding,
)
from repro.embeddings.base import verify_cycle_embedding


def main() -> None:
    hb = HyperButterfly(m=3, n=3)
    print(f"host: {hb.name} with {hb.num_nodes} nodes\n")

    # Lemma 2: even cycles of every length 4 .. n * 2^(m+n)
    top = hb_even_cycle_max_length(hb)
    assert top == hb.num_nodes
    checked = 0
    for k in range(4, top + 1, 2):
        verify_cycle_embedding(hb, hb_even_cycle(hb, k), expected_length=k)
        checked += 1
    print(f"Lemma 2: all {checked} even cycle lengths 4..{top} constructed "
          f"and verified (the top one is a Hamiltonian cycle)")

    # Lemma 1 setup: a wrap-around mesh (torus) as a subgraph
    torus = hb_torus_embedding(hb, 4, 12)
    torus.verify()
    print(f"Torus:   {torus.guest.name} embedded "
          f"({torus.guest.num_nodes} nodes, expansion {torus.expansion:.1f}x)")

    # Figure 1 tree row: T(m+n-1)
    tree = hb_tree_embedding(hb)
    tree.verify()
    print(f"Tree:    {tree.guest.name} embedded "
          f"({tree.guest.num_nodes} nodes) — via T(n+1) in B_n (Lemma 3) "
          f"plus a T(m-1) per butterfly leaf")

    # Theorem 4: mesh of trees
    mot = hb_mesh_of_trees_embedding(hb, p=1, q=3)
    mot.verify()
    print(f"MoT:     {mot.guest.name} embedded ({mot.guest.num_nodes} nodes) "
          f"— Lemma 4 through the product of tree embeddings")

    print("\nEvery embedding above passed exhaustive dilation-1 verification")
    print("(injective vertex map, every guest edge a host edge).")


if __name__ == "__main__":
    main()
