#!/usr/bin/env python
"""Quickstart: build a hyper-butterfly network and use its public API.

Covers the paper's core objects end to end on a laptop-sized instance:
construction (Definition 3), labels and generators (Remark 3), optimal
routing (Section 3), diameter (Theorem 3), disjoint paths (Theorem 5) and
fault-tolerant routing (Remark 10).

Run:  python examples/quickstart.py
"""

from repro import FaultTolerantRouter, HBRouter, HyperButterfly, disjoint_paths

def main() -> None:
    # HB(2, 4): the product of a 2-cube and a wrapped butterfly B_4.
    hb = HyperButterfly(m=2, n=4)
    print(f"{hb.name}: {hb.num_nodes} nodes, {hb.num_edges} edges, "
          f"degree {hb.degree_formula}, diameter {hb.diameter_formula()}")

    # Every node has a two-part label: hypercube bits + butterfly symbols.
    u = hb.identity_node()
    v = (3, (2, 9))  # cube word 11, butterfly (PI=2, CI=1001)
    print(f"\nsource {hb.format_node(u)}   target {hb.format_node(v)}")

    # Optimal point-to-point routing (Section 3): hypercube part first,
    # then the butterfly part; the length equals the exact distance.
    router = HBRouter(hb)
    route = router.route(u, v)
    print(f"optimal route, {route.length} hops "
          f"(= distance {router.distance(u, v)}):")
    for node, gen in zip(route.path, route.generators + [""], strict=True):
        arrow = f"  --{gen}-->" if gen else ""
        print(f"  {hb.format_node(node)}{arrow}")

    # Theorem 5: m + 4 node-disjoint paths between any two nodes.
    family = disjoint_paths(hb, u, v)
    print(f"\n{len(family)} node-disjoint paths (Theorem 5), lengths "
          f"{sorted(len(p) - 1 for p in family)}")

    # Remark 10: with at most m + 3 faults, routing always succeeds.
    faults = [route.path[1], route.path[2]]  # break the optimal route
    ft = FaultTolerantRouter(hb)
    detour = ft.route(u, v, faults)
    print(f"with {len(faults)} faults on the optimal route, the disjoint-"
          f"path scheme still delivers in {len(detour) - 1} hops")

    # Exact diameter via one BFS (vertex transitivity, Remark 7).
    print(f"\nexact diameter {hb.diameter()} vs formula {hb.diameter_formula()}")


if __name__ == "__main__":
    main()
