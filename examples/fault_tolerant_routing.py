#!/usr/bin/env python
"""Fault-tolerant routing under maximal faults (Theorem 5 + Remark 10).

Injects growing random fault sets into ``HB(2, 4)`` and measures, for the
paper's disjoint-path scheme versus adaptive BFS rerouting:

* delivery success rate,
* mean path-length overhead over the fault-free optimum.

With fewer than ``m + 4 = 6`` faults, Corollary 1 guarantees the network
stays connected and the disjoint-path scheme always delivers — watch the
``connected`` column stay at 1.000 through 5 faults.

Run:  python examples/fault_tolerant_routing.py
"""

from repro import HyperButterfly
from repro.faults.experiments import fault_sweep


def main() -> None:
    hb = HyperButterfly(m=2, n=4)
    guaranteed = hb.m + 3
    print(f"{hb.name}: connectivity {hb.fault_tolerance_formula()} "
          f"(Corollary 1) — guaranteed tolerance of {guaranteed} faults\n")

    counts = list(range(0, guaranteed + 5))
    results = fault_sweep(hb, counts, trials=4, pairs_per_trial=12, seed=11)

    print("faults  connected  disjoint-scheme-ok  length-overhead")
    for r in results:
        marker = "  <- guarantee boundary" if r.faults == guaranteed else ""
        print(f"{r.faults:6d}  {r.connected_fraction:9.3f}  "
              f"{r.disjoint_success_rate:18.3f}  {r.mean_overhead:15.3f}{marker}")

    print("\nReading: through the guarantee boundary every pair stays")
    print("connected and the oblivious disjoint-path scheme never fails;")
    print("beyond it random faults still rarely disconnect the network,")
    print("and the overhead of the oblivious scheme over the adaptive")
    print("shortest detour stays within a few percent.")


if __name__ == "__main__":
    main()
