#!/usr/bin/env python
"""Dynamic comparison: HB vs HD under simulated traffic (experiment E9).

The paper's comparison (Figure 2) is static.  This example loads both
families into the discrete-event store-and-forward simulator at a matched
node budget and measures delivered latency under uniform random traffic
and a permutation workload, each using the family's own oblivious routing
scheme (Section 3 for HB; e-cube + de Bruijn shift-in for HD).

Run:  python examples/network_simulation.py
"""

from repro import HyperButterfly, HyperDeBruijn
from repro.simulation import (
    HBObliviousProtocol,
    HDObliviousProtocol,
    NetworkSimulator,
    permutation_traffic,
    uniform_random_traffic,
)


def run(topology, protocol, pairs, label: str) -> None:
    sim = NetworkSimulator(topology, protocol)
    sim.inject_all(pairs)
    sim.run()
    stats = sim.stats()
    print(f"  {label:<22} {stats.summary()}")


def main() -> None:
    # HB(1,3) has 48 nodes; HD(2,4) has 64 — the closest small design points.
    hb = HyperButterfly(m=1, n=3)
    hd = HyperDeBruijn(m=2, n=4)
    print(f"{hb.name}: {hb.num_nodes} nodes, degree {hb.degree_formula}")
    print(f"{hd.name}: {hd.num_nodes} nodes, degree "
          f"{hd.min_degree()}..{hd.max_degree()}\n")

    print("uniform random traffic (200 packets):")
    run(hb, HBObliviousProtocol(hb),
        uniform_random_traffic(hb, 200, seed=3), hb.name)
    run(hd, HDObliviousProtocol(hd),
        uniform_random_traffic(hd, 200, seed=3), hd.name)

    print("\npermutation traffic (every node sends once):")
    run(hb, HBObliviousProtocol(hb), permutation_traffic(hb, seed=5), hb.name)
    run(hd, HDObliviousProtocol(hd), permutation_traffic(hd, seed=5), hd.name)

    print("\nReading: HD's shift-in routing yields slightly shorter paths")
    print("(diameter m + n vs m + 3n/2), while HB's routing is exactly")
    print("optimal within its topology and the network stays regular —")
    print("the static trade-off of Figure 1, observed dynamically.")


if __name__ == "__main__":
    main()
