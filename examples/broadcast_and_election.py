#!/usr/bin/env python
"""Broadcast and leader election — the paper's announced extensions.

The conclusion of the paper teases an "asymptotically optimal broadcasting
algorithm" and the authors' companion paper studies leader election on
hyper-butterfly graphs.  This example exercises our implementations:

* broadcast round counts under the all-port, greedy single-port and
  structured (hypercube doubling + butterfly phase) models, against the
  ``max(diameter, log2 N)`` lower bound;
* leader election message/round counts: extrema flooding (no initiator)
  versus the tree-based scheme (message optimal, needs an initiator).

Run:  python examples/broadcast_and_election.py
"""

from repro import HyperButterfly, broadcast_rounds
from repro.core.broadcast import broadcast_lower_bound
from repro.simulation import flood_max_election, tree_based_election


def main() -> None:
    for (m, n) in [(1, 3), (2, 3), (2, 4), (3, 4)]:
        hb = HyperButterfly(m, n)
        root = hb.identity_node()
        lb = broadcast_lower_bound(hb)
        allport = broadcast_rounds(hb, root, model="all-port")
        single = broadcast_rounds(hb, root, model="single-port")
        structured = broadcast_rounds(hb, root, model="structured")
        print(f"{hb.name} ({hb.num_nodes} nodes): lower bound {lb}, "
              f"all-port {allport}, single-port greedy {single}, "
              f"structured {structured} "
              f"(ratio {structured / lb:.2f}x)")

    print("\nleader election on HB(2,4):")
    hb = HyperButterfly(2, 4)
    flood = flood_max_election(hb, seed=1)
    tree = tree_based_election(hb, hb.identity_node(), seed=1)
    assert flood.leader == tree.leader
    n, e = hb.num_nodes, hb.num_edges
    print(f"  flood-max : {flood.messages} messages, {flood.rounds} rounds "
          f"(graph has {n} nodes / {e} edges)")
    print(f"  tree-based: {tree.messages} messages, {tree.rounds} rounds "
          f"(= 3(N-1) messages, needs an initiator)")
    print(f"  both elect node {hb.format_node(flood.leader)}")


if __name__ == "__main__":
    main()
