#!/usr/bin/env python
"""Regenerate the paper's comparison tables (Figures 1 and 2).

Figure 1 compares four families parametrically; with ``--verify`` the
small-instance columns are replaced by exact measurements (our library
builds all four graphs).  Figure 2 compares the concrete 16384-processor
design points ``HB(3,8)``, ``HD(3,11)`` and ``HD(6,8)``; pass ``--full``
to compute the exact 16k-node diameters (takes a few minutes) instead of
the formula values.

Run:  python examples/comparison_tables.py [--verify] [--full]
"""

import argparse

from repro.analysis.compare import figure1_table, figure2_table, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--verify", action="store_true",
                        help="measure Figure 1 cells exactly")
    parser.add_argument("--full", action="store_true",
                        help="exact 16k-node diameters in Figure 2 (slow)")
    parser.add_argument("-m", type=int, default=2, help="Figure 1 m (default 2)")
    parser.add_argument("-n", type=int, default=3, help="Figure 1 n (default 3)")
    args = parser.parse_args()

    table1 = figure1_table(args.m, args.n, verify=args.verify)
    print(render_table(
        table1,
        title=f"Figure 1: family comparison at (m={args.m}, n={args.n})"
              + (" [verified]" if args.verify else " [formulas]"),
    ))
    print()
    table2 = figure2_table(exact_diameters=args.full, connectivity_pairs=3)
    print(render_table(
        table2,
        title="Figure 2: HB(3,8) vs HD(3,11) vs HD(6,8) (equal node budget)",
    ))
    print()
    print("Headline reproduction: HB is regular where HD is not, and its")
    print("fault tolerance m+4 beats HD's m+2 at the same node budget, at")
    print("the price of a slightly larger diameter (m + 3n/2 vs m + n).")


if __name__ == "__main__":
    main()
