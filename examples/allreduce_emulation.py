#!/usr/bin/env python
"""Emulating a hypercube collective on the hyper-butterfly.

The paper's introduction motivates HB by its "ability to emulate most of
existing architectures".  This example emulates the canonical hypercube
collective — all-reduce by recursive doubling — on `HB(m, n)`:

* across the `m` hypercube dimensions the algorithm runs natively
  (HB contains `H_m` copies, Remark 5);
* across the butterfly factor we reduce/broadcast along the Lemma 3
  spanning structure (convergecast + broadcast on the BFS tree of each
  copy), the standard constant-factor emulation.

Every node starts with one value; at the end every node holds the global
sum, and we check the round count against the broadcast lower bound.

Run:  python examples/allreduce_emulation.py
"""

from repro import HyperButterfly
from repro.core.broadcast import broadcast_tree, broadcast_lower_bound


def hb_allreduce(hb: HyperButterfly, values: dict) -> tuple[dict, int]:
    """Sum-all-reduce; returns (final values, synchronous round count)."""
    state = dict(values)
    rounds = 0

    # Phase 1: recursive doubling over hypercube dimensions (m rounds).
    # After round i, partners across bit i have equal partial sums.
    for i in range(hb.m):
        next_state = {}
        for v in hb.nodes():
            partner = (v[0] ^ (1 << i), v[1])
            next_state[v] = state[v] + state[partner]
        state = next_state
        rounds += 1

    # Phase 2: convergecast + broadcast inside every butterfly copy,
    # all copies in parallel (tree depth rounds each way).
    fly_root = hb.butterfly.identity_node()
    parent = broadcast_tree(hb.butterfly, fly_root)
    children: dict = {}
    for child, p in parent.items():
        children.setdefault(p, []).append(child)

    def subtree_sum(copy_word: int, b) -> int:
        total = state[(copy_word, b)]
        for c in children.get(b, []):
            total += subtree_sum(copy_word, c)
        return total

    depth = hb.butterfly.eccentricity(fly_root)
    import sys

    sys.setrecursionlimit(10_000)
    for copy_word in range(1 << hb.m):
        total = subtree_sum(copy_word, fly_root)
        for b in hb.fly_group.elements():
            state[(copy_word, b)] = total
    rounds += 2 * depth  # convergecast up + broadcast down
    return state, rounds


def main() -> None:
    hb = HyperButterfly(m=2, n=3)
    values = {v: i for i, v in enumerate(hb.nodes())}
    expected = sum(values.values())

    state, rounds = hb_allreduce(hb, values)
    assert all(x == expected for x in state.values())

    lower = broadcast_lower_bound(hb)
    print(f"{hb.name}: all-reduce over {hb.num_nodes} nodes")
    print(f"  global sum          {expected} (agreed by every node)")
    print(f"  synchronous rounds  {rounds}")
    print(f"  broadcast lower bd  {lower}  (all-reduce needs >= that)")
    print(f"  ratio               {rounds / lower:.2f}x — the constant-factor")
    print("  hypercube-collective emulation the paper's intro advertises")


if __name__ == "__main__":
    main()
