"""Max-flow disjoint-path extraction tests."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import RoutingError
from repro.routing.base import paths_internally_disjoint, validate_path
from repro.routing.flows import node_to_set_disjoint_paths, vertex_disjoint_paths
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube


class TestVertexDisjointPaths:
    def test_matches_local_connectivity(self, rng):
        h = Hypercube(4)
        g = h.to_networkx()
        nodes = list(g.nodes())
        for _ in range(15):
            u, v = rng.sample(nodes, 2)
            family = vertex_disjoint_paths(g, u, v)
            assert len(family) == nx.connectivity.local_node_connectivity(g, u, v)
            assert paths_internally_disjoint(family)
            for p in family:
                validate_path(h, p, source=u, target=v)

    def test_k_truncates(self):
        g = Hypercube(4).to_networkx()
        family = vertex_disjoint_paths(g, 0, 0b1111, k=2)
        assert len(family) == 2

    def test_k_too_large_raises(self):
        g = Hypercube(3).to_networkx()
        with pytest.raises(RoutingError):
            vertex_disjoint_paths(g, 0, 7, k=4)

    def test_blocked_nodes_avoided(self):
        g = Hypercube(3).to_networkx()
        family = vertex_disjoint_paths(g, 0, 0b111, blocked={0b001})
        for p in family:
            assert 0b001 not in p
        assert len(family) == 2  # one neighbor of the source is gone

    def test_blocked_endpoint_rejected(self):
        g = Hypercube(3).to_networkx()
        with pytest.raises(RoutingError):
            vertex_disjoint_paths(g, 0, 7, blocked={0})

    def test_same_endpoints_rejected(self):
        g = Hypercube(3).to_networkx()
        with pytest.raises(RoutingError):
            vertex_disjoint_paths(g, 1, 1)

    def test_cutoff_still_yields_requested_family(self):
        bf = CayleyButterfly(4)
        g = bf.to_networkx()
        family = vertex_disjoint_paths(g, (0, 0), (2, 0b1010), k=4, cutoff=4)
        assert len(family) == 4
        assert paths_internally_disjoint(family)


class TestNodeToSet:
    def test_hypercube_neighbors_to_antipode(self):
        h = Hypercube(4)
        g = h.to_networkx()
        sources = [1 << i for i in range(4)]
        family = node_to_set_disjoint_paths(g, sources, 0b1111)
        assert [p[0] for p in family] == sources
        seen = set()
        for p in family:
            assert p[-1] == 0b1111
            for x in p[:-1]:
                assert x not in seen
                seen.add(x)
            validate_path(h, p, target=0b1111)

    def test_source_equal_to_target_gets_trivial_path(self):
        g = Hypercube(3).to_networkx()
        family = node_to_set_disjoint_paths(g, [0b111, 0b011], 0b111)
        assert family[0] == [0b111]
        assert family[1][0] == 0b011 and family[1][-1] == 0b111

    def test_butterfly_neighbors_to_far_node(self, bf4, rng):
        g = bf4.to_networkx()
        for _ in range(10):
            target = rng.choice(list(bf4.nodes()))
            anchor = rng.choice(list(bf4.nodes()))
            sources = bf4.neighbors(anchor)
            if target in sources or target == anchor:
                continue
            family = node_to_set_disjoint_paths(g, sources, target)
            assert len(family) == 4
            seen = set()
            for p in family:
                for x in p[:-1]:
                    assert x not in seen
                    seen.add(x)

    def test_paths_never_pass_through_other_sources(self):
        g = Hypercube(4).to_networkx()
        sources = [1, 2, 4, 8]
        family = node_to_set_disjoint_paths(g, sources, 0b1111)
        for i, p in enumerate(family):
            for j, s in enumerate(sources):
                if i != j:
                    assert s not in p

    def test_duplicate_sources_rejected(self):
        g = Hypercube(3).to_networkx()
        with pytest.raises(RoutingError):
            node_to_set_disjoint_paths(g, [1, 1], 7)

    def test_infeasible_raises(self):
        # a path graph cannot route 2 disjoint paths into its end vertex
        g = nx.path_graph(5)
        with pytest.raises(RoutingError):
            node_to_set_disjoint_paths(g, [0, 2], 4)

    def test_blocked_respected(self):
        g = Hypercube(3).to_networkx()
        family = node_to_set_disjoint_paths(g, [1, 2], 7, blocked={5})
        for p in family:
            assert 5 not in p
