"""Hypercube routing and disjoint-path tests [5]."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError, RoutingError
from repro.routing.base import paths_internally_disjoint, validate_path
from repro.routing.hypercube import (
    hypercube_disjoint_paths,
    hypercube_distance,
    hypercube_route,
)
from repro.topologies.hypercube import Hypercube


class TestRoute:
    @given(st.integers(1, 8), st.data())
    @settings(max_examples=80)
    def test_route_is_shortest(self, m, data):
        u = data.draw(st.integers(0, 2**m - 1))
        v = data.draw(st.integers(0, 2**m - 1))
        path = hypercube_route(m, u, v)
        assert len(path) - 1 == hypercube_distance(u, v)
        validate_path(Hypercube(m), path, source=u, target=v)

    def test_custom_order(self):
        path = hypercube_route(3, 0b000, 0b101, order=[2, 0])
        assert path == [0b000, 0b100, 0b101]

    def test_rejects_bad_order(self):
        with pytest.raises(RoutingError):
            hypercube_route(3, 0, 0b101, order=[0, 1])

    def test_rejects_out_of_range_words(self):
        with pytest.raises(InvalidParameterError):
            hypercube_route(2, 0, 7)

    def test_trivial(self):
        assert hypercube_route(3, 5, 5) == [5]


class TestDisjointPaths:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5])
    def test_exhaustive_small(self, m):
        """Every distinct pair yields m internally disjoint valid paths."""
        h = Hypercube(m)
        for u, v in itertools.combinations(range(2**m), 2):
            family = hypercube_disjoint_paths(m, u, v)
            assert len(family) == m
            assert paths_internally_disjoint(family)
            for p in family:
                validate_path(h, p, source=u, target=v)

    @pytest.mark.parametrize("m", [3, 4, 6])
    def test_length_bounds(self, m):
        """d rotated paths of length d; m-d detours of length d+2 <= m+2."""
        import random

        rng = random.Random(m)
        for _ in range(30):
            u, v = rng.randrange(2**m), rng.randrange(2**m)
            if u == v:
                continue
            d = hypercube_distance(u, v)
            family = hypercube_disjoint_paths(m, u, v)
            lengths = sorted(len(p) - 1 for p in family)
            assert lengths[:d] == [d] * d
            assert lengths[d:] == [d + 2] * (m - d)
            assert max(lengths) <= m + 2

    def test_rejects_equal_endpoints(self):
        with pytest.raises(RoutingError):
            hypercube_disjoint_paths(3, 5, 5)

    def test_adjacent_pair(self):
        family = hypercube_disjoint_paths(3, 0, 1)
        assert sorted(len(p) - 1 for p in family) == [1, 3, 3]

    def test_antipodal_pair(self):
        m = 4
        family = hypercube_disjoint_paths(m, 0, 2**m - 1)
        assert all(len(p) - 1 == m for p in family)
