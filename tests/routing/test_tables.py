"""Routing-table tests (VLSI-oriented, built on vertex transitivity)."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.routing.base import validate_path
from repro.routing.tables import build_full_table, build_split_table


class TestFullTable:
    @pytest.fixture(scope="class")
    def table(self):
        return build_full_table(HyperButterfly(1, 3))

    def test_entry_count_is_node_count_minus_one(self, table):
        assert table.num_entries == table.hb.num_nodes - 1

    def test_all_pairs_optimal(self, table):
        """One shared table routes every pair optimally."""
        hb = table.hb
        nodes = list(hb.nodes())
        for u in nodes[::3]:
            for v in nodes[::5]:
                path = table.route(u, v)
                validate_path(hb, path, source=u, target=v)
                assert len(path) - 1 == hb.distance(u, v)

    def test_trivial_route(self, table):
        u = table.hb.identity_node()
        assert table.route(u, u) == [u]
        assert table.next_hop(u, u) is None


class TestSplitTable:
    @pytest.fixture(scope="class")
    def table(self):
        return build_split_table(HyperButterfly(2, 3))

    def test_rom_saving(self, table):
        """The split table only stores the butterfly factor."""
        hb = table.hb
        assert table.num_entries == hb.n * 2**hb.n - 1
        full = build_full_table(hb)
        assert full.num_entries == hb.num_nodes - 1
        assert table.num_entries < full.num_entries

    def test_all_pairs_optimal(self, table, rng):
        hb = table.hb
        nodes = list(hb.nodes())
        for _ in range(80):
            u, v = rng.sample(nodes, 2)
            path = table.route(u, v)
            validate_path(hb, path, source=u, target=v)
            assert len(path) - 1 == hb.distance(u, v)

    def test_cube_part_first(self, table):
        u, v = (0, (0, 0)), (3, (1, 0b001))
        hop = table.next_hop(u, v)
        assert hop[1] == u[1]  # butterfly part untouched while cube differs


class TestAgreement:
    def test_full_and_split_same_lengths(self, rng):
        hb = HyperButterfly(1, 4)
        full = build_full_table(hb)
        split = build_split_table(hb)
        nodes = list(hb.nodes())
        for _ in range(60):
            u, v = rng.sample(nodes, 2)
            assert len(full.route(u, v)) == len(split.route(u, v))
