"""Path utility tests."""

from __future__ import annotations

import pytest

from repro.errors import InvalidLabelError, RoutingError
from repro.routing.base import (
    loop_erase,
    path_length,
    paths_internally_disjoint,
    paths_vertex_disjoint,
    validate_path,
)
from repro.topologies.cycle import Cycle
from repro.topologies.hypercube import Hypercube


class TestValidatePath:
    def test_accepts_valid_path(self):
        validate_path(Hypercube(3), [0, 1, 3], source=0, target=3)

    def test_rejects_empty(self):
        with pytest.raises(RoutingError):
            validate_path(Hypercube(2), [])

    def test_rejects_non_edge(self):
        with pytest.raises(RoutingError):
            validate_path(Hypercube(3), [0, 3])

    def test_rejects_wrong_endpoints(self):
        with pytest.raises(RoutingError):
            validate_path(Hypercube(3), [0, 1], source=1)
        with pytest.raises(RoutingError):
            validate_path(Hypercube(3), [0, 1], target=0)

    def test_rejects_revisit_when_simple(self):
        c = Cycle(4)
        with pytest.raises(RoutingError):
            validate_path(c, [0, 1, 0], simple=True)
        validate_path(c, [0, 1, 0], simple=False)

    def test_rejects_foreign_node(self):
        with pytest.raises(InvalidLabelError):
            validate_path(Hypercube(2), [0, 4])


class TestPathLength:
    def test_length(self):
        assert path_length([1]) == 0
        assert path_length([1, 2, 3]) == 2


class TestLoopErase:
    def test_no_loops_unchanged(self):
        assert loop_erase([1, 2, 3]) == [1, 2, 3]

    def test_cuts_simple_loop(self):
        assert loop_erase([1, 2, 3, 2, 4]) == [1, 2, 4]

    def test_cuts_nested_loops(self):
        assert loop_erase([1, 2, 3, 4, 2, 5, 1, 6]) == [1, 6]

    def test_preserves_endpoints(self):
        walk = [0, 1, 2, 1, 2, 3]
        erased = loop_erase(walk)
        assert erased[0] == 0 and erased[-1] == 3
        assert len(set(erased)) == len(erased)


class TestDisjointness:
    def test_vertex_disjoint(self):
        assert paths_vertex_disjoint([[1, 2], [3, 4]])
        assert not paths_vertex_disjoint([[1, 2], [2, 3]])

    def test_internally_disjoint_shares_endpoints_only(self):
        assert paths_internally_disjoint([[1, 2, 9], [1, 3, 9], [1, 9]])
        assert not paths_internally_disjoint([[1, 2, 9], [1, 2, 9]])

    def test_internally_disjoint_requires_common_endpoints(self):
        assert not paths_internally_disjoint([[1, 2, 9], [1, 3, 8]])

    def test_interior_may_not_touch_endpoint(self):
        # 1 appears as an interior vertex of the second path
        assert not paths_internally_disjoint([[1, 2, 9], [1, 3, 1, 9]])

    def test_empty_family(self):
        assert paths_internally_disjoint([])
