"""Butterfly covering-walk router tests — exactness against the oracle."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidLabelError, InvalidParameterError, RoutingError
from repro.routing.base import paths_internally_disjoint, validate_path
from repro.routing.butterfly import (
    butterfly_disjoint_paths,
    butterfly_distance,
    butterfly_route,
    butterfly_route_walk,
    covering_walk,
)
from repro.topologies.butterfly_cayley import CayleyButterfly


class TestCoveringWalk:
    def test_trivial_walk(self):
        assert covering_walk(5, 2, 2, frozenset()) == [0]

    def test_walk_reaches_end(self):
        walk = covering_walk(5, 1, 4, frozenset())
        assert (1 + walk[-1]) % 5 == 4
        assert len(walk) - 1 == 2  # backwards is shorter: 1 -> 0 -> 4

    def test_walk_crosses_required_edges(self):
        n = 6
        required = {0, 3}
        walk = covering_walk(n, 1, 1, required)
        crossed = set()
        for p, q in zip(walk, walk[1:], strict=False):
            crossed.add((1 + min(p, q)) % n)
        assert required <= crossed

    def test_rejects_bad_edge_index(self):
        with pytest.raises(InvalidParameterError):
            covering_walk(4, 0, 0, {4})

    def test_rejects_small_n(self):
        with pytest.raises(InvalidParameterError):
            covering_walk(2, 0, 0, set())


class TestExactness:
    """The combinatorial router must agree with the BFS oracle everywhere."""

    @pytest.mark.parametrize("n", [3, 4])
    def test_all_pairs_distance(self, n):
        cb = CayleyButterfly(n)
        oracle = cb.oracle
        for u in cb.nodes():
            for v in cb.nodes():
                assert butterfly_distance(n, u, v) == oracle.distance(u, v)

    @pytest.mark.parametrize("n", [5, 6])
    def test_sampled_distance_larger_n(self, n):
        cb = CayleyButterfly(n)
        oracle = cb.oracle
        rng = random.Random(n)
        nodes = list(cb.nodes())
        for _ in range(250):
            u, v = rng.choice(nodes), rng.choice(nodes)
            assert butterfly_distance(n, u, v) == oracle.distance(u, v)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_routes_are_simple_shortest_paths(self, n):
        cb = CayleyButterfly(n)
        rng = random.Random(n * 7)
        nodes = list(cb.nodes())
        for _ in range(150):
            u, v = rng.choice(nodes), rng.choice(nodes)
            path = butterfly_route_walk(n, u, v)
            validate_path(cb, path, source=u, target=v)
            assert len(path) - 1 == butterfly_distance(n, u, v)

    @given(st.integers(3, 10), st.data())
    @settings(max_examples=60)
    def test_distance_bounded_by_diameter_formula(self, n, data):
        u = (data.draw(st.integers(0, n - 1)), data.draw(st.integers(0, 2**n - 1)))
        v = (data.draw(st.integers(0, n - 1)), data.draw(st.integers(0, 2**n - 1)))
        assert butterfly_distance(n, u, v) <= (3 * n) // 2

    def test_route_validates_nodes(self, bf3):
        with pytest.raises(InvalidLabelError):
            butterfly_route(bf3, (0, 0), (3, 0))


class TestDistanceMetricProperties:
    @given(st.integers(3, 7), st.data())
    @settings(max_examples=60)
    def test_symmetry(self, n, data):
        u = (data.draw(st.integers(0, n - 1)), data.draw(st.integers(0, 2**n - 1)))
        v = (data.draw(st.integers(0, n - 1)), data.draw(st.integers(0, 2**n - 1)))
        assert butterfly_distance(n, u, v) == butterfly_distance(n, v, u)

    @given(st.integers(3, 6), st.data())
    @settings(max_examples=40)
    def test_triangle_inequality(self, n, data):
        def node(d):
            return (d.draw(st.integers(0, n - 1)), d.draw(st.integers(0, 2**n - 1)))

        u, v, w = node(data), node(data), node(data)
        assert butterfly_distance(n, u, w) <= butterfly_distance(
            n, u, v
        ) + butterfly_distance(n, v, w)

    @given(st.integers(3, 7), st.data())
    @settings(max_examples=40)
    def test_identity_of_indiscernibles(self, n, data):
        u = (data.draw(st.integers(0, n - 1)), data.draw(st.integers(0, 2**n - 1)))
        assert butterfly_distance(n, u, u) == 0


class TestButterflyDisjointPaths:
    @pytest.mark.parametrize("n", [3, 4])
    def test_four_disjoint_paths(self, n, rng):
        cb = CayleyButterfly(n)
        nodes = list(cb.nodes())
        for _ in range(12):
            u, v = rng.sample(nodes, 2)
            family = butterfly_disjoint_paths(cb, u, v)
            assert len(family) == 4
            assert paths_internally_disjoint(family)
            for p in family:
                validate_path(cb, p, source=u, target=v)

    def test_rejects_same_endpoints(self, bf3):
        with pytest.raises(RoutingError):
            butterfly_disjoint_paths(bf3, (0, 0), (0, 0))
