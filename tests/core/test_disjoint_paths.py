"""Theorem 5 / Corollary 1 tests: the m+4 node-disjoint path families."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.disjoint_paths import (
    construction_case,
    disjoint_paths,
    disjoint_paths_with_info,
    verify_disjoint_paths,
)
from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import RoutingError
from repro.routing.base import paths_internally_disjoint, validate_path


class TestCaseClassification:
    def test_cases(self, hb23):
        b = (0, 0)
        assert construction_case((0, b), (1, b)) == 1
        assert construction_case((0, b), (0, (1, 0))) == 2
        assert construction_case((0, b), (1, (1, 0))) == 3

    def test_same_node_rejected(self, hb23):
        with pytest.raises(RoutingError):
            construction_case((0, (0, 0)), (0, (0, 0)))


class TestFamilies:
    @pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3), (3, 3), (2, 4)])
    def test_random_pairs_give_m_plus_4_disjoint_paths(self, m, n, rng):
        hb = HyperButterfly(m, n)
        nodes = list(hb.nodes())
        for _ in range(20):
            u, v = rng.sample(nodes, 2)
            family = disjoint_paths(hb, u, v)
            verify_disjoint_paths(hb, u, v, family)  # count/validity/disjoint

    def test_case1_explicit(self, hb23):
        u, v = (0, (1, 0b010)), (3, (1, 0b010))
        family, info = disjoint_paths_with_info(hb23, u, v)
        assert info["case"] == 1
        assert info["method"] == "constructive"
        verify_disjoint_paths(hb23, u, v, family)
        # m shortest-family paths stay in the shared butterfly copy
        in_copy = sum(1 for p in family if all(x[1] == u[1] for x in p))
        assert in_copy == hb23.m

    def test_case2_explicit(self, hb23):
        u, v = (2, (0, 0)), (2, (2, 0b110))
        family, info = disjoint_paths_with_info(hb23, u, v)
        assert info["case"] == 2
        assert info["method"] == "constructive"
        verify_disjoint_paths(hb23, u, v, family)
        in_copy = sum(1 for p in family if all(x[0] == u[0] for x in p))
        assert in_copy == 4

    def test_case3_generic_uses_construction(self):
        hb = HyperButterfly(3, 4)
        u = (0, (0, 0))
        v = (0b111, (2, 0b1001))  # distance-3 cube part, non-adjacent fly part
        family, info = disjoint_paths_with_info(hb, u, v)
        assert info["case"] == 3
        assert info["method"] == "constructive"
        verify_disjoint_paths(hb, u, v, family)

    def test_case1_length_bounds(self, hb23, rng):
        """Theorem 5's proof: case 1 paths have length <= m + 2 (cube family)
        and cube-route + 2 (detours)."""
        nodes = [v for v in hb23.nodes()]
        for _ in range(10):
            b = rng.choice(nodes)[1]
            h1, h2 = rng.sample(range(4), 2)
            u, v = (h1, b), (h2, b)
            family, info = disjoint_paths_with_info(hb23, u, v)
            if info["method"] != "constructive":
                continue
            d = (h1 ^ h2).bit_count()
            for p in family:
                assert len(p) - 1 <= d + 2


class TestCornerRepairs:
    def test_dist1_corner_repaired_for_m_ge_2(self):
        hb = HyperButterfly(2, 4)
        u = (0, (0, 0))
        v = (1, (2, 0b0110))  # cube distance exactly 1
        family, info = disjoint_paths_with_info(hb, u, v)
        verify_disjoint_paths(hb, u, v, family)
        assert info["method"] == "constructive"

    def test_adjacent_fly_corner_repaired(self):
        hb = HyperButterfly(2, 4)
        u = (0, (0, 0))
        bj = hb.fly_group.multiply((0, 0), hb.fly_group.g())
        v = (3, bj)  # butterfly parts adjacent, cube distance 2
        family, info = disjoint_paths_with_info(hb, u, v)
        verify_disjoint_paths(hb, u, v, family)
        assert info["method"] == "constructive"

    def test_m1_dist1_corner_falls_back_to_flow(self, hb13):
        u = (0, (0, 0))
        v = (1, (1, 0b001))
        family, info = disjoint_paths_with_info(hb13, u, v)
        verify_disjoint_paths(hb13, u, v, family)
        assert info["method"] == "flow"
        assert "no copy-local repair" in info["fallback_reason"]

    def test_constructive_mode_raises_on_unrepairable_corner(self, hb13):
        u = (0, (0, 0))
        v = (1, (1, 0b001))
        with pytest.raises(RoutingError):
            disjoint_paths(hb13, u, v, method="constructive")


class TestFlowMethod:
    def test_flow_always_succeeds(self, hb23, rng):
        nodes = list(hb23.nodes())
        for _ in range(8):
            u, v = rng.sample(nodes, 2)
            family = disjoint_paths(hb23, u, v, method="flow")
            verify_disjoint_paths(hb23, u, v, family)

    def test_corollary1_connectivity_exact(self, hb13):
        """Corollary 1: kappa(HB) = m + 4 — verified by exact max-flow."""
        assert nx.node_connectivity(hb13.to_networkx()) == hb13.m + 4


class TestVerifier:
    def test_rejects_wrong_count(self, hb23):
        u, v = (0, (0, 0)), (1, (0, 0))
        family = disjoint_paths(hb23, u, v)
        with pytest.raises(RoutingError):
            verify_disjoint_paths(hb23, u, v, family[:-1])

    def test_rejects_shared_interior(self, hb23):
        u, v = (0, (0, 0)), (3, (0, 0))
        family = disjoint_paths(hb23, u, v)
        tampered = [list(p) for p in family]
        tampered[0] = tampered[1]  # duplicate path => shared interiors
        with pytest.raises(RoutingError):
            verify_disjoint_paths(hb23, u, v, tampered)
