"""Broadcast tests (conclusion's extension, experiment E8)."""

from __future__ import annotations

import math

import pytest

from repro.core.broadcast import (
    broadcast_lower_bound,
    broadcast_rounds,
    broadcast_tree,
    greedy_single_port_schedule,
    structured_broadcast_schedule,
    verify_schedule,
)
from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import SimulationError
from repro.topologies.hypercube import Hypercube


class TestBroadcastTree:
    def test_tree_spans_graph(self, hb23):
        root = hb23.identity_node()
        parent = broadcast_tree(hb23, root)
        assert len(parent) == hb23.num_nodes - 1
        assert root not in parent
        for child, p in parent.items():
            assert hb23.has_edge(child, p)

    def test_tree_depth_is_eccentricity(self, hb13):
        root = hb13.identity_node()
        parent = broadcast_tree(hb13, root)
        depth = {root: 0}
        # children appear after parents in BFS construction order
        changed = True
        while changed:
            changed = False
            for child, p in parent.items():
                if child not in depth and p in depth:
                    depth[child] = depth[p] + 1
                    changed = True
        assert max(depth.values()) == hb13.eccentricity(root)


class TestSchedules:
    @pytest.mark.parametrize(("m", "n"), [(0, 3), (1, 3), (2, 3), (2, 4)])
    def test_greedy_schedule_is_legal(self, m, n):
        hb = HyperButterfly(m, n)
        root = hb.identity_node()
        schedule = greedy_single_port_schedule(hb, root)
        verify_schedule(hb, root, schedule)

    @pytest.mark.parametrize(("m", "n"), [(0, 3), (1, 3), (2, 3), (3, 3), (2, 4)])
    def test_structured_schedule_is_legal(self, m, n):
        hb = HyperButterfly(m, n)
        root = hb.identity_node()
        schedule = structured_broadcast_schedule(hb, root)
        verify_schedule(hb, root, schedule)

    def test_structured_round_count_is_m_plus_butterfly(self, hb23):
        root = hb23.identity_node()
        fly_rounds = len(greedy_single_port_schedule(hb23.butterfly, root[1]))
        assert len(structured_broadcast_schedule(hb23, root)) == hb23.m + fly_rounds

    def test_structured_from_non_identity_root(self, hb23):
        root = (2, (1, 0b011))
        schedule = structured_broadcast_schedule(hb23, root)
        verify_schedule(hb23, root, schedule)

    def test_verify_schedule_rejects_bad_sender(self, hb23):
        root = hb23.identity_node()
        other = (3, (2, 0b101))
        bogus = [[(other, hb23.neighbors(other)[0])]]
        with pytest.raises(SimulationError):
            verify_schedule(hb23, root, bogus)


class TestRoundCounts:
    def test_all_port_equals_eccentricity(self, hb23):
        root = hb23.identity_node()
        assert broadcast_rounds(hb23, root, model="all-port") == hb23.eccentricity(root)

    def test_single_port_at_least_log2(self, hb23):
        root = hb23.identity_node()
        rounds = broadcast_rounds(hb23, root, model="single-port")
        assert rounds >= math.ceil(math.log2(hb23.num_nodes))

    @pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3), (2, 4), (3, 4)])
    def test_structured_within_constant_of_lower_bound(self, m, n):
        """The 'asymptotically optimal' claim: small constant factor."""
        hb = HyperButterfly(m, n)
        root = hb.identity_node()
        rounds = broadcast_rounds(hb, root, model="structured")
        assert rounds <= 2 * broadcast_lower_bound(hb)

    def test_unknown_model(self, hb23):
        with pytest.raises(SimulationError):
            broadcast_rounds(hb23, hb23.identity_node(), model="warp")

    def test_structured_requires_hb(self):
        with pytest.raises(SimulationError):
            broadcast_rounds(Hypercube(3), 0, model="structured")


class TestLowerBound:
    def test_lower_bound_formula(self, hb24):
        expected = max(hb24.diameter_formula(), math.ceil(math.log2(hb24.num_nodes)))
        assert broadcast_lower_bound(hb24) == expected

    def test_explicit_diameter(self):
        h = Hypercube(4)
        assert broadcast_lower_bound(h, diameter=4) == 4
