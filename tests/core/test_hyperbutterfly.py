"""Core hyper-butterfly tests: Definitions 3–4, Theorems 1–3, Remarks 3–8."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.cayley.transitivity import verify_vertex_transitivity
from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidLabelError, InvalidParameterError


class TestTheorem2Counts:
    @pytest.mark.parametrize(("m", "n"), [(0, 3), (1, 3), (2, 3), (3, 3), (2, 4)])
    def test_node_and_edge_formulas(self, m, n):
        hb = HyperButterfly(m, n)
        assert hb.num_nodes == n * 2 ** (m + n)
        assert hb.num_edges == (m + 4) * n * 2 ** (m + n - 1)
        g = hb.to_networkx()
        assert g.number_of_nodes() == hb.num_nodes
        assert g.number_of_edges() == hb.num_edges

    @pytest.mark.parametrize(("m", "n"), [(0, 3), (2, 3), (3, 4)])
    def test_regular_of_degree_m_plus_4(self, m, n):
        hb = HyperButterfly(m, n)
        g = hb.to_networkx()
        assert all(d == m + 4 for _, d in g.degree())
        assert hb.degree_formula == m + 4

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            HyperButterfly(-1, 3)
        with pytest.raises(InvalidParameterError):
            HyperButterfly(2, 2)


class TestTheorem1Cayley:
    def test_generator_set_size_and_names(self, hb23):
        assert len(hb23.gens) == hb23.m + 4
        assert list(hb23.gens.names) == ["h_0", "h_1", "g", "f", "g^-1", "f^-1"]

    def test_generators_closed_under_inverse(self, hb23):
        # GeneratorSet construction validates this; assert the pairing too
        inv = hb23.gens.inverse_index
        assert inv[0] == 0 and inv[1] == 1  # h_i are involutions
        assert inv[2] == 4 and inv[4] == 2  # g <-> g^-1
        assert inv[3] == 5 and inv[5] == 3  # f <-> f^-1

    def test_remark3_fixed_point_free(self, hb23, hb24):
        for hb in (hb23, hb24):
            sample = [hb.identity_node(), (1, (1, 3))]
            assert hb.gens.is_fixed_point_free(sample=sample)

    def test_vertex_transitive(self, hb23):
        assert verify_vertex_transitivity(hb23.group, hb23.gens)

    def test_is_product_of_factors(self, hb13):
        """HB(m, n) must be isomorphic to the Cartesian product H_m x B_n."""
        ours = hb13.to_networkx()
        product = nx.cartesian_product(
            hb13.hypercube.to_networkx(), hb13.butterfly.to_networkx()
        )
        assert nx.is_isomorphic(ours, product)


class TestDefinition4Neighbors:
    def test_neighbor_partition(self, hb23):
        v = (1, (2, 0b011))
        cube = hb23.hypercube_neighbors(v)
        fly = hb23.butterfly_neighbors(v)
        assert len(cube) == hb23.m
        assert len(fly) == 4
        assert sorted(map(repr, cube + fly)) == sorted(map(repr, hb23.neighbors(v)))

    def test_remark4_edge_kinds(self, hb23):
        v = (1, (2, 0b011))
        for w in hb23.hypercube_neighbors(v):
            assert hb23.edge_kind(v, w) == "hypercube"
            assert w[1] == v[1]  # butterfly part unchanged
        for w in hb23.butterfly_neighbors(v):
            assert hb23.edge_kind(v, w) == "butterfly"
            assert w[0] == v[0]  # hypercube part unchanged

    def test_edge_kind_rejects_non_edges(self, hb23):
        with pytest.raises(InvalidLabelError):
            hb23.edge_kind((0, (0, 0)), (3, (0, 0)))


class TestRemark5Copies:
    def test_hypercube_copy_is_hypercube(self, hb23):
        nodes = list(hb23.hypercube_copy((1, 0b010)))
        assert len(nodes) == 2**hb23.m
        sub = hb23.subgraph_networkx(nodes)
        assert nx.is_isomorphic(sub, nx.hypercube_graph(hb23.m))

    def test_butterfly_copy_is_butterfly(self, hb23):
        nodes = list(hb23.butterfly_copy(2))
        assert len(nodes) == hb23.n * 2**hb23.n
        sub = hb23.subgraph_networkx(nodes)
        assert nx.is_isomorphic(sub, hb23.butterfly.to_networkx())

    def test_copy_counts(self, hb23):
        # n*2^n disjoint hypercube copies and 2^m disjoint butterfly copies
        assert sum(1 for _ in hb23.fly_group.elements()) == 24
        assert 2**hb23.m == 4


class TestTheorem3Diameter:
    @pytest.mark.parametrize(
        ("m", "n"), [(0, 3), (1, 3), (2, 3), (0, 4), (1, 4), (2, 4), (3, 3)]
    )
    def test_diameter_formula_exact(self, m, n):
        """Exact BFS settles the floor/ceil ambiguity: m + floor(3n/2)."""
        hb = HyperButterfly(m, n)
        assert hb.diameter() == m + (3 * n) // 2 == hb.diameter_formula()

    def test_diameter_agrees_with_networkx(self, hb13):
        assert hb13.diameter() == nx.diameter(hb13.to_networkx())


class TestRemark8Distance:
    def test_distance_is_sum_of_parts(self, hb23, rng):
        g = hb23.to_networkx()
        nodes = list(hb23.nodes())
        for _ in range(60):
            u, v = rng.sample(nodes, 2)
            expected = nx.shortest_path_length(g, u, v)
            assert hb23.distance(u, v) == expected
            cube_part = (u[0] ^ v[0]).bit_count()
            fly_part = hb23.butterfly.distance(u[1], v[1])
            assert expected == cube_part + fly_part


class TestLabels:
    def test_identity_node_format(self, hb23):
        assert hb23.format_node(hb23.identity_node()) == "(00;abc)"

    def test_validate_rejects_foreign_labels(self, hb23):
        assert not hb23.has_node((4, (0, 0)))
        assert not hb23.has_node((0, (3, 0)))
        with pytest.raises(InvalidLabelError):
            hb23.validate_node("x")
