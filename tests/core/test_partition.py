"""Partitionability / scalability tests (paper title + intro claims)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.core.partition import (
    SubHBPartition,
    contraction_words,
    expansion_embedding,
    partition_by_cube_bits,
    partition_member,
)
from repro.errors import InvalidParameterError


class TestCubeBitPartition:
    @pytest.mark.parametrize("positions", [[0], [1], [0, 1], [2]])
    def test_blocks_partition_node_set(self, positions):
        hb = HyperButterfly(3, 3)
        blocks = partition_by_cube_bits(hb, positions)
        assert len(blocks) == 2 ** len(positions)
        seen = set()
        for block in blocks:
            for v in block.nodes():
                assert v not in seen
                seen.add(v)
        assert len(seen) == hb.num_nodes

    def test_each_block_is_induced_sub_hb(self, hb23):
        blocks = partition_by_cube_bits(hb23, [1])
        for block in blocks:
            emb = block.as_embedding()
            emb.verify()  # subgraph embedding of HB(1,3)
            assert emb.guest.m == hb23.m - 1
            # induced: the block's internal edge count matches HB(1,3)
            sub = hb23.subgraph_networkx(list(block.nodes()))
            assert sub.number_of_edges() == emb.guest.num_edges

    def test_block_isomorphic_to_smaller_hb(self, hb23):
        block = partition_by_cube_bits(hb23, [0])[0]
        sub = hb23.subgraph_networkx(list(block.nodes()))
        smaller = HyperButterfly(1, 3).to_networkx()
        assert nx.is_isomorphic(sub, smaller)

    def test_lift_project_roundtrip(self, hb23):
        block = partition_by_cube_bits(hb23, [1])[1]
        for sub_node in block.sub.nodes():
            host = block.lift(sub_node)
            assert block.contains(host)
            assert block.project(host) == sub_node

    def test_project_rejects_foreign_node(self, hb23):
        blocks = partition_by_cube_bits(hb23, [0])
        outside = next(v for v in hb23.nodes() if not blocks[0].contains(v))
        with pytest.raises(InvalidParameterError):
            blocks[0].project(outside)

    def test_partition_member(self, hb23, rng):
        blocks = partition_by_cube_bits(hb23, [0, 1])
        nodes = list(hb23.nodes())
        for _ in range(20):
            v = rng.choice(nodes)
            block = partition_member(blocks, v)
            assert block.contains(v)

    def test_rejects_duplicates_and_overflow(self, hb23):
        with pytest.raises(InvalidParameterError):
            partition_by_cube_bits(hb23, [0, 0])
        with pytest.raises(InvalidParameterError):
            partition_by_cube_bits(hb23, [0, 1, 2])

    def test_bad_fixed_bits(self, hb23):
        with pytest.raises(InvalidParameterError):
            SubHBPartition(hb23, {5: 0})
        with pytest.raises(InvalidParameterError):
            SubHBPartition(hb23, {0: 2})


class TestExpansion:
    @pytest.mark.parametrize(("m", "n"), [(0, 3), (1, 3), (2, 3), (2, 4)])
    def test_hb_embeds_in_next_size(self, m, n):
        hb = HyperButterfly(m, n)
        emb = expansion_embedding(hb)
        emb.verify()
        assert emb.host.m == m + 1

    def test_labels_are_preserved(self, hb13):
        emb = expansion_embedding(hb13)
        assert all(g == h for g, h in emb.mapping.items())

    def test_expansion_is_induced(self, hb13):
        """No new edges appear between old nodes after doubling."""
        emb = expansion_embedding(hb13)
        bigger = emb.host
        old = set(emb.mapping.values())
        sub = bigger.subgraph_networkx(old)
        assert sub.number_of_edges() == hb13.num_edges

    def test_chain_of_expansions(self):
        hb = HyperButterfly(0, 3)
        for _ in range(3):
            emb = expansion_embedding(hb)
            emb.verify()
            hb = emb.host
        assert hb.m == 3


class TestContractionWords:
    def test_coordinates_identify_copies(self, hb23):
        fly_copy, cube_copy = contraction_words(hb23, (2, (1, 0b011)))
        assert fly_copy == 2
        assert cube_copy == 1 * 8 + 0b011

    def test_copy_counts(self, hb23):
        fly_copies = {contraction_words(hb23, v)[0] for v in hb23.nodes()}
        cube_copies = {contraction_words(hb23, v)[1] for v in hb23.nodes()}
        assert len(fly_copies) == 2**hb23.m        # one B_n copy per cube word
        assert len(cube_copies) == hb23.n * 2**hb23.n  # one H_m copy per fly node
