"""Property-based fault-routing guarantees over a seeded ``HB(m, n)`` grid.

Corollary 1 / Remark 10, stated as executable properties: for *any* fault
set of at most ``m + 3`` nodes avoiding the endpoints,

* the disjoint strategy always returns a fault-free ``u → v`` path, and
* the adaptive (shortest fault-avoiding) path is never longer than the
  disjoint one.

The grid is small instances times many seeds — cheap, deterministic, and
broad enough to catch construction regressions in any Theorem 5 case.
"""

from __future__ import annotations

import random

import pytest

from repro.core.fault_routing import FaultTolerantRouter
from repro.core.hyperbutterfly import HyperButterfly
from repro.faults.model import random_node_faults
from repro.routing.base import validate_path

GRID = [(1, 3), (2, 3), (1, 4)]
SEEDS = range(8)

_INSTANCES: dict[tuple[int, int], HyperButterfly] = {}


def _hb(m: int, n: int) -> HyperButterfly:
    if (m, n) not in _INSTANCES:
        _INSTANCES[(m, n)] = HyperButterfly(m, n)
    return _INSTANCES[(m, n)]


@pytest.mark.parametrize("m,n", GRID)
@pytest.mark.parametrize("seed", SEEDS)
def test_disjoint_always_fault_free_within_guarantee(m, n, seed):
    hb = _hb(m, n)
    router = FaultTolerantRouter(hb)
    rng = random.Random(seed * 1009 + m * 101 + n)
    nodes = list(hb.nodes())
    for trial in range(4):
        u, v = rng.sample(nodes, 2)
        count = rng.randint(0, router.max_tolerated_faults())
        faults = random_node_faults(hb, count, rng=rng, exclude=(u, v))
        path = router.route(u, v, faults, strategy="disjoint")
        assert path[0] == u and path[-1] == v
        assert faults.nodes.isdisjoint(path)
        validate_path(hb, path)


@pytest.mark.parametrize("m,n", GRID)
@pytest.mark.parametrize("seed", SEEDS)
def test_adaptive_never_longer_than_disjoint(m, n, seed):
    hb = _hb(m, n)
    router = FaultTolerantRouter(hb)
    rng = random.Random(seed * 2003 + m * 101 + n)
    nodes = list(hb.nodes())
    for trial in range(4):
        u, v = rng.sample(nodes, 2)
        count = rng.randint(0, router.max_tolerated_faults())
        faults = random_node_faults(hb, count, rng=rng, exclude=(u, v))
        disjoint = router.route(u, v, faults, strategy="disjoint")
        adaptive = router.route(u, v, faults, strategy="adaptive")
        assert len(adaptive) <= len(disjoint)
        assert faults.nodes.isdisjoint(adaptive)
        validate_path(hb, adaptive)
