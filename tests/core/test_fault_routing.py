"""Fault-tolerant routing tests (Remark 10)."""

from __future__ import annotations

import pytest

from repro.core.fault_routing import FaultTolerantRouter
from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import DisconnectedError, RoutingError
from repro.faults.model import random_node_faults
from repro.routing.base import validate_path


class TestGuarantee:
    """With <= m+3 faults, the disjoint-path scheme must always deliver."""

    @pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3)])
    def test_maximal_fault_tolerance(self, m, n, rng):
        hb = HyperButterfly(m, n)
        router = FaultTolerantRouter(hb)
        nodes = list(hb.nodes())
        assert router.max_tolerated_faults() == m + 3
        for _ in range(15):
            u, v = rng.sample(nodes, 2)
            faults = random_node_faults(
                hb, m + 3, rng=rng, exclude=(u, v)
            )
            path = router.route(u, v, faults)
            validate_path(hb, path, source=u, target=v)
            assert faults.nodes.isdisjoint(path)

    def test_zero_faults_gives_valid_route(self, hb23):
        router = FaultTolerantRouter(hb23)
        u, v = (0, (0, 0)), (3, (2, 0b101))
        path = router.route(u, v, [])
        validate_path(hb23, path, source=u, target=v)

    def test_trivial_route(self, hb23):
        router = FaultTolerantRouter(hb23)
        u = hb23.identity_node()
        assert router.route(u, u, []) == [u]


class TestStrategies:
    def test_adaptive_never_longer_than_disjoint(self, hb23, rng):
        router = FaultTolerantRouter(hb23)
        nodes = list(hb23.nodes())
        for _ in range(20):
            u, v = rng.sample(nodes, 2)
            faults = random_node_faults(hb23, 3, rng=rng, exclude=(u, v))
            disjoint = router.route(u, v, faults, strategy="disjoint")
            adaptive = router.route(u, v, faults, strategy="adaptive")
            assert len(adaptive) <= len(disjoint)
            assert faults.nodes.isdisjoint(adaptive)

    def test_unknown_strategy(self, hb23):
        router = FaultTolerantRouter(hb23)
        with pytest.raises(RoutingError):
            router.route((0, (0, 0)), (1, (0, 0)), [], strategy="psychic")

    def test_unknown_strategy_fails_fast(self, hb23):
        """The strategy check runs before any routing shortcut: even the
        trivial ``u == u`` route must reject a typo'd strategy."""
        router = FaultTolerantRouter(hb23)
        u = hb23.identity_node()
        with pytest.raises(RoutingError, match="unknown strategy"):
            router.route(u, u, [], strategy="disjoit")

    def test_faulty_endpoint_rejected(self, hb23):
        router = FaultTolerantRouter(hb23)
        u, v = (0, (0, 0)), (1, (0, 0))
        with pytest.raises(RoutingError):
            router.route(u, v, [u])


class TestDisconnection:
    def test_adaptive_detects_disconnection(self, hb13):
        """Fault all m+4 neighbors of the source: no route exists."""
        router = FaultTolerantRouter(hb13)
        u = hb13.identity_node()
        v = (1, (1, 0b010))
        faults = hb13.neighbors(u)
        assert v not in faults
        with pytest.raises(DisconnectedError):
            router.route(u, v, faults, strategy="adaptive")
        assert not router.survives(u, v, faults)

    def test_disjoint_raises_beyond_guarantee_when_all_paths_dead(self, hb13):
        router = FaultTolerantRouter(hb13)
        u = hb13.identity_node()
        v = (1, (1, 0b010))
        faults = hb13.neighbors(u)  # m+4 faults: guarantee void
        with pytest.raises((DisconnectedError, RoutingError)):
            router.route(u, v, faults, strategy="disjoint")

    def test_survives_positive(self, hb23):
        router = FaultTolerantRouter(hb23)
        u, v = (0, (0, 0)), (3, (1, 0b001))
        assert router.survives(u, v, [(1, (0, 0))])
