"""ResilientRouter tests: escalation, degradation, cache invalidation."""

from __future__ import annotations

import random

import pytest

from repro.core.resilient import (
    DegradedRouteError,
    ReachabilityReport,
    ResilientRouter,
    RouteOutcome,
)
from repro.errors import RoutingError
from repro.faults.dynamic import FaultEvent
from repro.faults.model import random_node_faults
from repro.routing.base import validate_path


class TestEscalation:
    def test_within_guarantee_uses_disjoint(self, hb23, rng):
        router = ResilientRouter(hb23)
        nodes = list(hb23.nodes())
        for _ in range(10):
            u, v = rng.sample(nodes, 2)
            faults = random_node_faults(
                hb23, router.max_guaranteed_faults(), rng=rng, exclude=(u, v)
            )
            outcome = router.route_ex(u, v, node_faults=faults.nodes)
            assert outcome.strategy == "disjoint"
            assert faults.nodes.isdisjoint(outcome.path)
            validate_path(hb23, list(outcome.path))

    def test_beyond_guarantee_escalates_to_adaptive(self, hb13):
        """Kill every disjoint path member, keep the pair connected."""
        router = ResilientRouter(hb13)
        u = hb13.identity_node()
        # a far-away target so the disjoint family has long members
        v = max(hb13.nodes(), key=lambda w: hb13.distance(u, w))
        family = [list(p) for p in router._family(u, v)]
        # one middle node per member path kills the whole family without
        # isolating either endpoint (their neighbor sets stay alive)
        faults = {p[len(p) // 2] for p in family}
        assert len(faults) > router.max_guaranteed_faults()
        outcome = router.route_ex(u, v, node_faults=faults)
        assert outcome.strategy == "adaptive"
        assert faults.isdisjoint(outcome.path)
        validate_path(hb13, list(outcome.path))

    def test_link_faults_respected(self, hb13):
        router = ResilientRouter(hb13)
        u = hb13.identity_node()
        v = hb13.neighbors(u)[0]
        path = router.route(u, v, link_faults=[(u, v)])
        assert path[0] == u and path[-1] == v
        assert (u, v) not in zip(path, path[1:], strict=False)
        assert (v, u) not in zip(path, path[1:], strict=False)
        validate_path(hb13, path)

    def test_trivial_and_invalid(self, hb13):
        router = ResilientRouter(hb13)
        u = hb13.identity_node()
        assert router.route(u, u) == [u]
        with pytest.raises(RoutingError):
            router.route(u, hb13.neighbors(u)[0], node_faults=[u])


class TestStructuredFailure:
    def test_degraded_error_carries_report(self, hb13):
        router = ResilientRouter(hb13)
        u = hb13.identity_node()
        # isolate u: fault all of its neighbors
        wall = set(hb13.neighbors(u))
        v = next(
            w for w in hb13.nodes() if w != u and w not in wall
        )
        with pytest.raises(DegradedRouteError) as err:
            router.route_ex(u, v, node_faults=wall)
        report = err.value.report
        assert isinstance(report, ReachabilityReport)
        assert report.reachable == 1  # just the source itself
        assert report.healthy == hb13.num_nodes - len(wall)
        assert 0.0 < report.fraction < 0.05

    def test_reachability_fault_free(self, hb13):
        router = ResilientRouter(hb13)
        report = router.reachability(hb13.identity_node())
        assert report.reachable == report.healthy == hb13.num_nodes
        assert report.fraction == 1.0  # reprolint: disable=HB301 -- reachable/healthy is exactly n/n here

    def test_reachability_with_link_cut(self, hb13):
        router = ResilientRouter(hb13)
        u = hb13.identity_node()
        cut = [(u, w) for w in hb13.neighbors(u)]
        report = router.reachability(u, link_faults=cut)
        assert report.reachable == 1
        assert report.link_faults == len(cut)


class TestCache:
    def test_adaptive_cache_dropped_on_fault_event(self, hb13):
        router = ResilientRouter(hb13)
        u = hb13.identity_node()
        v = max(hb13.nodes(), key=lambda w: hb13.distance(u, w))
        family = [list(p) for p in router._family(u, v)]
        faults = frozenset(p[len(p) // 2] for p in family)
        router.route_ex(u, v, node_faults=faults)
        assert router._adaptive  # populated by the adaptive stage
        router.on_fault_event(FaultEvent(1.0, "fail", "node", u))
        assert not router._adaptive
        assert router.invalidations == 1
        # fault-independent disjoint families survive invalidation
        assert router._families

    def test_route_outcome_length(self, hb13):
        router = ResilientRouter(hb13)
        u = hb13.identity_node()
        v = hb13.neighbors(u)[0]
        outcome = router.route_ex(u, v)
        assert isinstance(outcome, RouteOutcome)
        assert outcome.length == len(outcome.path) - 1 == 1
