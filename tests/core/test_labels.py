"""Two-part label formatting/parsing tests."""

from __future__ import annotations

import pytest

from repro.core.labels import (
    butterfly_part,
    format_hb_node,
    hypercube_part,
    parse_hb_node,
)
from repro.errors import InvalidLabelError


class TestAccessors:
    def test_parts(self):
        node = (0b10, (1, 0b011))
        assert hypercube_part(node) == 0b10
        assert butterfly_part(node) == (1, 0b011)


class TestFormat:
    def test_identity(self):
        assert format_hb_node((0, (0, 0)), 2, 3) == "(00;abc)"

    def test_msb_first_cube_part(self):
        assert format_hb_node((0b01, (0, 0)), 2, 3).startswith("(01;")

    def test_complemented_symbols_uppercase(self):
        # CI bit 0 set -> symbol t_0 ('a') complemented
        text = format_hb_node((0, (0, 0b001)), 1, 3)
        assert text == "(0;Abc)"

    def test_rotated_label(self):
        assert format_hb_node((0, (1, 0)), 1, 3) == "(0;bca)"


class TestParse:
    @pytest.mark.parametrize(
        "node", [(0, (0, 0)), (3, (2, 0b101)), (1, (1, 0b010))]
    )
    def test_roundtrip(self, node):
        text = format_hb_node(node, 2, 3)
        assert parse_hb_node(text, 2, 3) == node

    def test_rejects_missing_parens(self):
        with pytest.raises(InvalidLabelError):
            parse_hb_node("00;abc", 2, 3)

    def test_rejects_missing_separator(self):
        with pytest.raises(InvalidLabelError):
            parse_hb_node("(00abc)", 2, 3)

    def test_rejects_bad_cube_width(self):
        with pytest.raises(InvalidLabelError):
            parse_hb_node("(000;abc)", 2, 3)

    def test_rejects_non_binary_cube(self):
        with pytest.raises(InvalidLabelError):
            parse_hb_node("(0x;abc)", 2, 3)

    def test_rejects_bad_symbol_permutation(self):
        with pytest.raises(InvalidLabelError):
            parse_hb_node("(00;acb)", 2, 3)

    def test_zero_m(self):
        assert parse_hb_node("(;abc)", 0, 3) == (0, (0, 0))
