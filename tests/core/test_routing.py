"""Optimal HB routing tests (paper Section 3)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.core.routing import HBRouter, RouteResult
from repro.errors import RoutingError
from repro.routing.base import validate_path


class TestRouteResult:
    def test_properties(self):
        r = RouteResult(path=[(0, (0, 0)), (1, (0, 0))], generators=["h_0"])
        assert r.length == 1
        assert r.source == (0, (0, 0))
        assert r.target == (1, (0, 0))


class TestOptimality:
    @pytest.mark.parametrize("backend", ["walk", "oracle"])
    def test_routes_are_shortest_paths(self, hb23, rng, backend):
        router = HBRouter(hb23, butterfly_backend=backend)
        g = hb23.to_networkx()
        nodes = list(hb23.nodes())
        for _ in range(60):
            u, v = rng.sample(nodes, 2)
            result = router.route(u, v)
            validate_path(hb23, result.path, source=u, target=v)
            assert result.length == nx.shortest_path_length(g, u, v)
            assert result.length == router.distance(u, v)

    def test_backends_agree_on_distance(self, hb24, rng):
        walk = HBRouter(hb24, butterfly_backend="walk")
        oracle = HBRouter(hb24, butterfly_backend="oracle")
        nodes = list(hb24.nodes())
        for _ in range(80):
            u, v = rng.sample(nodes, 2)
            assert walk.distance(u, v) == oracle.distance(u, v)

    def test_trivial_route(self, hb23):
        router = HBRouter(hb23)
        u = hb23.identity_node()
        result = router.route(u, u)
        assert result.path == [u]
        assert result.length == 0


class TestSegmentOrders:
    """Both 'cube-first' and 'fly-first' concatenations are optimal."""

    def test_both_orders_same_length(self, hb23, rng):
        router = HBRouter(hb23)
        nodes = list(hb23.nodes())
        for _ in range(40):
            u, v = rng.sample(nodes, 2)
            a = router.route(u, v, order="cube-first")
            b = router.route(u, v, order="fly-first")
            assert a.length == b.length
            validate_path(hb23, b.path, source=u, target=v)

    def test_cube_first_corrects_cube_part_first(self, hb23):
        router = HBRouter(hb23)
        u, v = (0, (0, 0)), (3, (1, 0b001))
        result = router.route(u, v, order="cube-first")
        # the first hops must be hypercube generators
        cube_dist = 2
        assert all(g.startswith("h_") for g in result.generators[:cube_dist])
        assert all(not g.startswith("h_") for g in result.generators[cube_dist:])

    def test_unknown_order_rejected(self, hb23):
        with pytest.raises(RoutingError):
            HBRouter(hb23).route(hb23.identity_node(), (1, (0, 0)), order="zigzag")

    def test_unknown_backend_rejected(self, hb23):
        with pytest.raises(RoutingError):
            HBRouter(hb23, butterfly_backend="magic")


class TestGeneratorTrace:
    def test_generator_names_replay_path(self, hb23, rng):
        router = HBRouter(hb23)
        nodes = list(hb23.nodes())
        for _ in range(30):
            u, v = rng.sample(nodes, 2)
            result = router.route(u, v)
            assert len(result.generators) == result.length
            node = u
            for name in result.generators:
                idx = list(hb23.gens.names).index(name)
                node = hb23.gens.apply(node, idx)
            assert node == v

    def test_exhaustive_small_instance(self):
        """Every pair of HB(0,3) routes optimally (butterfly-only regime)."""
        hb = HyperButterfly(0, 3)
        router = HBRouter(hb)
        g = hb.to_networkx()
        nodes = list(hb.nodes())
        for u in nodes:
            for v in nodes:
                result = router.route(u, v)
                assert result.length == nx.shortest_path_length(g, u, v)
