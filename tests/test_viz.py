"""DOT export tests."""

from __future__ import annotations

import pytest

from repro.core.disjoint_paths import disjoint_paths
from repro.core.routing import HBRouter
from repro.embeddings.trees import butterfly_tree_embedding
from repro.errors import InvalidLabelError, InvalidParameterError
from repro.topologies.butterfly import WrappedButterfly
from repro.topologies.hypercube import Hypercube
from repro.viz import (
    embedding_to_dot,
    node_stage,
    path_family_to_dot,
    stage_positions,
    to_dot,
)


class TestToDot:
    def test_basic_structure(self):
        dot = to_dot(Hypercube(3))
        assert dot.startswith('graph "H_3" {')
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == 12  # edges of H_3

    def test_node_count(self, hb13):
        dot = to_dot(hb13)
        # one node line per node (label attribute present)
        assert dot.count("label=") == hb13.num_nodes

    def test_highlighting(self):
        dot = to_dot(Hypercube(2), highlight_nodes=[0, 3])
        assert dot.count("fillcolor=") == 2

    def test_hb_edge_classes_styled(self, hb13):
        dot = to_dot(hb13)
        assert "style=dashed" in dot  # hypercube edges

    def test_size_cap(self):
        from repro.core.hyperbutterfly import HyperButterfly

        with pytest.raises(InvalidParameterError):
            to_dot(HyperButterfly(3, 8))

    def test_invalid_highlight(self):
        with pytest.raises(InvalidLabelError):
            to_dot(Hypercube(2), highlight_nodes=[9])


class TestStageLayout:
    def test_butterfly_node_stage(self):
        b = WrappedButterfly(3)
        assert node_stage(b, (0b101, 2)) == 2

    def test_hb_node_stage(self, hb13):
        # HB nodes are (hypercube word, (butterfly word, stage))
        assert node_stage(hb13, (1, (0b010, 2))) == 2

    def test_stageless_family_returns_none(self):
        h = Hypercube(3)
        assert node_stage(h, 0) is None
        assert stage_positions(h) is None

    def test_positions_cover_all_nodes_one_column_per_stage(self):
        b = WrappedButterfly(3)
        positions = stage_positions(b)
        assert positions is not None and len(positions) == b.num_nodes
        xs = {v: xy[0] for v, xy in positions.items()}
        # same stage -> same column; n distinct columns total
        assert len(set(xs.values())) == b.n
        for v, x in xs.items():
            assert x == node_stage(b, v) * 1.6
        # no two nodes collide
        assert len(set(positions.values())) == b.num_nodes

    def test_positions_are_deterministic(self, hb13):
        assert stage_positions(hb13) == stage_positions(hb13)

    def test_to_dot_stage_layout_pins_positions(self):
        b = WrappedButterfly(3)
        dot = to_dot(b, stage_layout=True)
        assert dot.count('pos="') == b.num_nodes
        assert '!"' in dot  # pinned for neato/fdp

    def test_to_dot_stage_layout_rejects_stageless(self):
        with pytest.raises(InvalidParameterError):
            to_dot(Hypercube(2), stage_layout=True)


class TestPathFamilyDot:
    def test_theorem5_family_rendering(self, hb13):
        u, v = (0, (0, 0)), (1, (2, 0b011))
        family = disjoint_paths(hb13, u, v)
        dot = path_family_to_dot(hb13, family)
        assert dot.count("penwidth=2.5") == sum(len(p) - 1 for p in family)
        assert dot.count("fillcolor=") == 2  # the two endpoints

    def test_single_route(self, hb13):
        router = HBRouter(hb13)
        route = router.route((0, (0, 0)), (1, (1, 0b001)))
        dot = path_family_to_dot(hb13, [route.path])
        assert "penwidth" in dot

    def test_rejects_empty_family(self, hb13):
        with pytest.raises(InvalidParameterError):
            path_family_to_dot(hb13, [])


class TestEmbeddingDot:
    def test_lemma3_tree_rendering(self):
        emb = butterfly_tree_embedding(3)
        dot = embedding_to_dot(emb)
        assert dot.count("fillcolor=") == emb.guest.num_nodes
        assert dot.count("penwidth=2.5") == emb.guest.num_edges
