"""Product-decomposition engine tests: bit-identical to brute-force BFS.

The engine's whole claim is exactness — factor-histogram convolution must
reproduce the all-pairs BFS aggregation *bit for bit* (integer counts,
and the floats derived from them) on every product family, including
nested generic products.  The grid here is the acceptance gate.
"""

from __future__ import annotations

import pytest

from repro.analysis.decompose import (
    convolve_pair_histograms,
    factor_pair_histogram,
    leaf_factors,
    product_average_distance,
    product_diameter,
    product_pair_histogram,
)
from repro.analysis.distance_stats import pair_distance_counts
from repro.analysis.metrics import average_distance, exact_diameter
from repro.core.hyperbutterfly import HyperButterfly
from repro.topologies.cycle import Cycle
from repro.topologies.debruijn import DeBruijn
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn
from repro.topologies.product import CartesianProduct

PRODUCT_GRID = [
    HyperButterfly(0, 3),
    HyperButterfly(1, 3),
    HyperButterfly(2, 3),
    HyperButterfly(1, 4),
    HyperButterfly(2, 4),
    HyperDeBruijn(1, 3),
    HyperDeBruijn(2, 3),
    HyperDeBruijn(1, 4),
    CartesianProduct(Cycle(5), Hypercube(2)),
    CartesianProduct(Cycle(4), DeBruijn(2)),
    CartesianProduct(
        CartesianProduct(Cycle(4), DeBruijn(2)), Hypercube(1)
    ),
]


def _brute_force_counts(topology) -> dict[int, int]:
    """Per-source dict BFS aggregation — the reference the engine replaces."""
    counts: dict[int, int] = {}
    for v in topology.nodes():
        for d in topology.bfs_distances(v).values():
            counts[d] = counts.get(d, 0) + 1
    return dict(sorted(counts.items()))


class TestFactorHistograms:
    def test_hypercube_closed_form_matches_bfs(self):
        for m in range(5):
            cube = Hypercube(m)
            assert factor_pair_histogram(cube) == _brute_force_counts(cube)

    def test_irregular_factor_matches_bfs(self):
        db = DeBruijn(3)
        assert not db.is_vertex_transitive
        assert factor_pair_histogram(db) == _brute_force_counts(db)

    def test_convolution_identity(self):
        point = {0: 1}  # the single-node graph's histogram
        hist = factor_pair_histogram(Cycle(5))
        assert convolve_pair_histograms(hist, point) == hist


class TestLeafFactors:
    def test_non_product_is_none(self):
        assert leaf_factors(Hypercube(3)) is None
        assert product_pair_histogram(DeBruijn(2)) is None
        assert product_diameter(Cycle(5)) is None
        assert product_average_distance(Cycle(5)) is None

    def test_nested_products_flatten(self):
        nested = CartesianProduct(
            CartesianProduct(Cycle(4), DeBruijn(2)), Hypercube(1)
        )
        factors = leaf_factors(nested)
        assert factors is not None
        assert [type(f).__name__ for f in factors] == [
            "Cycle",
            "DeBruijn",
            "Hypercube",
        ]

    def test_hb_factors_are_cube_and_butterfly(self, hb23):
        factors = leaf_factors(hb23)
        assert factors is not None
        assert factors == (hb23.hypercube, hb23.butterfly)


class TestBitIdenticalGrid:
    """The acceptance grid: decomposition == brute force, exactly."""

    @pytest.mark.parametrize(
        "topology", PRODUCT_GRID, ids=lambda t: t.name
    )
    def test_histogram_bit_identical(self, topology):
        assert product_pair_histogram(topology) == _brute_force_counts(
            topology
        )

    @pytest.mark.parametrize(
        "topology", PRODUCT_GRID, ids=lambda t: t.name
    )
    def test_derived_metrics_bit_identical(self, topology):
        counts = _brute_force_counts(topology)
        assert product_diameter(topology) == max(counts)
        total = sum(counts.values())
        distinct = total - topology.num_nodes
        brute_average = (
            sum(d * c for d, c in counts.items()) / distinct
        )
        # == not approx: same integer sums, same single division
        assert product_average_distance(topology) == brute_average

    @pytest.mark.parametrize(
        "topology", PRODUCT_GRID[:5], ids=lambda t: t.name
    )
    def test_public_entry_points_use_decomposition_consistently(
        self, topology
    ):
        assert exact_diameter(topology) == exact_diameter(
            topology, force_generic=True
        )
        assert pair_distance_counts(topology) == pair_distance_counts(
            topology, force_generic=True
        )
        counts = _brute_force_counts(topology)
        distinct = sum(counts.values()) - topology.num_nodes
        brute = sum(d * c for d, c in counts.items()) / distinct
        assert average_distance(topology) == brute


class TestScale:
    def test_huge_instance_is_exact_and_instant(self):
        """HB(8,10): 2.6M nodes resolved from one 2048-node factor BFS."""
        hb = HyperButterfly(8, 10)
        assert hb.num_nodes == 2_621_440
        assert exact_diameter(hb) == hb.diameter_formula() == 23
        average = average_distance(hb)
        assert 0 < average < hb.diameter_formula()

    def test_histogram_memoized_on_instance(self, hb23):
        first = product_pair_histogram(hb23)
        assert product_pair_histogram(hb23) == first
        assert getattr(hb23, "_decompose_pair_histogram") == first
