"""Formula-vs-exact cross-checks: the heart of experiment E1."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.formulas import (
    butterfly_formulas,
    hypercube_formulas,
    hyperbutterfly_formulas,
    hyperdebruijn_formulas,
)
from repro.core.hyperbutterfly import HyperButterfly
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn


@pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3), (1, 4)])
class TestFormulasMatchExplicitGraphs:
    def test_hypercube_column(self, m, n):
        f = hypercube_formulas(m, n)
        h = Hypercube(m + n)
        assert f.nodes == h.num_nodes
        assert f.edges == h.num_edges
        assert f.diameter == h.diameter()
        assert (f.degree_min, f.degree_max) == h.degree_stats()

    def test_butterfly_column(self, m, n):
        f = butterfly_formulas(m, n)
        b = CayleyButterfly(m + n)
        assert f.nodes == b.num_nodes
        assert f.edges == b.num_edges
        assert f.diameter == b.diameter()
        assert f.regular and b.is_regular()

    def test_hyperdebruijn_column(self, m, n):
        f = hyperdebruijn_formulas(m, n)
        hd = HyperDeBruijn(m, n)
        assert f.nodes == hd.num_nodes
        assert (f.degree_min, f.degree_max) == hd.degree_stats()
        assert f.diameter == nx.diameter(hd.to_networkx())
        assert not f.regular and not hd.is_regular()

    def test_hyperbutterfly_column(self, m, n):
        f = hyperbutterfly_formulas(m, n)
        hb = HyperButterfly(m, n)
        assert f.nodes == hb.num_nodes
        assert f.edges == hb.num_edges
        assert f.diameter == hb.diameter()
        assert f.fault_tolerance == hb.m + 4


class TestFigure1Orderings:
    """The qualitative Figure 1 story must hold for any valid (m, n)."""

    @pytest.mark.parametrize(("m", "n"), [(2, 3), (3, 8), (5, 6)])
    def test_hb_beats_hd_fault_tolerance(self, m, n):
        assert (
            hyperbutterfly_formulas(m, n).fault_tolerance
            > hyperdebruijn_formulas(m, n).fault_tolerance
        )

    @pytest.mark.parametrize(("m", "n"), [(2, 3), (3, 8)])
    def test_hd_beats_hb_diameter(self, m, n):
        assert (
            hyperdebruijn_formulas(m, n).diameter
            <= hyperbutterfly_formulas(m, n).diameter
        )

    def test_only_hd_is_irregular(self):
        for f in (
            hypercube_formulas(2, 3),
            butterfly_formulas(2, 3),
            hyperbutterfly_formulas(2, 3),
        ):
            assert f.regular
        assert not hyperdebruijn_formulas(2, 3).regular

    def test_hb_is_maximally_fault_tolerant_by_formula(self):
        f = hyperbutterfly_formulas(3, 8)
        assert f.fault_tolerance == f.degree_min == f.degree_max
