"""Bisection-width analysis tests (VLSI extension)."""

from __future__ import annotations

import pytest

from repro.analysis.bisection import (
    bisection_report,
    cube_cut_width,
    kernighan_lin_upper_bound,
    spectral_lower_bound,
)
from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError
from repro.topologies.cycle import Cycle
from repro.topologies.hypercube import Hypercube


class TestCubeCut:
    @pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3), (3, 4)])
    def test_cut_counts_one_edge_per_node_pair(self, m, n):
        hb = HyperButterfly(m, n)
        assert cube_cut_width(hb) == hb.num_nodes // 2 == n * 2 ** (m + n - 1)

    def test_cut_matches_explicit_count(self, hb23):
        """Count crossing edges explicitly on HB(2,3)."""
        dim = hb23.m - 1
        crossing = 0
        for u in hb23.nodes():
            if (u[0] >> dim) & 1 == 0:
                partner = (u[0] ^ (1 << dim), u[1])
                assert hb23.has_edge(u, partner)
                crossing += 1
        assert crossing == cube_cut_width(hb23)

    def test_requires_cube_factor(self):
        with pytest.raises(InvalidParameterError):
            cube_cut_width(HyperButterfly(0, 3))

    def test_dimension_validation(self, hb23):
        with pytest.raises(InvalidParameterError):
            cube_cut_width(hb23, dimension=5)


class TestSpectralBound:
    def test_cycle_has_tiny_bound(self):
        # lambda_2 of C_k is 2(1 - cos(2π/k)) -> bound << 2 = true bisection
        bound = spectral_lower_bound(Cycle(16))
        assert 0 < bound <= 2.0

    def test_hypercube_bound_is_exact(self):
        """lambda_2(H_m) = 2, so the bound equals the true bisection 2^{m-1}."""
        for m in (3, 4):
            h = Hypercube(m)
            assert spectral_lower_bound(h) == pytest.approx(2 ** (m - 1), rel=1e-6)

    def test_bound_below_canonical_cut_for_hb(self, hb23):
        assert spectral_lower_bound(hb23) <= cube_cut_width(hb23) + 1e-9


class TestKernighanLin:
    def test_upper_at_least_spectral_lower(self, hb13):
        upper = kernighan_lin_upper_bound(hb13, rounds=2)
        lower = spectral_lower_bound(hb13)
        assert upper >= lower - 1e-9

    def test_hypercube_cut_found(self):
        h = Hypercube(4)
        # KL should find a cut no worse than twice the optimal 8
        assert kernighan_lin_upper_bound(h, rounds=4) <= 16


class TestReport:
    def test_hb_report_interval(self, hb23):
        report = bisection_report(hb23, rounds=2)
        low, high = report.certified_interval
        assert 0 < low <= high
        assert report.canonical_cut == 48
        assert high <= report.canonical_cut

    def test_non_hb_report_has_no_canonical(self):
        report = bisection_report(Hypercube(4), rounds=2)
        assert report.canonical_cut is None

    def test_rejects_odd_node_count(self):
        with pytest.raises(InvalidParameterError):
            bisection_report(Cycle(5))
