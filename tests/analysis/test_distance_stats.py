"""Distance-profile tests (E11)."""

from __future__ import annotations

import pytest

from repro.analysis.distance_stats import distance_profile, profile_table
from repro.core.hyperbutterfly import HyperButterfly
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn


class TestProfiles:
    def test_hypercube_profile_is_binomial(self):
        p = distance_profile(Hypercube(4))
        # fraction at distance d is C(4, d) / 16
        assert p.histogram[0] == pytest.approx(1 / 16)
        assert p.histogram[2] == pytest.approx(6 / 16)
        assert p.mean == pytest.approx(2.0)
        assert p.diameter == 4

    def test_transitive_and_generic_paths_agree(self, hb13):
        from repro.analysis.distance_stats import (
            _generic_profile,
            _transitive_profile,
        )

        assert _transitive_profile(hb13) == _generic_profile(hb13)

    def test_histogram_sums_to_one(self, hb23):
        p = distance_profile(hb23)
        assert sum(p.histogram.values()) == pytest.approx(1.0)

    def test_diameter_matches_formula(self, hb23):
        assert distance_profile(hb23).diameter == hb23.diameter_formula()

    def test_percentiles_monotone(self, hb23):
        p = distance_profile(hb23)
        assert p.percentile(0.1) <= p.percentile(0.5) <= p.percentile(0.95)
        assert p.percentile(1.0) == p.diameter

    def test_hd_profile(self):
        hd = HyperDeBruijn(1, 3)
        p = distance_profile(hd)
        assert p.diameter == 4
        assert 0 < p.mean < 4

    def test_hb_vs_hd_mean_ordering_at_matched_budget(self):
        """At a matched 256-node budget HD's mean distance is (slightly)
        smaller — the diameter trade-off of Figure 1 extends to the
        average.  (At tiny sizes the ordering can flip: HB(1,3) actually
        beats HD(2,4); the claim is about matched budgets.)"""
        hb = distance_profile(HyperButterfly(2, 4))  # 256 nodes
        hd = distance_profile(HyperDeBruijn(3, 5))  # 256 nodes
        assert hd.mean < hb.mean


class TestTable:
    def test_table_renders_all_rows(self, hb13):
        text = profile_table([distance_profile(hb13)])
        assert "HB(1,3)" in text
        assert "mean-dist" in text
