"""Figure 1 / Figure 2 table builder tests (fast variants)."""

from __future__ import annotations

import pytest

from repro.analysis.compare import Cell, figure1_table, figure2_table, render_table
from repro.errors import InvalidParameterError


class TestCell:
    def test_markers(self):
        assert str(Cell(5, "exact")) == "5"
        assert str(Cell(5, "formula")) == "5*"
        assert str(Cell("yes", "cited")) == "yes†"


class TestFigure1:
    def test_formula_mode_columns(self):
        table = figure1_table(2, 3)
        assert set(table) == {"H_5", "B_5", "HD(2,3)", "HB(2,3)"}
        assert table["HB(2,3)"]["Nodes"].value == 96
        assert table["HB(2,3)"]["Fault-tolerance"].value == 6
        assert table["HD(2,3)"]["Regular"].value == "no"

    def test_verified_mode_exactifies_small_columns(self):
        table = figure1_table(1, 3, verify=True)
        for family in table:
            assert table[family]["Nodes"].source == "exact"
        # exact connectivity confirms the formula value
        assert table["HB(1,3)"]["Fault-tolerance"].value == 5
        assert table["HD(1,3)"]["Fault-tolerance"].value == 3

    def test_verify_budget_skips_large(self):
        table = figure1_table(3, 8, verify=True, verify_node_budget=100)
        assert table["HB(3,8)"]["Nodes"].source == "formula"

    def test_rejects_bad_n(self):
        with pytest.raises(InvalidParameterError):
            figure1_table(2, 2)

    def test_render_contains_all_rows(self):
        text = render_table(figure1_table(2, 3), title="t")
        for row in ("Nodes", "Edges", "Diameter", "Mesh of Trees"):
            assert row in text
        assert text.startswith("t")


class TestFigure2Fast:
    @pytest.fixture(scope="class")
    def table(self):
        # formula diameters: keeps the test fast; exact path covered by E2 bench
        return figure2_table(exact_diameters=False, connectivity_pairs=2)

    def test_instances(self, table):
        assert set(table) == {"HB(3,8)", "HD(3,11)", "HD(6,8)"}

    def test_equal_node_budget(self, table):
        assert all(col["Nodes"].value == 16384 for col in table.values())

    def test_regularity_story(self, table):
        assert table["HB(3,8)"]["Regular"].value == "yes"
        assert table["HD(3,11)"]["Regular"].value == "no"
        assert table["HD(6,8)"]["Regular"].value == "no"

    def test_degrees(self, table):
        assert table["HB(3,8)"]["Degree"].value == "7"
        assert table["HD(3,11)"]["Degree"].value == "5..7"
        assert table["HD(6,8)"]["Degree"].value == "8..10"

    def test_fault_tolerance_witnessed(self, table):
        ft = table["HB(3,8)"]["Fault-tolerance"].value
        assert ft.startswith("7")
        assert "witnessed >= 7" in ft

    def test_render(self, table):
        text = render_table(table, title="Figure 2")
        assert "HB(3,8)" in text and "Fault-tolerance" in text
