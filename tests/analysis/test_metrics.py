"""Metrics tests: both diameter paths must agree; profiles must be exact."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis.metrics import average_distance, degree_profile, exact_diameter
from repro.core.hyperbutterfly import HyperButterfly
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn


class TestExactDiameter:
    @pytest.mark.parametrize(
        "topology",
        [Hypercube(4), CayleyButterfly(3), HyperDeBruijn(2, 3)],
        ids=["H_4", "B_3", "HD(2,3)"],
    )
    def test_agrees_with_networkx(self, topology):
        assert exact_diameter(topology) == nx.diameter(topology.to_networkx())

    def test_fast_path_equals_generic_path(self, hb13):
        assert exact_diameter(hb13) == exact_diameter(hb13, force_generic=True)

    def test_batched_bfs_on_irregular_graph(self):
        hd = HyperDeBruijn(1, 4)
        assert exact_diameter(hd, force_generic=True) == nx.diameter(hd.to_networkx())

    def test_hb_diameter_formula(self, hb24):
        assert exact_diameter(hb24) == hb24.diameter_formula()


class TestAverageDistance:
    def test_exact_on_small(self):
        h = Hypercube(3)
        # mean Hamming distance between distinct words: m*2^(m-1)/(2^m -1)
        expected = 3 * 4 / 7
        assert average_distance(h) == pytest.approx(expected)

    def test_sampled_mode_close_to_exact(self):
        h = Hypercube(6)
        exact = average_distance(h)
        sampled = average_distance(h, exact_node_budget=1, samples=400, seed=1)
        assert abs(sampled - exact) < 0.35

    def test_deterministic_sampling(self, hb13):
        a = average_distance(hb13, exact_node_budget=1, samples=50, seed=2)
        b = average_distance(hb13, exact_node_budget=1, samples=50, seed=2)
        assert a == b


class TestDegreeProfile:
    def test_regular_profile(self, hb23):
        assert degree_profile(hb23) == {6: 96}

    def test_irregular_profile_hd(self):
        profile = degree_profile(HyperDeBruijn(2, 3))
        assert set(profile) == {4, 5, 6}
        assert sum(profile.values()) == 32
        # exactly the two loop words (000, 111) lose 2 degrees
        assert profile[4] == 2 * 2**2
