"""Serialisation round-trip tests."""

from __future__ import annotations

import json

import pytest

from repro.core.disjoint_paths import disjoint_paths
from repro.embeddings.trees import hb_tree_embedding
from repro.errors import EmbeddingError, InvalidLabelError
from repro.io import (
    dump_embedding,
    dump_paths,
    load_embedding_mapping,
    load_paths,
    node_from_jsonable,
    node_to_jsonable,
)
from repro.topologies.tree import CompleteBinaryTree


class TestNodeCodec:
    @pytest.mark.parametrize(
        "node", [0, 5, (1, 2), (3, (2, 9)), ("row", 1, 2), ((0, (1, 2)), 4)]
    )
    def test_roundtrip(self, node):
        assert node_from_jsonable(node_to_jsonable(node)) == node

    def test_rejects_unserialisable(self):
        with pytest.raises(InvalidLabelError):
            node_to_jsonable(object())

    def test_rejects_bad_payload(self):
        with pytest.raises(InvalidLabelError):
            node_from_jsonable({"a": 1})


class TestPathsRoundTrip:
    def test_theorem5_family(self, hb23, tmp_path):
        u, v = (0, (0, 0)), (3, (2, 0b101))
        family = disjoint_paths(hb23, u, v)
        file = tmp_path / "family.json"
        dump_paths(family, file, meta={"case": 3})
        loaded, meta = load_paths(file, topology=hb23)
        assert loaded == family
        assert meta == {"case": 3}

    def test_validation_catches_foreign_nodes(self, hb23, hb13, tmp_path):
        u, v = (0, (0, 0)), (3, (2, 0b101))
        family = disjoint_paths(hb23, u, v)
        file = tmp_path / "family.json"
        dump_paths(family, file)
        with pytest.raises(InvalidLabelError):
            load_paths(file, topology=hb13)  # wrong host

    def test_file_is_plain_json(self, hb23, tmp_path):
        file = tmp_path / "p.json"
        dump_paths([[(0, (0, 0)), (1, (0, 0))]], file)
        payload = json.loads(file.read_text())
        assert payload["paths"][0][0] == [0, [0, 0]]


class TestEmbeddingRoundTrip:
    def test_tree_embedding(self, hb23, tmp_path):
        emb = hb_tree_embedding(hb23)
        file = tmp_path / "tree.json"
        dump_embedding(emb, file)
        mapping = load_embedding_mapping(
            file, guest=emb.guest, host=hb23
        )  # re-verified inside
        assert mapping == dict(emb.mapping)

    def test_tampered_mapping_fails_verification(self, hb23, tmp_path):
        emb = hb_tree_embedding(hb23)
        file = tmp_path / "tree.json"
        dump_embedding(emb, file)
        payload = json.loads(file.read_text())
        payload["mapping"][0][1] = payload["mapping"][1][1]  # duplicate image
        file.write_text(json.dumps(payload, sort_keys=True))
        with pytest.raises(EmbeddingError):
            load_embedding_mapping(
                file, guest=CompleteBinaryTree(emb.guest.k), host=hb23
            )

    def test_load_without_verification(self, hb23, tmp_path):
        emb = hb_tree_embedding(hb23)
        file = tmp_path / "tree.json"
        dump_embedding(emb, file)
        assert load_embedding_mapping(file) == dict(emb.mapping)
