"""Shared fixtures: canonical small instances used across the suite."""

from __future__ import annotations

import random

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube


@pytest.fixture(scope="session")
def hb23() -> HyperButterfly:
    """The workhorse instance ``HB(2, 3)`` (96 nodes)."""
    return HyperButterfly(2, 3)


@pytest.fixture(scope="session")
def hb13() -> HyperButterfly:
    return HyperButterfly(1, 3)


@pytest.fixture(scope="session")
def hb24() -> HyperButterfly:
    return HyperButterfly(2, 4)


@pytest.fixture(scope="session")
def bf3() -> CayleyButterfly:
    return CayleyButterfly(3)


@pytest.fixture(scope="session")
def bf4() -> CayleyButterfly:
    return CayleyButterfly(4)


@pytest.fixture(scope="session")
def cube4() -> Hypercube:
    return Hypercube(4)


@pytest.fixture()
def rng() -> random.Random:
    """Fresh deterministic RNG per test."""
    return random.Random(0xC0FFEE)


def pairs_sample(topology, rng, count):
    """Distinct random node pairs from a topology."""
    nodes = list(topology.nodes())
    return [tuple(rng.sample(nodes, 2)) for _ in range(count)]
