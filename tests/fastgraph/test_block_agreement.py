"""Property-grid agreement: ``neighbors_block`` vs ``Topology.neighbors``.

The implicit BFS backend trusts ``NodeCodec.neighbors_block`` rows to be
exactly the ranked scalar adjacency (padding aside) — the contract the
HB805 rule checks statically and ``hyperbutterfly prove`` checks at its
spec grids.  This test closes the remaining gap: it sweeps *every*
registered codec family over its invariant-spec small grids at runtime,
so a new codec cannot land without its vectorised kernel being held to
the scalar one.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro  # noqa: F401  — registers every family's invariant spec
from repro.fastgraph.codecs import codec_for, registered_codec_families
from repro.topologies.invariants import all_invariant_specs

#: grids larger than this are covered by `hyperbutterfly prove` abstractly
NODE_CAP = 1 << 13


def _grid():
    specs = all_invariant_specs()
    cases = []
    for family in registered_codec_families():
        spec = specs.get(family)
        if spec is None:
            continue
        for point in spec.small:
            cases.append(pytest.param(spec, point, id=f"{family}{point}"))
    return cases


@pytest.mark.parametrize("spec, point", _grid())
def test_block_rows_equal_ranked_scalar_neighbors(spec, point):
    topo = spec.build_instance(point)
    if topo.num_nodes > NODE_CAP:
        pytest.skip(f"{spec.family}{point}: past the enumeration cap")
    codec = codec_for(topo)
    if codec is None:
        pytest.skip(f"{spec.family}: factory declined the instance")
    if not codec.supports_implicit():
        pytest.skip(f"{spec.family}: codec has no implicit adjacency")
    n = topo.num_nodes
    rows = codec.neighbors_block(np.arange(n, dtype=np.int64))
    assert rows.shape[0] == n
    for idx in range(n):
        block = [int(e) for e in rows[idx] if e >= 0]
        scalar = [codec.rank(u) for u in topo.neighbors(codec.unrank(idx))]
        assert block == scalar, (spec.family, point, idx)
        # padding may sit anywhere in the row (the implicit BFS kernel
        # masks negatives, it does not stop at the first one) but must be
        # exactly -1 so out-of-range ranks can never masquerade as padding
        assert all(int(e) == -1 for e in rows[idx] if e < 0), (
            spec.family,
            point,
            idx,
        )


def test_every_registered_family_is_swept():
    # the grid must actually cover the paper families — an empty
    # parametrization would pass vacuously
    families = {spec.family for spec, _ in (p.values for p in _grid())}
    for family in ("HyperButterfly", "Hypercube", "WrappedButterfly",
                   "CayleyButterfly", "DeBruijn", "Cycle", "Torus"):
        assert family in families, family
