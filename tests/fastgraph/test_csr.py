"""CSR construction and disk-cache behavior."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.fastgraph import codec_for
from repro.fastgraph.csr import build_csr, cache_path
from repro.topologies.debruijn import DeBruijn
from repro.topologies.hypercube import Hypercube


class TestBuildRoutes:
    def test_vectorized_build_is_regular(self):
        h = Hypercube(4)
        csr = build_csr(h, codec_for(h))
        assert csr.uniform_degree == 4
        assert csr.num_nodes == 16
        assert csr.num_arcs == 64
        assert csr.table() is not None

    def test_generic_build_irregular(self):
        d = DeBruijn(3)
        csr = build_csr(d, codec_for(d))
        assert csr.uniform_degree is None
        degrees = np.diff(csr.indptr)
        assert sorted(set(int(x) for x in degrees)) == [2, 3, 4]
        assert int(degrees.sum()) == 2 * d.num_edges

    def test_scipy_export_symmetric(self):
        h = Hypercube(3)
        mat = build_csr(h, codec_for(h)).to_scipy()
        assert (mat != mat.T).nnz == 0


class TestDiskCache:
    def test_generic_build_round_trips_through_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr("repro.fastgraph.csr._CACHE_MIN_NODES", 1)
        d = DeBruijn(4)
        codec = codec_for(d)
        first = build_csr(d, codec)
        path = cache_path(codec)
        assert path is not None and os.path.exists(path)
        second = build_csr(d, codec)
        assert np.array_equal(first.indptr, second.indptr)
        assert np.array_equal(first.indices, second.indices)
        assert second.uniform_degree is None

    def test_version_keys_the_cache_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        codec = codec_for(DeBruijn(4))
        before = cache_path(codec)
        monkeypatch.setattr("repro.__version__", "999.0.0")
        assert cache_path(codec) != before

    def test_vectorized_families_skip_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr("repro.fastgraph.csr._CACHE_MIN_NODES", 1)
        h = Hypercube(4)
        build_csr(h, codec_for(h))
        assert not os.listdir(tmp_path)

    def test_unwritable_cache_dir_is_tolerated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "missing" / "nested"))
        monkeypatch.setattr("repro.fastgraph.csr._CACHE_MIN_NODES", 1)
        d = DeBruijn(3)
        csr = build_csr(d, codec_for(d))
        assert csr.num_nodes == d.num_nodes

    def test_opt_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr("repro.fastgraph.csr._CACHE_MIN_NODES", 1)
        d = DeBruijn(4)
        build_csr(d, codec_for(d), use_disk_cache=False)
        assert not os.listdir(tmp_path)


class TestDisabledBackend:
    def test_env_switch_disables(self, monkeypatch):
        from repro.fastgraph.backend import get_fastgraph

        monkeypatch.setenv("REPRO_FASTGRAPH", "0")
        assert get_fastgraph(Hypercube(3)) is None

    def test_python_fallback_still_correct(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTGRAPH", "0")
        h = Hypercube(3)
        assert h.bfs_distances(0) == h._bfs_distances_python(0, frozenset())
        assert h.eccentricity(0) == 3
        path = h.bfs_shortest_path(0, 7)
        assert path is not None and len(path) - 1 == 3
