"""Fast backend vs. pure-Python reference: bit-identical results.

The acceptance bar for the CSR backend is exactness: on a grid of small
instances of every topology family, distances, eccentricities, diameters,
shortest-path lengths, edges, and oracle services must match the
pure-Python label-walking implementations value for value.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.metrics import exact_diameter
from repro.cayley.graph import DistanceOracle
from repro.core.hyperbutterfly import HyperButterfly
from repro.fastgraph import get_fastgraph
from repro.fastgraph.backend import FastGraph
from repro.fastgraph.kernels import batched_eccentricities, distance_histogram
from repro.topologies.butterfly import WrappedButterfly
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.cycle import Cycle
from repro.topologies.debruijn import DeBruijn
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn
from repro.topologies.mesh import Mesh, Torus
from repro.topologies.tree import CompleteBinaryTree

GRID = [
    Hypercube(1),
    Hypercube(4),
    WrappedButterfly(3),
    WrappedButterfly(4),
    CayleyButterfly(4),
    HyperButterfly(0, 3),
    HyperButterfly(2, 3),
    HyperButterfly(1, 4),
    DeBruijn(4),
    HyperDeBruijn(2, 3),
    Cycle(9),
    Torus(3, 4),
    Mesh(4, 3),
    CompleteBinaryTree(4),
]


def _sample_nodes(topology, k, seed=0):
    nodes = list(topology.nodes())
    rng = random.Random(seed)
    return rng.sample(nodes, min(k, len(nodes)))


@pytest.mark.parametrize("topology", GRID, ids=lambda t: t.name)
class TestFastMatchesPython:
    def test_backend_engages(self, topology):
        assert isinstance(get_fastgraph(topology), FastGraph)

    def test_bfs_distances_identical(self, topology):
        for source in _sample_nodes(topology, 4):
            fast = topology.bfs_distances(source)
            slow = topology._bfs_distances_python(source, frozenset())
            assert fast == slow

    def test_bfs_distances_blocked_identical(self, topology):
        nodes = _sample_nodes(topology, 6, seed=1)
        source, blocked = nodes[0], frozenset(nodes[1:4])
        if source in blocked:
            blocked = blocked - {source}
        fast = topology.bfs_distances(source, blocked=blocked)
        slow = topology._bfs_distances_python(source, blocked)
        assert fast == slow

    def test_eccentricity_identical(self, topology):
        for source in _sample_nodes(topology, 3, seed=2):
            reference = max(topology._bfs_distances_python(source, frozenset()).values())
            assert topology.eccentricity(source) == reference

    def test_shortest_paths_are_shortest_and_valid(self, topology):
        nodes = _sample_nodes(topology, 6, seed=3)
        for u in nodes[:2]:
            reference = topology._bfs_distances_python(u, frozenset())
            for v in nodes[2:]:
                path = topology.bfs_shortest_path(u, v)
                assert path is not None
                assert path[0] == u and path[-1] == v
                assert len(path) - 1 == reference[v]
                for a, b in zip(path, path[1:], strict=False):
                    assert b in topology.neighbors(a)

    def test_edges_identical(self, topology):
        fast = {frozenset(e) for e in topology.edges()}
        seen: set = set()
        slow = set()
        for u in topology.nodes():
            seen.add(u)
            for v in topology.neighbors(u):
                if v not in seen:
                    slow.add(frozenset((u, v)))
        assert fast == slow
        assert len(fast) == topology.num_edges

    def test_batched_eccentricities_match_per_source(self, topology):
        fg = get_fastgraph(topology)
        ecc = batched_eccentricities(fg.csr, batch=32, name=topology.name)
        for idx in range(0, topology.num_nodes, max(1, topology.num_nodes // 5)):
            source = fg.unrank(idx)
            expected = max(topology._bfs_distances_python(source, frozenset()).values())
            assert int(ecc[idx]) == expected

    def test_exact_diameter_generic_vs_transitive_agree(self, topology):
        assert exact_diameter(topology, force_generic=True) == max(
            max(topology._bfs_distances_python(v, frozenset()).values())
            for v in topology.nodes()
        )

    def test_distance_histogram_matches_python(self, topology):
        fg = get_fastgraph(topology)
        counts: dict[int, int] = {}
        for v in topology.nodes():
            for d in topology._bfs_distances_python(v, frozenset()).values():
                counts[d] = counts.get(d, 0) + 1
        assert distance_histogram(fg.csr) == dict(sorted(counts.items()))


class TestBlockedSemantics:
    def test_blocked_source_raises(self, hb13):
        from repro.errors import InvalidLabelError

        u = hb13.identity_node()
        with pytest.raises(InvalidLabelError):
            hb13.bfs_distances(u, blocked=frozenset({u}))

    def test_blocked_target_path_none(self, hb13):
        u = hb13.identity_node()
        v = next(n for n in hb13.nodes() if n != u)
        assert hb13.bfs_shortest_path(u, v, blocked=frozenset({v})) is None

    def test_blocked_cut_disconnects(self):
        cycle = Cycle(8)
        blocked = frozenset({1, 7})
        dist = cycle.bfs_distances(0, blocked=blocked)
        assert dist == {0: 0}
        assert cycle.bfs_shortest_path(0, 4, blocked=blocked) is None

    def test_foreign_labels_in_blocked_are_ignored(self):
        h = Hypercube(3)
        assert h.bfs_distances(0, blocked=frozenset({"nope"})) == h.bfs_distances(0)


class TestOracleBackends:
    @pytest.mark.parametrize("m,n", [(0, 3), (1, 3), (2, 4)])
    def test_oracle_fast_matches_python(self, m, n):
        hb = HyperButterfly(m, n)
        fast = DistanceOracle(hb.group, hb.gens)
        slow = DistanceOracle(hb.group, hb.gens, backend="python")
        # default backend splits HB into factor oracles (product fast path)
        assert fast._left is not None and fast._right is not None
        assert slow._left is None and slow._dist_arr is None
        for v in hb.group.elements():
            assert fast.distance_from_identity(v) == slow.distance_from_identity(v)
            word = fast.generator_word(v)
            assert len(word) == fast.distance_from_identity(v)
            cursor = hb.group.identity()
            for i in word:
                cursor = hb.gens.apply(cursor, i)
            assert cursor == v
        assert fast.eccentricity_of_identity() == slow.eccentricity_of_identity()
        assert fast.distance_distribution() == slow.distance_distribution()
        assert fast.average_distance() == pytest.approx(slow.average_distance())

    def test_oracle_shortest_path_lengths_match(self, hb23):
        fast = DistanceOracle(hb23.group, hb23.gens)
        slow = DistanceOracle(hb23.group, hb23.gens, backend="python")
        nodes = _sample_nodes(hb23, 8, seed=5)
        for u in nodes[:4]:
            for v in nodes[4:]:
                pf, ps = fast.shortest_path(u, v), slow.shortest_path(u, v)
                assert len(pf) == len(ps) == fast.distance(u, v) + 1
                assert pf[0] == u and pf[-1] == v

    def test_invalid_element_raises(self, hb13):
        from repro.errors import InvalidLabelError

        oracle = DistanceOracle(hb13.group, hb13.gens)
        with pytest.raises(InvalidLabelError):
            oracle.distance_from_identity(("bogus", "label"))


class TestMemoization:
    def test_backend_memoized_per_instance(self):
        h = Hypercube(3)
        assert get_fastgraph(h) is get_fastgraph(h)

    def test_csr_built_once(self):
        h = Hypercube(3)
        fg = get_fastgraph(h)
        assert fg.csr is fg.csr
