"""Regression: the batched BFS accumulator must not wrap at 256.

``sweep_chunk`` once computed ``adjacency @ frontier.astype(np.uint8)``;
the matrix product accumulates in the operands' promoted dtype, so a node
whose in-degree *from the current frontier* is a multiple of 256 summed
to exactly 0 and silently read as unreached (surfacing as a spurious
``DisconnectedError`` or a wrong eccentricity).  Found by reprolint
HB605; fixed by accumulating in ``int32``.
"""

from __future__ import annotations

import numpy as np

from repro.fastgraph.csr import CSRAdjacency
from repro.fastgraph.kernels import batched_eccentricities, sweep_chunk


def _star_bridge_csr(leaves: int = 256) -> CSRAdjacency:
    """Center ``C`` — each leaf — bridge ``X``: ``X`` sees 256 frontier
    neighbors at BFS depth 2 from ``C``, the exact wrap count."""
    n = leaves + 2
    x = n - 1
    adj: list[list[int]] = [[] for _ in range(n)]
    for leaf in range(1, leaves + 1):
        adj[0].append(leaf)
        adj[leaf].extend([0, x])
        adj[x].append(leaf)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for i in range(n):
        indptr[i + 1] = indptr[i] + len(adj[i])
    indices = np.concatenate([np.asarray(a, dtype=np.int32) for a in adj])
    return CSRAdjacency(indptr=indptr, indices=indices)


class TestFrontierAccumulatorWidth:
    def test_multiple_of_256_frontier_indegree_is_reached(self):
        csr = _star_bridge_csr(256)
        chunk = np.array([0], dtype=np.int64)
        ecc, depth_counts, all_visited = sweep_chunk(
            csr.to_scipy(), csr.num_nodes, chunk
        )
        assert all_visited  # the wrapped kernel left the bridge unreached
        assert int(ecc[0]) == 2
        assert depth_counts == {1: 256, 2: 1}

    def test_batched_eccentricities_on_wrap_prone_graph(self):
        csr = _star_bridge_csr(256)
        ecc = batched_eccentricities(csr, name="star-bridge")
        # every node reaches every other within 2 hops
        assert (ecc == 2).all()
