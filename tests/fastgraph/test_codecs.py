"""Codec round-trip and registry tests for the fast graph backend."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.fastgraph import codec_for, codec_for_group, register_codec
from repro.fastgraph.codecs import EnumerationCodec
from repro.topologies.base import Topology
from repro.topologies.butterfly import WrappedButterfly
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.cycle import Cycle
from repro.topologies.debruijn import DeBruijn
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn
from repro.topologies.mesh import Mesh, Torus
from repro.topologies.mesh_of_trees import MeshOfTrees
from repro.topologies.product import CartesianProduct
from repro.topologies.tree import CompleteBinaryTree

GRID = [
    Hypercube(0),
    Hypercube(1),
    Hypercube(3),
    Hypercube(5),
    WrappedButterfly(3),
    WrappedButterfly(4),
    CayleyButterfly(3),
    CayleyButterfly(5),
    HyperButterfly(0, 3),
    HyperButterfly(1, 3),
    HyperButterfly(2, 4),
    DeBruijn(4),
    HyperDeBruijn(2, 3),
    Cycle(7),
    Torus(3, 4),
    Mesh(3, 5),
    CompleteBinaryTree(4),
    CartesianProduct(Hypercube(2), Cycle(5)),
]


@pytest.mark.parametrize("topology", GRID, ids=lambda t: t.name)
class TestRoundTrip:
    def test_codec_exists(self, topology):
        assert codec_for(topology) is not None

    def test_rank_unrank_bijective(self, topology):
        codec = codec_for(topology)
        assert codec.num_nodes == topology.num_nodes
        for idx in range(codec.num_nodes):
            assert codec.rank(codec.unrank(idx)) == idx

    def test_unrank_matches_node_universe(self, topology):
        codec = codec_for(topology)
        labels = {codec.unrank(i) for i in range(codec.num_nodes)}
        assert labels == set(topology.nodes())

    def test_ranks_of_nodes_are_dense(self, topology):
        codec = codec_for(topology)
        ranks = sorted(codec.rank(v) for v in topology.nodes())
        assert ranks == list(range(topology.num_nodes))


class TestNeighborTables:
    @pytest.mark.parametrize(
        "topology",
        [
            Hypercube(3),
            WrappedButterfly(4),
            CayleyButterfly(4),
            HyperButterfly(2, 3),
            Cycle(6),
            Torus(3, 3),
            CartesianProduct(Hypercube(2), Cycle(4)),
        ],
        ids=lambda t: t.name,
    )
    def test_table_matches_neighbors(self, topology):
        """Vectorized tables agree with label-level ``neighbors`` per node."""
        codec = codec_for(topology)
        table = codec.neighbor_table()
        assert table is not None
        anchor = next(iter(topology.nodes()))
        assert table.shape == (topology.num_nodes, topology.degree(anchor))
        for idx in range(topology.num_nodes):
            expected = {codec.rank(w) for w in topology.neighbors(codec.unrank(idx))}
            assert set(int(j) for j in table[idx]) == expected

    def test_irregular_families_have_no_table(self):
        assert codec_for(DeBruijn(3)).neighbor_table() is None
        assert codec_for(Mesh(3, 3)).neighbor_table() is None


class TestGroupCodecs:
    def test_hyperbutterfly_group_codec_roundtrip(self, hb23):
        codec = codec_for_group(hb23.group)
        assert codec is not None
        for i, element in enumerate(sorted(codec.rank(v) for v in hb23.group.elements())):
            assert i == element

    def test_unknown_group_has_no_codec(self):
        class Weird:
            pass

        assert codec_for_group(Weird()) is None


class TestRegistryOptIn:
    def test_unregistered_topology_has_no_codec(self):
        assert codec_for(MeshOfTrees(2, 2)) is None

    def test_external_subclass_can_register(self):
        class TinyPath(Topology):
            name = "tiny-path"
            num_nodes = 4

            def nodes(self):
                return iter(range(4))

            def has_node(self, v):
                return isinstance(v, int) and 0 <= v < 4

            def neighbors(self, v):
                self.validate_node(v)
                return [w for w in (v - 1, v + 1) if 0 <= w < 4]

        register_codec(TinyPath, lambda t: EnumerationCodec(t.nodes()))
        try:
            codec = codec_for(TinyPath())
            assert codec is not None
            assert [codec.unrank(i) for i in range(4)] == [0, 1, 2, 3]
        finally:
            from repro.fastgraph.codecs import _REGISTRY

            _REGISTRY.pop("TinyPath", None)
