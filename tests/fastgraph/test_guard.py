"""Env-propagated numpy error-state guard used by the overflow sanitizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fastgraph.guard import ERRSTATE_ENV, install_errstate_from_env


@pytest.fixture(autouse=True)
def _restore_errstate():
    saved = np.geterr()
    yield
    np.seterr(**saved)


class TestInstallErrstateFromEnv:
    def test_unset_env_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(ERRSTATE_ENV, raising=False)
        before = np.geterr()
        assert install_errstate_from_env() is False
        assert np.geterr() == before

    def test_spec_turns_warnings_into_raises(self, monkeypatch):
        monkeypatch.setenv(ERRSTATE_ENV, "over=raise,invalid=raise")
        assert install_errstate_from_env() is True
        with pytest.raises(FloatingPointError):
            np.float64(1e308) * np.float64(10.0)

    def test_malformed_spec_raises_instead_of_running_untrapped(
        self, monkeypatch
    ):
        monkeypatch.setenv(ERRSTATE_ENV, "overraise")
        with pytest.raises(ValueError):
            install_errstate_from_env()

    def test_unknown_key_is_rejected_by_numpy(self, monkeypatch):
        monkeypatch.setenv(ERRSTATE_ENV, "bogus=raise")
        with pytest.raises(TypeError):
            install_errstate_from_env()
