"""Implicit (CSR-free) kernels vs. the CSR kernels: bit-identical results.

The implicit backend's admission bar is exactness — on a grid of small
instances of every implicit-capable family, distances, parents, reaching
generators, eccentricities, depth histograms, and sweep reductions must
equal the CSR kernels *bit for bit*, including under fault masks, target
early exit, and sub-frontier gather slices (which exercise the slice-merge
path the big instances rely on).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError
from repro.fastgraph.backend import FastGraph, get_fastgraph, implicit_threshold
from repro.fastgraph.implicit import (
    HAVE_NUMBA,
    Bitset,
    default_slice_nodes,
    implicit_bfs_levels,
    implicit_source_stats,
    implicit_sweep_chunk,
    numba_enabled,
)
from repro.fastgraph.kernels import bfs_levels, sweep_chunk
from repro.topologies.butterfly import WrappedButterfly
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.cycle import Cycle
from repro.topologies.debruijn import DeBruijn
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn
from repro.topologies.mesh import Mesh, Torus
from repro.topologies.tree import CompleteBinaryTree

#: every implicit-capable family, small enough for exhaustive comparison
GRID = [
    Hypercube(1),
    Hypercube(4),
    WrappedButterfly(3),
    WrappedButterfly(4),
    CayleyButterfly(4),
    HyperButterfly(0, 3),
    HyperButterfly(2, 3),
    HyperButterfly(1, 4),
    DeBruijn(4),
    HyperDeBruijn(2, 3),
    Cycle(9),
    Torus(3, 4),
]

#: gather slice far below every GRID frontier — forces the multi-slice path
TINY_SLICE = 7


def _fast(topology) -> FastGraph:
    fast = get_fastgraph(topology)
    assert fast is not None and fast.supports_implicit()
    return fast


def _sample_ranks(n, k, seed=0):
    rng = random.Random(seed)
    return rng.sample(range(n), min(k, n))


class TestBitset:
    def test_set_and_test_across_word_boundaries(self):
        bits = Bitset(130)
        idx = np.array([0, 62, 63, 64, 65, 127, 128, 129], dtype=np.int64)
        bits.set_bits(idx)
        assert bits.test(idx).all()
        others = np.array([1, 61, 66, 126], dtype=np.int64)
        assert not bits.test(others).any()
        assert bits.count() == len(idx)

    def test_duplicate_sets_count_once(self):
        bits = Bitset(70)
        bits.set_bits(np.array([5, 5, 5, 64, 64], dtype=np.int64))
        assert bits.count() == 2

    def test_empty(self):
        bits = Bitset(0)
        assert bits.count() == 0

    def test_negative_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            Bitset(-1)


@pytest.mark.parametrize("topology", GRID, ids=lambda t: t.name)
class TestImplicitMatchesCSR:
    def test_distances_and_parents_identical(self, topology):
        fast = _fast(topology)
        n = fast.codec.num_nodes
        for source in _sample_ranks(n, 4):
            ref_dist, ref_parents = bfs_levels(fast.csr, source, want_parents=True)
            for slice_nodes in (TINY_SLICE, default_slice_nodes()):
                dist, parents, _ = implicit_bfs_levels(
                    fast.codec, source, want_parents=True, slice_nodes=slice_nodes
                )
                assert np.array_equal(dist, ref_dist)
                assert np.array_equal(parents, ref_parents)

    def test_via_reconstructs_the_edge(self, topology):
        """via[v] is the neighbor-block column turning parent[v] into v."""
        fast = _fast(topology)
        codec = fast.codec
        source = 0
        dist, parents, via = implicit_bfs_levels(
            codec, source, want_parents=True, want_via=True, slice_nodes=TINY_SLICE
        )
        block = codec.neighbors_block(
            np.arange(codec.num_nodes, dtype=np.int64)
        )
        for v in np.nonzero(dist > 0)[0]:
            assert block[parents[v], via[v]] == v
        assert via[source] == -1 and parents[source] == -1

    def test_fault_masked_distances_identical(self, topology):
        fast = _fast(topology)
        n = fast.codec.num_nodes
        rng = random.Random(7)
        for trial in range(4):
            ranks = rng.sample(range(n), min(5, n))
            source, faulty = ranks[0], ranks[1:]
            mask = np.zeros(n, dtype=bool)
            mask[faulty] = True
            forbidden = np.array(sorted(faulty), dtype=np.int64)
            ref_dist, _ = bfs_levels(fast.csr, source, forbidden=mask)
            dist, _, _ = implicit_bfs_levels(
                fast.codec, source, forbidden=forbidden, slice_nodes=TINY_SLICE
            )
            assert np.array_equal(dist, ref_dist)

    def test_target_early_exit_identical(self, topology):
        fast = _fast(topology)
        n = fast.codec.num_nodes
        ranks = _sample_ranks(n, 4, seed=3)
        source, target = ranks[0], ranks[-1]
        ref_dist, ref_parents = bfs_levels(
            fast.csr, source, want_parents=True, target=target
        )
        dist, parents, _ = implicit_bfs_levels(
            fast.codec,
            source,
            want_parents=True,
            target=target,
            slice_nodes=TINY_SLICE,
        )
        assert np.array_equal(dist, ref_dist)
        assert np.array_equal(parents, ref_parents)

    def test_source_stats_match_distance_array(self, topology):
        fast = _fast(topology)
        for source in _sample_ranks(fast.codec.num_nodes, 3, seed=5):
            ref_dist, _ = bfs_levels(fast.csr, source)
            ecc, depth_counts, reached = implicit_source_stats(
                fast.codec, source, slice_nodes=TINY_SLICE
            )
            assert ecc == int(ref_dist.max())
            assert reached == int((ref_dist >= 0).sum())
            counts = np.bincount(ref_dist[ref_dist > 0])
            assert depth_counts == {
                d: int(c) for d, c in enumerate(counts) if c
            }

    def test_sweep_chunk_identical(self, topology):
        fast = _fast(topology)
        n = fast.codec.num_nodes
        chunk = np.arange(min(n, 12), dtype=np.int64)
        ref = sweep_chunk(fast.csr.to_scipy(), n, chunk)
        got = implicit_sweep_chunk(fast.codec, chunk, slice_nodes=TINY_SLICE)
        assert np.array_equal(got[0], ref[0])
        assert got[1] == ref[1]
        assert got[2] == ref[2]


class TestBackendSelection:
    def test_auto_prefers_built_csr(self):
        topology = HyperButterfly(2, 3)
        fast = _fast(topology)
        _ = fast.csr  # force the build
        assert fast.select_backend(None) == "csr"

    def test_auto_goes_implicit_past_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_IMPLICIT_THRESHOLD", "1")
        topology = HyperButterfly(2, 3)
        fast = _fast(topology)
        assert implicit_threshold() == 1
        assert fast.select_backend(None) == "implicit"

    def test_probe_prefers_implicit_without_csr(self):
        topology = HyperButterfly(2, 3)
        fast = _fast(topology)
        assert fast.select_backend(None, probe=True) == "implicit"

    def test_explicit_backends_resolve(self):
        fast = _fast(HyperButterfly(2, 3))
        assert fast.select_backend("csr") == "csr"
        assert fast.select_backend("implicit") == "implicit"
        assert fast.select_backend("auto") in ("csr", "implicit")

    def test_unsupported_codec_rejects_implicit(self):
        for topology in (Mesh(4, 3), CompleteBinaryTree(4)):
            fast = get_fastgraph(topology)
            assert fast is not None and not fast.supports_implicit()
            with pytest.raises(InvalidParameterError):
                fast.select_backend("implicit")
            # auto never picks a substrate the codec cannot provide
            assert fast.select_backend(None, probe=True) == "csr"

    def test_unknown_backend_rejected(self):
        fast = _fast(HyperButterfly(2, 3))
        with pytest.raises(InvalidParameterError):
            fast.select_backend("sparse")

    def test_threshold_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_IMPLICIT_THRESHOLD", "not-a-number")
        assert implicit_threshold() == 1 << 22


class TestTopologyBackendKwarg:
    @pytest.mark.parametrize("backend", ["csr", "implicit", "python"])
    def test_bfs_distances_equal_across_backends(self, backend):
        topology = HyperButterfly(2, 3)
        source = next(iter(topology.nodes()))
        reference = topology._bfs_distances_python(source, frozenset())
        assert topology.bfs_distances(source, backend=backend) == reference

    @pytest.mark.parametrize("backend", ["csr", "implicit", "python"])
    def test_eccentricity_equal_across_backends(self, backend):
        topology = HyperDeBruijn(2, 3)
        source = next(iter(topology.nodes()))
        reference = max(
            topology._bfs_distances_python(source, frozenset()).values()
        )
        assert topology.eccentricity(source, backend=backend) == reference

    def test_codecless_topology_rejects_fast_backends(self):
        from repro.topologies.mesh_of_trees import MeshOfTrees

        topology = MeshOfTrees(2, 2)
        source = next(iter(topology.nodes()))
        with pytest.raises(InvalidParameterError):
            topology.bfs_distances(source, backend="implicit")
        with pytest.raises(InvalidParameterError):
            topology.eccentricity(source, backend="csr")

    def test_source_histogram_backends_agree(self):
        fast = _fast(HyperButterfly(2, 3))
        source = next(iter(fast.topology.nodes()))
        assert fast.source_histogram(source, backend="implicit") == (
            fast.source_histogram(source, backend="csr")
        )


class TestNumbaGate:
    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_IMPLICIT_NUMBA", "0")
        assert not numba_enabled()

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_path_matches_numpy_path(self, monkeypatch):
        fast = _fast(HyperButterfly(2, 3))
        monkeypatch.setenv("REPRO_IMPLICIT_NUMBA", "0")
        ref, ref_parents, _ = implicit_bfs_levels(
            fast.codec, 0, want_parents=True, slice_nodes=TINY_SLICE
        )
        monkeypatch.setenv("REPRO_IMPLICIT_NUMBA", "1")
        assert numba_enabled()
        dist, parents, _ = implicit_bfs_levels(
            fast.codec, 0, want_parents=True, slice_nodes=TINY_SLICE
        )
        assert np.array_equal(dist, ref)
        assert np.array_equal(parents, ref_parents)
