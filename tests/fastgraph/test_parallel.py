"""Process-pool sweep tests: bit-identical to the serial kernels.

The pooled sweep is only admissible because its reduction is provably
order-independent — these tests pin that the result is *exactly* the
serial one for every job count, batch size, and consumer-facing metric.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.distance_stats import distance_profile
from repro.analysis.metrics import exact_diameter
from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import DisconnectedError, InvalidParameterError
from repro.fastgraph.backend import get_fastgraph
from repro.fastgraph.kernels import batched_eccentricities, distance_histogram
from repro.fastgraph.parallel import (
    START_METHOD_ENV,
    SweepResult,
    parallel_sweep,
    resolve_start_method,
    source_chunks,
)
from repro.topologies.debruijn import DeBruijn
from repro.topologies.mesh import Mesh


class TestSourceChunks:
    def test_covers_range_exactly(self):
        bounds = source_chunks(10, 3)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_chunk(self):
        assert source_chunks(5, 128) == [(0, 5)]

    def test_empty(self):
        assert source_chunks(0, 4) == []


class TestDeterminism:
    @pytest.fixture(scope="class")
    def csr(self):
        return get_fastgraph(HyperButterfly(2, 3)).csr

    @pytest.fixture(scope="class")
    def serial(self, csr):
        return (
            batched_eccentricities(csr, name="HB(2,3)"),
            distance_histogram(csr),
        )

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_matches_serial_kernels_for_any_job_count(
        self, csr, serial, jobs
    ):
        ecc, hist = serial
        result = parallel_sweep(csr, jobs=jobs, name="HB(2,3)")
        assert np.array_equal(result.eccentricities, ecc)
        assert result.histogram == hist
        assert result.diameter() == int(ecc.max())

    @pytest.mark.parametrize("batch", [1, 7, 96, 128])
    def test_batch_size_never_changes_the_result(self, csr, serial, batch):
        ecc, hist = serial
        result = parallel_sweep(csr, jobs=2, batch=batch, name="HB(2,3)")
        assert np.array_equal(result.eccentricities, ecc)
        assert result.histogram == hist

    def test_irregular_topology(self):
        csr = get_fastgraph(DeBruijn(3), allow_enumeration=True).csr
        serial = parallel_sweep(csr, jobs=1, check_connected=False)
        pooled = parallel_sweep(csr, jobs=2, batch=3, check_connected=False)
        assert np.array_equal(
            pooled.eccentricities, serial.eccentricities
        )
        assert pooled.histogram == serial.histogram


class TestStartMethod:
    """The pool pins an explicit start method; fork and spawn agree."""

    def test_default_is_spawn(self, monkeypatch):
        monkeypatch.delenv(START_METHOD_ENV, raising=False)
        assert resolve_start_method() == "spawn"

    def test_env_override_and_explicit_arg_win(self, monkeypatch):
        monkeypatch.setenv(START_METHOD_ENV, "fork")
        assert resolve_start_method() == "fork"
        assert resolve_start_method("forkserver") == "forkserver"

    @pytest.mark.parametrize("start_method", ["spawn", "fork"])
    def test_start_methods_are_bit_identical_to_serial(self, start_method):
        csr = get_fastgraph(HyperButterfly(2, 3)).csr
        serial = parallel_sweep(csr, jobs=1, batch=16, name="HB(2,3)")
        pooled = parallel_sweep(
            csr, jobs=2, batch=16, name="HB(2,3)", start_method=start_method
        )
        assert np.array_equal(pooled.eccentricities, serial.eccentricities)
        assert pooled.histogram == serial.histogram


class TestValidation:
    def test_rejects_bad_jobs(self):
        csr = get_fastgraph(HyperButterfly(2, 3)).csr
        with pytest.raises(InvalidParameterError):
            parallel_sweep(csr, jobs=0)
        with pytest.raises(InvalidParameterError):
            parallel_sweep(csr, batch=0)

    def test_disconnected_raises(self):
        # two isolated nodes: indptr [0,0,0], no arcs
        from repro.fastgraph.csr import CSRAdjacency

        csr = CSRAdjacency(
            indptr=np.array([0, 0, 0], dtype=np.int64),
            indices=np.array([], dtype=np.int32),
        )
        with pytest.raises(DisconnectedError):
            parallel_sweep(csr, jobs=1, name="two points")
        result = parallel_sweep(csr, jobs=1, check_connected=False)
        assert isinstance(result, SweepResult)
        assert result.histogram == {0: 2}


class TestPayloadKinds:
    """Codec (implicit) payloads vs CSR payloads: bit-identical reductions.

    The pool ships either CSR arrays or a tiny picklable codec; both kinds
    must reduce to exactly the same result for every job count, and the
    implicit workers must never require a CSR at all.
    """

    @pytest.fixture(scope="class")
    def fast(self):
        return get_fastgraph(HyperButterfly(2, 3))

    @pytest.fixture(scope="class")
    def csr_reference(self, fast):
        return parallel_sweep(fast.csr, jobs=1, batch=16, name="HB(2,3)")

    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_codec_payload_matches_csr_payload(self, fast, csr_reference, jobs):
        result = parallel_sweep(fast.codec, jobs=jobs, batch=16, name="HB(2,3)")
        assert np.array_equal(
            result.eccentricities, csr_reference.eccentricities
        )
        assert result.histogram == csr_reference.histogram

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_irregular_codec_payload(self, jobs):
        fast = get_fastgraph(DeBruijn(3))
        reference = parallel_sweep(fast.csr, jobs=1, batch=3, check_connected=False)
        pooled = parallel_sweep(
            fast.codec, jobs=jobs, batch=3, check_connected=False
        )
        assert np.array_equal(pooled.eccentricities, reference.eccentricities)
        assert pooled.histogram == reference.histogram

    def test_rejects_codec_without_implicit_support(self):
        from repro.topologies.mesh import Torus

        fast = get_fastgraph(Mesh(4, 3))
        with pytest.raises(InvalidParameterError):
            parallel_sweep(fast.codec, jobs=1)
        # a supported codec of the same pair shape sails through
        torus = get_fastgraph(Torus(3, 4))
        result = parallel_sweep(torus.codec, jobs=1, name="M(3,4)")
        assert isinstance(result, SweepResult)


class TestConsumers:
    """jobs>1 plumbed through the public metric entry points."""

    def test_exact_diameter_jobs_matches_serial(self):
        mesh = Mesh(4, 5)  # not vertex transitive, not a product
        serial = exact_diameter(mesh, force_generic=True)
        pooled = exact_diameter(mesh, force_generic=True, jobs=2)
        assert serial == pooled == 7

    def test_distance_profile_jobs_matches_serial(self, hb23):
        serial = distance_profile(hb23, force_generic=True)
        pooled = distance_profile(hb23, force_generic=True, jobs=2)
        assert serial == pooled
