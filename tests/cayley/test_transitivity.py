"""Vertex-transitivity certificates (Remark 7 machinery)."""

from __future__ import annotations

import random

import pytest

from repro.cayley.group import ButterflyGroup, GeneratorSet, HypercubeGroup
from repro.cayley.transitivity import (
    left_translation,
    verify_translation_automorphism,
    verify_vertex_transitivity,
)


def butterfly_gens(n: int) -> tuple[ButterflyGroup, GeneratorSet]:
    group = ButterflyGroup(n)
    gens = GeneratorSet(
        group=group,
        generators=tuple(group.butterfly_generators()),
        names=("g", "f", "g^-1", "f^-1"),
    )
    return group, gens


class TestLeftTranslation:
    def test_translation_moves_identity(self):
        group, _ = butterfly_gens(3)
        a = (1, 0b011)
        assert left_translation(group, a)(group.identity()) == a

    def test_translation_composes(self):
        group, _ = butterfly_gens(4)
        a, b = (1, 0b0101), (3, 0b1100)
        t_a, t_b = left_translation(group, a), left_translation(group, b)
        v = (2, 0b0011)
        assert t_a(t_b(v)) == left_translation(group, group.multiply(a, b))(v)


class TestAutomorphismVerification:
    @pytest.mark.parametrize("n", [3, 4])
    def test_every_translation_is_automorphism_exhaustive(self, n):
        group, gens = butterfly_gens(n)
        rng = random.Random(0)
        elements = list(group.elements())
        for _ in range(8):
            a = rng.choice(elements)
            assert verify_translation_automorphism(group, gens, a, sample_size=None)

    def test_sampled_verification(self):
        group, gens = butterfly_gens(5)
        assert verify_translation_automorphism(group, gens, (2, 0b10110))


class TestVertexTransitivity:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_butterfly_is_vertex_transitive(self, n):
        group, gens = butterfly_gens(n)
        assert verify_vertex_transitivity(group, gens)

    def test_hypercube_is_vertex_transitive(self):
        group = HypercubeGroup(4)
        gens = GeneratorSet(
            group=group,
            generators=tuple(group.unit_generators()),
            names=tuple(f"h_{i}" for i in range(4)),
        )
        assert verify_vertex_transitivity(group, gens)
