"""Group-law and paper-correspondence tests for the Cayley groups."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cayley.group import (
    ButterflyGroup,
    DirectProductGroup,
    GeneratorSet,
    HypercubeGroup,
)
from repro.errors import InvalidParameterError


def butterfly_elements(n: int):
    return st.tuples(
        st.integers(0, n - 1), st.integers(0, (1 << n) - 1)
    )


class TestHypercubeGroup:
    def test_rejects_negative_dimension(self):
        with pytest.raises(InvalidParameterError):
            HypercubeGroup(-1)

    def test_order_and_elements(self):
        g = HypercubeGroup(3)
        assert g.order() == 8
        assert sorted(g.elements()) == list(range(8))

    def test_every_element_is_involution(self):
        g = HypercubeGroup(4)
        for a in g.elements():
            assert g.multiply(a, a) == g.identity()

    def test_unit_generators(self):
        assert HypercubeGroup(3).unit_generators() == [1, 2, 4]

    def test_power(self):
        g = HypercubeGroup(3)
        assert g.power(5, 2) == 0
        assert g.power(5, 3) == 5
        assert g.power(5, -1) == 5


class TestButterflyGroupLaws:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_closure_and_identity(self, n):
        g = ButterflyGroup(n)
        identity = g.identity()
        rng = random.Random(n)
        elements = list(g.elements())
        for _ in range(100):
            a, b = rng.choice(elements), rng.choice(elements)
            product = g.multiply(a, b)
            assert g.contains(product)
            assert g.multiply(a, identity) == a
            assert g.multiply(identity, a) == a

    @pytest.mark.parametrize("n", [3, 4])
    def test_associativity_exhaustive_sample(self, n):
        g = ButterflyGroup(n)
        rng = random.Random(7)
        elements = list(g.elements())
        for _ in range(300):
            a, b, c = (rng.choice(elements) for _ in range(3))
            assert g.multiply(g.multiply(a, b), c) == g.multiply(a, g.multiply(b, c))

    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_inverse(self, n):
        g = ButterflyGroup(n)
        for a in g.elements():
            assert g.multiply(a, g.inverse(a)) == g.identity()
            assert g.multiply(g.inverse(a), a) == g.identity()

    def test_rejects_small_n(self):
        with pytest.raises(InvalidParameterError):
            ButterflyGroup(2)

    def test_order(self):
        assert ButterflyGroup(5).order() == 5 * 32


class TestButterflyGeneratorsMatchPaper:
    """The generators must act exactly as the label rewritings of Section 2.1."""

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_g_left_shifts_without_complement(self, n):
        g = ButterflyGroup(n)
        for x in range(n):
            for c in (0, 1, (1 << n) - 1, 0b101 % (1 << n)):
                new_x, new_c = g.multiply((x, c), g.g())
                assert new_x == (x + 1) % n
                assert new_c == c  # complement flags ride with their symbols

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_f_complements_the_wrapped_symbol(self, n):
        g = ButterflyGroup(n)
        for x in range(n):
            new_x, new_c = g.multiply((x, 0), g.f())
            assert new_x == (x + 1) % n
            # the wrapped symbol is t_x — exactly its flag flips
            assert new_c == 1 << x

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_f_inv_complements_symbol_entering_front(self, n):
        g = ButterflyGroup(n)
        for x in range(n):
            new_x, new_c = g.multiply((x, 0), g.f_inv())
            assert new_x == (x - 1) % n
            assert new_c == 1 << ((x - 1) % n)

    @pytest.mark.parametrize("n", [3, 4])
    def test_generator_inverse_pairs(self, n):
        g = ButterflyGroup(n)
        assert g.inverse(g.g()) == g.g_inv()
        assert g.inverse(g.f()) == g.f_inv()

    @given(st.integers(3, 6), st.data())
    @settings(max_examples=50)
    def test_quotient_translates(self, n, data):
        g = ButterflyGroup(n)
        a = data.draw(butterfly_elements(n))
        b = data.draw(butterfly_elements(n))
        # a * (a^{-1} b) == b — the vertex-transitive routing identity
        assert g.multiply(a, g.quotient(a, b)) == b


class TestDirectProductGroup:
    def test_componentwise_operations(self):
        g = DirectProductGroup(HypercubeGroup(2), ButterflyGroup(3))
        a = (0b01, (1, 0b010))
        b = (0b11, (2, 0b100))
        prod = g.multiply(a, b)
        assert prod[0] == 0b10
        assert g.multiply(a, g.inverse(a)) == g.identity()

    def test_order(self):
        g = DirectProductGroup(HypercubeGroup(2), ButterflyGroup(3))
        assert g.order() == 4 * 24
        assert len(list(g.elements())) == 96

    def test_embeddings(self):
        g = DirectProductGroup(HypercubeGroup(2), ButterflyGroup(3))
        assert g.embed_left(0b10) == (0b10, (0, 0))
        assert g.embed_right((1, 1)) == (0, (1, 1))

    def test_contains(self):
        g = DirectProductGroup(HypercubeGroup(2), ButterflyGroup(3))
        assert g.contains((3, (2, 7)))
        assert not g.contains((4, (2, 7)))
        assert not g.contains((1, (3, 0)))


class TestGeneratorSet:
    def test_rejects_identity_generator(self):
        g = HypercubeGroup(2)
        with pytest.raises(InvalidParameterError):
            GeneratorSet(group=g, generators=(0,), names=("id",))

    def test_rejects_non_inverse_closed(self):
        g = ButterflyGroup(3)
        with pytest.raises(InvalidParameterError):
            GeneratorSet(group=g, generators=(g.g(),), names=("g",))

    def test_rejects_duplicates(self):
        g = HypercubeGroup(2)
        with pytest.raises(InvalidParameterError):
            GeneratorSet(group=g, generators=(1, 1), names=("a", "b"))

    def test_inverse_index(self):
        g = ButterflyGroup(3)
        gens = GeneratorSet(
            group=g,
            generators=tuple(g.butterfly_generators()),
            names=("g", "f", "g^-1", "f^-1"),
        )
        assert gens.inverse_index == (2, 3, 0, 1)

    def test_fixed_point_free(self):
        g = ButterflyGroup(4)
        gens = GeneratorSet(
            group=g,
            generators=tuple(g.butterfly_generators()),
            names=("g", "f", "g^-1", "f^-1"),
        )
        # Remark 3: sigma(v) != v and distinct generators give distinct images
        assert gens.is_fixed_point_free(sample=list(g.elements()))
