"""Cayley-graph construction and distance-oracle tests."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.cayley.graph import CayleyGraph, DistanceOracle, build_cayley_graph
from repro.cayley.group import ButterflyGroup, GeneratorSet, HypercubeGroup
from repro.errors import InvalidLabelError


def cube_graph(m: int) -> CayleyGraph:
    group = HypercubeGroup(m)
    gens = GeneratorSet(
        group=group,
        generators=tuple(group.unit_generators()),
        names=tuple(f"h_{i}" for i in range(m)),
    )
    return CayleyGraph(group, gens)


def butterfly_graph(n: int) -> CayleyGraph:
    group = ButterflyGroup(n)
    gens = GeneratorSet(
        group=group,
        generators=tuple(group.butterfly_generators()),
        names=("g", "f", "g^-1", "f^-1"),
    )
    return CayleyGraph(group, gens)


class TestConstruction:
    def test_cube_counts(self):
        cg = cube_graph(4)
        assert cg.num_nodes == 16
        assert cg.degree == 4
        assert cg.num_edges == 32

    def test_to_networkx_matches_counts(self):
        cg = butterfly_graph(3)
        g = cg.to_networkx()
        assert g.number_of_nodes() == cg.num_nodes
        assert g.number_of_edges() == cg.num_edges
        assert all(d == 4 for _, d in g.degree())

    def test_edges_are_generator_labelled(self):
        g = build_cayley_graph(
            HypercubeGroup(2),
            GeneratorSet(
                group=HypercubeGroup(2), generators=(1, 2), names=("h_0", "h_1")
            ),
        )
        assert g.edges[0, 1]["generator"] == "h_0"

    def test_has_edge_and_neighbors(self):
        cg = cube_graph(3)
        assert cg.has_edge(0, 1)
        assert not cg.has_edge(0, 3)
        assert set(cg.neighbors(0)) == {1, 2, 4}

    def test_mismatched_group_rejected(self):
        gens = GeneratorSet(
            group=HypercubeGroup(2), generators=(1, 2), names=("a", "b")
        )
        with pytest.raises(InvalidLabelError):
            CayleyGraph(HypercubeGroup(3), gens)


class TestDistanceOracle:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_cube_distances_are_hamming(self, m):
        oracle = cube_graph(m).oracle
        for u in range(1 << m):
            for v in range(1 << m):
                assert oracle.distance(u, v) == (u ^ v).bit_count()

    def test_butterfly_distances_match_networkx(self):
        cg = butterfly_graph(3)
        g = cg.to_networkx()
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for u in cg.nodes():
            for v in cg.nodes():
                assert cg.distance(u, v) == lengths[u][v]

    def test_shortest_path_valid_and_tight(self):
        cg = butterfly_graph(4)
        g = cg.to_networkx()
        import random

        rng = random.Random(1)
        nodes = list(cg.nodes())
        for _ in range(50):
            u, v = rng.sample(nodes, 2)
            path = cg.shortest_path(u, v)
            assert path[0] == u and path[-1] == v
            assert len(path) - 1 == cg.distance(u, v)
            for a, b in zip(path, path[1:], strict=False):
                assert g.has_edge(a, b)

    def test_generator_word_replays_to_target(self):
        cg = butterfly_graph(3)
        oracle = cg.oracle
        for delta in cg.nodes():
            word = oracle.generator_word(delta)
            v = cg.group.identity()
            for i in word:
                v = cg.gens.apply(v, i)
            assert v == delta
            assert len(word) == oracle.distance_from_identity(delta)

    def test_diameter_is_identity_eccentricity(self):
        cg = butterfly_graph(3)
        g = cg.to_networkx()
        assert cg.diameter() == nx.diameter(g)

    def test_distance_distribution_sums_to_order(self):
        oracle = cube_graph(4).oracle
        hist = oracle.distance_distribution()
        assert sum(hist.values()) == 16
        # binomial profile of the 4-cube
        assert hist == {0: 1, 1: 4, 2: 6, 3: 4, 4: 1}

    def test_average_distance_cube(self):
        oracle = cube_graph(3).oracle
        # mean Hamming weight over all 3-bit words = 1.5
        assert oracle.average_distance() == pytest.approx(1.5)

    @pytest.mark.parametrize("graph_builder", [cube_graph, butterfly_graph])
    def test_implicit_backend_bit_identical_to_dense(self, graph_builder):
        import numpy as np

        cg = graph_builder(3)
        dense = DistanceOracle(cg.group, cg.gens, backend="dense")
        implicit = DistanceOracle(cg.group, cg.gens, backend="implicit")
        assert np.array_equal(dense._dist_arr, implicit._dist_arr)
        assert np.array_equal(dense._via_arr, implicit._via_arr)
        assert np.array_equal(dense._parent_arr, implicit._parent_arr)
        python = DistanceOracle(cg.group, cg.gens, backend="python")
        for delta in cg.nodes():
            assert implicit.distance_from_identity(delta) == (
                python.distance_from_identity(delta)
            )
            word = implicit.generator_word(delta)
            v = cg.group.identity()
            for i in word:
                v = cg.gens.apply(v, i)
            assert v == delta

    def test_auto_backend_goes_implicit_past_threshold(self, monkeypatch):
        import numpy as np

        monkeypatch.setenv("REPRO_IMPLICIT_THRESHOLD", "1")
        cg = butterfly_graph(3)
        auto = DistanceOracle(cg.group, cg.gens, backend="auto")
        dense = DistanceOracle(cg.group, cg.gens, backend="dense")
        assert np.array_equal(auto._dist_arr, dense._dist_arr)
        assert np.array_equal(auto._via_arr, dense._via_arr)

    def test_invalid_label_raises(self):
        oracle = cube_graph(2).oracle
        with pytest.raises(InvalidLabelError):
            oracle.distance_from_identity(99)
