"""Cross-module property-based tests (hypothesis) on core invariants.

These complement the per-module suites with randomized invariants that tie
several subsystems together: group algebra vs graph distance, routing vs
oracle, disjoint paths vs Menger, embeddings vs verifiers.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.disjoint_paths import disjoint_paths, verify_disjoint_paths
from repro.core.hyperbutterfly import HyperButterfly
from repro.core.routing import HBRouter
from repro.embeddings.base import verify_cycle_embedding
from repro.embeddings.cycles import hb_even_cycle
from repro.routing.base import validate_path
from repro.routing.butterfly import butterfly_distance, butterfly_route_walk

_HB_CACHE: dict[tuple[int, int], HyperButterfly] = {}


def get_hb(m: int, n: int) -> HyperButterfly:
    if (m, n) not in _HB_CACHE:
        _HB_CACHE[(m, n)] = HyperButterfly(m, n)
    return _HB_CACHE[(m, n)]


def hb_nodes(m: int, n: int):
    return st.tuples(
        st.integers(0, (1 << m) - 1),
        st.tuples(st.integers(0, n - 1), st.integers(0, (1 << n) - 1)),
    )


small_mn = st.sampled_from([(0, 3), (1, 3), (2, 3), (1, 4), (2, 4)])


class TestGroupGraphCoherence:
    @given(small_mn, st.data())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_neighbors_are_mutual(self, mn, data):
        m, n = mn
        hb = get_hb(m, n)
        v = data.draw(hb_nodes(m, n))
        for w in hb.neighbors(v):
            assert v in hb.neighbors(w)

    @given(small_mn, st.data())
    @settings(max_examples=60)
    def test_quotient_is_graph_translation(self, mn, data):
        """dist(u, v) == dist(I, u^{-1} v) — Remark 7 made executable."""
        m, n = mn
        hb = get_hb(m, n)
        u = data.draw(hb_nodes(m, n))
        v = data.draw(hb_nodes(m, n))
        delta = hb.group.quotient(u, v)
        assert hb.distance(u, v) == hb.distance(hb.identity_node(), delta)


class TestRoutingInvariants:
    @given(small_mn, st.data())
    @settings(max_examples=60, deadline=None)
    def test_route_length_equals_distance_and_is_valid(self, mn, data):
        m, n = mn
        hb = get_hb(m, n)
        router = HBRouter(hb)
        u = data.draw(hb_nodes(m, n))
        v = data.draw(hb_nodes(m, n))
        result = router.route(u, v)
        validate_path(hb, result.path, source=u, target=v)
        assert result.length == hb.distance(u, v)

    @given(small_mn, st.data())
    @settings(max_examples=60)
    def test_distance_is_a_metric(self, mn, data):
        m, n = mn
        hb = get_hb(m, n)
        u = data.draw(hb_nodes(m, n))
        v = data.draw(hb_nodes(m, n))
        w = data.draw(hb_nodes(m, n))
        duv = hb.distance(u, v)
        assert duv == hb.distance(v, u)
        assert (duv == 0) == (u == v)
        assert hb.distance(u, w) <= duv + hb.distance(v, w)

    @given(small_mn, st.data())
    @settings(max_examples=40)
    def test_distance_bounded_by_diameter_formula(self, mn, data):
        m, n = mn
        hb = get_hb(m, n)
        u = data.draw(hb_nodes(m, n))
        v = data.draw(hb_nodes(m, n))
        assert hb.distance(u, v) <= hb.diameter_formula()

    @given(st.integers(3, 12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_butterfly_router_scales_without_oracle(self, n, data):
        """The covering-walk router works at sizes the oracle never sees."""
        u = (data.draw(st.integers(0, n - 1)), data.draw(st.integers(0, 2**n - 1)))
        v = (data.draw(st.integers(0, n - 1)), data.draw(st.integers(0, 2**n - 1)))
        d = butterfly_distance(n, u, v)
        path = butterfly_route_walk(n, u, v)
        assert len(path) - 1 == d <= (3 * n) // 2


class TestDisjointPathInvariants:
    @given(small_mn, st.data())
    @settings(max_examples=25, deadline=None)
    def test_theorem5_family_always_valid(self, mn, data):
        m, n = mn
        hb = get_hb(m, n)
        u = data.draw(hb_nodes(m, n))
        v = data.draw(hb_nodes(m, n))
        if u == v:
            return
        family = disjoint_paths(hb, u, v)
        verify_disjoint_paths(hb, u, v, family)

    @given(small_mn, st.data())
    @settings(max_examples=15, deadline=None)
    def test_family_contains_a_shortest_path(self, mn, data):
        """At least one of the m+4 paths achieves the exact distance
        (the construction starts from optimal part-routes)."""
        m, n = mn
        hb = get_hb(m, n)
        u = data.draw(hb_nodes(m, n))
        v = data.draw(hb_nodes(m, n))
        if u == v:
            return
        family = disjoint_paths(hb, u, v)
        assert min(len(p) - 1 for p in family) >= hb.distance(u, v)


class TestEmbeddingInvariants:
    @given(st.integers(2, 47))
    @settings(max_examples=40, deadline=None)
    def test_every_even_cycle_length_hb13(self, half_k):
        hb = get_hb(1, 3)
        k = 2 * half_k
        if not 4 <= k <= hb.num_nodes:
            return
        verify_cycle_embedding(hb, hb_even_cycle(hb, k), expected_length=k)
