"""Embedding record and verifier tests."""

from __future__ import annotations

import pytest

from repro.embeddings.base import Embedding, verify_cycle_embedding
from repro.errors import EmbeddingError
from repro.topologies.cycle import Cycle
from repro.topologies.hypercube import Hypercube


class TestEmbeddingVerify:
    def test_valid_embedding(self):
        emb = Embedding(
            guest=Cycle(4),
            host=Hypercube(2),
            mapping={0: 0, 1: 1, 2: 3, 3: 2},
        )
        emb.verify()
        assert emb.dilation == 1
        assert emb.expansion == 1.0  # reprolint: disable=HB301 -- 4 host / 4 guest nodes is exactly 1.0

    def test_detects_unmapped_guest(self):
        emb = Embedding(guest=Cycle(4), host=Hypercube(2), mapping={0: 0})
        with pytest.raises(EmbeddingError):
            emb.verify()

    def test_detects_non_injective(self):
        emb = Embedding(
            guest=Cycle(4),
            host=Hypercube(2),
            mapping={0: 0, 1: 1, 2: 0, 3: 2},
        )
        with pytest.raises(EmbeddingError):
            emb.verify()

    def test_detects_non_edge(self):
        emb = Embedding(
            guest=Cycle(4),
            host=Hypercube(2),
            mapping={0: 0, 1: 1, 2: 2, 3: 3},  # 1-2 is not a cube edge
        )
        with pytest.raises(EmbeddingError):
            emb.verify()

    def test_image(self):
        emb = Embedding(
            guest=Cycle(4), host=Hypercube(3), mapping={0: 0, 1: 1, 2: 3, 3: 2}
        )
        assert emb.image() == {0, 1, 2, 3}


class TestCycleVerifier:
    def test_valid_cycle(self):
        verify_cycle_embedding(Hypercube(2), [0, 1, 3, 2], expected_length=4)

    def test_detects_repeats(self):
        with pytest.raises(EmbeddingError):
            verify_cycle_embedding(Hypercube(3), [0, 1, 0, 2])

    def test_detects_broken_closing_edge(self):
        with pytest.raises(EmbeddingError):
            verify_cycle_embedding(Hypercube(3), [0, 1, 3, 7])

    def test_detects_wrong_length(self):
        with pytest.raises(EmbeddingError):
            verify_cycle_embedding(Hypercube(2), [0, 1, 3, 2], expected_length=6)

    def test_rejects_too_short(self):
        with pytest.raises(EmbeddingError):
            verify_cycle_embedding(Hypercube(2), [0, 1])
