"""Cycle embedding tests: Remark 9, Lemma 1, Lemma 2 — exhaustively."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hyperbutterfly import HyperButterfly
from repro.embeddings.base import verify_cycle_embedding
from repro.embeddings.cycles import (
    butterfly_cycle,
    butterfly_cycle_lengths,
    butterfly_hamiltonian_cycle,
    hb_even_cycle,
    hb_even_cycle_max_length,
    hypercube_cycle,
    torus_cycle,
)
from repro.errors import EmbeddingError
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube
from repro.topologies.mesh import Torus


class TestHypercubeCycles:
    @pytest.mark.parametrize("m", [2, 3, 4, 5])
    def test_all_even_lengths(self, m):
        """Remark 9: H_m contains every even cycle 4..2^m."""
        h = Hypercube(m)
        for k in range(4, 2**m + 1, 2):
            verify_cycle_embedding(h, hypercube_cycle(m, k), expected_length=k)

    def test_rejects_odd_and_out_of_range(self):
        with pytest.raises(EmbeddingError):
            hypercube_cycle(3, 5)
        with pytest.raises(EmbeddingError):
            hypercube_cycle(3, 10)
        with pytest.raises(EmbeddingError):
            hypercube_cycle(3, 2)


class TestButterflyHamiltonian:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_constructive_hamiltonian(self, n):
        """Our binomial-lap construction: Hamiltonian for every n (the paper
        cites [7] for this without construction)."""
        cycle = butterfly_hamiltonian_cycle(n)
        verify_cycle_embedding(CayleyButterfly(n), cycle, expected_length=n * 2**n)

    def test_rejects_small_n(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            butterfly_hamiltonian_cycle(2)


class TestButterflyCycleCatalog:
    @pytest.mark.parametrize("n", [3, 4])
    def test_every_even_length_constructible(self, n):
        lengths = butterfly_cycle_lengths(n)
        for k in range(4, n * 2**n + 1, 2):
            assert k in lengths, f"missing even {k}-cycle in B_{n}"

    @pytest.mark.parametrize("n", [3, 4])
    def test_constructed_cycles_are_valid(self, n):
        cb = CayleyButterfly(n)
        for k in butterfly_cycle_lengths(n):
            verify_cycle_embedding(cb, butterfly_cycle(n, k), expected_length=k)

    def test_straight_cycle(self):
        cycle = butterfly_cycle(5, 5)
        verify_cycle_embedding(CayleyButterfly(5), cycle, expected_length=5)

    def test_four_cycle_any_n(self):
        for n in (3, 5, 8):
            verify_cycle_embedding(
                CayleyButterfly(n), butterfly_cycle(n, 4), expected_length=4
            )

    def test_unreachable_length_raises(self):
        with pytest.raises(EmbeddingError):
            butterfly_cycle(3, 1000)

    @pytest.mark.parametrize("n", [5, 6])
    def test_spot_checks_large_n(self, n):
        cb = CayleyButterfly(n)
        for k in (4, 2 * n, 2 * n + 6, 3 * n + 2 * (n % 2), n * 2**n):
            if k % 2 == 0 or n % 2 == 1:
                try:
                    cycle = butterfly_cycle(n, k)
                except EmbeddingError:
                    continue
                verify_cycle_embedding(cb, cycle, expected_length=k)


class TestTorusCycles:
    @pytest.mark.parametrize(("n1", "n2"), [(4, 4), (4, 6), (6, 4), (8, 6)])
    def test_lemma1_all_even_lengths(self, n1, n2):
        t = Torus(n1, n2)
        for k in range(4, n1 * n2 + 1, 2):
            verify_cycle_embedding(t, torus_cycle(n1, n2, k), expected_length=k)

    def test_rejects_odd(self):
        with pytest.raises(EmbeddingError):
            torus_cycle(4, 4, 7)

    def test_rejects_too_long(self):
        with pytest.raises(EmbeddingError):
            torus_cycle(4, 4, 18)

    def test_hamiltonian_needs_even_side(self):
        with pytest.raises(EmbeddingError):
            torus_cycle(5, 5, 24)  # comb needs even columns beyond 2 rows


class TestLemma2:
    @pytest.mark.parametrize(("m", "n"), [(0, 3), (1, 3), (2, 3), (2, 4)])
    def test_full_even_range(self, m, n):
        """Lemma 2: even cycles of every length 4..n*2^(m+n)."""
        hb = HyperButterfly(m, n)
        top = hb_even_cycle_max_length(hb)
        assert top == hb.num_nodes
        for k in range(4, top + 1, 2):
            verify_cycle_embedding(hb, hb_even_cycle(hb, k), expected_length=k)

    def test_rejects_odd_or_tiny(self, hb23):
        with pytest.raises(EmbeddingError):
            hb_even_cycle(hb23, 5)
        with pytest.raises(EmbeddingError):
            hb_even_cycle(hb23, 2)

    def test_rejects_beyond_node_count(self, hb23):
        with pytest.raises(EmbeddingError):
            hb_even_cycle(hb23, hb23.num_nodes + 2)

    @given(st.integers(2, 120))
    @settings(max_examples=30, deadline=None)
    def test_random_even_lengths_hb23(self, half_k):
        hb = HyperButterfly(2, 3)
        k = 2 * half_k
        if k < 4 or k > hb.num_nodes:
            return
        verify_cycle_embedding(hb, hb_even_cycle(hb, k), expected_length=k)

    def test_larger_instance_spot_checks(self):
        hb = HyperButterfly(3, 5)  # 1280 nodes
        for k in (4, 100, 777 * 0 + 778, hb.num_nodes):
            verify_cycle_embedding(hb, hb_even_cycle(hb, k), expected_length=k)
