"""Torus (mesh) and mesh-of-trees embedding tests (Lemma 1 setup, Theorem 4)."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.embeddings.mesh import hb_torus_embedding
from repro.embeddings.mesh_of_trees import hb_mesh_of_trees_embedding
from repro.errors import EmbeddingError


class TestTorusEmbedding:
    @pytest.mark.parametrize(
        ("m", "n", "n1", "n2"),
        [(2, 3, 4, 6), (3, 3, 4, 8), (3, 3, 8, 6), (2, 4, 4, 8)],
    )
    def test_torus_in_hb(self, m, n, n1, n2):
        hb = HyperButterfly(m, n)
        emb = hb_torus_embedding(hb, n1, n2)
        assert emb.guest.num_nodes == n1 * n2
        emb.verify()

    def test_rejects_bad_cube_side(self, hb23):
        with pytest.raises(EmbeddingError):
            hb_torus_embedding(hb23, 5, 6)  # odd cube-cycle length
        with pytest.raises(EmbeddingError):
            hb_torus_embedding(hb23, 8, 6)  # exceeds 2^m

    def test_rejects_unreachable_fly_side(self, hb23):
        with pytest.raises(EmbeddingError):
            hb_torus_embedding(hb23, 4, 1000)

    def test_expansion_reported(self, hb23):
        emb = hb_torus_embedding(hb23, 4, 6)
        assert emb.expansion == pytest.approx(hb23.num_nodes / 24)


class TestTheorem4MeshOfTrees:
    @pytest.mark.parametrize(
        ("m", "n", "p", "q"),
        [
            (3, 3, 1, 1),
            (3, 3, 1, 2),
            (3, 3, 1, 3),
            (4, 3, 2, 3),
            (4, 4, 2, 4),
            (5, 3, 3, 3),
            (5, 4, 2, 2),
        ],
    )
    def test_valid_parameter_range(self, m, n, p, q):
        """Theorem 4: MT(2^p, 2^q) in HB(m,n) for 1<=p<=m-2, 1<=q<=n."""
        hb = HyperButterfly(m, n)
        emb = hb_mesh_of_trees_embedding(hb, p, q)
        assert emb.guest.rows == 2**p
        assert emb.guest.cols == 2**q
        emb.verify()

    def test_rejects_p_too_large(self):
        hb = HyperButterfly(3, 3)
        with pytest.raises(EmbeddingError):
            hb_mesh_of_trees_embedding(hb, 2, 2)  # needs p <= m-2 = 1

    def test_rejects_q_too_large(self):
        hb = HyperButterfly(4, 3)
        with pytest.raises(EmbeddingError):
            hb_mesh_of_trees_embedding(hb, 1, 4)  # needs q <= n = 3

    def test_rejects_zero_p(self):
        hb = HyperButterfly(4, 3)
        with pytest.raises(EmbeddingError):
            hb_mesh_of_trees_embedding(hb, 0, 2)

    def test_row_and_column_images_disjoint_by_construction(self):
        """Lemma 4's key point: row internals use T1 leaves, column internals
        use T1 internals — first coordinates cannot collide."""
        hb = HyperButterfly(4, 3)
        emb = hb_mesh_of_trees_embedding(hb, 2, 2)
        row_hosts = {
            host for g, host in emb.mapping.items() if g[0] == "row"
        }
        col_hosts = {
            host for g, host in emb.mapping.items() if g[0] == "col"
        }
        assert not row_hosts & col_hosts
