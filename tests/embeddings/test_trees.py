"""Tree embedding tests: Lemma 3 and the Figure 1 tree row."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.embeddings.trees import (
    butterfly_tree_embedding,
    hb_tree_embedding,
    hypercube_tree_embedding,
)
from repro.errors import EmbeddingError


class TestLemma3ButterflyTree:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_t_n_plus_1_in_b_n(self, n):
        emb = butterfly_tree_embedding(n)
        assert emb.guest.num_nodes == 2 ** (n + 1) - 1
        emb.verify()

    def test_root_is_identity_classic_node(self):
        emb = butterfly_tree_embedding(4)
        assert emb.mapping[1] == (0, 0)  # (PI, CI) of (word 0, level 0)

    def test_rejects_small_n(self):
        with pytest.raises(EmbeddingError):
            butterfly_tree_embedding(2)

    @pytest.mark.parametrize("n", [3, 5])
    def test_patched_leaf_is_not_root(self, n):
        emb = butterfly_tree_embedding(n)
        leftmost_leaf = 1 << n
        assert emb.mapping[leftmost_leaf] != emb.mapping[1]


class TestHypercubeTree:
    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6, 7])
    def test_t_m_minus_1_in_h_m(self, m):
        emb = hypercube_tree_embedding(m)
        assert emb.guest.num_nodes == 2 ** (m - 1) - 1
        emb.verify()

    def test_rooted_at_zero(self):
        assert hypercube_tree_embedding(5).mapping[1] == 0

    def test_custom_height(self):
        emb = hypercube_tree_embedding(5, height=2)
        assert emb.guest.num_nodes == 3
        emb.verify()

    def test_rejects_oversized_tree(self):
        with pytest.raises(EmbeddingError):
            hypercube_tree_embedding(3, height=5)

    def test_rejects_zero_height(self):
        with pytest.raises(EmbeddingError):
            hypercube_tree_embedding(3, height=0)


class TestFigure1HBTree:
    @pytest.mark.parametrize(
        ("m", "n"), [(0, 3), (1, 3), (2, 3), (3, 3), (2, 4), (4, 3), (3, 4), (4, 4)]
    )
    def test_t_m_plus_n_minus_1(self, m, n):
        """Figure 1 row: HB(m,n) embeds T(m+n-1)."""
        hb = HyperButterfly(m, n)
        emb = hb_tree_embedding(hb)
        assert emb.guest.k == m + n - 1
        assert emb.guest.num_nodes == 2 ** (m + n - 1) - 1
        emb.verify()

    def test_small_m_truncates_lemma3_tree(self):
        hb = HyperButterfly(1, 4)
        emb = hb_tree_embedding(hb)
        # all images sit in the cube-word-0 butterfly copy
        assert all(host[0] == 0 for host in emb.mapping.values())
        emb.verify()

    def test_large_m_uses_cube_extensions(self):
        hb = HyperButterfly(3, 3)
        emb = hb_tree_embedding(hb)
        cube_words = {host[0] for host in emb.mapping.values()}
        assert len(cube_words) > 1  # the T(m-1) subtrees leave word 0
        emb.verify()

    def test_figure2_design_point(self):
        """Figure 2 row: HB(3,8) embeds T(10) (1023 nodes of 16384)."""
        hb = HyperButterfly(3, 8)
        emb = hb_tree_embedding(hb)
        assert emb.guest.k == 10
        emb.verify()
