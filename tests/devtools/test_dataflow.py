"""Unit tests for the reprolint abstract dtype interpreter.

The HB6xx rules are only as good as the dataflow lattice underneath them,
so this module pins the lattice directly: the promotion table is
cross-checked against numpy's own ``result_type``, and the interpreter's
judgements (assignments, casts, accumulators, branch joins, packed-label
provenance, cross-module helper summaries) are asserted on small sources.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devtools.reprolint.context import FileContext, ProjectContext
from repro.devtools.reprolint.dataflow import (
    UNKNOWN,
    Value,
    accumulator_dtype,
    analyze_module,
    dtype_from_name,
    promote_dtypes,
    promote_values,
)

LIB_PATH = "src/repro/_df_fixture.py"


def _analyze(src: str, path: str = LIB_PATH):
    return analyze_module(FileContext.from_source(path, src))


def _module_value(src: str, name: str) -> Value:
    return _analyze(src).module_env.get(name, UNKNOWN)


class TestPromotionTable:
    @pytest.mark.parametrize(
        "a, b",
        [
            ("int8", "int32"),
            ("int32", "int64"),
            ("uint8", "int16"),
            ("uint8", "uint64"),
            ("uint32", "int32"),
            ("uint64", "int64"),  # the HB601 hazard: -> float64
            ("uint64", "int8"),
            ("float32", "int16"),
            ("float32", "int32"),
            ("float64", "int64"),
            ("float32", "float64"),
            ("bool", "int8"),
            ("bool", "uint64"),
        ],
    )
    def test_matches_numpy_result_type(self, a, b):
        ours = promote_dtypes(dtype_from_name(a), dtype_from_name(b))
        numpys = np.result_type(np.dtype(a), np.dtype(b))
        assert ours.name == numpys.name

    def test_uint64_signed_mix_degrades_to_float(self):
        out = promote_dtypes(dtype_from_name("uint64"), dtype_from_name("int64"))
        assert out.kind == "f" and out.bits == 64

    @pytest.mark.parametrize(
        "src, expected",
        [
            ("int8", "int_"),
            ("int32", "int_"),
            ("int64", "int64"),
            ("uint8", "uint"),
            ("uint64", "uint64"),
            ("bool", "int_"),
            ("float32", "float32"),
        ],
    )
    def test_accumulator_dtype(self, src, expected):
        assert accumulator_dtype(dtype_from_name(src)).name == expected

    def test_weak_python_int_adopts_array_dtype(self):
        arr = Value("array", dtype_from_name("uint8"))
        out = promote_values(arr, Value("pyint", const=1))
        assert out.is_strong and out.dtype.name == "uint8"

    def test_weak_python_float_forces_float(self):
        arr = Value("array", dtype_from_name("int32"))
        out = promote_values(arr, Value("pyfloat"))
        assert out.is_strong and out.dtype.kind == "f"


class TestInterpreter:
    def test_constructor_and_arithmetic(self):
        src = (
            "import numpy as np\n"
            "x = np.zeros(4, dtype=np.uint64)\n"
            "y = x + 1\n"
        )
        y = _module_value(src, "y")
        assert y.is_strong and y.kind == "array" and y.dtype.name == "uint64"

    def test_astype_on_unknown_receiver(self):
        # the cast target alone fixes the result, even for an
        # unannotated parameter the interpreter knows nothing about
        src = (
            "import numpy as np\n"
            "def f(a):\n"
            "    return a.astype(np.int32)\n"
        )
        ret = _analyze(src).returns["f"]
        assert ret.is_strong and ret.dtype.name == "int32"

    def test_bare_sum_widens_to_platform_int(self):
        src = (
            "import numpy as np\n"
            "x = np.zeros(4, dtype=np.int8)\n"
            "s = x.sum()\n"
            "t = x.sum(dtype=np.int64)\n"
        )
        analysis = _analyze(src)
        s = analysis.module_env["s"]
        t = analysis.module_env["t"]
        assert s.is_strong and s.dtype.platform and s.dtype.kind == "i"
        assert t.is_strong and t.dtype.name == "int64"

    def test_shift_or_marks_packed_provenance(self):
        src = "word = (3 << 8) | 5\n"
        assert _module_value(src, "word").packed

    def test_branch_join_keeps_agreement(self):
        src = (
            "import numpy as np\n"
            "def f(flag):\n"
            "    if flag:\n"
            "        x = np.zeros(2, dtype=np.int32)\n"
            "    else:\n"
            "        x = np.ones(2, dtype=np.int32)\n"
            "    return x\n"
            "def g(flag):\n"
            "    if flag:\n"
            "        y = np.zeros(2, dtype=np.int32)\n"
            "    else:\n"
            "        y = np.zeros(2, dtype=np.float64)\n"
            "    return y\n"
        )
        analysis = _analyze(src)
        agree = analysis.returns["f"]
        disagree = analysis.returns["g"]
        assert agree.is_strong and agree.dtype.name == "int32"
        assert not disagree.is_strong

    def test_init_attributes_seed_methods(self):
        src = (
            "import numpy as np\n"
            "class Kernel:\n"
            "    def __init__(self):\n"
            "        self.buf = np.zeros(8, dtype=np.uint8)\n"
            "    def peek(self):\n"
            "        return self.buf + 1\n"
        )
        ret = _analyze(src).returns["Kernel.peek"]
        assert ret.is_strong and ret.dtype.name == "uint8"


class TestProjectDataflow:
    def test_cross_module_helper_summary(self):
        helper = (
            "import numpy as np\n"
            "def make_words():\n"
            "    return np.zeros(4, dtype=np.uint64)\n"
        )
        user = (
            "from repro._df_helper import make_words\n"
            "def caller():\n"
            "    return make_words()\n"
        )
        project = ProjectContext(
            files=[
                FileContext.from_source("src/repro/_df_helper.py", helper),
                FileContext.from_source("src/repro/_df_user.py", user),
            ]
        )
        user_ctx = project.by_module("repro._df_user")
        analysis = project.dataflow.module(user_ctx)
        ret = analysis.returns["caller"]
        assert ret.is_strong and ret.dtype.name == "uint64"

    def test_module_analysis_is_memoised(self):
        ctx = FileContext.from_source(LIB_PATH, "x = 1\n")
        project = ProjectContext(files=[ctx])
        assert project.dataflow.module(ctx) is project.dataflow.module(ctx)

    def test_recursive_helper_collapses_to_unknown(self):
        src = (
            "def ping():\n"
            "    return pong()\n"
            "def pong():\n"
            "    return ping()\n"
        )
        ctx = FileContext.from_source(LIB_PATH, src)
        project = ProjectContext(files=[ctx])
        analysis = project.dataflow.module(ctx)
        assert analysis.returns["ping"] == UNKNOWN
