"""CLI contract for ``hyperbutterfly lint``: exit codes and JSON schema."""

from __future__ import annotations

import json

from repro.cli import main

DIRTY = "import random\nx = random.random()\n"
CLEAN = "import random\nrng = random.Random(0)\nx = rng.random()\n"


def _write_pkg(tmp_path, source):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    target = pkg / "mod.py"
    target.write_text(source)
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = _write_pkg(tmp_path, CLEAN)
        assert main(["lint", str(target)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = _write_pkg(tmp_path, DIRTY)
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert "HB101" in out and "1 finding(s)" in out

    def test_linter_error_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "does-not-exist")]) == 2
        assert "reprolint: error" in capsys.readouterr().err

    def test_broken_baseline_exits_two(self, tmp_path, capsys):
        target = _write_pkg(tmp_path, CLEAN)
        bad = tmp_path / "baseline.json"
        bad.write_text("[]")
        assert main(["lint", str(target), "--baseline", str(bad)]) == 2


class TestJsonFormat:
    def test_schema(self, tmp_path, capsys):
        target = _write_pkg(tmp_path, DIRTY)
        assert main(["lint", str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["checked_files"] == 1
        assert payload["counts"] == {"HB101": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "HB101"
        assert finding["path"].endswith("mod.py")
        assert finding["line"] == 2
        assert isinstance(finding["fingerprint"], str)
        assert finding["suppressed"] is False
        assert finding["baselined"] is False

    def test_json_is_sorted_and_stable(self, tmp_path, capsys):
        target = _write_pkg(tmp_path, DIRTY)
        main(["lint", str(target), "--format", "json"])
        first = capsys.readouterr().out
        main(["lint", str(target), "--format", "json"])
        assert capsys.readouterr().out == first


class TestBaselineWorkflow:
    def test_update_then_lint_against_baseline(self, tmp_path, capsys):
        target = _write_pkg(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(target),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert "wrote 1 fingerprint(s)" in capsys.readouterr().out
        assert main(["lint", str(target), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 suppressed/baselined" in out


class TestIntrospection:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("HB101", "HB201", "HB301", "HB401", "HB501", "HB601", "HB701"):
            assert rule_id in out

    def test_list_rules_grouped_with_self_test_status(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        lines = capsys.readouterr().out.splitlines()
        headers = [ln for ln in lines if not ln.startswith("  ")]
        assert headers == [
            "HB1xx determinism",
            "HB2xx contracts",
            "HB3xx numerics",
            "HB4xx architecture",
            "HB5xx taint",
            "HB6xx numerics-flow",
            "HB7xx concurrency",
            "HB8xx verification",
        ]
        rule_lines = [ln for ln in lines if ln.startswith("  ")]
        assert rule_lines and all("[  ok]" in ln for ln in rule_lines)

    def test_self_test(self, capsys):
        assert main(["lint", "--self-test"]) == 0
        assert "self-test passed" in capsys.readouterr().out


class TestGithubFormat:
    def test_annotations_for_active_findings(self, tmp_path, capsys):
        target = _write_pkg(tmp_path, DIRTY)
        assert main(["lint", str(target), "--format", "github"]) == 1
        out = capsys.readouterr().out
        (annotation,) = [ln for ln in out.splitlines() if ln.startswith("::")]
        assert annotation.startswith("::error file=")
        assert "line=2" in annotation
        assert "title=HB101" in annotation
        assert "1 finding(s)" in out

    def test_clean_tree_emits_only_summary(self, tmp_path, capsys):
        target = _write_pkg(tmp_path, CLEAN)
        assert main(["lint", str(target), "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert not [ln for ln in out.splitlines() if ln.startswith("::")]

    def test_workflow_command_escaping(self):
        from repro.devtools.reprolint.findings import Finding

        finding = Finding(
            rule_id="HB101",
            path="src/a,b:c.py",
            line=3,
            col=0,
            message="bad %\nnews",
        )
        rendered = finding.render_github()
        assert "file=src/a%2Cb%3Ac.py" in rendered
        assert rendered.endswith("::bad %25%0Anews")
        assert "\n" not in rendered


class TestRuleCatalog:
    def test_md_catalog_lists_every_rule(self, capsys):
        from repro.devtools.reprolint.registry import all_rules

        assert main(["lint", "--list-rules", "--format", "md"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert f"### {rule.rule_id}: {rule.title}" in out

    def test_md_without_list_rules_is_an_error(self, tmp_path, capsys):
        target = _write_pkg(tmp_path, CLEAN)
        assert main(["lint", str(target), "--format", "md"]) == 2
        assert "--list-rules" in capsys.readouterr().err

    def test_committed_catalog_is_fresh(self):
        # CI diffs the generated catalog against docs/lint_rules.md; this
        # is the same check so a stale doc fails locally first
        import pathlib

        from repro.devtools.reprolint.cli import render_rule_catalog_md

        committed = (
            pathlib.Path(__file__).resolve().parents[2] / "docs" / "lint_rules.md"
        )
        assert committed.read_text() == render_rule_catalog_md() + "\n"


class TestShippedTree:
    def test_repo_sources_are_clean(self):
        assert main(["lint", "src", "tests"]) == 0
