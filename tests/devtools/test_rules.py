"""Fixture-driven tests for every reprolint rule.

The generic harness runs each registered rule's own ``fixture_hits`` /
``fixture_clean`` sources through :func:`lint_sources` (what the engine's
``--self-test`` does internally); the per-rule classes then pin down the
specific judgements each rule must make beyond "fires somewhere".
"""

from __future__ import annotations

import pytest

from repro.devtools.reprolint import (
    FileRule,
    Finding,
    all_rules,
    get_rule,
    lint_sources,
    self_test,
)

LIB_PATH = "src/repro/_fixture.py"
TEST_PATH = "tests/test_fixture.py"


def _lint_one(rule_id: str, source: str, path: str = LIB_PATH) -> list[Finding]:
    report = lint_sources({path: source}, rules=[get_rule(rule_id)])
    return [f for f in report.findings if f.rule_id == rule_id]


def _active(rule_id: str, source: str, path: str = LIB_PATH) -> list[Finding]:
    return [f for f in _lint_one(rule_id, source, path) if f.active]


class TestGenericFixtureContract:
    """Every rule must fire on its hit fixture and stay quiet on its clean one."""

    @pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.rule_id)
    def test_hit_fixture_fires(self, rule):
        if isinstance(rule, FileRule):
            sources = {LIB_PATH: rule.fixture_hits}
        else:
            sources = dict(rule.fixture_hits)
        report = lint_sources(sources, rules=[rule])
        assert any(f.rule_id == rule.rule_id for f in report.active)

    @pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.rule_id)
    def test_clean_fixture_quiet(self, rule):
        if isinstance(rule, FileRule):
            sources = {LIB_PATH: rule.fixture_clean}
        else:
            sources = dict(rule.fixture_clean)
        report = lint_sources(sources, rules=[rule])
        assert [f for f in report.findings if f.rule_id == rule.rule_id] == []

    def test_engine_self_test(self):
        assert self_test() >= 10

    def test_rule_metadata_complete(self):
        for rule in all_rules():
            assert rule.rule_id.startswith("HB")
            assert rule.title and rule.rationale
            assert rule.group in {
                "determinism",
                "contracts",
                "numerics",
                "architecture",
                "taint",
                "numerics-flow",
                "concurrency",
                "verification",
            }


class TestUnseededRandom:
    def test_module_level_call_flagged(self):
        src = "import random\nx = random.random()\n"
        assert len(_active("HB101", src)) == 1

    def test_seeded_constructor_allowed(self):
        src = "import random\nrng = random.Random(42)\nx = rng.random()\n"
        assert _active("HB101", src) == []

    def test_numpy_alias_resolved(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert len(_active("HB101", src)) == 1

    def test_default_rng_allowed(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert _active("HB101", src) == []


class TestWallClock:
    def test_time_time_flagged_in_library(self):
        src = "import time\nt = time.time()\n"
        assert len(_active("HB102", src)) == 1

    def test_perf_counter_allowed(self):
        src = "import time\nt = time.perf_counter()\n"
        assert _active("HB102", src) == []

    def test_tests_are_out_of_scope(self):
        src = "import time\nt = time.time()\n"
        assert _active("HB102", src, path=TEST_PATH) == []


class TestJsonSortKeys:
    def test_dumps_without_sort_keys(self):
        src = "import json\ns = json.dumps({'a': 1})\n"
        assert len(_active("HB103", src)) == 1

    def test_sort_keys_true_allowed(self):
        src = "import json\ns = json.dumps({'a': 1}, sort_keys=True)\n"
        assert _active("HB103", src) == []

    def test_explicit_false_flagged(self):
        src = "import json\ns = json.dumps({'a': 1}, sort_keys=False)\n"
        assert len(_active("HB103", src)) == 1


class TestSetIterationOrder:
    def test_for_over_set_literal(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert len(_active("HB104", src)) == 1

    def test_list_of_set_call(self):
        src = "xs = list(set([3, 1, 2]))\n"
        assert len(_active("HB104", src)) == 1

    def test_sorted_set_allowed(self):
        src = "xs = sorted({3, 1, 2})\n"
        assert _active("HB104", src) == []


class TestEntropySource:
    def test_uuid4_flagged(self):
        src = "import uuid\nident = uuid.uuid4()\n"
        assert len(_active("HB105", src)) == 1

    def test_uuid5_allowed(self):
        src = "import uuid\nident = uuid.uuid5(uuid.NAMESPACE_DNS, 'x')\n"
        assert _active("HB105", src) == []


class TestCodecRegistration:
    def test_unregistered_subclass_flagged(self):
        sources = {
            "src/repro/topologies/base.py": "class Topology:\n    pass\n",
            "src/repro/topologies/ring.py": (
                "from repro.topologies.base import Topology\n"
                "class Ring(Topology):\n"
                "    pass\n"
            ),
        }
        findings = [
            f
            for f in lint_sources(
                sources, rules=[get_rule("HB201")]
            ).active
            if f.rule_id == "HB201"
        ]
        assert len(findings) == 1
        assert "Ring" in findings[0].message

    def test_registration_covers_subclasses_via_mro(self):
        sources = {
            "src/repro/topologies/base.py": "class Topology:\n    pass\n",
            "src/repro/topologies/ring.py": (
                "from repro.topologies.base import Topology\n"
                "class Ring(Topology):\n"
                "    pass\n"
                "class FancyRing(Ring):\n"
                "    pass\n"
            ),
            "src/repro/fastgraph/codecs.py": (
                "def register_codec(name, factory):\n"
                "    pass\n"
                "register_codec('Ring', lambda t: None)\n"
            ),
        }
        report = lint_sources(sources, rules=[get_rule("HB201")])
        assert [f for f in report.active if f.rule_id == "HB201"] == []

    def test_abstract_subclass_exempt(self):
        sources = {
            "src/repro/topologies/base.py": (
                "import abc\n"
                "class Topology:\n"
                "    pass\n"
                "class ProductBase(Topology, abc.ABC):\n"
                "    pass\n"
            ),
        }
        report = lint_sources(sources, rules=[get_rule("HB201")])
        assert [f for f in report.active if f.rule_id == "HB201"] == []


class TestErrorHierarchy:
    def test_bare_valueerror_flagged(self):
        src = "def f(x):\n    raise ValueError('bad')\n"
        assert len(_active("HB202", src)) == 1

    def test_repro_error_allowed(self):
        src = (
            "from repro.errors import InvalidParameterError\n"
            "def f(x):\n"
            "    raise InvalidParameterError('bad')\n"
        )
        assert _active("HB202", src) == []

    def test_reraise_allowed(self):
        src = "def f(x):\n    try:\n        g(x)\n    except KeyError:\n        raise\n"
        assert _active("HB202", src) == []


class TestAllExports:
    def test_unbound_name_in_all(self):
        src = "__all__ = ['missing']\n"
        assert len(_active("HB203", src)) == 1

    def test_package_init_requires_listing(self):
        src = "def helper():\n    pass\n__all__ = []\n"
        findings = _active("HB203", src, path="src/repro/sub/__init__.py")
        assert len(findings) == 1
        assert "helper" in findings[0].message

    def test_future_import_not_a_binding(self):
        src = "from __future__ import annotations\n__all__ = []\n"
        assert _active("HB203", src, path="src/repro/sub/__init__.py") == []


class TestFloatEquality:
    def test_float_literal_equality(self):
        src = "def f(x):\n    return x == 1.5\n"
        assert len(_active("HB301", src)) == 1

    def test_isclose_allowed(self):
        src = "import math\ndef f(x):\n    return math.isclose(x, 1.5)\n"
        assert _active("HB301", src) == []

    def test_integer_equality_allowed(self):
        src = "def f(x):\n    return x == 2\n"
        assert _active("HB301", src) == []


class TestDivisionEquality:
    def test_division_compared_flagged(self):
        src = "def f(a, b, c):\n    return a / b == c\n"
        assert len(_active("HB302", src)) == 1

    def test_floor_division_allowed(self):
        src = "def f(a, b, c):\n    return a // b == c\n"
        assert _active("HB302", src) == []


def _lint_project(rule_id: str, sources: dict[str, str]) -> list[Finding]:
    report = lint_sources(sources, rules=[get_rule(rule_id)])
    return [f for f in report.active if f.rule_id == rule_id]


class TestLayering:
    def test_upward_eager_import_flagged_at_import_line(self):
        findings = _lint_project(
            "HB401",
            {
                "src/repro/topologies/widget.py": (
                    "from repro.simulation.engine import run\n"
                ),
                "src/repro/simulation/engine.py": "def run():\n    pass\n",
            },
        )
        assert len(findings) == 1
        assert findings[0].path == "src/repro/topologies/widget.py"
        assert findings[0].line == 1

    def test_downward_and_same_layer_allowed(self):
        findings = _lint_project(
            "HB401",
            {
                "src/repro/faults/model.py": (
                    "from repro.topologies.base import Topology\n"
                    "from repro.simulation.engine import run\n"
                ),
                "src/repro/topologies/base.py": "class Topology:\n    pass\n",
                "src/repro/simulation/engine.py": "def run():\n    pass\n",
            },
        )
        assert findings == []

    def test_type_checking_import_allowed(self):
        findings = _lint_project(
            "HB401",
            {
                "src/repro/topologies/widget.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.simulation.engine import run\n"
                ),
                "src/repro/simulation/engine.py": "def run():\n    pass\n",
            },
        )
        assert findings == []


class TestImportCycle:
    def test_every_cycle_member_reported_once(self):
        findings = _lint_project(
            "HB402",
            {
                "src/repro/routing/alpha.py": "from repro.routing.beta import b\n",
                "src/repro/routing/beta.py": "from repro.routing.alpha import a\n",
            },
        )
        assert {f.path for f in findings} == {
            "src/repro/routing/alpha.py",
            "src/repro/routing/beta.py",
        }

    def test_deferred_back_edge_is_fine(self):
        findings = _lint_project(
            "HB402",
            {
                "src/repro/routing/alpha.py": "from repro.routing.beta import b\n",
                "src/repro/routing/beta.py": (
                    "def b():\n"
                    "    from repro.routing.alpha import a\n"
                    "    return a\n"
                ),
            },
        )
        assert findings == []


class TestDeadExport:
    ROOT = "src/repro/__init__.py"

    def test_unreferenced_unexported_symbol_flagged(self):
        findings = _lint_project(
            "HB403",
            {
                self.ROOT: "",
                "src/repro/core/stuff.py": (
                    "__all__ = ['used']\n"
                    "def used():\n"
                    "    return 1\n"
                    "def orphan():\n"
                    "    return 2\n"
                ),
            },
        )
        assert len(findings) == 1
        assert "orphan" in findings[0].message

    def test_referenced_symbol_not_dead(self):
        findings = _lint_project(
            "HB403",
            {
                self.ROOT: "",
                "src/repro/core/stuff.py": (
                    "__all__ = []\n"
                    "def helper():\n"
                    "    return 1\n"
                ),
                "src/repro/core/user.py": (
                    "__all__ = []\n"
                    "from repro.core.stuff import helper\n"
                    "x = helper()\n"
                ),
            },
        )
        assert findings == []

    def test_private_names_ignored(self):
        findings = _lint_project(
            "HB403",
            {
                self.ROOT: "",
                "src/repro/core/stuff.py": (
                    "__all__ = []\n"
                    "def _internal():\n"
                    "    return 1\n"
                ),
            },
        )
        assert findings == []


class TestUnseededTaint:
    def test_interprocedural_chain_to_public_api(self):
        findings = _lint_project(
            "HB501",
            {
                "src/repro/faults/helper.py": (
                    "import random\n"
                    "__all__ = []\n"
                    "def make_rng():\n"
                    "    return random.Random()\n"
                ),
                "src/repro/faults/api.py": (
                    "from repro.faults.helper import make_rng\n"
                    "__all__ = ['campaign']\n"
                    "def campaign():\n"
                    "    return make_rng().random()\n"
                ),
            },
        )
        assert len(findings) == 1
        assert findings[0].path == "src/repro/faults/helper.py"
        assert "campaign" in findings[0].message

    def test_private_unreachable_construction_not_flagged(self):
        findings = _lint_project(
            "HB501",
            {
                "src/repro/faults/helper.py": (
                    "import random\n"
                    "__all__ = []\n"
                    "def _scratch():\n"
                    "    return random.Random()\n"
                ),
            },
        )
        assert findings == []

    def test_seeded_construction_is_clean(self):
        findings = _lint_project(
            "HB501",
            {
                "src/repro/faults/api.py": (
                    "import random\n"
                    "__all__ = ['campaign']\n"
                    "def campaign(seed):\n"
                    "    return random.Random(seed).random()\n"
                ),
            },
        )
        assert findings == []

    def test_module_level_construction_flagged(self):
        findings = _lint_project(
            "HB501",
            {
                "src/repro/faults/helper.py": (
                    "import random\n"
                    "_RNG = random.Random()\n"
                ),
            },
        )
        assert len(findings) == 1


class TestWallClockSeed:
    def test_time_seeded_rng_flagged_even_in_tests(self):
        src = "import random\nimport time\nrng = random.Random(time.time())\n"
        assert len(_active("HB502", src)) == 1
        assert len(_active("HB502", src, path=TEST_PATH)) == 1

    def test_constant_seed_allowed(self):
        src = "import random\nrng = random.Random(42)\n"
        assert _active("HB502", src) == []
