"""Judgement tests for the HB6xx numerics-flow and HB7xx concurrency rules.

The generic fixture harness in ``test_rules.py`` proves each rule fires on
its own hit fixture and stays quiet on its clean one; these tests pin the
*specific* decisions — which dtype mixes, shift counts, pool payloads and
worker bodies count as hazards, and which nearby look-alikes must not.
"""

from __future__ import annotations

from repro.devtools.reprolint import Finding, get_rule, lint_sources

LIB_PATH = "src/repro/_flow_fixture.py"


def _active(
    rule_id: str, source: str, path: str = LIB_PATH
) -> list[Finding]:
    report = lint_sources({path: source}, rules=[get_rule(rule_id)])
    return [f for f in report.findings if f.rule_id == rule_id and f.active]


def _active_multi(rule_id: str, sources: dict[str, str]) -> list[Finding]:
    report = lint_sources(sources, rules=[get_rule(rule_id)])
    return [f for f in report.findings if f.rule_id == rule_id and f.active]


NP = "import numpy as np\n"


class TestSignedUnsignedMix:
    def test_uint64_plus_int64_flagged(self):
        src = NP + (
            "def f():\n"
            "    words = np.zeros(4, dtype=np.uint64)\n"
            "    offs = np.ones(4, dtype=np.int64)\n"
            "    return words + offs\n"
        )
        assert len(_active("HB601", src)) == 1

    def test_same_sign_clean(self):
        src = NP + (
            "def f():\n"
            "    words = np.zeros(4, dtype=np.uint64)\n"
            "    offs = np.ones(4, dtype=np.uint64)\n"
            "    return words + offs\n"
        )
        assert _active("HB601", src) == []

    def test_cross_module_helper_mix_flagged(self):
        helper = NP + (
            "def make_words():\n"
            "    return np.zeros(4, dtype=np.uint64)\n"
        )
        user = (
            "import numpy as np\n"
            "from repro._fh import make_words\n"
            "def f():\n"
            "    return make_words() + np.int64(3)\n"
        )
        hits = _active_multi(
            "HB601",
            {"src/repro/_fh.py": helper, "src/repro/_fu.py": user},
        )
        assert [f.path for f in hits] == ["src/repro/_fu.py"]


class TestShiftWidth:
    def test_shift_by_dtype_width_flagged(self):
        src = NP + (
            "def f():\n"
            "    w = np.uint32(1)\n"
            "    return w << 32\n"
        )
        assert len(_active("HB602", src)) == 1

    def test_shift_within_width_clean(self):
        src = NP + (
            "def f():\n"
            "    w = np.uint32(1)\n"
            "    return w << 31\n"
        )
        assert _active("HB602", src) == []


class TestSilentDowncast:
    def test_wide_store_into_narrow_array_flagged(self):
        src = NP + (
            "def f():\n"
            "    out = np.zeros(4, dtype=np.int32)\n"
            "    wide = np.int64(1) << 40\n"
            "    out[0] = wide\n"
            "    return out\n"
        )
        assert len(_active("HB603", src)) == 1

    def test_same_width_store_clean(self):
        src = NP + (
            "def f():\n"
            "    out = np.zeros(4, dtype=np.int64)\n"
            "    out[0] = np.int64(1) << 40\n"
            "    return out\n"
        )
        assert _active("HB603", src) == []


class TestPlatformWidth:
    def test_platform_dtype_flagged_in_library(self):
        src = NP + "def f(n):\n    return np.zeros(n, dtype=np.intp)\n"
        assert len(_active("HB604", src)) == 1

    def test_fixed_width_clean(self):
        src = NP + "def f(n):\n    return np.zeros(n, dtype=np.int64)\n"
        assert _active("HB604", src) == []

    def test_tests_are_exempt(self):
        src = NP + "def f(n):\n    return np.zeros(n, dtype=np.intp)\n"
        assert _active("HB604", src, path="tests/test_fixture.py") == []


class TestNarrowAccumulator:
    def test_uint8_matmul_flagged(self):
        # the shipped-kernel defect this rule caught: @ accumulates in
        # the operand dtype, so a uint8 frontier wraps at 256
        src = NP + (
            "def f(adj):\n"
            "    frontier = np.zeros(300, dtype=np.bool_)\n"
            "    return adj @ frontier.astype(np.uint8)\n"
        )
        assert len(_active("HB605", src)) == 1

    def test_int32_matmul_clean(self):
        src = NP + (
            "def f(adj):\n"
            "    frontier = np.zeros(300, dtype=np.bool_)\n"
            "    return adj @ frontier.astype(np.int32)\n"
        )
        assert _active("HB605", src) == []

    def test_bare_narrow_sum_flagged_pinned_sum_clean(self):
        bare = NP + (
            "def f():\n"
            "    x = np.zeros(4, dtype=np.uint8)\n"
            "    return x.sum()\n"
        )
        pinned = NP + (
            "def f():\n"
            "    x = np.zeros(4, dtype=np.uint8)\n"
            "    return x.sum(dtype=np.int64)\n"
        )
        assert len(_active("HB605", bare)) == 1
        assert _active("HB605", pinned) == []


POOL = "from concurrent.futures import ProcessPoolExecutor\n"


class TestPicklablePayload:
    def test_lambda_payload_flagged(self):
        src = POOL + (
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(lambda x: x + 1, xs))\n"
        )
        assert len(_active("HB701", src)) == 1

    def test_top_level_payload_clean(self):
        src = POOL + (
            "def work(x):\n"
            "    return x + 1\n"
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, xs))\n"
        )
        assert _active("HB701", src) == []


class TestWorkerGlobals:
    def test_global_statement_in_worker_flagged(self):
        src = POOL + (
            "_COUNT = 0\n"
            "def work(x):\n"
            "    global _COUNT\n"
            "    _COUNT += 1\n"
            "    return x\n"
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, xs))\n"
        )
        assert len(_active("HB702", src)) >= 1

    def test_pure_worker_clean(self):
        src = POOL + (
            "def work(x):\n"
            "    return x * 2\n"
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, xs))\n"
        )
        assert _active("HB702", src) == []


class TestExecutorContext:
    def test_bare_executor_flagged(self):
        src = POOL + (
            "def work(x):\n"
            "    return x\n"
            "def run(xs):\n"
            "    pool = ProcessPoolExecutor()\n"
            "    return list(pool.map(work, xs))\n"
        )
        assert len(_active("HB703", src)) == 1

    def test_with_block_clean(self):
        src = POOL + (
            "def work(x):\n"
            "    return x\n"
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, xs))\n"
        )
        assert _active("HB703", src) == []


class TestSharedRng:
    def test_module_rng_read_in_worker_flagged(self):
        src = POOL + (
            "import numpy as np\n"
            "_RNG = np.random.default_rng(0)\n"
            "def work(x):\n"
            "    return x + _RNG.random()\n"
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, xs))\n"
        )
        assert len(_active("HB704", src)) == 1

    def test_worker_local_rng_clean(self):
        src = POOL + (
            "import numpy as np\n"
            "def work(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.random()\n"
            "def run(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, xs))\n"
        )
        assert _active("HB704", src) == []


class TestExplicitContext:
    def test_missing_mp_context_flagged(self):
        src = POOL + (
            "def run():\n"
            "    with ProcessPoolExecutor(max_workers=2) as pool:\n"
            "        pass\n"
        )
        assert len(_active("HB705", src)) == 1

    def test_mp_context_clean(self):
        src = (
            "import multiprocessing\n"
            + POOL
            + "def run():\n"
            "    ctx = multiprocessing.get_context('spawn')\n"
            "    with ProcessPoolExecutor(max_workers=2, mp_context=ctx) as pool:\n"
            "        pass\n"
        )
        assert _active("HB705", src) == []

    def test_thread_pool_exempt(self):
        src = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def run():\n"
            "    with ThreadPoolExecutor(max_workers=2) as pool:\n"
            "        pass\n"
        )
        assert _active("HB705", src) == []
