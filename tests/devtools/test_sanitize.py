"""Tests for the dynamic determinism sanitizer (PYTHONHASHSEED A/B runs).

The subprocess tests use tiny ``python -c`` targets rather than the stock
HB(2,3) targets so the suite stays fast; the stock targets themselves are
exercised by the CI smoke step (``hyperbutterfly sanitize``).
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.devtools.sanitize import (
    OVERFLOW_ERRSTATE,
    SanitizeError,
    SanitizeTarget,
    default_targets,
    metrics_probe,
    run_target,
    sanitize,
    sanitize_overflow,
    structural_diff,
)
from repro.fastgraph.guard import ERRSTATE_ENV


class TestStructuralDiff:
    def test_identical_documents(self):
        doc = {"a": [1, {"b": 2.5}], "c": None}
        assert structural_diff(doc, json.loads(json.dumps(doc, sort_keys=True))) is None

    def test_first_divergent_path_nested(self):
        a = {"runs": [{"ok": True}, {"ratio": 0.5}]}
        b = {"runs": [{"ok": True}, {"ratio": 0.75}]}
        hit = structural_diff(a, b)
        assert hit == "$.runs[1].ratio: 0.5 != 0.75"

    def test_missing_key_reported(self):
        assert "missing on the right" in structural_diff({"k": 1}, {})
        assert "missing on the left" in structural_diff({}, {"k": 1})

    def test_list_length_mismatch(self):
        assert "length 2 != 3" in structural_diff({"x": [1, 2]}, {"x": [1, 2, 3]})

    def test_type_mismatch(self):
        assert "type" in structural_diff({"x": "1"}, {"x": 1})

    def test_int_float_cross_type_compares_by_value(self):
        # json round-trips may turn 1.0 into 1; that is not a divergence
        assert structural_diff({"x": 1}, {"x": 1.0}) is None
        assert structural_diff({"x": 1}, {"x": 1.5}) is not None

    def test_bool_is_not_an_int(self):
        assert structural_diff({"x": True}, {"x": 1}) is not None

    def test_float_comparison_is_exact(self):
        hit = structural_diff({"x": 0.1}, {"x": 0.1 + 1e-12})
        assert hit is not None and hit.startswith("$.x")


def _py_target(code: str, name: str = "probe") -> SanitizeTarget:
    return SanitizeTarget(name=name, argv=(sys.executable, "-c", code))


class TestRunTarget:
    def test_stdout_json_captured(self):
        payload = run_target(
            _py_target("import json; print(json.dumps({'v': 7}))"), "0"
        )
        assert payload == {"v": 7}

    def test_out_placeholder_file_read(self):
        target = SanitizeTarget(
            name="writer",
            argv=(
                sys.executable,
                "-c",
                "import sys; open(sys.argv[1], 'w').write('{\"v\": 8}')",
                "{out}",
            ),
        )
        assert run_target(target, "0") == {"v": 8}

    def test_nonzero_exit_raises(self):
        with pytest.raises(SanitizeError, match="exited 3"):
            run_target(_py_target("import sys; sys.exit(3)"), "0")

    def test_invalid_json_raises(self):
        with pytest.raises(SanitizeError, match="invalid JSON"):
            run_target(_py_target("print('not json')"), "0")

    def test_hash_seed_reaches_subprocess(self):
        a = run_target(_py_target("import os, json; print(json.dumps(os.environ['PYTHONHASHSEED']))"), "17")
        assert a == "17"


class TestSanitize:
    def test_deterministic_target_passes(self, capsys):
        code = "import json; print(json.dumps({'v': sorted({3, 1, 2})}))"
        assert sanitize([_py_target(code)]) == 0
        assert "reproducible" in capsys.readouterr().out

    def test_hash_dependent_target_diverges(self, capsys):
        # str hashes depend on PYTHONHASHSEED, so this JSON differs per run
        code = "import json; print(json.dumps({'h': hash('probe')}))"
        assert sanitize([_py_target(code)]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENT" in out and "$.h" in out

    def test_set_iteration_order_leak_diverges(self, capsys):
        # the classic bug the sanitizer exists for: list(set(strings))
        code = (
            "import json; "
            "print(json.dumps(list({'alpha', 'beta', 'gamma', 'delta'})))"
        )
        assert sanitize([_py_target(code)]) == 1

    def test_equal_seeds_rejected(self):
        with pytest.raises(SanitizeError, match="must differ"):
            sanitize([_py_target("print('{}')")], hash_seeds=("4", "4"))


#: a target that installs the guard (like the repro CLI does) and then
#: overflows a float64 — loud only when the trap env var is exported
_OVERFLOWING = (
    "import json; "
    "from repro.fastgraph.guard import install_errstate_from_env; "
    "install_errstate_from_env(); "
    "import numpy as np; "
    "x = np.float64(1e308) * np.float64(10.0); "
    "print(json.dumps({'finite': bool(np.isfinite(x))}))"
)


class TestRunTargetExtraEnv:
    def test_extra_env_reaches_subprocess(self):
        code = (
            "import os, json; "
            f"print(json.dumps(os.environ.get({ERRSTATE_ENV!r})))"
        )
        assert (
            run_target(
                _py_target(code), "0", extra_env={ERRSTATE_ENV: "over=raise"}
            )
            == "over=raise"
        )
        assert run_target(_py_target(code), "0") is None


class TestSanitizeOverflow:
    def test_clean_target_passes(self, capsys):
        code = (
            "import json; "
            "from repro.fastgraph.guard import install_errstate_from_env; "
            "install_errstate_from_env(); "
            "import numpy as np; "
            "print(json.dumps({'v': float(np.float64(2.0) ** 10)}))"
        )
        assert sanitize_overflow([_py_target(code)]) == 0
        assert "no numpy overflow" in capsys.readouterr().out

    def test_swallowed_overflow_is_trapped(self, capsys):
        # stock run: inf + a warning; trapped run: FloatingPointError
        assert sanitize_overflow([_py_target(_OVERFLOWING)]) == 1
        assert "OVERFLOW TRAPPED" in capsys.readouterr().out

    def test_errstate_spec_is_the_guard_protocol(self):
        # the spec shipped to subprocesses parses under the guard itself
        import numpy as np

        from repro.fastgraph.guard import install_errstate_from_env

        saved = np.geterr()
        try:
            import os

            os.environ[ERRSTATE_ENV] = OVERFLOW_ERRSTATE
            assert install_errstate_from_env() is True
            assert np.geterr()["over"] == "raise"
            assert np.geterr()["invalid"] == "raise"
        finally:
            os.environ.pop(ERRSTATE_ENV, None)
            np.seterr(**saved)

    def test_crash_without_trap_is_an_error_not_a_finding(self):
        with pytest.raises(SanitizeError, match="exited"):
            sanitize_overflow([_py_target("import sys; sys.exit(5)")])


class TestDefaultTargets:
    def test_stock_target_shape(self):
        targets = {t.name: t for t in default_targets()}
        assert set(targets) == {
            "faults-campaign-hb23",
            "structure-campaign-hb23",
            "traffic-campaign-hb23",
            "fastgraph-metrics-hb23",
            "metrics-cli-hb23",
            "metrics-cli-implicit-hb23",
        }
        traffic = targets["traffic-campaign-hb23"]
        assert "traffic-campaign" in traffic.argv
        assert not traffic.uses_stdout
        campaign = targets["faults-campaign-hb23"]
        assert "faults-campaign" in campaign.argv
        assert not campaign.uses_stdout  # writes via {out}
        structure = targets["structure-campaign-hb23"]
        assert "structure-campaign" in structure.argv
        assert not structure.uses_stdout
        pooled = targets["metrics-cli-hb23"]
        assert "--jobs" in pooled.argv  # exercises the process-pool sweep
        assert not pooled.uses_stdout
        implicit = targets["metrics-cli-implicit-hb23"]
        # the CSR-free substrate, pooled: pins the codec-payload A/B path
        assert "implicit" in implicit.argv
        assert "--jobs" in implicit.argv
        assert not implicit.uses_stdout

    def test_metrics_probe_payload(self, tmp_path):
        out = tmp_path / "metrics.json"
        metrics_probe(str(out), 2, 3)
        payload = json.loads(out.read_text())
        # HB(2,3): 2^2 * 3 * 2^3 = 96 nodes, degree m+4=6 -> 288 edges
        assert payload["num_nodes"] == 96
        assert payload["num_edges"] == 96 * 6 // 2
        assert payload["exact_diameter"] <= payload["diameter_formula"]
        assert set(payload["distance_histogram"])  # non-empty

    def test_metrics_probe_is_hash_seed_invariant(self, tmp_path):
        # byte-level double-check of what the stock A/B target asserts
        probe = SanitizeTarget(
            name="probe",
            argv=(
                sys.executable,
                "-c",
                "import sys; from repro.devtools.sanitize import "
                "metrics_probe; metrics_probe(sys.argv[1], 2, 3); "
                "sys.stdout.write(open(sys.argv[1]).read())",
                str(tmp_path / "probe.json"),
            ),
        )
        assert run_target(probe, "0") == run_target(probe, "1")
