"""Unit tests for the whole-program graph behind the HB4xx/HB5xx rules."""

from __future__ import annotations

from repro.devtools.reprolint.context import FileContext
from repro.devtools.reprolint.project import (
    LAYERS,
    ProjectGraph,
    layer_of,
    layer_title,
)


def _graph(sources: dict[str, str]) -> ProjectGraph:
    return ProjectGraph(
        [FileContext.from_source(path, text) for path, text in sources.items()]
    )


class TestLayers:
    def test_every_first_level_package_is_mapped(self):
        assert layer_of("repro.topologies.base") == 1
        assert layer_of("repro.fastgraph.csr") == 3
        assert layer_of("repro.cli") == 5
        assert layer_of("repro") == 5  # root facade
        assert layer_of("numpy.random") is None

    def test_dag_orientation(self):
        # foundations strictly below the structures built on them
        assert LAYERS["errors"] < LAYERS["topologies"] < LAYERS["core"]
        assert LAYERS["core"] < LAYERS["fastgraph"] < LAYERS["faults"]
        assert LAYERS["faults"] < LAYERS["cli"]

    def test_layer_titles_exist(self):
        for layer in sorted(set(LAYERS.values())):
            assert layer_title(layer)


class TestImportGraph:
    def test_eager_vs_deferred_vs_type_checking(self):
        graph = _graph(
            {
                "src/repro/a.py": "X = 1\n",
                "src/repro/b.py": (
                    "from typing import TYPE_CHECKING\n"
                    "import repro.a\n"
                    "if TYPE_CHECKING:\n"
                    "    from repro.c import Y\n"
                    "def f():\n"
                    "    from repro.c import Y\n"
                    "    return Y\n"
                ),
                "src/repro/c.py": "Y = 2\n",
            }
        )
        edges = {(e.src, e.dst, e.eager, e.type_checking) for e in graph.edges}
        assert ("repro.b", "repro.a", True, False) in edges
        assert ("repro.b", "repro.c", True, True) in edges
        assert ("repro.b", "repro.c", False, False) in edges
        eager = {(e.src, e.dst) for e in graph.eager_edges()}
        assert eager == {("repro.b", "repro.a")}

    def test_relative_import_resolution(self):
        graph = _graph(
            {
                "src/repro/pkg/__init__.py": "",
                "src/repro/pkg/a.py": "X = 1\n",
                "src/repro/pkg/b.py": "from .a import X\n",
            }
        )
        assert {(e.src, e.dst) for e in graph.eager_edges()} == {
            ("repro.pkg.b", "repro.pkg.a")
        }

    def test_cycle_detection(self):
        graph = _graph(
            {
                "src/repro/a.py": "from repro.b import g\n",
                "src/repro/b.py": "from repro.c import h\n",
                "src/repro/c.py": "from repro.a import f\n",
                "src/repro/d.py": "from repro.a import f\n",  # not in the cycle
            }
        )
        assert graph.import_cycles() == [["repro.a", "repro.b", "repro.c"]]

    def test_deferred_import_breaks_cycle(self):
        graph = _graph(
            {
                "src/repro/a.py": "from repro.b import g\n",
                "src/repro/b.py": (
                    "def g():\n    from repro.a import f\n    return f\n"
                ),
            }
        )
        assert graph.import_cycles() == []


class TestCallGraph:
    SOURCES = {
        "src/repro/low.py": (
            "__all__ = []\n"
            "def helper():\n"
            "    return 1\n"
        ),
        "src/repro/mid.py": (
            "from repro.low import helper\n"
            "__all__ = ['work']\n"
            "def work():\n"
            "    return helper()\n"
        ),
        "src/repro/cli.py": (
            "from repro.mid import work\n"
            "def main():\n"
            "    return work()\n"
        ),
    }

    def test_edges_resolved_through_imports(self):
        graph = _graph(self.SOURCES)
        assert ("repro.low.helper", 4) in graph.functions["repro.mid.work"].calls
        assert ("repro.mid.work", 3) in graph.functions["repro.cli.main"].calls

    def test_callers_of(self):
        graph = _graph(self.SOURCES)
        callers = [c for c, _ in graph.callers_of("repro.low.helper")]
        assert callers == ["repro.mid.work"]

    def test_reverse_reachability_with_witness_chain(self):
        graph = _graph(self.SOURCES)
        parent = graph.reverse_reachable(["repro.low.helper"])
        assert set(parent) == {"repro.mid.work", "repro.cli.main"}
        chain = graph.call_chain(
            "repro.cli.main", {"repro.low.helper"}, parent
        )
        assert chain == ["repro.cli.main", "repro.mid.work", "repro.low.helper"]

    def test_self_method_calls(self):
        graph = _graph(
            {
                "src/repro/obj.py": (
                    "class Box:\n"
                    "    def inner(self):\n"
                    "        return 1\n"
                    "    def outer(self):\n"
                    "        return self.inner()\n"
                )
            }
        )
        assert ("repro.obj.Box.inner", 5) in graph.functions[
            "repro.obj.Box.outer"
        ].calls

    def test_unresolvable_calls_are_dropped(self):
        graph = _graph(
            {
                "src/repro/dyn.py": (
                    "def f(cb):\n"
                    "    return cb() + str(3).upper()\n"
                )
            }
        )
        assert graph.functions["repro.dyn.f"].calls == []


class TestPublicSurface:
    def test_all_and_reexport_and_entrypoint(self):
        graph = _graph(
            {
                "src/repro/impl.py": (
                    "__all__ = ['api']\n"
                    "def api():\n"
                    "    return 1\n"
                    "def private():\n"
                    "    return 2\n"
                ),
                "src/repro/__init__.py": (
                    "from repro.impl import api\n"
                    "__all__ = ['api']\n"
                ),
                "src/repro/cli.py": "def main():\n    return 0\n",
            }
        )
        public = graph.public_functions()
        assert "repro.impl.api" in public
        assert "repro.cli.main" in public
        assert "repro.impl.private" not in public

    def test_all_listed_class_exposes_methods(self):
        graph = _graph(
            {
                "src/repro/box.py": (
                    "__all__ = ['Box']\n"
                    "class Box:\n"
                    "    def get(self):\n"
                    "        return 1\n"
                )
            }
        )
        assert "repro.box.Box.get" in graph.public_functions()


class TestRealCodebase:
    """The graph over the actual repo must reflect its architecture."""

    def test_repo_layering_holds(self):
        from repro.devtools.reprolint.engine import _collect_files
        from repro.devtools.reprolint.project import layer_of

        files = []
        for path in _collect_files(["src"]):
            files.append(
                FileContext.from_source(str(path), path.read_text())
            )
        graph = ProjectGraph(files)
        assert graph.import_cycles() == []
        for edge in graph.eager_edges():
            src_layer = layer_of(edge.src)
            dst_layer = layer_of(edge.dst)
            if src_layer is None or dst_layer is None:
                continue
            assert dst_layer <= src_layer, (
                f"{edge.src} (layer {src_layer}) eagerly imports "
                f"{edge.dst} (layer {dst_layer}) at line {edge.lineno}"
            )
