"""Tests for the HB8xx symbolic verification rules and their index.

The rule fixtures already run in the engine self-test; here we pin the
*semantics*: extraction of specs/codec registrations from source, witness
contents for each violation kind, the skip-on-Unsupported contract, and
that the real repository is HB8xx-clean.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.devtools.reprolint.context import FileContext, ProjectContext
from repro.devtools.reprolint.engine import lint_paths, lint_sources
from repro.devtools.reprolint.registry import get_rule
from repro.devtools.reprolint.verification import VerificationIndex

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

TOPOLOGY = (
    "class Ringlet:\n"
    "    def __init__(self, k):\n"
    "        self.k = k\n"
    "    @property\n"
    "    def num_nodes(self):\n"
    "        return self.k\n"
    "    def nodes(self):\n"
    "        return iter(range(self.k))\n"
    "    def has_node(self, v):\n"
    "        return isinstance(v, int) and 0 <= v < self.k\n"
    "    def neighbors(self, v):\n"
    "        return [(v + 1) % self.k, (v - 1) % self.k]\n"
)

SPEC = (
    "register_invariants(\n"
    "    InvariantSpec(\n"
    "        family='Ringlet', params=('k',), build=Ringlet,\n"
    "        small=((5,), (6,)), degree='2', paper='Section 4',\n"
    "    )\n"
    ")\n"
)

CODEC = (
    "class RingletCodec:\n"
    "    def __init__(self, k):\n"
    "        self.k = k\n"
    "        self.num_nodes = k\n"
    "    def rank(self, label):\n"
    "        return label\n"
    "    def unrank(self, idx):\n"
    "        return idx\n"
    "    def supports_implicit(self):\n"
    "        return True\n"
    "    def neighbors_block(self, idx):\n"
    "        return [(idx + 1) % self.k, (idx - 1) % self.k]\n"
    "\n"
    "def _ringlet_factory(t):\n"
    "    return RingletCodec(t.k)\n"
    "\n"
    "register_codec('Ringlet', _ringlet_factory)\n"
)

TOPO_PATH = "src/repro/topologies/ringlet.py"
CODEC_PATH = "src/repro/fastgraph/ringletcodec.py"


def _project(sources: dict[str, str]) -> ProjectContext:
    return ProjectContext(
        files=[FileContext.from_source(p, s) for p, s in sorted(sources.items())]
    )


def _index(sources: dict[str, str]) -> VerificationIndex:
    return VerificationIndex(_project(sources))


class TestExtraction:
    def test_spec_fields_extracted(self):
        index = _index({TOPO_PATH: TOPOLOGY + "\n" + SPEC})
        assert set(index.specs) == {"Ringlet"}
        spec = index.specs["Ringlet"]
        assert spec.params == ("k",)
        assert spec.build_name == "Ringlet"
        assert spec.small == ((5,), (6,))
        assert spec.degree == "2"
        assert spec.regular is True
        assert spec.paper == "Section 4"
        assert spec.degree_bounds_at((5,)) == (2, 2)

    def test_codec_registration_extracted(self):
        index = _index({CODEC_PATH: CODEC})
        assert set(index.codec_registrations) == {"Ringlet"}
        reg = index.codec_registrations["Ringlet"]
        assert reg.factory_name == "_ringlet_factory"

    def test_missing_spec_listed(self):
        index = _index({CODEC_PATH: CODEC})
        assert [r.family for r in index.families_missing_specs()] == ["Ringlet"]
        full = _index({TOPO_PATH: TOPOLOGY + "\n" + SPEC, CODEC_PATH: CODEC})
        assert full.families_missing_specs() == []

    def test_unparseable_spec_is_skipped(self):
        bad = TOPOLOGY + (
            "\nregister_invariants(\n"
            "    InvariantSpec(family='Ringlet', params=('k',), build=Ringlet,\n"
            "                  small=make_grid())\n"
            ")\n"
        )
        index = _index({TOPO_PATH: bad})
        assert index.specs == {}


class TestWitnesses:
    def test_clean_family_produces_no_witnesses(self):
        index = _index({TOPO_PATH: TOPOLOGY + "\n" + SPEC, CODEC_PATH: CODEC})
        spec = index.specs["Ringlet"]
        for point in spec.small:
            assert list(index.check_bijectivity(spec, point)) == []
            assert list(index.check_neighbor_symmetry(spec, point)) == []
            assert list(index.check_degree_formula(spec, point)) == []
            assert list(index.check_label_safety(spec, point)) == []
            assert list(index.check_scalar_block_agreement(spec, point)) == []

    def test_bijectivity_witness_names_the_index(self):
        broken = CODEC.replace(
            "    def rank(self, label):\n        return label\n",
            "    def rank(self, label):\n        return label % (self.k - 1)\n",
        )
        index = _index({TOPO_PATH: TOPOLOGY + "\n" + SPEC, CODEC_PATH: broken})
        spec = index.specs["Ringlet"]
        witnesses = list(index.check_bijectivity(spec, (5,)))
        assert len(witnesses) == 1
        w = witnesses[0]
        assert w["family"] == "Ringlet" and w["params"] == [5]
        # rank(unrank(4)) == 4 % 4 == 0 — the first failing index is 4
        assert w["idx"] == 4

    def test_symmetry_witness_names_the_pair(self):
        broken = TOPOLOGY.replace(
            "        return [(v + 1) % self.k, (v - 1) % self.k]\n",
            "        return [(v + 1) % self.k]\n",
        )
        index = _index({TOPO_PATH: broken + "\n" + SPEC})
        spec = index.specs["Ringlet"]
        witnesses = list(index.check_neighbor_symmetry(spec, (5,)))
        assert len(witnesses) == 1
        assert "u" in witnesses[0] and "v" in witnesses[0]

    def test_degree_witness_reports_bounds(self):
        index = _index(
            {TOPO_PATH: TOPOLOGY + "\n" + SPEC.replace("degree='2'", "degree='3'")}
        )
        spec = index.specs["Ringlet"]
        witnesses = list(index.check_degree_formula(spec, (5,)))
        assert witnesses[0]["degree"] == 2
        assert witnesses[0]["expected_min"] == 3

    def test_irregular_degree_range_accepted(self):
        spec_src = SPEC.replace(
            "degree='2'", "regular=False, degree_min='2', degree_max='2'"
        )
        index = _index({TOPO_PATH: TOPOLOGY + "\n" + spec_src})
        spec = index.specs["Ringlet"]
        assert list(index.check_degree_formula(spec, (5,))) == []

    def test_self_loop_witness(self):
        broken = TOPOLOGY.replace(
            "        return [(v + 1) % self.k, (v - 1) % self.k]\n",
            "        return [(v + 1) % self.k, v]\n",
        )
        index = _index({TOPO_PATH: broken + "\n" + SPEC})
        spec = index.specs["Ringlet"]
        witnesses = list(index.check_label_safety(spec, (5,)))
        assert witnesses[0]["kind"] == "self-loop"

    def test_invalid_label_witness(self):
        broken = TOPOLOGY.replace(
            "        return [(v + 1) % self.k, (v - 1) % self.k]\n",
            "        return [(v + 1) % self.k, self.k + 7]\n",
        )
        index = _index({TOPO_PATH: broken + "\n" + SPEC})
        spec = index.specs["Ringlet"]
        kinds = [w["kind"] for w in index.check_label_safety(spec, (5,))]
        assert kinds == ["invalid-label"]

    def test_block_divergence_witness(self):
        broken = CODEC.replace(
            "        return [(idx + 1) % self.k, (idx - 1) % self.k]\n",
            "        return [(idx - 1) % self.k, (idx + 1) % self.k]\n",
        )
        index = _index({TOPO_PATH: TOPOLOGY + "\n" + SPEC, CODEC_PATH: broken})
        spec = index.specs["Ringlet"]
        witnesses = list(index.check_scalar_block_agreement(spec, (5,)))
        assert len(witnesses) == 1
        assert "block_row" in witnesses[0] and "scalar_ranks" in witnesses[0]

    def test_unsupported_construct_skips_silently(self):
        # a dataclass-built family is outside the executor's model: the
        # checks must skip, not crash and not report
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Weird:\n"
            "    k: int\n"
            "register_invariants(\n"
            "    InvariantSpec(family='Weird', params=('k',), build=Weird,\n"
            "                  small=((3,),), degree='2')\n"
            ")\n"
        )
        index = _index({TOPO_PATH: src})
        spec = index.specs["Weird"]
        assert list(index.check_neighbor_symmetry(spec, (3,))) == []
        assert list(index.check_degree_formula(spec, (3,))) == []


class TestRulesEndToEnd:
    def test_hb801_finding_carries_witness(self):
        broken = CODEC.replace(
            "    def rank(self, label):\n        return label\n",
            "    def rank(self, label):\n        return label % (self.k - 1)\n",
        )
        report = lint_sources(
            {TOPO_PATH: TOPOLOGY + "\n" + SPEC, CODEC_PATH: broken},
            rules=[get_rule("HB801")],
        )
        # one finding per swept small point — (5,) and (6,)
        assert len(report.active) == 2
        finding = report.active[0]
        assert finding.rule_id == "HB801"
        assert "idx=4" in finding.message
        assert finding.path == TOPO_PATH  # anchored at the spec registration

    def test_hb806_anchored_at_codec_registration(self):
        report = lint_sources({CODEC_PATH: CODEC}, rules=[get_rule("HB806")])
        assert len(report.active) == 1
        assert report.active[0].path == CODEC_PATH
        assert "Ringlet" in report.active[0].message

    def test_real_repo_is_hb8xx_clean(self):
        rules = [get_rule(f"HB80{i}") for i in range(1, 7)]
        report = lint_paths([str(REPO_ROOT / "src")], rules=rules)
        assert [f.render() for f in report.active] == []


class TestRealRepoIndex:
    @pytest.fixture(scope="class")
    def repo_index(self) -> VerificationIndex:
        report_sources = {}
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            rel = path.relative_to(REPO_ROOT).as_posix()
            report_sources[rel] = path.read_text()
        return _index(report_sources)

    def test_every_registered_family_has_a_spec(self, repo_index):
        assert repo_index.families_missing_specs() == []
        assert set(repo_index.codec_registrations) <= set(repo_index.specs)

    def test_paper_families_present(self, repo_index):
        for family in (
            "HyperButterfly",
            "Hypercube",
            "WrappedButterfly",
            "CayleyButterfly",
            "DeBruijn",
            "HyperDeBruijn",
            "Cycle",
            "Torus",
        ):
            assert family in repo_index.specs, family

    def test_statically_checkable_families_verify(self, repo_index):
        # the families the executor can build statically must all pass
        # their first small point through every check
        verified = []
        for family, spec in sorted(repo_index.specs.items()):
            point = spec.small[0]
            state = repo_index._state(spec, point)
            if state.skipped or state.nodes is None:
                continue
            assert list(repo_index.check_neighbor_symmetry(spec, point)) == []
            assert list(repo_index.check_degree_formula(spec, point)) == []
            assert list(repo_index.check_label_safety(spec, point)) == []
            verified.append(family)
        # the pure-arithmetic families must be statically reachable —
        # a regression that silently skips them would gut the rules
        for family in ("Hypercube", "WrappedButterfly", "DeBruijn", "Cycle", "Torus"):
            assert family in verified, family
