"""Unit tests for the reprolint symbolic bit-vector executor.

The HB8xx rules and ``hyperbutterfly prove`` are only as good as two
foundations: the :class:`BitVec` transfer functions must be *sound*
(every concrete result of an operation on members must be a member of the
abstract result), and the AST machine must agree with CPython on the
concrete kernels it interprets.  Both are pinned here by exhaustive
small-word enumeration against the real thing.
"""

from __future__ import annotations

import ast
import operator
import pathlib

import pytest

from repro.devtools.reprolint.symexec import (
    ArrayVal,
    BitVec,
    Bool3,
    Evaluator,
    Program,
    SymRaise,
    Unsupported,
)

SRC_ROOT = pathlib.Path(__file__).resolve().parents[2] / "src"


def _program_from_repo() -> Program:
    sources = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        module = ".".join(path.relative_to(SRC_ROOT).with_suffix("").parts)
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        sources.append((module, ast.parse(path.read_text())))
    return Program.from_sources(sources)


@pytest.fixture(scope="module")
def repo_eval() -> Evaluator:
    return Evaluator(_program_from_repo())


def _program_from_src(src: str, module: str = "m") -> Program:
    return Program.from_sources([(module, ast.parse(src))])


def _run(src: str, fn: str, args: list) -> object:
    ev = Evaluator(_program_from_src(src))
    func = ev.function_at("m", fn)
    assert func is not None
    return ev.call_function(func, args)


# ---------------------------------------------------------------------------
# BitVec soundness: abstract(op)(members) ⊇ {op(a, b) for members}
# ---------------------------------------------------------------------------


def _abstract_pairs():
    """A small zoo of abstract values with their concrete member sets."""
    out = []
    for lo, hi in [(0, 0), (0, 3), (1, 6), (-4, 3), (-7, -2), (5, 9)]:
        bv = BitVec.range(lo, hi)
        out.append((bv, [v for v in range(lo, hi + 1) if bv.contains(v)]))
    # known-bits-refined values
    masked = BitVec.range(0, 7).or_(BitVec.concrete(1))  # odd, [1, 7]
    out.append((masked, [v for v in range(-16, 17) if masked.contains(v)]))
    return out


_BINOPS = [
    ("add", operator.add),
    ("sub", operator.sub),
    ("mul", operator.mul),
    ("and_", operator.and_),
    ("or_", operator.or_),
    ("xor", operator.xor),
]


class TestBitVecSoundness:
    @pytest.mark.parametrize("name, concrete_op", _BINOPS)
    def test_binary_ops_sound(self, name, concrete_op):
        pairs = _abstract_pairs()
        for left, left_members in pairs:
            for right, right_members in pairs:
                result = getattr(left, name)(right)
                for a in left_members:
                    for b in right_members:
                        assert result.contains(concrete_op(a, b)), (
                            name, left, right, a, b, result,
                        )

    def test_floordiv_mod_sound(self):
        pairs = _abstract_pairs()
        for left, left_members in pairs:
            for k in (1, 2, 3, 4, 5, 7, 8):
                divisor = BitVec.concrete(k)
                div = left.floordiv(divisor)
                mod = left.mod(divisor)
                for a in left_members:
                    assert div.contains(a // k), (left, k, a, div)
                    assert mod.contains(a % k), (left, k, a, mod)

    def test_shifts_sound(self):
        pairs = _abstract_pairs()
        for left, left_members in pairs:
            for k in (0, 1, 2, 5):
                shift = BitVec.concrete(k)
                ls = left.lshift(shift)
                rs = left.rshift(shift)
                for a in left_members:
                    assert ls.contains(a << k)
                    assert rs.contains(a >> k)

    def test_shift_by_abstract_amount_sound(self):
        value = BitVec.range(0, 7)
        amount = BitVec.range(0, 3)
        result = value.lshift(amount)
        for a in range(8):
            for k in range(4):
                assert result.contains(a << k)

    def test_unary_sound(self):
        for bv, members in _abstract_pairs():
            neg, inv = bv.neg(), bv.invert()
            for a in members:
                assert neg.contains(-a)
                assert inv.contains(~a)

    def test_join_sound(self):
        a = BitVec.range(0, 3)
        b = BitVec.range(8, 11)
        joined = a.join(b)
        for v in (0, 1, 2, 3, 8, 9, 10, 11):
            assert joined.contains(v)

    def test_division_by_zero_raises(self):
        with pytest.raises(SymRaise):
            BitVec.range(0, 3).floordiv(BitVec.concrete(0))
        with pytest.raises(SymRaise):
            BitVec.range(0, 3).mod(BitVec.concrete(0))

    def test_comparisons_three_valued(self):
        lo = BitVec.range(0, 3)
        hi = BitVec.range(10, 12)
        assert lo.lt(hi) is Bool3.TRUE
        assert hi.lt(lo) is Bool3.FALSE
        assert lo.lt(BitVec.range(2, 5)) is Bool3.MAYBE
        assert lo.eq(hi) is Bool3.FALSE
        # known-bit conflict: even vs odd can never be equal
        even = BitVec.range(0, 6).and_(BitVec.concrete(~1))
        odd = BitVec.range(0, 7).or_(BitVec.concrete(1))
        assert even.eq(odd) is Bool3.FALSE

    def test_known_bits_track_nonnegativity(self):
        bv = BitVec.range(0, 100)
        assert bv.mask < 0  # high bits known zero
        assert not bv.contains(-1)

    def test_power_of_two_identities_exact(self):
        # x % 2**k and x // 2**k keep bit precision, the key to codec proofs
        x = BitVec.range(0, 23)  # butterfly rank domain for n=3
        low = x.mod(BitVec.concrete(8))
        high = x.floordiv(BitVec.concrete(8))
        assert (low.lo, low.hi) == (0, 7)
        assert (high.lo, high.hi) == (0, 2)


# ---------------------------------------------------------------------------
# machine semantics on synthetic sources
# ---------------------------------------------------------------------------


class TestMachine:
    def test_concrete_arithmetic_matches_python(self):
        src = "def f(x, n):\n    return ((x << 1) | 1) & ((1 << n) - 1)\n"
        for x in range(16):
            assert _run(src, "f", [x, 4]) == ((x << 1) | 1) & 15

    def test_maybe_branch_joins_envs(self):
        src = (
            "def f(x):\n"
            "    if x >= 4:\n"
            "        y = 10\n"
            "    else:\n"
            "        y = 20\n"
            "    return y\n"
        )
        out = _run(src, "f", [BitVec.range(0, 7)])
        assert isinstance(out, BitVec)
        assert (out.lo, out.hi) == (10, 20)

    def test_return_in_one_arm_joins_with_fallthrough(self):
        src = (
            "def f(x):\n"
            "    if x == 0:\n"
            "        return -1\n"
            "    return x + 1\n"
        )
        out = _run(src, "f", [BitVec.range(0, 7)])
        assert isinstance(out, BitVec)
        assert out.contains(-1) and out.contains(8)

    def test_definite_raise_propagates(self):
        src = (
            "def f(x):\n"
            "    if x < 0:\n"
            "        raise ValueError('negative')\n"
            "    return x\n"
        )
        with pytest.raises(SymRaise):
            _run(src, "f", [-3])
        assert _run(src, "f", [5]) == 5

    def test_abstract_while_is_unsupported(self):
        src = (
            "def f(x):\n"
            "    while x > 0:\n"
            "        x = x - 1\n"
            "    return x\n"
        )
        assert _run(src, "f", [3]) == 0
        with pytest.raises(Unsupported):
            _run(src, "f", [BitVec.range(0, 5)])

    def test_dataclass_instantiation_is_unsupported(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class P:\n"
            "    x: int\n"
            "def f():\n"
            "    return P(1)\n"
        )
        with pytest.raises(Unsupported):
            _run(src, "f", [])

    def test_comprehension_and_builtins(self):
        src = "def f(n):\n    return [v ^ 1 for v in range(n)]\n"
        assert _run(src, "f", [4]) == [1, 0, 3, 2]

    def test_method_resolution_and_super(self):
        src = (
            "class A:\n"
            "    def __init__(self, x):\n"
            "        self.x = x\n"
            "    def get(self):\n"
            "        return self.x\n"
            "class B(A):\n"
            "    def __init__(self, x):\n"
            "        super().__init__(x + 1)\n"
            "    def get(self):\n"
            "        return super().get() * 2\n"
            "def f(x):\n"
            "    return B(x).get()\n"
        )
        assert _run(src, "f", [10]) == 22

    def test_property_access(self):
        src = (
            "class C:\n"
            "    def __init__(self, n):\n"
            "        self.n = n\n"
            "    @property\n"
            "    def doubled(self):\n"
            "        return 2 * self.n\n"
            "def f(n):\n"
            "    return C(n).doubled\n"
        )
        assert _run(src, "f", [21]) == 42

    def test_numpy_scalar_model(self):
        src = (
            "import numpy as np\n"
            "def f(idx, n):\n"
            "    a, b = np.divmod(idx, n)\n"
            "    return np.column_stack([a, np.where(b > 0, b, np.int64(-1))])\n"
        )
        out = _run(src, "f", [7, 3])
        assert isinstance(out, ArrayVal)
        assert out.cols == [2, 1]
        abstract = _run(src, "f", [BitVec.range(0, 8), 3])
        assert isinstance(abstract, ArrayVal)
        a_col, b_col = abstract.cols
        assert a_col.contains(0) and a_col.contains(2)
        assert b_col.contains(-1) and b_col.contains(2)

    def test_budget_exceeded(self):
        src = (
            "def f():\n"
            "    total = 0\n"
            "    for i in range(10**6):\n"
            "        total = total + i\n"
            "    return total\n"
        )
        ev = Evaluator(_program_from_src(src), max_steps=1000)
        func = ev.function_at("m", "f")
        with pytest.raises(Unsupported):
            ev.call_function(func, [])


# ---------------------------------------------------------------------------
# interpreting the real repo kernels
# ---------------------------------------------------------------------------


class TestRepoKernels:
    def test_hypercube_codec_roundtrip(self, repo_eval):
        cls = repo_eval.class_named("HypercubeCodec")
        assert cls is not None
        inst = repo_eval.instantiate(cls, [3])
        for v in range(8):
            assert repo_eval.call_method(inst, "rank", [v]) == v
            assert repo_eval.call_method(inst, "unrank", [v]) == v

    def test_butterfly_codec_roundtrip(self, repo_eval):
        cls = repo_eval.class_named("ButterflyElementCodec")
        inst = repo_eval.instantiate(cls, [3])
        for x in range(3):
            for c in range(8):
                rank = repo_eval.call_method(inst, "rank", [(x, c)])
                assert repo_eval.call_method(inst, "unrank", [rank]) == (x, c)

    def test_butterfly_rank_abstract_certificate(self, repo_eval):
        # the paper-critical proof: (x << n) | c stays inside [0, n·2^n)
        cls = repo_eval.class_named("ButterflyElementCodec")
        inst = repo_eval.instantiate(cls, [3])
        rank = repo_eval.call_method(
            inst, "rank", [(BitVec.range(0, 2), BitVec.range(0, 7))]
        )
        assert isinstance(rank, BitVec)
        assert rank.lo >= 0 and rank.hi <= 23

    def test_scalar_neighbors_match_runtime(self, repo_eval):
        from repro.topologies.debruijn import DeBruijn
        from repro.topologies.hypercube import Hypercube
        from repro.topologies.mesh import Torus

        for topo in (Hypercube(3), DeBruijn(3), Torus(3, 4)):
            sym = repo_eval.reflect(topo)
            for v in topo.nodes():
                assert repo_eval.call_method(sym, "neighbors", [v]) == topo.neighbors(v)

    def test_neighbors_block_abstract_certificate(self, repo_eval):
        from repro.core.hyperbutterfly import HyperButterfly
        from repro.fastgraph.codecs import codec_for

        hb = HyperButterfly(8, 10)  # 2.6M nodes — far past enumeration
        codec = codec_for(hb)
        sym = repo_eval.reflect(codec)
        n = hb.num_nodes
        out = repo_eval.call_method(sym, "neighbors_block", [BitVec.range(0, n - 1)])
        assert isinstance(out, ArrayVal)
        assert len(out.cols) == hb.degree_formula
        for col in out.cols:
            assert isinstance(col, BitVec)
            assert col.lo >= -1 and col.hi <= n - 1

    def test_reflected_hyperbutterfly_neighbors_match_runtime(self, repo_eval):
        # the whole Cayley tower (GeneratorSet -> DirectProductGroup ->
        # ButterflyGroup) reflects into interpretable instances
        from repro.core.hyperbutterfly import HyperButterfly

        hb = HyperButterfly(1, 3)
        sym = repo_eval.reflect(hb)
        for v in list(hb.nodes())[:6]:
            assert repo_eval.call_method(sym, "neighbors", [v]) == hb.neighbors(v)
        assert repo_eval.get_attr(sym, "num_nodes") == hb.num_nodes

    def test_opaque_attribute_poisons_only_its_uses(self):
        src = (
            "class C:\n"
            "    def uses_opaque(self):\n"
            "        return self.mystery + 1\n"
            "    def pure(self):\n"
            "        return self.x * 2\n"
        )
        ev = Evaluator(_program_from_src(src))

        class _Runtime:
            pass

        obj = _Runtime()
        obj.x = 21
        obj.mystery = object()  # unconvertible -> OPAQUE
        obj.__class__.__name__  # noqa: B018 - documents the reflection key
        _Runtime.__module__ = "m"
        _Runtime.__name__ = "C"
        _Runtime.__qualname__ = "C"
        sym = ev.reflect(obj)
        assert ev.call_method(sym, "pure", []) == 42
        with pytest.raises(Unsupported):
            ev.call_method(sym, "uses_opaque", [])
