"""Tests for the runtime prover behind ``hyperbutterfly prove``.

Covers the three contract layers: per-family proving (clean families
prove, deliberately broken fixture kernels produce concrete
counterexample witnesses), the whole-registry ledger (deterministic,
committed at the repo root, matches a fresh run), and the CLI surface
(exit codes, JSON output, --family filtering).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main
from repro.devtools.reprolint.prove import (
    DEFAULT_MAX_BITS,
    INVARIANTS,
    LEDGER_PATH,
    prove,
    prove_family,
)
from repro.topologies.invariants import InvariantSpec

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class _Ringlet:
    """A k-cycle: the minimal correct topology fixture."""

    def __init__(self, k):
        self.k = k

    @property
    def num_nodes(self):
        return self.k

    def nodes(self):
        return iter(range(self.k))

    def has_node(self, v):
        return isinstance(v, int) and 0 <= v < self.k

    def neighbors(self, v):
        return [(v + 1) % self.k, (v - 1) % self.k]


def _spec(build, **overrides) -> InvariantSpec:
    fields = dict(
        family=build.__name__,
        params=("k",),
        build=build,
        small=((5,), (8,)),
        degree="2",
    )
    fields.update(overrides)
    return InvariantSpec(**fields)


class TestProveFamily:
    def test_clean_family_proves_topology_invariants(self):
        entry = prove_family(_spec(_Ringlet))
        inv = entry["invariants"]
        for name in ("neighbor-symmetry", "degree-formula", "label-safety"):
            assert inv[name]["status"] == "proved"
            assert inv[name]["exhaustive_points"] == 2
        # no codec registered for the fixture: codec invariants skip
        assert inv["codec-bijectivity"]["status"] == "skipped"
        assert inv["scalar-block-agreement"]["status"] == "skipped"

    def test_self_loop_counterexample_witness(self):
        class _Looped(_Ringlet):
            def neighbors(self, v):
                return [(v + 1) % self.k, v]

        entry = prove_family(_spec(_Looped))
        safety = entry["invariants"]["label-safety"]
        assert safety["status"] == "failed"
        assert safety["witness"]["kind"] == "self-loop"
        assert safety["witness"]["params"] == [5]

    def test_asymmetry_counterexample_witness(self):
        class _OneWay(_Ringlet):
            def neighbors(self, v):
                return [(v + 1) % self.k]

        entry = prove_family(_spec(_OneWay, degree="1"))
        sym = entry["invariants"]["neighbor-symmetry"]
        assert sym["status"] == "failed"
        assert sym["witness"]["kind"] == "asymmetric-edge"

    def test_degree_counterexample_witness(self):
        entry = prove_family(_spec(_Ringlet, degree="3"))
        deg = entry["invariants"]["degree-formula"]
        assert deg["status"] == "failed"
        assert deg["witness"]["kind"] == "degree-out-of-bounds"
        assert deg["witness"]["degree"] == 2
        assert deg["witness"]["expected_min"] == 3

    def test_invalid_label_counterexample_witness(self):
        class _Phantom(_Ringlet):
            def neighbors(self, v):
                return [(v + 1) % self.k, self.k + 7]

        entry = prove_family(_spec(_Phantom))
        safety = entry["invariants"]["label-safety"]
        assert safety["status"] == "failed"
        assert safety["witness"]["kind"] == "invalid-label"

    def test_irregular_family_with_mixed_degrees(self):
        class _Star(_Ringlet):
            def neighbors(self, v):
                if v == 0:
                    return list(range(1, self.k))
                return [0]

        regular = prove_family(_spec(_Star, degree=None))
        assert regular["invariants"]["degree-formula"]["status"] == "failed"
        assert (
            regular["invariants"]["degree-formula"]["witness"]["kind"]
            == "not-regular"
        )
        ranged = prove_family(
            _spec(
                _Star,
                degree=None,
                regular=False,
                degree_min="1",
                degree_max="k - 1",
            )
        )
        assert ranged["invariants"]["degree-formula"]["status"] == "proved"

    def test_out_of_cap_points_are_not_enumerated(self):
        class _Huge(_Ringlet):
            def nodes(self):  # pragma: no cover — must never be called
                raise AssertionError("enumerated a point past the cap")

            neighbors = nodes

        entry = prove_family(
            _spec(_Huge, small=((1 << 20,),)), max_bits=DEFAULT_MAX_BITS
        )
        assert entry["points"]["exhaustive"] == []
        assert entry["points"]["out_of_cap"] == [[1 << 20]]


class TestProveRegistry:
    @pytest.fixture(scope="class")
    def ledger(self):
        return prove()

    def test_every_family_every_invariant_holds(self, ledger):
        assert ledger["summary"]["failed"] == 0
        for family, entry in ledger["families"].items():
            for name in INVARIANTS:
                status = entry["invariants"][name]["status"]
                assert status in ("proved", "proved-abstract", "skipped"), (
                    family,
                    name,
                    entry["invariants"][name],
                )

    def test_paper_families_prove_exhaustively(self, ledger):
        for family in (
            "HyperButterfly",
            "Hypercube",
            "WrappedButterfly",
            "CayleyButterfly",
            "DeBruijn",
            "HyperDeBruijn",
        ):
            inv = ledger["families"][family]["invariants"]
            for name in INVARIANTS:
                assert inv[name]["status"] == "proved", (family, name)

    def test_large_grids_certified_abstractly(self, ledger):
        # HB(8,10) has 2.6M nodes — enumeration is out of reach, the
        # abstract bit-vector certificate must cover it
        hb = ledger["families"]["HyperButterfly"]
        assert [8, 10] in hb["points"]["abstract"]
        assert hb["invariants"]["label-safety"]["abstract_points"] == 2
        assert hb["invariants"]["degree-formula"]["abstract_points"] == 2

    def test_family_filter_and_unknown_family(self, ledger):
        subset = prove(["Hypercube"])
        assert list(subset["families"]) == ["Hypercube"]
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            prove(["NoSuchFamily"])

    def test_committed_ledger_matches_fresh_run(self, ledger):
        committed = json.loads((REPO_ROOT / LEDGER_PATH).read_text())
        assert committed == ledger

    def test_ledger_is_deterministic(self, ledger):
        again = prove()
        assert json.dumps(again, sort_keys=True) == json.dumps(
            ledger, sort_keys=True
        )


class TestProveCLI:
    def test_exit_zero_and_json_shape(self, capsys):
        rc = main(["prove", "--family", "Hypercube", "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["failed"] == 0
        assert list(payload["families"]) == ["Hypercube"]

    def test_output_writes_ledger(self, tmp_path, capsys):
        out = tmp_path / "ledger.json"
        rc = main(
            ["prove", "--family", "Cycle", "--output", str(out)]
        )
        assert rc == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["families"]["Cycle"]["invariants"]
        assert payload["version"] == 1

    def test_unknown_family_exits_two(self, capsys):
        rc = main(["prove", "--family", "NoSuchFamily"])
        assert rc == 2
        assert "unknown families" in capsys.readouterr().err
