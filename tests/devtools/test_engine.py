"""Engine-level behaviour: suppression, baselines, fingerprints, reports."""

from __future__ import annotations

import json

import pytest

from repro.devtools.reprolint import (
    BaselineError,
    lint_paths,
    lint_sources,
    load_baseline,
    write_baseline,
)
from repro.devtools.reprolint.engine import PARSE_ERROR_ID
from repro.devtools.reprolint.suppressions import scan_suppressions
from repro.errors import ReproError

LIB_PATH = "src/repro/_fixture.py"

DIRTY = "import random\nx = random.random()\n"
CLEAN = "import random\nrng = random.Random(0)\n"


class TestSuppression:
    def test_line_suppression_deactivates(self):
        src = (
            "import random\n"
            "x = random.random()  # reprolint: disable=HB101 -- test vector\n"
        )
        report = lint_sources({LIB_PATH: src})
        hits = [f for f in report.findings if f.rule_id == "HB101"]
        assert len(hits) == 1  # still reported ...
        assert hits[0].suppressed and not hits[0].active  # ... but inert
        assert report.exit_code == 0

    def test_file_suppression_covers_whole_file(self):
        src = (
            "# reprolint: disable-file=HB101\n"
            "import random\n"
            "x = random.random()\n"
            "y = random.random()\n"
        )
        report = lint_sources({LIB_PATH: src})
        assert report.exit_code == 0
        assert all(f.suppressed for f in report.findings)

    def test_suppressing_all(self):
        src = "import random\nx = random.random()  # reprolint: disable=ALL\n"
        assert lint_sources({LIB_PATH: src}).exit_code == 0

    def test_wrong_id_does_not_suppress(self):
        src = "import random\nx = random.random()  # reprolint: disable=HB999\n"
        assert lint_sources({LIB_PATH: src}).exit_code == 1

    def test_scan_grammar(self):
        index = scan_suppressions(
            [
                "x = 1  # reprolint: disable=HB101,HB102 -- why",
                "y = 2",
            ]
        )
        assert index.is_suppressed("HB101", 1)
        assert index.is_suppressed("HB102", 1)
        assert not index.is_suppressed("HB103", 1)
        assert not index.is_suppressed("HB101", 2)


class TestFingerprint:
    def test_stable_across_line_moves(self):
        before = lint_sources({LIB_PATH: DIRTY}).active[0]
        after = lint_sources({LIB_PATH: "import random\n\n\n" + DIRTY.splitlines()[1]}).active[0]
        assert before.line != after.line
        assert before.fingerprint == after.fingerprint

    def test_distinct_per_rule_and_text(self):
        src = "import random\nx = random.random()\ny = random.uniform(0, 1)\n"
        prints = {f.fingerprint for f in lint_sources({LIB_PATH: src}).active}
        assert len(prints) == 2

    def test_stable_across_line_endings(self):
        """A CRLF (or CR) checkout must fingerprint like the LF original."""
        lf = lint_sources({LIB_PATH: DIRTY}).active[0]
        crlf = lint_sources({LIB_PATH: DIRTY.replace("\n", "\r\n")}).active[0]
        cr = lint_sources({LIB_PATH: DIRTY.replace("\n", "\r")}).active[0]
        assert lf.fingerprint == crlf.fingerprint == cr.fingerprint

    def test_stable_across_invocation_directory(self, tmp_path, monkeypatch):
        """Display paths are repo-root-relative, so fingerprints do not
        depend on the directory the linter was launched from."""
        repo = tmp_path / "proj"
        pkg = repo / "src" / "repro"
        pkg.mkdir(parents=True)
        (repo / "pyproject.toml").write_text("[project]\nname = 'proj'\n")
        (pkg / "dirty.py").write_text(DIRTY)

        monkeypatch.chdir(repo)
        from_root = lint_paths(["src"]).active[0]
        monkeypatch.chdir(tmp_path)
        from_outside = lint_paths([repo / "src"]).active[0]

        assert from_root.path == "src/repro/dirty.py"
        assert from_outside.path == "src/repro/dirty.py"
        assert from_root.fingerprint == from_outside.fingerprint


class TestBaseline:
    def test_roundtrip_waives_findings(self, tmp_path):
        target = tmp_path / "baseline.json"
        report = lint_sources({LIB_PATH: DIRTY})
        assert report.exit_code == 1
        write_baseline(target, report.findings)
        fingerprints = load_baseline(target)
        waived = lint_sources({LIB_PATH: DIRTY}, baseline_fingerprints=fingerprints)
        assert waived.exit_code == 0
        assert waived.findings and all(f.baselined for f in waived.findings)

    def test_baseline_file_is_sorted_json(self, tmp_path):
        target = tmp_path / "baseline.json"
        report = lint_sources({LIB_PATH: DIRTY})
        write_baseline(target, report.findings)
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        assert payload["fingerprints"] == sorted(payload["fingerprints"])

    def test_malformed_baseline_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 99}')
        with pytest.raises(BaselineError):
            load_baseline(target)


class TestLintPaths:
    def test_directory_walk(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "dirty.py").write_text(DIRTY)
        (pkg / "clean.py").write_text(CLEAN)
        report = lint_paths([tmp_path / "src"])
        assert report.checked_files == 2
        assert report.exit_code == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ReproError):
            lint_paths([tmp_path / "nope"])

    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([bad])
        assert report.exit_code == 1
        assert report.active[0].rule_id == PARSE_ERROR_ID


class TestReport:
    def test_json_shape(self):
        payload = lint_sources({LIB_PATH: DIRTY}).to_dict()
        assert set(payload) == {
            "version",
            "checked_files",
            "rules_run",
            "counts",
            "findings",
        }
        finding = payload["findings"][0]
        assert set(finding) == {
            "rule",
            "path",
            "line",
            "col",
            "severity",
            "message",
            "fingerprint",
            "suppressed",
            "baselined",
        }

    def test_counts_only_active(self):
        suppressed = (
            "import random\n"
            "x = random.random()  # reprolint: disable=HB101 -- waived\n"
        )
        assert lint_sources({LIB_PATH: suppressed}).counts_by_rule() == {}
        assert lint_sources({LIB_PATH: DIRTY}).counts_by_rule() == {"HB101": 1}


class TestFindingOrder:
    def test_total_order_breaks_position_ties(self):
        from repro.devtools.reprolint.engine import _sorted_findings
        from repro.devtools.reprolint.findings import Finding

        def finding(rule_id, message):
            return Finding(
                rule_id=rule_id, path="src/a.py", line=3, col=0, message=message
            )

        tied = [
            finding("HB104", "b"),
            finding("HB104", "a"),
            finding("HB101", "z"),
        ]
        ordered = _sorted_findings(tied)
        assert [(f.rule_id, f.message) for f in ordered] == [
            ("HB101", "z"),
            ("HB104", "b"),
            ("HB104", "a"),
        ] or [(f.rule_id, f.message) for f in ordered] == [
            ("HB101", "z"),
            ("HB104", "a"),
            ("HB104", "b"),
        ]
        # the order must be a pure function of the findings, not of the
        # input order: every permutation sorts identically
        import itertools

        renderings = {
            tuple(f.render() for f in _sorted_findings(perm))
            for perm in itertools.permutations(tied)
        }
        assert len(renderings) == 1

    def test_report_json_is_byte_stable(self):
        # two findings on one line (HB102 wall-clock + HB103 unsorted dump)
        # tie on position; the report must serialise identically across runs
        source = (
            "import json\n"
            "import time\n"
            "def emit(path, payload):\n"
            "    payload['at'] = time.time(); json.dump(payload, path)\n"
        )
        first = json.dumps(lint_sources({LIB_PATH: source}).to_dict(), sort_keys=True)
        second = json.dumps(lint_sources({LIB_PATH: source}).to_dict(), sort_keys=True)
        assert first == second
        report = lint_sources({LIB_PATH: source})
        keys = [f.sort_key() for f in report.findings]
        assert keys == sorted(keys)
        assert len({f.rule_id for f in report.findings}) >= 2
