"""Edge-case and error-path tests across the library surface.

Production libraries fail loudly and specifically; these tests pin the
failure modes (wrong-sized parameters, foreign labels, degenerate
instances) and a few behaviours easy to regress silently (iteration
orders, zero-dimension hypercubes, the m = 0 butterfly-only regime).
"""

from __future__ import annotations

import pytest

from repro import (
    DisconnectedError,
    EmbeddingError,
    HBRouter,
    HyperButterfly,
    InvalidLabelError,
    InvalidParameterError,
    ReproError,
    RoutingError,
    SimulationError,
)
from repro.topologies.hypercube import Hypercube


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for exc in (
            InvalidParameterError,
            InvalidLabelError,
            RoutingError,
            DisconnectedError,
            EmbeddingError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)

    def test_parameter_errors_are_value_errors(self):
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(InvalidLabelError, ValueError)

    def test_disconnected_is_routing_error(self):
        assert issubclass(DisconnectedError, RoutingError)


class TestDegenerateHypercube:
    def test_zero_cube(self):
        h = Hypercube(0)
        assert h.num_nodes == 1
        assert h.num_edges == 0
        assert h.neighbors(0) == []
        assert h.diameter() == 0

    def test_one_cube(self):
        h = Hypercube(1)
        assert h.num_edges == 1
        assert h.neighbors(0) == [1]


class TestButterflyOnlyRegime:
    """m = 0: HB(0, n) must behave exactly like B_n."""

    def test_counts_match_butterfly(self):
        hb = HyperButterfly(0, 4)
        assert hb.num_nodes == 4 * 16
        assert hb.degree_formula == 4
        assert hb.num_edges == hb.butterfly.num_edges

    def test_no_hypercube_neighbors(self):
        hb = HyperButterfly(0, 3)
        assert hb.hypercube_neighbors(hb.identity_node()) == []
        assert len(hb.butterfly_neighbors(hb.identity_node())) == 4

    def test_routing_works(self, rng):
        hb = HyperButterfly(0, 4)
        router = HBRouter(hb)
        nodes = list(hb.nodes())
        for _ in range(20):
            u, v = rng.sample(nodes, 2)
            result = router.route(u, v)
            assert result.length == hb.distance(u, v)
            assert all(g in ("g", "f", "g^-1", "f^-1") for g in result.generators)

    def test_disjoint_paths_give_four(self, rng):
        from repro import disjoint_paths, verify_disjoint_paths

        hb = HyperButterfly(0, 3)
        nodes = list(hb.nodes())
        for _ in range(8):
            u, v = rng.sample(nodes, 2)
            family = disjoint_paths(hb, u, v)
            verify_disjoint_paths(hb, u, v, family)
            assert len(family) == 4


class TestTopologyIterationContracts:
    def test_edges_iterates_each_edge_once(self, hb13):
        edges = list(hb13.edges())
        assert len(edges) == hb13.num_edges
        seen = set()
        for a, b in edges:
            key = frozenset((a, b))
            assert key not in seen
            seen.add(key)

    def test_nodes_iteration_is_deterministic(self, hb13):
        assert list(hb13.nodes()) == list(hb13.nodes())

    def test_subgraph_rejects_foreign_nodes(self, hb13):
        with pytest.raises(InvalidLabelError):
            hb13.subgraph_networkx([(9, (0, 0))])

    def test_degree_stats_on_irregular(self):
        from repro.topologies.hyperdebruijn import HyperDeBruijn

        hd = HyperDeBruijn(1, 3)
        lo, hi = hd.degree_stats()
        assert (lo, hi) == (3, 5)


class TestBlockedBFSContracts:
    def test_blocked_source_rejected(self, hb13):
        u = hb13.identity_node()
        with pytest.raises(InvalidLabelError):
            hb13.bfs_distances(u, blocked=frozenset({u}))

    def test_blocked_target_returns_none(self, hb13):
        u, v = hb13.identity_node(), (1, (0, 0))
        assert hb13.bfs_shortest_path(u, v, blocked=frozenset({v})) is None

    def test_same_source_target(self, hb13):
        u = hb13.identity_node()
        assert hb13.bfs_shortest_path(u, u) == [u]

    def test_eccentricity_raises_when_disconnected(self, hb13):
        # isolate the identity by treating its neighbors as absent via a
        # wrapper topology; simplest: a two-node disconnected stand-in
        import networkx as nx

        from repro.topologies.base import Topology

        class TwoIslands(Topology):
            name = "islands"
            num_nodes = 2

            def nodes(self):
                return iter([0, 1])

            def neighbors(self, v):
                self.validate_node(v)
                return []

            def has_node(self, v):
                return v in (0, 1)

        with pytest.raises(DisconnectedError):
            TwoIslands().eccentricity(0)
