"""Unit and property tests for the bit-vector helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bits import (
    bit,
    bits_to_word,
    differing_bits,
    flip,
    format_word,
    gray_code,
    gray_cycle,
    mask,
    popcount,
    rotate_left,
    rotate_right,
    set_bits,
    word_to_bits,
)

words = st.integers(min_value=0, max_value=(1 << 12) - 1)
widths = st.integers(min_value=1, max_value=12)


class TestBasics:
    def test_bit_extracts_positions(self):
        assert [bit(0b1010, i) for i in range(4)] == [0, 1, 0, 1]

    def test_flip_is_involution(self):
        assert flip(flip(0b1010, 2), 2) == 0b1010

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_mask(self):
        assert mask(0) == 0
        assert mask(3) == 0b111

    def test_set_bits_sorted(self):
        assert set_bits(0b101001) == [0, 3, 5]

    def test_differing_bits(self):
        assert differing_bits(0b1100, 0b1010) == [1, 2]

    def test_format_word_msb_first(self):
        assert format_word(0b011, 4) == "0011"
        assert format_word(0, 0) == ""


class TestRotation:
    def test_rotate_left_moves_bit_up(self):
        # bit 0 should land at bit 2 after rotating left by 2 in width 4
        assert rotate_left(0b0001, 2, 4) == 0b0100

    def test_rotate_wraps(self):
        assert rotate_left(0b1000, 1, 4) == 0b0001

    @given(words, st.integers(-20, 20), widths)
    def test_rotate_right_inverts_left(self, w, k, width):
        w &= mask(width)
        assert rotate_right(rotate_left(w, k, width), k, width) == w

    @given(words, widths)
    def test_rotate_full_cycle_is_identity(self, w, width):
        w &= mask(width)
        assert rotate_left(w, width, width) == w

    @given(words, st.integers(-20, 20), widths)
    def test_rotation_preserves_popcount(self, w, k, width):
        w &= mask(width)
        assert popcount(rotate_left(w, k, width)) == popcount(w)


class TestWordBitConversion:
    @given(words, widths)
    def test_roundtrip(self, w, width):
        w &= mask(width)
        assert bits_to_word(word_to_bits(w, width)) == w

    def test_bits_to_word_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_word([0, 2, 1])


class TestGray:
    @given(st.integers(min_value=2, max_value=10))
    def test_gray_cycle_is_hamiltonian_cycle(self, width):
        seq = list(gray_cycle(width))
        assert sorted(seq) == list(range(1 << width))
        for a, b in zip(seq, seq[1:] + [seq[0]], strict=True):
            assert popcount(a ^ b) == 1

    def test_gray_code_start(self):
        assert gray_code(0) == 0
        assert gray_code(1) == 1
        assert gray_code(2) == 3
