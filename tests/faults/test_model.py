"""Fault-set model tests."""

from __future__ import annotations

import random

import pytest

from repro.errors import InvalidLabelError, InvalidParameterError
from repro.faults.model import (
    FaultSet,
    LinkFaultSet,
    random_link_faults,
    random_node_faults,
)
from repro.topologies.hypercube import Hypercube


class TestFaultSet:
    def test_validates_labels(self):
        h = Hypercube(2)
        with pytest.raises(InvalidLabelError):
            FaultSet(h, [9])

    def test_set_operations(self):
        h = Hypercube(3)
        fs = FaultSet(h, [0, 1])
        assert len(fs) == 2
        assert 0 in fs and 5 not in fs
        merged = fs | [5]
        assert len(merged) == 3
        healed = merged.without([0, 1])
        assert set(healed) == {5}

    def test_union_with_fault_set(self):
        h = Hypercube(3)
        a, b = FaultSet(h, [0]), FaultSet(h, [1])
        assert set(a | b) == {0, 1}

    def test_healthy_neighbors(self):
        h = Hypercube(3)
        fs = FaultSet(h, [1, 2])
        assert sorted(fs.healthy_neighbors(0)) == [4]

    def test_repr(self):
        fs = FaultSet(Hypercube(2), [1])
        assert "1 faults" in repr(fs)


class TestRandomFaults:
    def test_count_and_exclusion(self):
        h = Hypercube(4)
        rng = random.Random(0)
        fs = random_node_faults(h, 5, rng=rng, exclude=[0, 15])
        assert len(fs) == 5
        assert 0 not in fs and 15 not in fs

    def test_too_many_rejected(self):
        h = Hypercube(2)
        with pytest.raises(InvalidParameterError):
            random_node_faults(h, 5)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            random_node_faults(Hypercube(2), -1)

    def test_deterministic_with_seeded_rng(self):
        h = Hypercube(5)
        a = random_node_faults(h, 6, rng=random.Random(3)).nodes
        b = random_node_faults(h, 6, rng=random.Random(3)).nodes
        assert a == b

    def test_reservoir_is_roughly_uniform(self):
        """Each node should be hit a plausible number of times."""
        h = Hypercube(3)
        hits = {v: 0 for v in h.nodes()}
        for seed in range(200):
            for v in random_node_faults(h, 2, rng=random.Random(seed)):
                hits[v] += 1
        expected = 200 * 2 / 8
        assert all(expected / 3 < c < expected * 3 for c in hits.values())


class TestFaultSetHashing:
    def test_equal_sets_equal_hash(self):
        h = Hypercube(3)
        a = FaultSet(h, [1, 2])
        b = FaultSet(h, [2, 1])
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_as_dict_key(self):
        h = Hypercube(3)
        cache = {FaultSet(h, [1, 2]): "hit"}
        assert cache[FaultSet(h, [2, 1])] == "hit"
        assert FaultSet(h, [3]) not in cache

    def test_independent_topology_instances_compare(self):
        a = FaultSet(Hypercube(3), [1])
        b = FaultSet(Hypercube(3), [1])
        assert a == b and hash(a) == hash(b)

    def test_different_topology_not_equal(self):
        assert FaultSet(Hypercube(3), [1]) != FaultSet(Hypercube(4), [1])

    def test_dedup_in_set(self):
        h = Hypercube(3)
        sets = {FaultSet(h, [0]), FaultSet(h, [0]), FaultSet(h, [1])}
        assert len(sets) == 2

    def test_algebra_still_intact(self):
        h = Hypercube(3)
        fs = FaultSet(h, [0, 1]) | [2]
        assert set(fs.without([0])) == {1, 2}


class TestLinkFaultSet:
    def test_orientation_free_membership(self):
        h = Hypercube(3)
        lfs = LinkFaultSet(h, [(0, 1)])
        assert (0, 1) in lfs and (1, 0) in lfs
        assert lfs.blocks(1, 0)
        assert not lfs.blocks(0, 2)

    def test_rejects_non_edges(self):
        with pytest.raises(InvalidParameterError):
            LinkFaultSet(Hypercube(3), [(0, 3)])

    def test_algebra(self):
        h = Hypercube(3)
        lfs = LinkFaultSet(h, [(0, 1)]) | [(1, 0), (0, 2)]
        assert len(lfs) == 2
        healed = lfs.without([(2, 0)])
        assert len(healed) == 1 and (0, 1) in healed

    def test_hashable_and_dedup(self):
        h = Hypercube(3)
        a = LinkFaultSet(h, [(0, 1)])
        b = LinkFaultSet(h, [(1, 0)])
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1


class TestRandomLinkFaults:
    def test_count_and_exclusion(self):
        h = Hypercube(4)
        rng = random.Random(0)
        lfs = random_link_faults(h, 6, rng=rng, exclude=[(0, 1)])
        assert len(lfs) == 6
        assert (0, 1) not in lfs

    def test_too_many_raises(self):
        h = Hypercube(2)
        with pytest.raises(InvalidParameterError):
            random_link_faults(h, 100, rng=random.Random(0))

    def test_seeded_reproducible(self):
        h = Hypercube(4)
        a = random_link_faults(h, 5, rng=random.Random(3))
        b = random_link_faults(h, 5, rng=random.Random(3))
        assert a == b
