"""Fault-set model tests."""

from __future__ import annotations

import random

import pytest

from repro.errors import InvalidLabelError, InvalidParameterError
from repro.faults.model import FaultSet, random_node_faults
from repro.topologies.hypercube import Hypercube


class TestFaultSet:
    def test_validates_labels(self):
        h = Hypercube(2)
        with pytest.raises(InvalidLabelError):
            FaultSet(h, [9])

    def test_set_operations(self):
        h = Hypercube(3)
        fs = FaultSet(h, [0, 1])
        assert len(fs) == 2
        assert 0 in fs and 5 not in fs
        merged = fs | [5]
        assert len(merged) == 3
        healed = merged.without([0, 1])
        assert set(healed) == {5}

    def test_union_with_fault_set(self):
        h = Hypercube(3)
        a, b = FaultSet(h, [0]), FaultSet(h, [1])
        assert set(a | b) == {0, 1}

    def test_healthy_neighbors(self):
        h = Hypercube(3)
        fs = FaultSet(h, [1, 2])
        assert sorted(fs.healthy_neighbors(0)) == [4]

    def test_repr(self):
        fs = FaultSet(Hypercube(2), [1])
        assert "1 faults" in repr(fs)


class TestRandomFaults:
    def test_count_and_exclusion(self):
        h = Hypercube(4)
        rng = random.Random(0)
        fs = random_node_faults(h, 5, rng=rng, exclude=[0, 15])
        assert len(fs) == 5
        assert 0 not in fs and 15 not in fs

    def test_too_many_rejected(self):
        h = Hypercube(2)
        with pytest.raises(InvalidParameterError):
            random_node_faults(h, 5)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            random_node_faults(Hypercube(2), -1)

    def test_deterministic_with_seeded_rng(self):
        h = Hypercube(5)
        a = random_node_faults(h, 6, rng=random.Random(3)).nodes
        b = random_node_faults(h, 6, rng=random.Random(3)).nodes
        assert a == b

    def test_reservoir_is_roughly_uniform(self):
        """Each node should be hit a plausible number of times."""
        h = Hypercube(3)
        hits = {v: 0 for v in h.nodes()}
        for seed in range(200):
            for v in random_node_faults(h, 2, rng=random.Random(seed)):
                hits[v] += 1
        expected = 200 * 2 / 8
        assert all(expected / 3 < c < expected * 3 for c in hits.values())
