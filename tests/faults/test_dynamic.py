"""Dynamic fault schedule tests: generation, determinism, replay."""

from __future__ import annotations

import pytest

from repro.errors import InvalidLabelError, InvalidParameterError
from repro.faults.dynamic import FaultEvent, FaultSchedule, FaultState
from repro.topologies.hypercube import Hypercube


class TestFaultState:
    def test_depth_counting(self):
        state = FaultState()
        assert state.apply(FaultEvent(0.0, "fail", "node", 3)) is True
        # overlapping second failure: no visible flip
        assert state.apply(FaultEvent(1.0, "fail", "node", 3)) is False
        assert state.apply(FaultEvent(2.0, "repair", "node", 3)) is False
        assert state.node_faulty(3)
        assert state.apply(FaultEvent(3.0, "repair", "node", 3)) is True
        assert not state.node_faulty(3)

    def test_spurious_repair_is_noop(self):
        state = FaultState()
        assert state.apply(FaultEvent(0.0, "repair", "node", 1)) is False

    def test_link_faults_orientation_free(self):
        state = FaultState()
        state.apply(FaultEvent(0.0, "fail", "link", (0, 1)))
        assert state.link_faulty(0, 1)
        assert state.link_faulty(1, 0)
        assert not state.link_faulty(0, 2)


class TestScheduleValidation:
    def test_events_sorted(self):
        h = Hypercube(3)
        sched = FaultSchedule(
            h,
            [
                FaultEvent(5.0, "repair", "node", 1),
                FaultEvent(1.0, "fail", "node", 1),
            ],
        )
        assert [e.time for e in sched] == [1.0, 5.0]

    def test_rejects_bad_node(self):
        with pytest.raises(InvalidLabelError):
            FaultSchedule(Hypercube(2), [FaultEvent(0.0, "fail", "node", 99)])

    def test_rejects_non_edge_link(self):
        with pytest.raises(InvalidParameterError):
            FaultSchedule(Hypercube(3), [FaultEvent(0.0, "fail", "link", (0, 3))])

    def test_rejects_bad_mode(self):
        with pytest.raises(InvalidParameterError):
            FaultSchedule.generate(Hypercube(3), rate=1.0, horizon=5.0, mode="nope")


class TestGeneration:
    def test_seeded_determinism(self):
        h = Hypercube(4)
        kwargs = dict(
            rate=1.0,
            horizon=40.0,
            seed=7,
            mode="intermittent",
            kinds=("node", "link"),
            repair_time=3.0,
        )
        a = FaultSchedule.generate(h, **kwargs)
        b = FaultSchedule.generate(h, **kwargs)
        assert a.events == b.events
        assert len(a) > 0
        c = FaultSchedule.generate(h, **{**kwargs, "seed": 8})
        assert c.events != a.events

    def test_permanent_mode_never_repairs(self):
        h = Hypercube(3)
        sched = FaultSchedule.generate(
            h, rate=2.0, horizon=20.0, seed=1, mode="permanent"
        )
        assert all(e.action == "fail" for e in sched)

    def test_transient_mode_pairs_fail_repair(self):
        h = Hypercube(3)
        sched = FaultSchedule.generate(
            h, rate=1.0, horizon=20.0, seed=2, mode="transient", repair_time=2.0
        )
        fails = sum(1 for e in sched if e.action == "fail")
        repairs = sum(1 for e in sched if e.action == "repair")
        assert fails == repairs > 0
        # every transient outage eventually heals, so the terminal state
        # (after all events) is fully healthy
        last = sched.events[-1].time
        state = sched.state_at(last + 1.0)
        assert not state.faulty_nodes and not state.faulty_links

    def test_intermittent_flaps(self):
        h = Hypercube(3)
        sched = FaultSchedule.generate(
            h,
            rate=0.5,
            horizon=60.0,
            seed=3,
            mode="intermittent",
            repair_time=2.0,
            uptime=2.0,
        )
        # at least one component fails more than once
        fail_counts: dict = {}
        for e in sched:
            if e.action == "fail":
                fail_counts[e.target] = fail_counts.get(e.target, 0) + 1
        assert max(fail_counts.values()) >= 2

    def test_exclude_nodes_shielded(self):
        h = Hypercube(3)
        sched = FaultSchedule.generate(
            h,
            rate=5.0,
            horizon=20.0,
            seed=4,
            mode="permanent",
            exclude_nodes=[0, 7],
        )
        assert all(e.target not in (0, 7) for e in sched)

    def test_state_at_replays_prefix(self):
        h = Hypercube(3)
        sched = FaultSchedule(
            h,
            [
                FaultEvent(1.0, "fail", "node", 2),
                FaultEvent(4.0, "repair", "node", 2),
            ],
        )
        assert not sched.state_at(0.5).node_faulty(2)
        assert sched.state_at(2.0).node_faulty(2)
        assert not sched.state_at(4.0).node_faulty(2)
