"""Fault-sweep experiment driver tests (E6)."""

from __future__ import annotations

from repro.core.hyperbutterfly import HyperButterfly
from repro.faults.experiments import fault_sweep


class TestFaultSweep:
    def test_guaranteed_region_is_perfect(self, hb13):
        """Below connectivity, everything must connect and route."""
        results = fault_sweep(
            hb13, [0, 2, hb13.m + 3], trials=3, pairs_per_trial=6, seed=5
        )
        for r in results:
            assert r.connected_fraction == 1.0  # reprolint: disable=HB301 -- trials/trials is exactly 1.0 below the guarantee
            assert r.disjoint_success_rate == 1.0  # reprolint: disable=HB301 -- same: exact trials/trials ratio
            assert r.total_pairs == 18

    def test_overhead_at_least_one(self, hb13):
        results = fault_sweep(hb13, [1, 3], trials=2, pairs_per_trial=5, seed=9)
        for r in results:
            assert r.mean_overhead >= 1.0

    def test_beyond_guarantee_still_mostly_connected(self, hb13):
        results = fault_sweep(hb13, [8], trials=3, pairs_per_trial=6, seed=7)
        (r,) = results
        assert 0.5 <= r.connected_fraction <= 1.0

    def test_result_shape(self, hb13):
        results = fault_sweep(hb13, [0, 1], trials=1, pairs_per_trial=2, seed=0)
        assert [r.faults for r in results] == [0, 1]
        assert all(r.trials == 1 and r.pairs_per_trial == 2 for r in results)

    def test_deterministic_given_seed(self, hb13):
        a = fault_sweep(hb13, [4], trials=2, pairs_per_trial=4, seed=3)
        b = fault_sweep(hb13, [4], trials=2, pairs_per_trial=4, seed=3)
        assert a[0].connected_pairs == b[0].connected_pairs
        assert a[0].disjoint_total_length == b[0].disjoint_total_length
