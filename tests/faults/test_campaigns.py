"""Degradation-campaign tests: determinism and Corollary 1's shape."""

from __future__ import annotations

import json

import pytest

from repro.faults.campaigns import CampaignConfig, run_campaign, write_campaign_json


@pytest.fixture(scope="module")
def quick_results():
    return run_campaign(CampaignConfig.quick(2, 3, seed=0))


class TestDeterminism:
    def test_bit_identical_json_across_runs(self, quick_results, tmp_path):
        """Same schedule seed + same campaign seed => identical JSON.

        This also pins the fastgraph blocked-BFS path: the static sweep
        routes through ``bfs_shortest_path(..., blocked=...)``, so any
        nondeterminism in the vectorised kernels would show up here.
        """
        again = run_campaign(CampaignConfig.quick(2, 3, seed=0))
        a = write_campaign_json(quick_results, tmp_path / "a.json")
        b = write_campaign_json(again, tmp_path / "b.json")
        assert a == b
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    def test_different_seed_changes_output(self, quick_results):
        other = run_campaign(CampaignConfig.quick(2, 3, seed=99))
        assert json.dumps(other, sort_keys=True) != json.dumps(
            quick_results, sort_keys=True
        )


class TestShape:
    def test_networks_compared(self, quick_results):
        names = [nw["name"] for nw in quick_results["networks"]]
        assert names[0] == "HB(2,3)"
        assert any(n.startswith("HD(") for n in names)
        assert any(n.startswith("H_") for n in names)

    def test_full_delivery_within_guarantee(self, quick_results):
        """Corollary 1: delivery ratio 1.0 for every count <= m + 3."""
        hb = quick_results["networks"][0]
        guarantee = hb["guaranteed_tolerance"]
        assert guarantee == 2 + 3
        for row in hb["curve"]:
            if row["faults"] <= guarantee:
                assert row["delivery_ratio"] == 1.0  # reprolint: disable=HB301 -- delivered/attempted is exactly k/k below the guarantee
                assert row["disjoint_share"] == 1.0  # reprolint: disable=HB301 -- same: exact k/k ratio

    def test_delivery_never_increases_with_faults(self, quick_results):
        hb = quick_results["networks"][0]
        ratios = [row["delivery_ratio"] for row in hb["curve"]]
        assert all(b <= a + 1e-9 for a, b in zip(ratios, ratios[1:], strict=False))

    def test_breaking_point_beyond_guarantee(self, quick_results):
        hb = quick_results["networks"][0]
        bp = hb["breaking_point"]
        assert bp is None or bp > hb["guaranteed_tolerance"]

    def test_retry_recovers_at_least_no_retry(self, quick_results):
        """The reliable transport never delivers less than fire-and-forget."""
        for row in quick_results["transient"]["curve"]:
            assert row["retry_delivery"] >= row["no_retry_delivery"]

    def test_curve_rows_carry_metrics(self, quick_results):
        for nw in quick_results["networks"]:
            for row in nw["curve"]:
                assert set(row) == {
                    "faults",
                    "fault_fraction",
                    "delivery_ratio",
                    "mean_latency_hops",
                    "mean_stretch",
                    "disjoint_share",
                }
