"""Structure faults: generators, lowering, cascades, diameter, campaign."""

from __future__ import annotations

import random

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.core.resilient import ResilientRouter
from repro.errors import InvalidParameterError
from repro.faults.campaigns import (
    StructureCampaignConfig,
    run_structure_campaign,
    write_campaign_json,
)
from repro.faults.connectivity import connected_under_faults
from repro.faults.model import FaultSet
from repro.faults.structures import (
    CascadeConfig,
    build_structure,
    path_structure,
    random_structures,
    ring_structure,
    run_cascade,
    star_structure,
    structure_fault_diameter,
    structure_kinds,
    subcube_structure,
    union_fault_set,
    union_link_fault_set,
)
from repro.topologies.hyperdebruijn import HyperDeBruijn


@pytest.fixture(scope="module")
def hd23() -> HyperDeBruijn:
    return HyperDeBruijn(2, 3)


def _center(topology):
    return next(iter(topology.nodes()))


class TestGenerators:
    def test_star_radius_zero_is_the_center(self, hb23):
        c = _center(hb23)
        s = star_structure(hb23, c, radius=0)
        assert s.nodes == (c,)
        assert s.kind == "star" and s.center == c

    def test_star_radius_one_is_closed_neighborhood(self, hb23):
        c = _center(hb23)
        s = star_structure(hb23, c, radius=1)
        assert set(s.nodes) == {c, *hb23.neighbors(c)}
        assert s.nodes[0] == c  # center first

    def test_star_balls_are_nested(self, hb23):
        c = _center(hb23)
        small = star_structure(hb23, c, radius=1)
        big = star_structure(hb23, c, radius=2)
        assert small.node_set < big.node_set
        # discovery order: the smaller ball is a prefix of the bigger one
        assert big.nodes[: len(small)] == small.nodes

    def test_path_is_greedy_and_nested(self, cube4):
        c = _center(cube4)
        short = path_structure(cube4, c, length=3)
        long = path_structure(cube4, c, length=5)
        assert long.nodes[:3] == short.nodes
        # consecutive nodes are adjacent
        for a, b in zip(long.nodes, long.nodes[1:], strict=False):
            assert cube4.has_edge(a, b)

    def test_subcube_node_count_and_closure(self, hb23):
        c = _center(hb23)
        s = subcube_structure(hb23, c, dims=2)
        assert len(s) == 4
        # closed under flipping the first two cube bits
        for h, b in s.nodes:
            assert (h ^ 1, b) in s and (h ^ 2, b) in s

    def test_subcube_dims_clamped_to_cube_order(self, hb23):
        c = _center(hb23)
        s = subcube_structure(hb23, c, dims=10)
        assert len(s) == 1 << hb23.m

    def test_subcube_on_plain_hypercube(self, cube4):
        s = subcube_structure(cube4, 0, dims=3)
        assert set(s.nodes) == set(range(8))

    def test_ring_is_the_butterfly_coset(self, hb23):
        c = _center(hb23)
        s = ring_structure(hb23, c)
        assert len(s) == hb23.n
        h0, (_, ci0) = c
        assert all(h == h0 and ci == ci0 for h, (_, ci) in s.nodes)
        # consecutive levels are generator-adjacent, so the coset is a ring
        for a, b in zip(s.nodes, s.nodes[1:], strict=False):
            assert hb23.has_edge(a, b)

    def test_ring_rejects_families_without_butterfly(self, cube4, hd23):
        for topology in (cube4, hd23):
            with pytest.raises(InvalidParameterError):
                ring_structure(topology, _center(topology))

    def test_structure_kinds_per_family(self, hb23, cube4, bf3, hd23):
        assert structure_kinds(hb23) == ("star", "path", "subcube", "ring")
        assert structure_kinds(hd23) == ("star", "path", "subcube")
        assert structure_kinds(cube4) == ("star", "path", "subcube")
        assert structure_kinds(bf3) == ("star", "path", "ring")

    def test_build_structure_rejects_unknown_kind(self, hb23):
        with pytest.raises(InvalidParameterError):
            build_structure(hb23, "blob", _center(hb23))

    def test_generators_validate_the_center(self, hb23):
        from repro.errors import InvalidLabelError

        with pytest.raises(InvalidLabelError):
            star_structure(hb23, ("nope",), radius=1)


class TestLoweringAndPlacement:
    def test_as_fault_set_lowers_to_point_faults(self, hb23):
        s = star_structure(hb23, _center(hb23), radius=1)
        faults = s.as_fault_set()
        assert isinstance(faults, FaultSet)
        assert faults.nodes == s.node_set

    def test_link_lowering_blocks_every_incident_link(self, hb23):
        c = _center(hb23)
        s = star_structure(hb23, c, radius=0)
        links = s.as_link_fault_set()
        assert len(links) == len(list(hb23.neighbors(c)))
        for w in hb23.neighbors(c):
            assert links.blocks(c, w) and links.blocks(w, c)

    def test_boundary_is_sorted_and_healthy(self, hb23):
        s = star_structure(hb23, _center(hb23), radius=1)
        boundary = s.boundary()
        assert list(boundary) == sorted(boundary)
        assert not set(boundary) & s.node_set
        for v in boundary:
            assert any(w in s for w in hb23.neighbors(v))

    def test_random_structures_seeded_and_excluding(self, hb23):
        a = random_structures(hb23, "star", 3, rng=random.Random(7))
        b = random_structures(hb23, "star", 3, rng=random.Random(7))
        c = random_structures(hb23, "star", 3, rng=random.Random(8))
        assert a == b
        assert a != c
        banned = _center(hb23)
        placed = random_structures(
            hb23, "path", 4, size=2, rng=random.Random(1), exclude=[banned]
        )
        assert all(s.center != banned for s in placed)

    def test_union_lowering(self, hb23):
        placed = random_structures(hb23, "ring", 2, rng=random.Random(3))
        faults = union_fault_set(hb23, placed)
        assert faults.nodes == placed[0].node_set | placed[1].node_set
        links = union_link_fault_set(hb23, placed)
        assert links.links == (
            placed[0].as_link_fault_set().links | placed[1].as_link_fault_set().links
        )

    def test_structures_key_caches(self, hb23):
        a = star_structure(hb23, _center(hb23), radius=1)
        b = star_structure(HyperButterfly(2, 3), _center(hb23), radius=1)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1


class TestStructureFaultDiameter:
    def test_at_least_fault_free_diameter(self, hb23):
        for kind in structure_kinds(hb23):
            s = build_structure(hb23, kind, _center(hb23), size=1)
            result = structure_fault_diameter(hb23, s)
            assert result.exact and result.connected
            assert result.diameter >= hb23.diameter_formula()
            assert result.survivors == hb23.num_nodes - len(s)
            assert result.sources_examined == result.survivors

    def test_monotone_in_structure_size(self, hb23):
        c = _center(hb23)
        diameters = []
        for radius in (0, 1, 2):
            s = star_structure(hb23, c, radius=radius)
            result = structure_fault_diameter(hb23, s)
            if not result.connected:
                break
            diameters.append(result.diameter)
        assert diameters == sorted(diameters)
        assert len(diameters) >= 2

    @pytest.mark.parametrize("family", ["hb", "hd", "cube"])
    def test_backend_agreement(self, family, hb23, hd23, cube4):
        topology = {"hb": hb23, "hd": hd23, "cube": cube4}[family]
        s = star_structure(topology, _center(topology), radius=1)
        results = {
            backend: structure_fault_diameter(topology, s, backend=backend)
            for backend in ("python", "csr", "implicit")
        }
        assert len({r.diameter for r in results.values()}) == 1
        assert len({r.connected for r in results.values()}) == 1
        assert len({r.survivors for r in results.values()}) == 1

    def test_sampled_mode_is_a_lower_bound(self, hb23):
        s = star_structure(hb23, _center(hb23), radius=1)
        exact = structure_fault_diameter(hb23, s)
        sampled = structure_fault_diameter(hb23, s, source_sample=4)
        assert not sampled.exact
        assert sampled.diameter <= exact.diameter
        assert sampled.sources_examined < exact.sources_examined
        # the boundary hugs the fault, so the bound is tight here
        assert sampled.diameter == exact.diameter

    def test_disconnecting_structure_flagged(self, cube4):
        # failing the full neighborhood ring isolates the antipode-free center
        s = star_structure(cube4, 0, radius=1)
        hollow = [v for v in s.nodes if v != 0]
        carved = FaultSet(cube4, hollow)
        assert not connected_under_faults(cube4, carved)
        from repro.faults.structures import StructureFault

        ring = StructureFault(cube4, "star", hollow[0], hollow)
        result = structure_fault_diameter(cube4, ring)
        assert not result.connected and not result.exact


class TestCascades:
    def test_same_seed_same_trace(self, hb23):
        seeds = random_structures(hb23, "star", 1, rng=random.Random(2))
        config = CascadeConfig(epochs=3, spread=0.4)
        a = run_cascade(hb23, seeds, config, seed=5)
        b = run_cascade(hb23, seeds, config, seed=5)
        assert a.epochs == b.epochs
        c = run_cascade(hb23, seeds, config, seed=6)
        assert a.epochs != c.epochs or a.total_failed == c.total_failed

    def test_zero_spread_never_propagates(self, hb23):
        seeds = random_structures(hb23, "star", 1, rng=random.Random(2))
        trace = run_cascade(hb23, seeds, CascadeConfig(epochs=5, spread=0.0))
        assert len(trace.epochs) == 1
        assert trace.fault_set().nodes == seeds[0].node_set

    def test_full_spread_saturates_unless_capped(self, hb23):
        seeds = [star_structure(hb23, _center(hb23), radius=0)]
        config = CascadeConfig(epochs=2, spread=1.0, max_failed=10)
        trace = run_cascade(hb23, seeds, config)
        assert trace.total_failed >= 10 or len(trace.epochs) == 3

    def test_epoch_prefix_fault_sets_are_monotone(self, hb23):
        seeds = random_structures(hb23, "star", 1, rng=random.Random(2))
        trace = run_cascade(hb23, seeds, CascadeConfig(epochs=3, spread=0.5), seed=1)
        previous = frozenset()
        for i in range(len(trace.epochs)):
            current = trace.fault_set(i).nodes
            assert previous <= current
            previous = current
        assert trace.fault_set().nodes == previous
        assert trace.total_failed == len(previous)

    def test_schedule_lowering_replays_the_trace(self, hb23):
        seeds = random_structures(hb23, "star", 1, rng=random.Random(2))
        config = CascadeConfig(epochs=3, spread=0.5, epoch_time=2.0)
        trace = run_cascade(hb23, seeds, config, seed=1)
        schedule = trace.to_schedule()
        assert len(schedule) == trace.total_failed  # permanent: no repairs
        for i in range(len(trace.epochs)):
            state = schedule.state_at(i * config.epoch_time)
            assert state.faulty_nodes == trace.fault_set(i).nodes

    def test_requires_a_seed_structure(self, hb23):
        with pytest.raises(InvalidParameterError):
            run_cascade(hb23, [], CascadeConfig())

    def test_config_validation(self, hb23):
        seeds = [star_structure(hb23, _center(hb23), radius=0)]
        with pytest.raises(InvalidParameterError):
            run_cascade(hb23, seeds, CascadeConfig(spread=1.5))
        with pytest.raises(InvalidParameterError):
            run_cascade(hb23, seeds, CascadeConfig(epoch_time=0.0))

    def test_schedule_merge_overlays_background_noise(self, hb23):
        from repro.faults.dynamic import FaultSchedule

        seeds = random_structures(hb23, "star", 1, rng=random.Random(2))
        trace = run_cascade(hb23, seeds, CascadeConfig(epochs=2, spread=0.3), seed=1)
        noise = FaultSchedule.generate(
            hb23, rate=0.2, horizon=10.0, seed=3, mode="transient"
        )
        merged = trace.to_schedule().merge(noise)
        assert len(merged) == len(trace.to_schedule()) + len(noise)
        times = [e.time for e in merged]
        assert times == sorted(times)
        other = HyperDeBruijn(2, 3)
        foreign = FaultSchedule(other, ())
        with pytest.raises(InvalidParameterError):
            merged.merge(foreign)


class TestStructureCampaign:
    @pytest.fixture(scope="class")
    def quick_results(self):
        config = StructureCampaignConfig.quick(2, 3, seed=0)
        return run_structure_campaign(config)

    def test_shape(self, quick_results):
        names = [n["name"] for n in quick_results["networks"]]
        assert names == ["HB(2,3)", "HD(2,3)", "H_7"]
        for network in quick_results["networks"]:
            kinds = {row["kind"] for row in network["rows"]}
            assert len(kinds) >= 3  # >= 3 structure types everywhere
            for row in network["rows"]:
                assert row["mean_faulted"] >= 1
                assert 0.0 <= row["connected_fraction"] <= 1.0
        assert quick_results["cascade"]["epochs"][0]["epoch"] == 0
        assert set(quick_results["cascade"]["transport_replay"]) == {
            "no_retry",
            "retry",
        }
        assert quick_results["structure_fault_diameter"]

    def test_hb_rows_report_disjoint_share(self, quick_results):
        hb_rows = quick_results["networks"][0]["rows"]
        assert all(row["disjoint_share"] is not None for row in hb_rows)

    def test_diameter_probe_row(self, quick_results):
        row = quick_results["structure_fault_diameter"][0]
        assert row["structure_fault_diameter"] >= row["fault_free_diameter"]
        assert row["exact"] and row["connected"]

    def test_byte_identical_reruns(self, tmp_path, quick_results):
        config = StructureCampaignConfig.quick(2, 3, seed=0)
        again = run_structure_campaign(config)
        first = write_campaign_json(quick_results, tmp_path / "a.json")
        second = write_campaign_json(again, tmp_path / "b.json")
        assert first == second
        shifted = run_structure_campaign(
            StructureCampaignConfig.quick(2, 3, seed=1)
        )
        assert write_campaign_json(shifted, tmp_path / "c.json") != first


class TestResilientStandingFaults:
    def test_apply_faults_invalidates_in_the_same_call(self, hb23):
        router = ResilientRouter(hb23)
        nodes = list(hb23.nodes())
        u, v = nodes[0], nodes[-1]
        # cut the middle of every disjoint-family member: one fault per
        # path (6 > the m+3 guarantee) forces the adaptive stage
        cut = frozenset(p[len(p) // 2] for p in router._family(u, v))
        assert len(cut) > router.max_guaranteed_faults()
        before = router.route_ex(u, v, node_faults=cut)
        assert before.strategy == "adaptive"
        assert router._adaptive  # adaptive result cached
        ticks = router.invalidations
        # the regression: a whole fault set applied in one call must
        # invalidate without any per-event listener tick firing
        router.apply_faults(node_faults=cut)
        assert router.invalidations == ticks + 1
        assert not router._adaptive
        after = router.route_ex(u, v)  # standing faults, no per-call faults
        assert not set(after.path) & cut
        assert after.path == before.path

    def test_standing_faults_merge_with_per_call(self, hb23):
        router = ResilientRouter(hb23)
        structure = ring_structure(hb23, _center(hb23))
        router.apply_faults(node_faults=structure.node_set)
        nodes = list(hb23.nodes())
        u = next(v for v in nodes if v not in structure)
        v = next(w for w in reversed(nodes) if w not in structure and w != u)
        extra = next(
            w
            for w in hb23.neighbors(u)
            if w not in structure and w not in (u, v)
        )
        outcome = router.route_ex(u, v, node_faults=[extra])
        assert not set(outcome.path) & structure.node_set
        assert extra not in outcome.path
        report = router.reachability(u)
        assert report.node_faults == len(structure.node_set)
        router.clear_faults()
        assert router.standing_node_faults == frozenset()
        clean = router.route_ex(u, v)
        assert clean.length <= outcome.length

    def test_simulator_accepts_equal_topology_by_name(self, hb23):
        from repro.simulation.network import NetworkSimulator
        from repro.simulation.protocols import HBObliviousProtocol

        seeds = random_structures(hb23, "star", 1, rng=random.Random(2))
        trace = run_cascade(
            hb23, seeds, CascadeConfig(epochs=1, spread=0.2), seed=1
        )
        twin = HyperButterfly(2, 3)  # same name, different instance
        sim = NetworkSimulator(
            twin, HBObliviousProtocol(twin), schedule=trace.to_schedule(), seed=0
        )
        sim.inject(*random.Random(0).sample(list(twin.nodes()), 2), at=0.0)
        sim.run()
        assert sim.stats().injected == 1
