"""Connectivity analysis tests (Section 5 claims, exactly)."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.faults.connectivity import (
    connected_under_faults,
    connectivity_certificate,
    is_maximally_fault_tolerant,
    vertex_connectivity,
)
from repro.faults.model import FaultSet
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn


class TestExactConnectivity:
    def test_hypercube_kappa_m(self):
        """[5]: kappa(H_m) = m; maximally fault tolerant."""
        for m in (2, 3, 4):
            h = Hypercube(m)
            assert vertex_connectivity(h) == m
            assert is_maximally_fault_tolerant(h)

    def test_butterfly_kappa_4(self):
        """Remark 1: kappa(B_n) = 4; maximally fault tolerant."""
        b = CayleyButterfly(3)
        assert vertex_connectivity(b) == 4
        assert is_maximally_fault_tolerant(b)

    @pytest.mark.parametrize(("m", "n"), [(0, 3), (1, 3), (2, 3)])
    def test_corollary1_hb_kappa_m_plus_4(self, m, n):
        """Corollary 1: kappa(HB(m,n)) = m + 4 — exact, not just witnessed."""
        hb = HyperButterfly(m, n)
        assert vertex_connectivity(hb) == m + 4
        assert is_maximally_fault_tolerant(hb)

    @pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3)])
    def test_hd_is_not_maximally_fault_tolerant(self, m, n):
        """The HD shortcoming the paper fixes: kappa = m+2 < max degree."""
        hd = HyperDeBruijn(m, n)
        assert vertex_connectivity(hd) == m + 2
        lo, hi = hd.degree_stats()
        assert m + 2 == lo < hi  # limited by its minimum-degree nodes


class TestCertificates:
    def test_certificate_tight_on_hb(self, hb23):
        cert = connectivity_certificate(hb23, pairs=10)
        assert cert.upper == hb23.m + 4
        assert cert.lower_witnessed == hb23.m + 4
        assert cert.tight

    def test_certificate_pairs_recorded(self, hb13):
        cert = connectivity_certificate(hb13, pairs=4)
        assert cert.pairs_sampled == 4

    def test_invalid_pairs(self, hb13):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            connectivity_certificate(hb13, pairs=0)


class TestConnectedUnderFaults:
    def test_below_connectivity_never_disconnects(self, hb13, rng):
        """Corollary 1 consequence: any m+3 faults leave HB connected."""
        from repro.faults.model import random_node_faults

        for _ in range(10):
            faults = random_node_faults(hb13, hb13.m + 3, rng=rng)
            assert connected_under_faults(hb13, faults)

    def test_isolating_a_node_disconnects(self, hb13):
        victim = (1, (1, 0b010))
        faults = FaultSet(hb13, hb13.neighbors(victim))
        assert not connected_under_faults(hb13, faults)

    def test_all_faulty_is_vacuously_connected(self):
        h = Hypercube(1)
        assert connected_under_faults(h, FaultSet(h, [0, 1]))

    def test_backends_agree_on_verdicts(self, hb13):
        """The fast reachability count is pinned to the python fallback."""
        import random

        from repro.faults.model import random_node_faults

        victim = (1, (1, 0b010))
        cases = [
            random_node_faults(hb13, count, rng=random.Random(count))
            for count in (0, hb13.m + 3, 10, 20)
        ]
        cases.append(FaultSet(hb13, hb13.neighbors(victim)))  # disconnects
        verdicts = []
        for faults in cases:
            per_backend = {
                backend: connected_under_faults(hb13, faults, backend=backend)
                for backend in ("python", "csr", "implicit")
            }
            assert len(set(per_backend.values())) == 1
            verdicts.append(per_backend["python"])
        assert verdicts[0] and verdicts[1]  # <= m+3 can never disconnect
        assert not verdicts[-1]

    def test_unknown_backend_rejected(self, hb13):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            connected_under_faults(hb13, FaultSet(hb13), backend="quantum")
