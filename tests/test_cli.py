"""CLI smoke tests (every subcommand on small instances)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "HB(2,3)" in out
        assert "96" in out

    def test_info_exact(self, capsys):
        assert main(["info", "1", "3", "--exact"]) == 0
        assert "exact diameter" in capsys.readouterr().out

    def test_route(self, capsys):
        assert main(["route", "1", "3", "(0;abc)", "(1;bcA)"]) == 0
        out = capsys.readouterr().out
        assert "distance" in out
        assert "(0;abc)" in out

    def test_figure1(self, capsys):
        assert main(["figure1", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "HB(2,3)" in out and "Fault-tolerance" in out

    def test_figure1_verify(self, capsys):
        assert main(["figure1", "1", "3", "--verify"]) == 0
        assert "Parameter" in capsys.readouterr().out

    def test_faults(self, capsys):
        assert main(["faults", "1", "3", "2", "--trials", "1"]) == 0
        assert "fault sweep" in capsys.readouterr().out

    def test_faults_campaign_quick(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_faults.json"
        assert (
            main(
                [
                    "faults-campaign",
                    "2",
                    "3",
                    "--quick",
                    "--trials",
                    "1",
                    "--pairs",
                    "4",
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "HB(2,3)" in out and "transient transport" in out
        assert out_path.exists()
        import json

        data = json.loads(out_path.read_text())
        assert data["networks"][0]["name"] == "HB(2,3)"

    def test_broadcast(self, capsys):
        assert main(["broadcast", "1", "3"]) == 0
        out = capsys.readouterr().out
        assert "all-port" in out and "structured" in out

    def test_sanitize_list_targets(self, capsys):
        assert main(["sanitize", "--list-targets"]) == 0
        out = capsys.readouterr().out
        assert "faults-campaign-hb23" in out
        assert "fastgraph-metrics-hb23" in out

    def test_sanitize_custom_deterministic_command(self, capsys):
        import sys

        cmd = f"{sys.executable} -c \"import json; print(json.dumps([1, 2]))\""
        assert main(["sanitize", "--cmd", cmd]) == 0
        assert "reproducible" in capsys.readouterr().out

    def test_sanitize_custom_divergent_command(self, capsys):
        import sys

        cmd = (
            f"{sys.executable} -c "
            "\"import json; print(json.dumps({'h': hash('x')}))\""
        )
        assert main(["sanitize", "--cmd", cmd]) == 1
        assert "DIVERGENT" in capsys.readouterr().out

    def test_sanitize_unknown_target_errors(self, capsys):
        assert main(["sanitize", "--target", "nope"]) == 2
        assert "unknown sanitize target" in capsys.readouterr().err
