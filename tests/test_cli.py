"""CLI smoke tests (every subcommand on small instances)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "HB(2,3)" in out
        assert "96" in out

    def test_info_exact(self, capsys):
        assert main(["info", "1", "3", "--exact"]) == 0
        assert "exact diameter" in capsys.readouterr().out

    def test_route(self, capsys):
        assert main(["route", "1", "3", "(0;abc)", "(1;bcA)"]) == 0
        out = capsys.readouterr().out
        assert "distance" in out
        assert "(0;abc)" in out

    def test_figure1(self, capsys):
        assert main(["figure1", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "HB(2,3)" in out and "Fault-tolerance" in out

    def test_figure1_verify(self, capsys):
        assert main(["figure1", "1", "3", "--verify"]) == 0
        assert "Parameter" in capsys.readouterr().out

    def test_faults(self, capsys):
        assert main(["faults", "1", "3", "2", "--trials", "1"]) == 0
        assert "fault sweep" in capsys.readouterr().out

    def test_faults_campaign_quick(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_faults.json"
        assert (
            main(
                [
                    "faults-campaign",
                    "2",
                    "3",
                    "--quick",
                    "--trials",
                    "1",
                    "--pairs",
                    "4",
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "HB(2,3)" in out and "transient transport" in out
        assert out_path.exists()
        import json

        data = json.loads(out_path.read_text())
        assert data["networks"][0]["name"] == "HB(2,3)"

    def test_structure_campaign_quick(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_structure.json"
        assert (
            main(
                [
                    "structure-campaign",
                    "2",
                    "3",
                    "--quick",
                    "--trials",
                    "1",
                    "--pairs",
                    "4",
                    "--output",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "HB(2,3)" in out
        assert "cascade" in out and "structure-fault diameter" in out
        import json

        data = json.loads(out_path.read_text())
        assert data["networks"][0]["name"] == "HB(2,3)"
        assert {"config", "networks", "cascade", "structure_fault_diameter"} <= set(
            data
        )
        kinds = {row["kind"] for row in data["networks"][0]["rows"]}
        assert {"star", "path", "subcube", "ring"} <= kinds

    def test_broadcast(self, capsys):
        assert main(["broadcast", "1", "3"]) == 0
        out = capsys.readouterr().out
        assert "all-port" in out and "structured" in out

    def test_metrics_decomposition(self, capsys):
        assert main(["metrics", "hb", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "HB(2,3)" in out and "decomposition" in out

    def test_metrics_force_bfs_jobs_output(self, capsys, tmp_path):
        import json

        decomposed = tmp_path / "fast.json"
        swept = tmp_path / "bfs.json"
        assert main(["metrics", "hb", "1", "3", "--output", str(decomposed)]) == 0
        assert (
            main(
                [
                    "metrics", "hb", "1", "3",
                    "--force-bfs", "--jobs", "2",
                    "--output", str(swept),
                ]
            )
            == 0
        )
        capsys.readouterr()
        fast = json.loads(decomposed.read_text())
        slow = json.loads(swept.read_text())
        assert fast["engine"] == "decomposition"
        assert slow["engine"] == "bfs-sweep"
        for key in ("diameter", "average_distance", "distance_histogram"):
            assert fast[key] == slow[key]

    def test_metrics_backend_pinning_matches_auto(self, capsys, tmp_path):
        import json

        payloads = {}
        for backend in ("auto", "csr", "implicit", "python"):
            path = tmp_path / f"{backend}.json"
            assert (
                main(
                    [
                        "metrics", "hb", "2", "3",
                        "--backend", backend, "--output", str(path),
                    ]
                )
                == 0
            )
            payloads[backend] = json.loads(path.read_text())
        capsys.readouterr()
        # auto keeps the BFS-free decomposition; pinning runs the engine
        assert payloads["auto"]["engine"] == "decomposition"
        for backend in ("csr", "implicit", "python"):
            assert payloads[backend]["engine"] == "transitive-bfs"
            assert payloads[backend]["backend"] == backend
        reference = payloads["auto"]
        for payload in payloads.values():
            for key in ("diameter", "average_distance", "distance_histogram"):
                assert payload[key] == reference[key]

    def test_metrics_backend_implicit_pooled_sweep(self, capsys, tmp_path):
        import json

        csr = tmp_path / "csr.json"
        implicit = tmp_path / "implicit.json"
        for backend, path in (("csr", csr), ("implicit", implicit)):
            assert (
                main(
                    [
                        "metrics", "hb", "2", "3",
                        "--backend", backend, "--force-bfs", "--jobs", "2",
                        "--output", str(path),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        a, b = json.loads(csr.read_text()), json.loads(implicit.read_text())
        assert a["engine"] == b["engine"] == "bfs-sweep"
        for key in ("diameter", "average_distance", "distance_histogram"):
            assert a[key] == b[key]

    def test_metrics_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["metrics", "hb", "2", "3", "--backend", "sparse"])
        assert "invalid choice" in capsys.readouterr().err

    def test_metrics_single_parameter_families(self, capsys):
        assert main(["metrics", "hypercube", "4"]) == 0
        assert "transitive-bfs" in capsys.readouterr().out
        assert main(["metrics", "debruijn", "3"]) == 0
        assert "bfs-sweep" in capsys.readouterr().out

    def test_metrics_parameter_count_errors(self, capsys):
        assert main(["metrics", "hb", "2"]) == 2
        assert "needs both" in capsys.readouterr().err
        assert main(["metrics", "hypercube", "3", "4"]) == 2
        assert "single order" in capsys.readouterr().err

    def test_sanitize_list_targets(self, capsys):
        assert main(["sanitize", "--list-targets"]) == 0
        out = capsys.readouterr().out
        assert "faults-campaign-hb23" in out
        assert "fastgraph-metrics-hb23" in out
        assert "metrics-cli-hb23" in out

    def test_sanitize_custom_deterministic_command(self, capsys):
        import sys

        cmd = f"{sys.executable} -c \"import json; print(json.dumps([1, 2]))\""
        assert main(["sanitize", "--cmd", cmd]) == 0
        assert "reproducible" in capsys.readouterr().out

    def test_sanitize_custom_divergent_command(self, capsys):
        import sys

        cmd = (
            f"{sys.executable} -c "
            "\"import json; print(json.dumps({'h': hash('x')}))\""
        )
        assert main(["sanitize", "--cmd", cmd]) == 1
        assert "DIVERGENT" in capsys.readouterr().out

    def test_sanitize_unknown_target_errors(self, capsys):
        assert main(["sanitize", "--target", "nope"]) == 2
        assert "unknown sanitize target" in capsys.readouterr().err
