"""Mesh of trees ``MT(a, b)`` (Lemma 4 guest): counts, wiring, codec."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.fastgraph.codecs import codec_for
from repro.topologies.mesh_of_trees import MeshOfTrees


class TestCounts:
    @pytest.mark.parametrize("a,b", [(2, 2), (2, 4), (4, 4), (4, 8)])
    def test_node_count_formula(self, a, b):
        mt = MeshOfTrees(a, b)
        # |V| = ab leaves + a(b-1) row-tree + b(a-1) column-tree vertices
        assert mt.num_nodes == 3 * a * b - a - b
        assert len(list(mt.nodes())) == mt.num_nodes

    @pytest.mark.parametrize("a,b", [(2, 2), (2, 4), (4, 4)])
    def test_edge_count_formula(self, a, b):
        mt = MeshOfTrees(a, b)
        # each binary tree over L leaves has 2(L-1) edges
        assert mt.num_edges == a * 2 * (b - 1) + b * 2 * (a - 1)
        assert len(list(mt.edges())) == mt.num_edges

    @pytest.mark.parametrize("a,b", [(3, 4), (4, 6), (1, 2), (2, 0)])
    def test_non_power_of_two_sides_rejected(self, a, b):
        with pytest.raises(InvalidParameterError):
            MeshOfTrees(a, b)


class TestWiring:
    def test_leaf_joins_exactly_one_row_and_one_column_tree(self):
        mt = MeshOfTrees(4, 4)
        for i in range(4):
            for j in range(4):
                kinds = sorted(k for k, *_ in mt.neighbors(("leaf", i, j)))
                assert kinds == ["col", "row"]

    def test_leaf_parents_are_correct_heap_slots(self):
        mt = MeshOfTrees(4, 8)
        # leaf (i, j) hangs off heap slot (cols + j) // 2 of row tree i
        assert ("row", 1, (8 + 5) // 2) in mt.neighbors(("leaf", 1, 5))
        assert ("col", 5, (4 + 1) // 2) in mt.neighbors(("leaf", 1, 5))

    def test_row_tree_root_has_no_parent(self):
        mt = MeshOfTrees(4, 4)
        neigh = mt.neighbors(("row", 0, 1))
        assert ("row", 0, 0) not in neigh
        assert len(neigh) == 2  # just its two children

    def test_adjacency_is_symmetric(self):
        mt = MeshOfTrees(2, 4)
        for v in mt.nodes():
            for w in mt.neighbors(v):
                assert v in mt.neighbors(w)

    def test_connected(self):
        mt = MeshOfTrees(4, 4)
        some_leaf = ("leaf", 0, 0)
        assert len(mt.bfs_distances(some_leaf)) == mt.num_nodes


class TestCodec:
    def test_enumeration_codec_round_trip(self):
        mt = MeshOfTrees(2, 4)
        codec = codec_for(mt)
        if codec is None:
            pytest.skip("MeshOfTrees intentionally has no dense codec")
        assert codec.num_nodes == mt.num_nodes
        for v in mt.nodes():
            assert codec.unrank(codec.rank(v)) == v
