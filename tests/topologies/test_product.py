"""Cartesian-product topology tests (Definition 3 preamble)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.topologies.cycle import Cycle
from repro.topologies.hypercube import Hypercube
from repro.topologies.product import CartesianProduct


class TestProductStructure:
    def test_counts(self):
        prod = CartesianProduct(Hypercube(2), Cycle(5))
        assert prod.num_nodes == 20
        assert prod.num_edges == 2 * 2 * 5 + 4 * 5  # |E_G|*|V_H| + |V_G|*|E_H|

    def test_matches_networkx_cartesian_product(self):
        g1, g2 = Hypercube(2), Cycle(4)
        ours = CartesianProduct(g1, g2).to_networkx()
        theirs = nx.cartesian_product(g1.to_networkx(), g2.to_networkx())
        assert nx.is_isomorphic(ours, theirs)

    def test_edge_changes_exactly_one_coordinate(self):
        prod = CartesianProduct(Cycle(4), Cycle(5))
        for v in prod.nodes():
            for w in prod.neighbors(v):
                changed = (v[0] != w[0]) + (v[1] != w[1])
                assert changed == 1

    def test_degree_is_sum_of_factor_degrees(self):
        prod = CartesianProduct(Hypercube(3), Cycle(6))
        assert prod.degree((0, 0)) == 3 + 2

    def test_has_node(self):
        prod = CartesianProduct(Hypercube(1), Cycle(3))
        assert prod.has_node((1, 2))
        assert not prod.has_node((2, 2))
        assert not prod.has_node((1, 3))
        assert not prod.has_node("nope")


class TestRemark5Copies:
    """The product decomposes into disjoint factor copies (Remark 5)."""

    def test_left_copy_is_factor_graph(self):
        prod = CartesianProduct(Hypercube(2), Cycle(3))
        copy_nodes = list(prod.left_copy(1))
        assert len(copy_nodes) == 4
        sub = prod.subgraph_networkx(copy_nodes)
        assert nx.is_isomorphic(sub, Hypercube(2).to_networkx())

    def test_right_copy_is_factor_graph(self):
        prod = CartesianProduct(Hypercube(2), Cycle(5))
        copy_nodes = list(prod.right_copy(3))
        sub = prod.subgraph_networkx(copy_nodes)
        assert nx.is_isomorphic(sub, Cycle(5).to_networkx())

    def test_copies_partition_nodes(self):
        prod = CartesianProduct(Hypercube(2), Cycle(3))
        seen = set()
        for x in Cycle(3).nodes():
            for node in prod.left_copy(x):
                assert node not in seen
                seen.add(node)
        assert len(seen) == prod.num_nodes


class TestDeclaredStructure:
    """The satellite accessors the decomposition engine dispatches on."""

    def test_factors_accessor(self):
        prod = CartesianProduct(Hypercube(2), Cycle(5))
        assert prod.factors() == (prod.left, prod.right)

    def test_transitivity_composes_across_factors(self):
        from repro.topologies.debruijn import DeBruijn

        assert Hypercube(3).is_vertex_transitive
        assert Cycle(5).is_vertex_transitive
        assert not DeBruijn(2).is_vertex_transitive
        assert CartesianProduct(Hypercube(2), Cycle(5)).is_vertex_transitive
        assert not CartesianProduct(
            Hypercube(2), DeBruijn(2)
        ).is_vertex_transitive

    def test_declared_flags_verified_by_bfs_profile(self):
        """A vertex-transitive graph has the same distance profile from
        every vertex — spot-check the declared flags against reality."""
        from repro.topologies.butterfly_cayley import CayleyButterfly
        from repro.topologies.mesh import Mesh, Torus

        def profiles(topology):
            out = set()
            for v in topology.nodes():
                counts: dict[int, int] = {}
                for d in topology.bfs_distances(v).values():
                    counts[d] = counts.get(d, 0) + 1
                out.add(tuple(sorted(counts.items())))
            return out

        for transitive in (Hypercube(3), Cycle(6), CayleyButterfly(3), Torus(3, 4)):
            assert transitive.is_vertex_transitive
            assert len(profiles(transitive)) == 1, transitive.name
        mesh = Mesh(3, 4)
        assert not mesh.is_vertex_transitive
        assert len(profiles(mesh)) > 1
