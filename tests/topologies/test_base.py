"""Micro-tests for the shared :class:`Topology` base-class helpers."""

from __future__ import annotations

from typing import Hashable, Iterator

import pytest

from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.hypercube import Hypercube
from repro.topologies.mesh_of_trees import MeshOfTrees


class TestHasEdge:
    def test_agrees_with_neighbor_membership(self):
        cube = Hypercube(3)
        for u in cube.nodes():
            neighbor_set = set(cube.neighbors(u))
            for v in cube.nodes():
                assert cube.has_edge(u, v) == (v in neighbor_set)

    def test_no_self_loops(self):
        mot = MeshOfTrees(2, 2)
        for v in list(mot.nodes())[:8]:
            assert not mot.has_edge(v, v)

    def test_scan_never_hashes_the_neighbor_list(self):
        """The probe is a short-circuit ``==`` scan — building a set per
        call (the old implementation) would hash every neighbor label and
        blow up on unhashable ones."""

        class ListLabeled(Topology):
            name = "toy"

            @property
            def num_nodes(self) -> int:
                return 2

            def nodes(self) -> Iterator[Hashable]:
                yield [0]
                yield [1]

            def neighbors(self, v: Hashable) -> list:
                return [[1]] if v == [0] else [[0]]

            def has_node(self, v: Hashable) -> bool:
                return v in ([0], [1])

        toy = ListLabeled()
        assert toy.has_edge([0], [1])
        assert not toy.has_edge([0], [0])


class TestBackendKwargValidation:
    def test_python_backend_is_always_available(self):
        cube = Hypercube(3)
        source = next(iter(cube.nodes()))
        dist = cube.bfs_distances(source, backend="python")
        assert len(dist) == cube.num_nodes

    def test_codecless_families_reject_fast_backends(self):
        mot = MeshOfTrees(2, 2)
        source = next(iter(mot.nodes()))
        for backend in ("csr", "implicit"):
            with pytest.raises(InvalidParameterError):
                mot.bfs_distances(source, backend=backend)
