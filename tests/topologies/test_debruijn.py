"""de Bruijn and hyper-deBruijn tests (the baseline family [1])."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import InvalidParameterError
from repro.topologies.debruijn import DeBruijn
from repro.topologies.hyperdebruijn import HyperDeBruijn


class TestDeBruijn:
    def test_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            DeBruijn(0)

    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_node_count(self, n):
        assert DeBruijn(n).num_nodes == 2**n

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_degrees_between_2_and_4(self, n):
        d = DeBruijn(n)
        lo, hi = d.degree_stats()
        assert lo == 2 and hi == 4

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_irregular(self, n):
        assert not DeBruijn(n).is_regular()

    def test_all_zero_and_all_one_have_degree_two(self):
        d = DeBruijn(4)
        assert d.degree(0) == 2
        assert d.degree(0b1111) == 2

    def test_no_self_loops(self):
        d = DeBruijn(3)
        for v in d.nodes():
            assert v not in d.neighbors(v)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_shift_successors_are_neighbors(self, n):
        d = DeBruijn(n)
        m = (1 << n) - 1
        for v in d.nodes():
            for b in (0, 1):
                w = ((v << 1) & m) | b
                if w != v:
                    assert w in d.neighbors(v)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_connected_with_diameter_at_most_n(self, n):
        g = DeBruijn(n).to_networkx()
        assert nx.is_connected(g)
        assert nx.diameter(g) <= n

    def test_format(self):
        assert DeBruijn(4).format_node(0b0101) == "0101"


class TestHyperDeBruijn:
    def test_counts(self):
        hd = HyperDeBruijn(2, 3)
        assert hd.num_nodes == 32
        g = hd.to_networkx()
        assert g.number_of_edges() == hd.num_edges

    def test_degree_range_matches_figure1(self):
        hd = HyperDeBruijn(3, 4)
        lo, hi = hd.degree_stats()
        assert lo == hd.min_degree() == 5  # m + 2
        assert hi == hd.max_degree() == 7  # m + 4

    @pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3), (2, 4)])
    def test_diameter_formula(self, m, n):
        hd = HyperDeBruijn(m, n)
        assert nx.diameter(hd.to_networkx()) == hd.diameter_formula() == m + n

    @pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3)])
    def test_fault_tolerance_is_m_plus_2(self, m, n):
        """Figure 1: HD's connectivity is m+2 — strictly below most degrees."""
        hd = HyperDeBruijn(m, n)
        g = hd.to_networkx()
        assert nx.node_connectivity(g) == hd.fault_tolerance_formula() == m + 2

    def test_not_regular(self):
        assert not HyperDeBruijn(2, 4).is_regular()

    def test_format_node(self):
        hd = HyperDeBruijn(2, 3)
        assert hd.format_node((0b10, 0b011)) == "(10;011)"

    def test_factor_accessors(self):
        hd = HyperDeBruijn(2, 3)
        assert hd.hypercube.m == 2
        assert hd.debruijn.n == 3
