"""Torus and open-mesh guests: paper formulas, structure, codec round-trip."""

from __future__ import annotations

import pytest

from repro.errors import InvalidLabelError, InvalidParameterError
from repro.fastgraph.codecs import codec_for
from repro.topologies.mesh import Mesh, Torus


class TestTorus:
    @pytest.mark.parametrize("n1,n2", [(3, 3), (3, 5), (4, 6)])
    def test_node_and_edge_counts(self, n1, n2):
        t = Torus(n1, n2)
        assert t.num_nodes == n1 * n2
        assert t.num_edges == 2 * n1 * n2  # 4-regular: 4·n1·n2/2
        assert len(list(t.nodes())) == t.num_nodes
        assert len(list(t.edges())) == t.num_edges

    def test_four_regular(self):
        t = Torus(3, 4)
        assert t.is_regular() and t.degree_stats() == (4, 4)

    def test_wraparound_edges(self):
        t = Torus(3, 5)
        assert t.has_edge((0, 0), (2, 0))  # row wrap
        assert t.has_edge((0, 0), (0, 4))  # column wrap
        assert not t.has_edge((0, 0), (1, 1))

    def test_too_small_sides_rejected(self):
        with pytest.raises(InvalidParameterError):
            Torus(2, 3)

    def test_invalid_label_rejected(self):
        with pytest.raises(InvalidLabelError):
            Torus(3, 3).neighbors((3, 0))

    def test_codec_round_trip(self):
        t = Torus(3, 4)
        codec = codec_for(t)
        assert codec is not None and codec.num_nodes == t.num_nodes
        ranks = sorted(codec.rank(v) for v in t.nodes())
        assert ranks == list(range(t.num_nodes))
        for v in t.nodes():
            assert codec.unrank(codec.rank(v)) == v


class TestMesh:
    @pytest.mark.parametrize("n1,n2", [(1, 1), (1, 5), (3, 4), (5, 5)])
    def test_node_and_edge_counts(self, n1, n2):
        m = Mesh(n1, n2)
        assert m.num_nodes == n1 * n2
        assert m.num_edges == n1 * (n2 - 1) + n2 * (n1 - 1)
        assert len(list(m.nodes())) == m.num_nodes
        assert len(list(m.edges())) == m.num_edges

    def test_no_wraparound(self):
        m = Mesh(3, 3)
        assert not m.has_edge((0, 0), (2, 0))
        assert not m.has_edge((0, 0), (0, 2))
        assert m.has_edge((0, 0), (0, 1))

    def test_corner_edge_interior_degrees(self):
        m = Mesh(3, 4)
        assert m.degree((0, 0)) == 2
        assert m.degree((0, 1)) == 3
        assert m.degree((1, 1)) == 4

    def test_codec_round_trip(self):
        m = Mesh(3, 4)
        codec = codec_for(m)
        assert codec is not None and codec.num_nodes == m.num_nodes
        for v in m.nodes():
            assert codec.unrank(codec.rank(v)) == v
