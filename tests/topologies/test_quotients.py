"""Quotient-map tests: the butterfly covers the de Bruijn graph."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hyperdebruijn import HyperDeBruijn
from repro.topologies.quotients import (
    butterfly_to_debruijn,
    debruijn_fiber,
    hb_to_hyperdebruijn,
    verify_quotient_homomorphism,
)


class TestButterflyCover:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_homomorphism_exhaustive(self, n):
        assert verify_quotient_homomorphism(n)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_surjective_with_uniform_fibers(self, n):
        butterfly = CayleyButterfly(n)
        counts: dict[int, int] = {}
        for v in butterfly.nodes():
            counts[butterfly_to_debruijn(n, v)] = (
                counts.get(butterfly_to_debruijn(n, v), 0) + 1
            )
        assert set(counts) == set(range(1 << n))  # surjective
        assert all(c == n for c in counts.values())  # n-to-1

    @pytest.mark.parametrize("n", [3, 4])
    def test_fibers_invert_the_map(self, n):
        for word in range(1 << n):
            fiber = debruijn_fiber(n, word)
            assert len(fiber) == n
            for node in fiber:
                assert butterfly_to_debruijn(n, node) == word

    def test_identity_node_maps_to_zero(self):
        assert butterfly_to_debruijn(4, (0, 0)) == 0

    def test_fiber_validates_word(self):
        with pytest.raises(InvalidParameterError):
            debruijn_fiber(3, 9)

    def test_straight_cycle_collapses_to_constant_word(self):
        """The straight n-cycle of word 0 is exactly the fiber of 0^n."""
        n = 4
        fiber = set(debruijn_fiber(n, 0))
        straight = {(level, 0) for level in range(n)}
        assert fiber == straight


class TestHBQuotient:
    @pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3), (2, 4)])
    def test_hb_maps_onto_hd(self, m, n):
        hb = HyperButterfly(m, n)
        hd = HyperDeBruijn(m, n)
        images = {hb_to_hyperdebruijn(hb, v) for v in hb.nodes()}
        assert images == set(hd.nodes())

    @pytest.mark.parametrize(("m", "n"), [(1, 3), (2, 3)])
    def test_edges_map_to_edges_or_collapse(self, m, n):
        hb = HyperButterfly(m, n)
        hd = HyperDeBruijn(m, n)
        for u in hb.nodes():
            iu = hb_to_hyperdebruijn(hb, u)
            for v in hb.neighbors(u):
                iv = hb_to_hyperdebruijn(hb, v)
                if iu != iv:
                    assert hd.has_edge(iu, iv)

    def test_fiber_size_is_n(self, hb23):
        from collections import Counter

        counter = Counter(hb_to_hyperdebruijn(hb23, v) for v in hb23.nodes())
        assert set(counter.values()) == {hb23.n}

    def test_explains_regularity_gap(self, hb23):
        """HD's degree-deficient vertices (constant de Bruijn words) lift to
        perfectly regular butterfly fibers — the paper's regularity fix."""
        hd = HyperDeBruijn(hb23.m, hb23.n)
        deficient = [v for v in hd.nodes() if hd.degree(v) < hd.max_degree()]
        assert deficient  # HD really is irregular
        for v in deficient:
            h, word = v
            for b in debruijn_fiber(hb23.n, word):
                assert hb23.degree((h, b)) == hb23.m + 4
