"""Hypercube topology tests (paper Section 2.1 facts)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidLabelError, InvalidParameterError
from repro.topologies.hypercube import Hypercube


class TestStructure:
    @pytest.mark.parametrize("m", [0, 1, 2, 3, 4, 6])
    def test_counts(self, m):
        h = Hypercube(m)
        assert h.num_nodes == 2**m
        assert h.num_edges == m * 2 ** (m - 1) if m else h.num_edges == 0

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            Hypercube(-1)

    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_neighbors_differ_in_one_bit(self, m):
        h = Hypercube(m)
        for v in h.nodes():
            for w in h.neighbors(v):
                assert (v ^ w).bit_count() == 1

    def test_regular(self):
        assert Hypercube(5).is_regular()
        assert Hypercube(5).degree(0) == 5

    def test_matches_networkx_hypercube(self):
        h = Hypercube(4)
        ours = h.to_networkx()
        theirs = nx.hypercube_graph(4)
        assert nx.is_isomorphic(ours, theirs)

    def test_invalid_node(self):
        h = Hypercube(2)
        with pytest.raises(InvalidLabelError):
            h.neighbors(4)
        assert not h.has_node("01")  # labels are ints, not strings


class TestMetrics:
    @given(st.integers(1, 8), st.data())
    def test_distance_is_hamming(self, m, data):
        h = Hypercube(m)
        u = data.draw(st.integers(0, 2**m - 1))
        v = data.draw(st.integers(0, 2**m - 1))
        assert h.distance(u, v) == (u ^ v).bit_count()

    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_diameter_and_antipode(self, m):
        h = Hypercube(m)
        assert h.diameter() == m
        assert h.distance(0, h.antipode(0)) == m

    def test_eccentricity_equals_diameter(self):
        h = Hypercube(4)
        assert h.eccentricity(0) == 4

    def test_format_node_msb_first(self):
        assert Hypercube(4).format_node(0b0010) == "0010"

    def test_bfs_distances_respect_blocked(self):
        h = Hypercube(3)
        # blocking all neighbors of 0 except 1 forces detours through 1
        dist = h.bfs_distances(0, blocked=frozenset({2, 4}))
        assert dist[0] == 0 and dist[1] == 1
        assert 2 not in dist and 4 not in dist
        assert dist[3] == 2  # 0 -> 1 -> 3
