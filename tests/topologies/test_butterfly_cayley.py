"""Cayley butterfly tests: PI/CI vocabulary and the Remark 2 isomorphism."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.topologies.butterfly import WrappedButterfly
from repro.topologies.butterfly_cayley import (
    CayleyButterfly,
    cayley_to_classic,
    classic_to_cayley,
)


class TestVocabulary:
    def test_identity_node(self, bf3):
        assert bf3.identity_node() == (0, 0)
        assert bf3.format_node((0, 0)) == "abc"

    def test_paper_pi_examples(self, bf3):
        """Definition 1's examples: PI(bca) = 1, PI(cab) = 2."""
        assert bf3.node_from_string("bca") == (1, 0)
        assert bf3.node_from_string("cab") == (2, 0)
        assert CayleyButterfly.permutation_index((1, 0)) == 1

    def test_complementation_index(self, bf3):
        # "aBc" complements symbol t_1 only -> CI = 2
        node = bf3.node_from_string("aBc")
        assert CayleyButterfly.complementation_index(node) == 0b010

    def test_format_roundtrip(self, bf4):
        for node in bf4.nodes():
            assert bf4.node_from_string(bf4.format_node(node)) == node

    def test_node_from_string_rejects_bad_labels(self, bf3):
        with pytest.raises(InvalidParameterError):
            bf3.node_from_string("acb")  # not a cyclic shift
        with pytest.raises(InvalidParameterError):
            bf3.node_from_string("ab")  # wrong length

    def test_symbol_sequence(self, bf3):
        seq = bf3.symbol_sequence((1, 0b100))
        assert [s for s, _ in seq] == [1, 2, 0]
        assert [c for _, c in seq] == [False, True, False]


class TestGeneratorApplications:
    def test_g_rotates_label(self, bf3):
        node = bf3.node_from_string("abc")
        assert bf3.format_node(bf3.apply_g(node)) == "bca"

    def test_f_complements_wrapped_symbol(self, bf3):
        node = bf3.node_from_string("abc")
        assert bf3.format_node(bf3.apply_f(node)) == "bcA"

    def test_f_inv_complements_front_symbol(self, bf3):
        node = bf3.node_from_string("abc")
        assert bf3.format_node(bf3.apply_f_inv(node)) == "Cab"

    def test_g_inv_undoes_g(self, bf4):
        for node in [(0, 0), (2, 0b1010), (3, 0b0110)]:
            assert bf4.apply_g_inv(bf4.apply_g(node)) == node


class TestRemark2Isomorphism:
    """The identity map (PI, CI) -> (level=PI, word=CI) preserves edges."""

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_isomorphism_exhaustive(self, n):
        cayley = CayleyButterfly(n)
        classic = WrappedButterfly(n)
        for v in cayley.nodes():
            image = cayley_to_classic(v)
            assert classic.has_node(image)
            expected = {cayley_to_classic(w) for w in cayley.neighbors(v)}
            assert expected == set(classic.neighbors(image))

    def test_maps_invert_each_other(self):
        assert classic_to_cayley(cayley_to_classic((2, 5))) == (2, 5)


class TestCayleyServices:
    def test_counts(self, bf4):
        assert bf4.num_nodes == 64
        assert bf4.num_edges == 128
        assert bf4.is_regular()

    def test_diameter_matches_formula(self, bf3, bf4):
        assert bf3.diameter() == bf3.diameter_formula() == 4
        assert bf4.diameter() == bf4.diameter_formula() == 6

    def test_distance_symmetric(self, bf3):
        nodes = list(bf3.nodes())
        for u in nodes[::5]:
            for v in nodes[::7]:
                assert bf3.distance(u, v) == bf3.distance(v, u)

    def test_shortest_path_endpoints(self, bf3):
        path = bf3.shortest_path((0, 0), (2, 0b101))
        assert path[0] == (0, 0)
        assert path[-1] == (2, 0b101)
