"""Guest-graph topologies: cycles, meshes, trees, mesh of trees."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import InvalidParameterError
from repro.topologies.cycle import Cycle
from repro.topologies.mesh import Mesh, Torus
from repro.topologies.mesh_of_trees import MeshOfTrees
from repro.topologies.tree import CompleteBinaryTree


class TestCycle:
    def test_rejects_short(self):
        with pytest.raises(InvalidParameterError):
            Cycle(2)

    @pytest.mark.parametrize("k", [3, 4, 7])
    def test_structure(self, k):
        c = Cycle(k)
        assert c.num_nodes == c.num_edges == k
        assert nx.is_isomorphic(c.to_networkx(), nx.cycle_graph(k))

    def test_distance_and_diameter(self):
        c = Cycle(7)
        assert c.distance(0, 3) == 3
        assert c.distance(0, 5) == 2
        assert c.diameter() == 3


class TestTorusAndMesh:
    def test_torus_is_product_of_cycles(self):
        t = Torus(3, 4)
        expected = nx.cartesian_product(nx.cycle_graph(3), nx.cycle_graph(4))
        assert nx.is_isomorphic(t.to_networkx(), expected)

    def test_torus_counts(self):
        t = Torus(4, 5)
        assert t.num_nodes == 20
        assert t.num_edges == 40
        assert t.is_regular()

    def test_mesh_counts(self):
        m = Mesh(3, 4)
        assert m.num_nodes == 12
        assert m.num_edges == 3 * 3 + 4 * 2
        assert nx.is_isomorphic(m.to_networkx(), nx.grid_2d_graph(3, 4))

    def test_mesh_corner_degree(self):
        m = Mesh(3, 3)
        assert m.degree((0, 0)) == 2
        assert m.degree((1, 1)) == 4


class TestCompleteBinaryTree:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_counts(self, k):
        t = CompleteBinaryTree(k)
        assert t.num_nodes == 2**k - 1
        assert t.num_edges == t.num_nodes - 1
        assert nx.is_tree(t.to_networkx())

    def test_heap_relations(self):
        t = CompleteBinaryTree(3)
        assert t.parent(1) is None
        assert t.parent(5) == 2
        assert t.children(2) == [4, 5]
        assert t.children(4) == []
        assert t.is_leaf(7)
        assert not t.is_leaf(3)

    def test_depth_and_leaves(self):
        t = CompleteBinaryTree(4)
        assert t.depth(1) == 0
        assert t.depth(15) == 3
        leaves = list(t.leaves())
        assert len(leaves) == 8
        assert t.leaf_index(leaves[0]) == 0
        assert t.leaf_index(leaves[-1]) == 7

    def test_leaf_index_rejects_internal(self):
        t = CompleteBinaryTree(3)
        with pytest.raises(InvalidParameterError):
            t.leaf_index(2)


class TestMeshOfTrees:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidParameterError):
            MeshOfTrees(3, 4)

    @pytest.mark.parametrize(("r", "c"), [(2, 2), (2, 4), (4, 4), (4, 8)])
    def test_counts(self, r, c):
        mt = MeshOfTrees(r, c)
        assert mt.num_nodes == 3 * r * c - r - c
        g = mt.to_networkx()
        assert g.number_of_nodes() == mt.num_nodes
        assert g.number_of_edges() == mt.num_edges
        assert nx.is_connected(g)

    def test_leaf_has_two_parents(self):
        mt = MeshOfTrees(4, 4)
        neighbors = mt.neighbors(mt.leaf(2, 3))
        assert len(neighbors) == 2
        kinds = sorted(k for k, _, _ in neighbors)
        assert kinds == ["col", "row"]

    def test_row_tree_is_a_tree_over_its_leaves(self):
        mt = MeshOfTrees(2, 8)
        row_nodes = [("row", 0, v) for v in range(1, 8)] + [
            ("leaf", 0, j) for j in range(8)
        ]
        sub = mt.subgraph_networkx(row_nodes)
        # the column-tree parents are outside, so this must be exactly T(4)
        assert nx.is_tree(sub)
        assert sub.number_of_nodes() == 15

    def test_roots(self):
        mt = MeshOfTrees(4, 2)
        assert mt.row_root(3) == ("row", 3, 1)
        assert mt.col_root(1) == ("col", 1, 1)

    def test_cross_trees_meet_only_at_leaves(self):
        mt = MeshOfTrees(2, 2)
        for v in mt.nodes():
            kind = v[0]
            for w in mt.neighbors(v):
                if kind == "row":
                    assert w[0] in ("row", "leaf")
                if kind == "col":
                    assert w[0] in ("col", "leaf")
