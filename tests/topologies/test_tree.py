"""Complete binary tree ``T(k)``: counts, heap structure, codec round-trip."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.fastgraph.codecs import codec_for
from repro.topologies.tree import CompleteBinaryTree


class TestCounts:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_node_and_edge_counts(self, k):
        t = CompleteBinaryTree(k)
        assert t.num_nodes == 2**k - 1
        assert t.num_edges == t.num_nodes - 1  # it is a tree
        assert len(list(t.nodes())) == t.num_nodes
        assert len(list(t.edges())) == t.num_edges

    def test_k_below_one_rejected(self):
        with pytest.raises(InvalidParameterError):
            CompleteBinaryTree(0)


class TestHeapStructure:
    def test_root_and_children(self):
        t = CompleteBinaryTree(3)
        assert t.root == 1
        assert t.parent(t.root) is None
        assert t.children(1) == [2, 3]
        assert t.parent(5) == 2

    def test_leaves_and_depth(self):
        t = CompleteBinaryTree(3)
        assert list(t.leaves()) == [4, 5, 6, 7]
        assert all(t.is_leaf(v) for v in t.leaves())
        assert t.depth(t.root) == 0
        assert {t.depth(v) for v in t.leaves()} == {t.k - 1}

    def test_neighbors_consistent_with_parent_children(self):
        t = CompleteBinaryTree(4)
        for v in t.nodes():
            expected = ([] if t.parent(v) is None else [t.parent(v)]) + t.children(v)
            assert sorted(t.neighbors(v)) == sorted(expected)

    def test_single_level_tree_is_one_node(self):
        t = CompleteBinaryTree(1)
        assert list(t.nodes()) == [1]
        assert t.neighbors(1) == []


class TestCodec:
    def test_codec_round_trip(self):
        t = CompleteBinaryTree(4)
        codec = codec_for(t)
        assert codec is not None and codec.num_nodes == t.num_nodes
        ranks = sorted(codec.rank(v) for v in t.nodes())
        assert ranks == list(range(t.num_nodes))
        for v in t.nodes():
            assert codec.unrank(codec.rank(v)) == v

    def test_fast_and_python_bfs_agree(self):
        t = CompleteBinaryTree(4)
        fast = t.bfs_distances(t.root)
        slow = t._bfs_distances_python(t.root, frozenset())
        assert fast == slow
