"""Classic wrapped-butterfly tests (Remark 1 facts)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import InvalidParameterError
from repro.topologies.butterfly import WrappedButterfly


class TestStructure:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_counts(self, n):
        b = WrappedButterfly(n)
        assert b.num_nodes == n * 2**n
        assert b.num_edges == n * 2 ** (n + 1)
        g = b.to_networkx()
        assert g.number_of_nodes() == b.num_nodes
        assert g.number_of_edges() == b.num_edges

    def test_rejects_small_n(self):
        with pytest.raises(InvalidParameterError):
            WrappedButterfly(2)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_four_regular(self, n):
        b = WrappedButterfly(n)
        assert b.is_regular()
        assert b.degree((0, 0)) == 4

    def test_neighbors_change_level_by_one(self):
        b = WrappedButterfly(4)
        for w, level in [(0, 0), (7, 2), (15, 3)]:
            for w2, level2 in b.neighbors((w, level)):
                assert (level2 - level) % 4 in (1, 3)

    def test_cross_edge_flips_source_level_bit(self):
        b = WrappedButterfly(4)
        v = (0b0000, 2)
        assert b.forward_cross(v) == (0b0100, 3)
        assert b.backward_cross(v) == (0b0010, 1)

    def test_directional_accessors_are_neighbors(self):
        b = WrappedButterfly(3)
        v = (0b101, 1)
        moves = [
            b.forward_straight(v),
            b.forward_cross(v),
            b.backward_straight(v),
            b.backward_cross(v),
        ]
        assert sorted(moves) == sorted(b.neighbors(v))

    def test_level_nodes(self):
        b = WrappedButterfly(3)
        assert len(list(b.level_nodes(1))) == 8
        with pytest.raises(InvalidParameterError):
            list(b.level_nodes(3))

    def test_format_node(self):
        assert WrappedButterfly(3).format_node((0b011, 2)) == "<011;2>"


class TestMetrics:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_diameter_formula_matches_exact(self, n):
        """Remark 1 claims floor(3n/2); Theorem 3 writes the ceiling —
        exact BFS settles the floor reading (see EXPERIMENTS.md)."""
        b = WrappedButterfly(n)
        assert nx.diameter(b.to_networkx()) == b.diameter_formula() == (3 * n) // 2

    @pytest.mark.parametrize("n", [3, 4])
    def test_connected_and_vertex_transitive_degree(self, n):
        g = WrappedButterfly(n).to_networkx()
        assert nx.is_connected(g)

    @pytest.mark.parametrize("n", [3, 4])
    def test_vertex_connectivity_is_four(self, n):
        """Remark 1: B_n is maximally fault tolerant (kappa = 4)."""
        g = WrappedButterfly(n).to_networkx()
        assert nx.node_connectivity(g) == 4
