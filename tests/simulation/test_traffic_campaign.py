"""Traffic campaign: structure, determinism, CLI, and link configuration."""

from __future__ import annotations

import json

import pytest

from repro.errors import InvalidParameterError
from repro.simulation.campaign import (
    TrafficCampaignConfig,
    run_traffic_campaign,
    write_campaign_json,
)
from repro.simulation.linkconfig import LinkClass, LinkConfig


@pytest.fixture(scope="module")
def quick_results():
    config = TrafficCampaignConfig.quick(2, 3)
    return config, run_traffic_campaign(config)


class TestTrafficCampaign:
    def test_three_networks_with_all_families(self, quick_results):
        config, results = quick_results
        assert [n["name"] for n in results["networks"]] == [
            "HB(2,3)",
            "HD(2,5)",
            "H_7",
        ]
        for network in results["networks"]:
            assert [f["family"] for f in network["families"]] == list(
                config.families
            )
            for fam in network["families"]:
                assert len(fam["curve"]) == len(config.loads)
                for row in fam["curve"]:
                    assert row["flows"] >= config.flows_target
                    assert 0.0 <= row["delivery_ratio"] <= 1.0
                    assert row["throughput_per_node"] > 0.0

    def test_saturation_is_the_curve_peak(self, quick_results):
        _, results = quick_results
        for network in results["networks"]:
            for fam in network["families"]:
                peak = max(r["throughput_per_node"] for r in fam["curve"])
                assert fam["saturation_throughput"] == peak

    def test_fault_free_loads_deliver_everything(self, quick_results):
        _, results = quick_results
        for network in results["networks"]:
            for fam in network["families"]:
                for row in fam["curve"]:
                    assert row["delivered"] == row["flows"]

    def test_deterministic_json(self, quick_results, tmp_path):
        config, results = quick_results
        again = run_traffic_campaign(config)
        a = write_campaign_json(results, tmp_path / "a.json")
        b = write_campaign_json(again, tmp_path / "b.json")
        assert a == b
        assert json.loads(a)["config"]["m"] == 2

    def test_unknown_family_rejected(self):
        config = TrafficCampaignConfig.quick(2, 3)
        bad = TrafficCampaignConfig(
            m=2, n=3, families=("uniform", "nope"), loads=config.loads
        )
        with pytest.raises(InvalidParameterError):
            run_traffic_campaign(bad)

    def test_cli_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_traffic.json"
        code = main(
            [
                "traffic-campaign", "2", "3", "--quick",
                "--families", "uniform,tornado",
                "--flows-target", "150",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "saturation" in captured and "wrote" in captured
        payload = json.loads(out.read_text())
        families = {
            f["family"] for n in payload["networks"] for f in n["families"]
        }
        assert families == {"uniform", "tornado"}


class TestLinkConfig:
    def test_defaults_are_the_unit_model(self):
        lat, cap = LinkConfig().resolve(("g", "f"))
        assert lat.tolist() == [1, 1, 1]
        assert cap.tolist() == [1, 1, 1]

    def test_assignment_and_default_fallback(self):
        config = LinkConfig(
            classes=[LinkClass("cube", latency=2, capacity=3)],
            assign={"h_0": "cube"},
        )
        lat, cap = config.resolve(("h_0", "g"))
        assert lat.tolist() == [2, 1, 1]  # trailing slot is the default
        assert cap.tolist() == [3, 1, 1]
        assert config.class_for("h_0").name == "cube"
        assert config.class_for("unassigned").name == "default"

    def test_uniform_constructor(self):
        lat, cap = LinkConfig.uniform(latency=5, capacity=2).resolve(("a",))
        assert lat.tolist() == [5, 5]
        assert cap.tolist() == [2, 2]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LinkClass("bad", latency=0)
        with pytest.raises(InvalidParameterError):
            LinkClass("bad", capacity=0)
        with pytest.raises(InvalidParameterError):
            LinkConfig(assign={"g": "missing"})
        with pytest.raises(InvalidParameterError):
            LinkConfig(
                classes=[LinkClass("x", latency=1), LinkClass("x", latency=2)]
            )
