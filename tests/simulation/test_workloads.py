"""Rank-based workload zoo: determinism, structure, and address views."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError
from repro.fastgraph.codecs import codec_for
from repro.simulation.workloads import (
    WORKLOAD_FAMILIES,
    TrafficMatrix,
    address_view,
    bit_reversal_pairs,
    build_workload,
    bursty_arrivals,
    derangement_pairs,
    incast_pairs,
    paced_arrivals,
    tornado_pairs,
    translation_pairs,
    transpose_pairs,
    uniform_pairs,
)
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn
from repro.topologies.mesh import Torus

TOPOLOGIES = [
    HyperButterfly(2, 3),
    HyperDeBruijn(2, 3),
    Hypercube(4),
    CayleyButterfly(3),
]


class TestTrafficMatrix:
    def test_from_ranks_and_lengths(self):
        tm = TrafficMatrix.from_ranks([0, 1], [2, 3], inject_at=[0, 4])
        assert tm.num_flows == 2
        assert tm.inject_at.tolist() == [0, 4]

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            TrafficMatrix.from_ranks([0, 1], [2])
        with pytest.raises(InvalidParameterError):
            TrafficMatrix.from_ranks([0], [2], inject_at=[1, 2])

    def test_pairs_roundtrip_through_codec(self):
        hb = HyperButterfly(2, 3)
        codec = codec_for(hb)
        tm = TrafficMatrix.from_ranks([0, 5, 9], [3, 2, 7])
        pairs = tm.pairs(codec)
        back = TrafficMatrix.from_pairs(pairs, codec)
        assert np.array_equal(back.sources, tm.sources)
        assert np.array_equal(back.targets, tm.targets)

    def test_with_arrivals_replaces_schedule(self):
        tm = TrafficMatrix.from_ranks([0, 1], [2, 3])
        paced = tm.with_arrivals(np.array([2, 2]))
        assert paced.inject_at.tolist() == [2, 2]
        assert tm.inject_at.tolist() == [0, 0]  # original untouched


class TestAddressViews:
    @pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
    def test_split_join_roundtrips_every_rank(self, topology):
        view = address_view(topology)
        assert view is not None
        codec = codec_for(topology)
        ranks = np.arange(codec.num_nodes, dtype=np.int64)
        addr, aux = view.split(ranks)
        assert int(addr.max()) < (1 << view.bits)
        assert np.array_equal(view.join(addr, aux), ranks)

    def test_hb_address_width_is_m_plus_n(self):
        hb = HyperButterfly(2, 3)
        assert address_view(hb).bits == hb.m + hb.n

    def test_no_view_for_non_power_of_two(self):
        assert address_view(Torus(3, 4)) is None


class TestGenerators:
    def test_uniform_distinct_and_deterministic(self):
        s1, t1 = uniform_pairs(96, 50, seed=3)
        s2, t2 = uniform_pairs(96, 50, seed=3)
        assert np.array_equal(s1, s2) and np.array_equal(t1, t2)
        assert not np.any(s1 == t1)
        with pytest.raises(InvalidParameterError):
            uniform_pairs(1, 5)
        with pytest.raises(InvalidParameterError):
            uniform_pairs(10, -1)

    @given(st.integers(2, 400), st.integers(0, 2**31))
    @settings(max_examples=120, deadline=None)
    def test_derangement_is_a_fixed_point_free_bijection(self, n, seed):
        src, dst = derangement_pairs(n, seed=seed)
        assert src.tolist() == list(range(n))
        assert sorted(dst.tolist()) == list(range(n))
        assert not np.any(src == dst)

    def test_derangement_deterministic_and_seed_sensitive(self):
        a = derangement_pairs(64, seed=1)[1]
        assert np.array_equal(a, derangement_pairs(64, seed=1)[1])
        assert not np.array_equal(a, derangement_pairs(64, seed=2)[1])

    def test_incast_targets_cycle_over_sinks(self):
        src, dst = incast_pairs(50, 40, sinks=4, seed=0)
        sinks = sorted(set(dst.tolist()))
        assert len(sinks) == 4
        assert not np.any(src == dst)
        # round-robin: consecutive flows hit distinct sinks
        assert len(set(dst[:4].tolist())) == 4
        with pytest.raises(InvalidParameterError):
            incast_pairs(10, 5, sinks=10)

    def test_tornado_is_half_rotation(self):
        src, dst = tornado_pairs(10)
        assert np.array_equal(dst, (src + 5) % 10)

    @pytest.mark.parametrize(
        "topology",
        [HyperButterfly(2, 3), HyperDeBruijn(2, 3), Hypercube(4)],
        ids=lambda t: t.name,
    )
    def test_bit_reversal_is_an_involution_on_moved_ranks(self, topology):
        src, dst = bit_reversal_pairs(topology)
        assert not np.any(src == dst)
        # applying the permutation twice returns to the source
        forward = dict(zip(src.tolist(), dst.tolist()))
        assert all(forward.get(t, t) == s for s, t in forward.items())

    def test_transpose_moves_and_preserves_level(self):
        hb = HyperButterfly(2, 3)
        codec = codec_for(hb)
        src, dst = transpose_pairs(hb)
        assert not np.any(src == dst)
        for s, t in zip(src[:16].tolist(), dst[:16].tolist()):
            (_, (xs, _)), (_, (xt, _)) = codec.unrank(s), codec.unrank(t)
            assert xs == xt  # butterfly level is auxiliary, never permuted

    def test_translation_matches_group_multiplication(self):
        hb = HyperButterfly(2, 3)
        codec = codec_for(hb)
        src, dst = translation_pairs(hb)
        delta = codec.unrank(codec.rank(((1 << hb.m) - 1, (hb.n // 2, 0))))
        for s, t in zip(src[:20].tolist(), dst[:20].tolist()):
            assert codec.unrank(t) == hb.group.multiply(codec.unrank(s), delta)
        with pytest.raises(InvalidParameterError):
            translation_pairs(hb, delta_rank=0)
        with pytest.raises(InvalidParameterError):
            translation_pairs(Hypercube(4))  # no default delta off HB


class TestArrivals:
    def test_paced_rate(self):
        at = paced_arrivals(10, per_tick=3)
        assert at.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]

    def test_bursty_is_on_off_and_respects_rate(self):
        at = bursty_arrivals(200, per_tick=5, on_mean=3.0, off_mean=4.0, seed=7)
        assert at[0] == 0  # starts inside a burst
        assert np.all(np.diff(at) >= 0)  # nondecreasing
        ticks, counts = np.unique(at, return_counts=True)
        assert counts.max() <= 5
        # off periods leave holes in the tick sequence
        assert len(ticks) < int(ticks[-1]) + 1
        assert np.array_equal(
            at, bursty_arrivals(200, per_tick=5, on_mean=3.0, off_mean=4.0, seed=7)
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            paced_arrivals(5, per_tick=0)
        with pytest.raises(InvalidParameterError):
            bursty_arrivals(5, per_tick=1, on_mean=0.5)


class TestBuildWorkload:
    @pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
    @pytest.mark.parametrize("family", sorted(WORKLOAD_FAMILIES))
    def test_every_family_on_every_topology(self, topology, family):
        tm = build_workload(topology, family, count=48, seed=5, per_tick=12)
        codec = codec_for(topology)
        assert tm.num_flows == 48
        assert int(tm.sources.min()) >= 0
        assert int(tm.targets.max()) < codec.num_nodes
        assert not np.any(tm.sources == tm.targets)
        assert int(tm.inject_at.max()) >= 3  # pacing actually applied

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidParameterError):
            build_workload(HyperButterfly(2, 3), "nope", count=4)

    def test_deterministic_per_seed(self):
        hb = HyperButterfly(2, 3)
        a = build_workload(hb, "permutation", count=200, seed=3)
        b = build_workload(hb, "permutation", count=200, seed=3)
        c = build_workload(hb, "permutation", count=200, seed=4)
        assert np.array_equal(a.targets, b.targets)
        assert not np.array_equal(a.targets, c.targets)

    def test_permutation_waves_use_distinct_derangements(self):
        hb = HyperButterfly(2, 3)
        n = hb.num_nodes
        tm = build_workload(hb, "permutation", count=2 * n, seed=3)
        assert not np.array_equal(tm.targets[:n], tm.targets[n : 2 * n])
