"""Traffic generator and leader-election tests."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError, SimulationError
from repro.simulation.leader_election import (
    flood_max_election,
    tree_based_election,
)
from repro.simulation.traffic import (
    hotspot_traffic,
    permutation_traffic,
    uniform_random_traffic,
)
from repro.topologies.hypercube import Hypercube


class TestTraffic:
    def test_uniform_pairs_distinct_endpoints(self, hb13):
        pairs = uniform_random_traffic(hb13, 60, seed=1)
        assert len(pairs) == 60
        assert all(s != t for s, t in pairs)
        assert all(hb13.has_node(s) and hb13.has_node(t) for s, t in pairs)

    def test_uniform_deterministic(self, hb13):
        assert uniform_random_traffic(hb13, 10, seed=5) == uniform_random_traffic(
            hb13, 10, seed=5
        )

    def test_uniform_rejects_negative(self, hb13):
        with pytest.raises(InvalidParameterError):
            uniform_random_traffic(hb13, -1)

    def test_permutation_is_derangement(self, hb13):
        pairs = permutation_traffic(hb13, seed=2)
        sources = [s for s, _ in pairs]
        targets = [t for _, t in pairs]
        assert sorted(map(repr, sources)) == sorted(map(repr, targets))
        assert all(s != t for s, t in pairs)
        assert len(set(targets)) == hb13.num_nodes

    def test_hotspot_concentration(self, hb13):
        hot = hb13.identity_node()
        pairs = hotspot_traffic(hb13, 200, hotspot=hot, hot_fraction=0.8, seed=3)
        hot_count = sum(1 for _, t in pairs if t == hot)
        assert hot_count > 100  # well above uniform expectation

    def test_hotspot_fraction_validation(self, hb13):
        with pytest.raises(InvalidParameterError):
            hotspot_traffic(hb13, 10, hot_fraction=1.5)


class TestLegacyEquality:
    """The Hashable wrappers now route through the rank-based zoo; the
    uniform/hotspot draw sequences must stay exactly what the original
    per-label implementations produced (same seed, same pairs)."""

    def test_uniform_matches_direct_label_draws(self, hb13):
        import random

        nodes = list(hb13.nodes())
        rng = random.Random(9)
        reference = [tuple(rng.sample(nodes, 2)) for _ in range(50)]
        assert uniform_random_traffic(hb13, 50, seed=9) == reference

    def test_hotspot_matches_direct_label_draws(self, hb13):
        import random

        nodes = list(hb13.nodes())
        hot = nodes[3]
        rng = random.Random(2)
        reference = []
        for _ in range(50):
            source = rng.choice(nodes)
            if rng.random() < 0.4 and source != hot:
                reference.append((source, hot))
            else:
                target = rng.choice(nodes)
                while target == source:
                    target = rng.choice(nodes)
                reference.append((source, target))
        got = hotspot_traffic(hb13, 50, hotspot=hot, hot_fraction=0.4, seed=2)
        assert got == reference

    def test_permutation_covers_all_nodes_in_order(self, hb13):
        # sources enumerate the node set in codec-rank order; targets are a
        # seeded derangement built in O(n), no rejection loop
        pairs = permutation_traffic(hb13, seed=4)
        assert [s for s, _ in pairs] == list(hb13.nodes())
        assert pairs == permutation_traffic(hb13, seed=4)
        assert pairs != permutation_traffic(hb13, seed=5)


class TestFloodElection:
    @pytest.mark.parametrize("topology", [Hypercube(4)], ids=["H_4"])
    def test_elects_max_id(self, topology):
        result = flood_max_election(topology, seed=0)
        assert result.leader_id == topology.num_nodes - 1
        assert result.algorithm == "flood-max"

    def test_rounds_bounded_by_diameter_plus_one(self, hb13):
        result = flood_max_election(hb13, seed=1)
        assert result.rounds <= hb13.diameter_formula() + 1

    def test_explicit_ids(self, hb13):
        ids = {v: i for i, v in enumerate(hb13.nodes())}
        chosen = max(ids, key=ids.get)
        result = flood_max_election(hb13, ids=ids)
        assert result.leader == chosen

    def test_duplicate_ids_rejected(self, hb13):
        ids = {v: 0 for v in hb13.nodes()}
        with pytest.raises(SimulationError):
            flood_max_election(hb13, ids=ids)


class TestTreeElection:
    def test_agrees_with_flooding(self, hb13):
        flood = flood_max_election(hb13, seed=4)
        tree = tree_based_election(hb13, hb13.identity_node(), seed=4)
        assert flood.leader == tree.leader

    def test_message_optimality(self, hb13):
        tree = tree_based_election(hb13, hb13.identity_node(), seed=4)
        assert tree.messages == 3 * (hb13.num_nodes - 1)
        flood = flood_max_election(hb13, seed=4)
        assert tree.messages < flood.messages

    def test_rounds_relate_to_eccentricity(self, hb13):
        root = hb13.identity_node()
        tree = tree_based_election(hb13, root, seed=4)
        assert tree.rounds == 3 * hb13.eccentricity(root)
