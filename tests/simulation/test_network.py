"""Network simulator tests."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.simulation.network import NetworkSimulator
from repro.simulation.protocols import BFSProtocol, HBObliviousProtocol
from repro.simulation.traffic import uniform_random_traffic


class TestDelivery:
    def test_single_packet_latency_equals_distance(self, hb13):
        sim = NetworkSimulator(hb13, HBObliviousProtocol(hb13))
        u, v = hb13.identity_node(), (1, (2, 0b101))
        packet = sim.inject(u, v)
        sim.run()
        assert packet.delivered_at is not None
        assert packet.hops == hb13.distance(u, v)
        # unit link time, uncontended: latency == hop count
        assert packet.latency == packet.hops

    def test_all_uniform_traffic_delivered(self, hb13):
        sim = NetworkSimulator(hb13, HBObliviousProtocol(hb13))
        pairs = uniform_random_traffic(hb13, 100, seed=4)
        sim.inject_all(pairs)
        sim.run()
        stats = sim.stats()
        assert stats.delivered == 100
        assert stats.dropped == 0
        assert stats.mean_latency >= stats.mean_hops  # queueing only adds

    def test_self_packet_delivers_immediately(self, hb13):
        sim = NetworkSimulator(hb13, HBObliviousProtocol(hb13))
        u = hb13.identity_node()
        packet = sim.inject(u, u)
        sim.run()
        assert packet.delivered_at == 0.0  # reprolint: disable=HB301 -- self-delivery happens at the literal injection time
        assert packet.hops == 0


class TestContention:
    def test_shared_link_serialises(self, hb13):
        """Two packets over the same first link: second waits a slot."""
        sim = NetworkSimulator(hb13, HBObliviousProtocol(hb13))
        u = hb13.identity_node()
        v = (1, (0, 0))  # one hypercube hop
        p1 = sim.inject(u, v)
        p2 = sim.inject(u, v)
        sim.run()
        assert {p1.latency, p2.latency} == {1.0, 2.0}

    def test_makespan_grows_with_load(self, hb13):
        light = NetworkSimulator(hb13, HBObliviousProtocol(hb13))
        light.inject_all(uniform_random_traffic(hb13, 10, seed=1))
        light.run()
        heavy = NetworkSimulator(hb13, HBObliviousProtocol(hb13))
        heavy.inject_all(uniform_random_traffic(hb13, 400, seed=1))
        heavy.run()
        assert heavy.stats().makespan >= light.stats().makespan


class TestFaults:
    def test_faulty_node_drops_packets(self, hb13):
        u, v = hb13.identity_node(), (1, (0, 0))
        sim = NetworkSimulator(
            hb13, HBObliviousProtocol(hb13), faults=[v]
        )
        packet = sim.inject(u, v)
        sim.run()
        assert packet.dropped

    def test_adaptive_protocol_avoids_faults(self, hb13):
        u = hb13.identity_node()
        v = (1, (1, 0b001))
        # fault a node on the oblivious route; BFS protocol routes around
        oblivious = HBObliviousProtocol(hb13)

        class Probe:
            target = v
            source = u
            ident = 0

        first_hop = oblivious.next_hop(Probe, u)
        sim = NetworkSimulator(
            hb13, BFSProtocol(hb13, faults=[first_hop]), faults=[first_hop]
        )
        packet = sim.inject(u, v)
        sim.run()
        assert packet.delivered_at is not None
        assert not packet.dropped

    def test_stats_shape(self, hb13):
        sim = NetworkSimulator(hb13, HBObliviousProtocol(hb13))
        sim.inject_all(uniform_random_traffic(hb13, 25, seed=2))
        sim.run()
        stats = sim.stats()
        assert stats.injected == 25
        assert 0.0 < stats.delivery_rate <= 1.0
        assert "delivered" in stats.summary()
