"""Gossip schedules and structured traffic pattern tests."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError
from repro.simulation.gossip import (
    all_port_gossip_rounds,
    gossip_lower_bound,
    single_port_gossip,
)
from repro.simulation.traffic import bit_reversal_traffic, translation_traffic


class TestGossip:
    @pytest.mark.parametrize(("m", "n"), [(0, 3), (1, 3), (2, 3)])
    def test_schedule_completes(self, m, n):
        hb = HyperButterfly(m, n)
        rounds = single_port_gossip(hb, verify=True)  # verify raises on bugs
        assert rounds

    def test_round_count_within_small_factor_of_bound(self, hb23):
        rounds = single_port_gossip(hb23)
        assert len(rounds) <= 3 * gossip_lower_bound(hb23)

    def test_hypercube_phase_is_perfect_matching(self, hb23):
        rounds = single_port_gossip(hb23)
        for i in range(hb23.m):
            pairs = rounds[i]
            assert len(pairs) == hb23.num_nodes // 2
            touched = {v for pair in pairs for v in pair}
            assert len(touched) == hb23.num_nodes

    def test_all_port_rounds(self, hb23):
        assert all_port_gossip_rounds(hb23) == hb23.diameter_formula()

    def test_lower_bound(self, hb23):
        assert gossip_lower_bound(hb23) == 7  # ceil(log2 96)


class TestBitReversal:
    def test_is_a_partial_involution(self, hb23):
        pairs = dict(bit_reversal_traffic(hb23))
        for source, target in pairs.items():
            assert pairs[target] == source  # reversal is an involution

    def test_preserves_levels(self, hb23):
        for (h1, (x1, _)), (h2, (x2, _)) in bit_reversal_traffic(hb23):
            assert x1 == x2

    def test_no_fixed_points_emitted(self, hb23):
        assert all(s != t for s, t in bit_reversal_traffic(hb23))

    def test_targets_valid(self, hb24):
        for _, target in bit_reversal_traffic(hb24):
            assert hb24.has_node(target)


class TestTranslation:
    def test_default_delta_gives_permutation(self, hb23):
        pairs = translation_traffic(hb23)
        targets = [t for _, t in pairs]
        assert len(set(targets)) == hb23.num_nodes
        assert all(s != t for s, t in pairs)

    def test_uniform_distance(self, hb23):
        """Vertex transitivity: every sender is equally far from its target."""
        pairs = translation_traffic(hb23)
        distances = {hb23.distance(s, t) for s, t in pairs}
        assert len(distances) == 1

    def test_custom_delta(self, hb23):
        pairs = translation_traffic(hb23, delta=(1, (0, 0)))
        assert all(hb23.has_edge(s, t) for s, t in pairs)

    def test_identity_delta_rejected(self, hb23):
        with pytest.raises(InvalidParameterError):
            translation_traffic(hb23, delta=(0, (0, 0)))

    def test_translation_saturates_simulator_evenly(self, hb13):
        """Run the translation workload end-to-end: all deliver, and the
        per-packet hop counts are identical (perfect load symmetry)."""
        from repro.simulation.network import NetworkSimulator
        from repro.simulation.protocols import HBObliviousProtocol

        sim = NetworkSimulator(hb13, HBObliviousProtocol(hb13))
        sim.inject_all(translation_traffic(hb13))
        sim.run()
        stats = sim.stats()
        assert stats.delivered == hb13.num_nodes
        hops = {p.hops for p in sim.packets}
        assert len(hops) == 1
