"""LatencyStats aggregation: from_packets and the merge identities.

``merge`` must behave exactly as if the shards' packets had been one set:
``merge([from_packets(a), from_packets(b)]) == from_packets(a + b)``,
with the empty sequence as identity and shard order irrelevant — the
algebra a pooled simulation reduction relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.stats import LatencyStats


@dataclass(frozen=True)
class FakePacket:
    delivered_at: float | None
    dropped: bool
    latency: float
    hops: int
    retransmissions: int = 0
    duplicates: int = 0


def _packet_strategy():
    delivered = st.builds(
        FakePacket,
        delivered_at=st.floats(0.0, 1e3, allow_nan=False),
        dropped=st.just(False),
        latency=st.floats(0.0, 1e3, allow_nan=False),
        hops=st.integers(0, 40),
        retransmissions=st.integers(0, 5),
        duplicates=st.integers(0, 5),
    )
    undelivered = st.builds(
        FakePacket,
        delivered_at=st.none(),
        dropped=st.booleans(),
        latency=st.just(0.0),
        hops=st.just(0),
        retransmissions=st.integers(0, 5),
        duplicates=st.integers(0, 5),
    )
    return st.one_of(delivered, undelivered)


def _close(a: LatencyStats, b: LatencyStats) -> None:
    assert (a.injected, a.delivered, a.dropped) == (
        b.injected,
        b.delivered,
        b.dropped,
    )
    assert (a.retransmissions, a.duplicates) == (b.retransmissions, b.duplicates)
    assert math.isclose(a.mean_latency, b.mean_latency, abs_tol=1e-9)
    assert math.isclose(a.mean_hops, b.mean_hops, abs_tol=1e-9)
    assert a.max_latency == b.max_latency
    assert a.makespan == b.makespan


def _outcome_strategy():
    """Integer-tick per-flow outcomes: (inject_at, delivered_at, hops)."""
    delivered = st.tuples(
        st.integers(0, 50), st.integers(0, 500), st.integers(0, 40)
    ).map(lambda t: (t[0], t[0] + t[1], t[2]))
    undelivered = st.tuples(st.integers(0, 50), st.just(-1), st.integers(0, 40))
    return st.one_of(delivered, undelivered)


class TestFromArrays:
    """Bulk array ingestion must be bit-equal to the packet path."""

    @given(st.lists(_outcome_strategy(), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_matches_from_packets_bit_for_bit(self, outcomes):
        packets = [
            FakePacket(
                delivered_at=float(done) if done >= 0 else None,
                dropped=done < 0,
                latency=float(done - at) if done >= 0 else 0.0,
                hops=hops if done >= 0 else 0,
            )
            for at, done, hops in outcomes
        ]
        via_arrays = LatencyStats.from_arrays(
            [at for at, _, _ in outcomes],
            [done for _, done, _ in outcomes],
            [hops if done >= 0 else 0 for _, done, hops in outcomes],
        )
        via_packets = LatencyStats.from_packets(packets)
        # exact equality, not isclose: int64 sums are exact in float64
        assert via_arrays == via_packets

    @given(
        st.lists(_outcome_strategy(), max_size=30),
        st.integers(0, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_of_array_shards_equals_the_whole(self, outcomes, cut):
        cut = min(cut, len(outcomes))

        def build(rows):
            return LatencyStats.from_arrays(
                [at for at, _, _ in rows],
                [done for _, done, _ in rows],
                [hops for _, _, hops in rows],
            )

        whole = build(outcomes)
        merged = LatencyStats.merge([build(outcomes[:cut]), build(outcomes[cut:])])
        _close(merged, whole)

    def test_empty_arrays(self):
        stats = LatencyStats.from_arrays([], [], [])
        assert stats == LatencyStats.from_packets([])

    def test_explicit_dropped_count(self):
        # one delivered, one dropped, one still in flight
        stats = LatencyStats.from_arrays([0, 0, 0], [4, -1, -1], [4, 2, 1], dropped=1)
        assert (stats.injected, stats.delivered, stats.dropped) == (3, 1, 1)
        assert stats.mean_latency == 4.0  # reprolint: disable=HB301 -- 4/1 is exactly 4.0 in float64


class TestMergeIdentities:
    def test_empty_merge_is_the_identity(self):
        empty = LatencyStats.merge([])
        _close(empty, LatencyStats.from_packets([]))
        assert math.isclose(empty.delivery_rate, 1.0, abs_tol=1e-9)

    @given(st.lists(_packet_strategy(), max_size=30), st.integers(0, 30))
    @settings(max_examples=60, deadline=None)
    def test_merge_of_a_split_equals_the_whole(self, packets, cut):
        cut = min(cut, len(packets))
        whole = LatencyStats.from_packets(packets)
        parts = [
            LatencyStats.from_packets(packets[:cut]),
            LatencyStats.from_packets(packets[cut:]),
        ]
        _close(LatencyStats.merge(parts), whole)

    @given(st.lists(st.lists(_packet_strategy(), max_size=10), max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_merge_is_shard_order_invariant(self, shards):
        parts = [LatencyStats.from_packets(s) for s in shards]
        _close(LatencyStats.merge(parts), LatencyStats.merge(parts[::-1]))

    @given(st.lists(_packet_strategy(), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_singleton_merge_is_lossless(self, packets):
        stats = LatencyStats.from_packets(packets)
        _close(LatencyStats.merge([stats]), stats)
        assert LatencyStats.merge([stats]).delivery_rate == stats.delivery_rate

    def test_summary_of_merged(self):
        a = LatencyStats.from_packets(
            [FakePacket(delivered_at=2.0, dropped=False, latency=2.0, hops=2)]
        )
        b = LatencyStats.from_packets(
            [FakePacket(delivered_at=6.0, dropped=False, latency=4.0, hops=4)]
        )
        merged = LatencyStats.merge([a, b])
        assert math.isclose(merged.mean_latency, 3.0, abs_tol=1e-9)
        assert math.isclose(merged.makespan, 6.0, abs_tol=1e-9)
        assert "2/2 delivered" in merged.summary()
