"""Dynamic faults, TTL, and reliable-transport tests for the simulator."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.faults.dynamic import FaultEvent, FaultSchedule
from repro.simulation.network import NetworkSimulator, TransportConfig
from repro.simulation.protocols import (
    BFSProtocol,
    HBObliviousProtocol,
    ResilientProtocol,
)
from repro.core.resilient import ResilientRouter
from repro.simulation.traffic import uniform_random_traffic
from repro.topologies.cycle import Cycle


def _cycle_sim(k, *, schedule=None, transport=None, ttl=None, faults=(),
               link_faults=(), seed=0):
    cycle = Cycle(k)
    sim = NetworkSimulator(
        cycle,
        BFSProtocol(cycle),
        schedule=schedule,
        transport=transport,
        ttl=ttl,
        faults=faults,
        link_faults=link_faults,
        seed=seed,
    )
    return cycle, sim


class TestTTL:
    def test_ttl_expiry_drops(self):
        cycle, sim = _cycle_sim(16, ttl=4)
        packet = sim.inject(0, 8)
        sim.run()
        assert packet.dropped
        assert packet.drop_reason == "ttl_expired"
        assert packet.hops == 4

    def test_sufficient_ttl_delivers(self):
        cycle, sim = _cycle_sim(16, ttl=8)
        packet = sim.inject(0, 8)
        sim.run()
        assert packet.delivered_at is not None

    def test_per_packet_ttl_overrides_default(self):
        cycle, sim = _cycle_sim(16, ttl=2)
        packet = sim.inject(0, 8, ttl=20)
        sim.run()
        assert packet.delivered_at is not None


class TestDynamicFaults:
    def test_mid_run_failure_reroutes_bfs(self):
        """Node 1 fails before injection time: BFS detours the long way."""
        cycle = Cycle(8)
        schedule = FaultSchedule(cycle, [FaultEvent(1.0, "fail", "node", 1)])
        sim = NetworkSimulator(cycle, BFSProtocol(cycle), schedule=schedule)
        packet = sim.inject(0, 2, at=2.0)
        sim.run()
        assert packet.delivered_at is not None
        assert packet.hops == 6  # 0 -> 7 -> 6 -> 5 -> 4 -> 3 -> 2

    def test_repair_restores_short_route(self):
        cycle = Cycle(8)
        schedule = FaultSchedule(
            cycle,
            [
                FaultEvent(1.0, "fail", "node", 1),
                FaultEvent(10.0, "repair", "node", 1),
            ],
        )
        sim = NetworkSimulator(cycle, BFSProtocol(cycle), schedule=schedule)
        early = sim.inject(0, 2, at=2.0)
        late = sim.inject(0, 2, at=11.0)
        sim.run()
        assert early.hops == 6
        assert late.hops == 2  # healed: direct 0 -> 1 -> 2 again

    def test_fire_and_forget_loses_on_link_fault(self):
        cycle, sim = _cycle_sim(8, link_faults=[(0, 1)])
        # protocol still routes 0 -> 1 (BFS ignores link faults), so the
        # hop is attempted and the packet dies on the faulty link
        packet = sim.inject(0, 1)
        sim.run()
        assert packet.dropped and packet.drop_reason == "link_fault"

    def test_static_faults_still_drop_at_node(self):
        cycle, sim = _cycle_sim(8, faults=[4])
        packet = sim.inject(4, 0)
        sim.run()
        assert packet.dropped and packet.drop_reason == "node_fault"

    def test_fault_listener_fires_once_per_flip(self):
        cycle = Cycle(8)
        schedule = FaultSchedule(
            cycle,
            [
                FaultEvent(1.0, "fail", "node", 3),
                FaultEvent(2.0, "fail", "node", 3),  # overlapping: no flip
                FaultEvent(3.0, "repair", "node", 3),
                FaultEvent(4.0, "repair", "node", 3),
            ],
        )
        sim = NetworkSimulator(cycle, BFSProtocol(cycle), schedule=schedule)
        flips = []
        sim.add_fault_listener(lambda e: flips.append((e.time, e.action)))
        sim.run()
        assert flips == [(1.0, "fail"), (4.0, "repair")]

    def test_schedule_topology_mismatch_rejected(self):
        other = Cycle(6)
        schedule = FaultSchedule(other, [FaultEvent(1.0, "fail", "node", 0)])
        cycle = Cycle(8)
        with pytest.raises(SimulationError):
            NetworkSimulator(cycle, BFSProtocol(cycle), schedule=schedule)


class TestReliableTransport:
    def test_retransmission_recovers_transient_target_fault(self):
        cycle = Cycle(8)
        schedule = FaultSchedule(
            cycle,
            [
                FaultEvent(0.5, "fail", "node", 1),
                FaultEvent(4.0, "repair", "node", 1),
            ],
        )
        # without retries the packet dies silently in the fault window
        bare = NetworkSimulator(
            cycle,
            BFSProtocol(cycle),
            schedule=FaultSchedule(cycle, schedule.events),
        )
        lost = bare.inject(0, 1)
        bare.run()
        assert lost.dropped

        sim = NetworkSimulator(
            cycle, BFSProtocol(cycle), schedule=schedule,
            transport=TransportConfig(),
        )
        packet = sim.inject(0, 1)
        sim.run()
        assert packet.delivered_at is not None
        assert packet.retransmissions >= 1
        assert packet.delivered_at >= 4.0  # only after the repair

    def test_duplicate_suppression_on_lost_ack(self):
        cycle = Cycle(16)
        # the ack of hop 0 -> 1 crosses back during (1, 2): fault exactly
        # that window so data survives but the ack is lost; the packet is
        # still in flight (6 hops to go) when the retransmission lands
        schedule = FaultSchedule(
            cycle,
            [
                FaultEvent(1.5, "fail", "link", (0, 1)),
                FaultEvent(2.5, "repair", "link", (0, 1)),
            ],
        )
        sim = NetworkSimulator(
            cycle, BFSProtocol(cycle), schedule=schedule,
            transport=TransportConfig(),
        )
        packet = sim.inject(0, 6)
        sim.run()
        assert packet.delivered_at is not None
        assert packet.hops == 6  # duplicate did not advance the packet
        assert packet.retransmissions >= 1
        assert packet.duplicates >= 1

    def test_retries_exhausted_drops(self):
        from repro.simulation.protocols import PrecomputedPathProtocol

        cycle = Cycle(8)
        # a fault-oblivious source route straight into the dead node
        sim = NetworkSimulator(
            cycle,
            PrecomputedPathProtocol(cycle.bfs_shortest_path),
            faults=[1],
            transport=TransportConfig(max_retries=2, jitter=0.0),
        )
        packet = sim.inject(0, 1)
        sim.run()
        assert packet.dropped
        assert packet.drop_reason == "retries_exhausted"
        assert packet.retransmissions == 2

    def test_transport_seeded_determinism(self):
        def run(seed):
            cycle = Cycle(12)
            schedule = FaultSchedule.generate(
                cycle, rate=0.4, horizon=30.0, seed=5,
                mode="transient", kinds=("node", "link"), repair_time=3.0,
            )
            sim = NetworkSimulator(
                cycle, BFSProtocol(cycle), schedule=schedule,
                transport=TransportConfig(), seed=seed,
            )
            sim.inject_all(uniform_random_traffic(cycle, 40, seed=9))
            sim.run()
            return sim.stats()

        assert run(3) == run(3)

    def test_no_faults_transport_matches_plain_delivery(self, hb13):
        plain = NetworkSimulator(hb13, HBObliviousProtocol(hb13))
        plain.inject_all(uniform_random_traffic(hb13, 40, seed=2))
        plain.run()
        reliable = NetworkSimulator(
            hb13, HBObliviousProtocol(hb13), transport=TransportConfig()
        )
        reliable.inject_all(uniform_random_traffic(hb13, 40, seed=2))
        reliable.run()
        p, r = plain.stats(), reliable.stats()
        assert r.delivered == p.delivered == 40
        assert r.retransmissions == 0 and r.duplicates == 0
        assert r.mean_hops == p.mean_hops


class TestResilientProtocol:
    def test_delivers_under_static_faults(self, hb23, rng):
        from repro.faults.model import random_node_faults

        router = ResilientRouter(hb23)
        nodes = list(hb23.nodes())
        pairs = []
        faults = random_node_faults(hb23, 5, rng=rng)
        while len(pairs) < 20:
            u, v = rng.sample(nodes, 2)
            if u not in faults and v not in faults:
                pairs.append((u, v))
        sim = NetworkSimulator(
            hb23, ResilientProtocol(router), faults=faults
        )
        sim.inject_all(pairs)
        sim.run()
        stats = sim.stats()
        assert stats.delivered == 20
        assert stats.dropped == 0

    def test_replans_after_mid_run_fault(self, hb13):
        router = ResilientRouter(hb13)
        protocol = ResilientProtocol(router)
        u = hb13.identity_node()
        v = max(hb13.nodes(), key=lambda w: hb13.distance(u, w))
        shortest = hb13.bfs_shortest_path(u, v)
        # fail the shortest path's second node just before injection
        schedule = FaultSchedule(
            hb13, [FaultEvent(0.5, "fail", "node", shortest[1])]
        )
        sim = NetworkSimulator(hb13, protocol, schedule=schedule)
        packet = sim.inject(u, v, at=1.0)
        sim.run()
        assert packet.delivered_at is not None
        assert router.invalidations >= 1
