"""Vectorized flow engine: route validity and event-simulator pinning.

The load-bearing property is **bit-identical replay**: under the unit
link model the engine must reproduce the discrete-event simulator flow
for flow — same delivery tick, same hop count, same drop reason — across
every topology family, fault regime, TTL and arrival pacing.  Everything
else (capacity queueing, latency classes) generalizes the event model
and is checked against closed-form expectations.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError, SimulationError
from repro.fastgraph.codecs import codec_for
from repro.faults.dynamic import FaultEvent, FaultSchedule
from repro.faults.model import canonical_link
from repro.simulation.flow import (
    DROP_REASONS,
    FlowEngine,
    register_route_builder,
    routes_block,
)
from repro.simulation.linkconfig import LinkClass, LinkConfig
from repro.simulation.network import NetworkSimulator
from repro.simulation.protocols import HDObliviousProtocol, PrecomputedPathProtocol
from repro.simulation.workloads import TrafficMatrix, build_workload
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn
from repro.topologies.mesh import Torus

TOPOLOGIES = [
    HyperButterfly(2, 3),
    HyperDeBruijn(2, 3),
    Hypercube(4),
    CayleyButterfly(3),
]


def _all_pairs(topology):
    n = topology.num_nodes
    grid = np.arange(n, dtype=np.int64)
    return np.repeat(grid, n), np.tile(grid, n)


class TestRouteBlocks:
    @pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
    def test_routes_are_walks_ending_at_the_target(self, topology):
        src, dst = _all_pairs(topology)
        block = routes_block(topology, src, dst)
        for i in range(block.num_flows):
            path = block.label_path(i)
            assert path is not None
            assert path[0] == block.codec.unrank(int(src[i]))
            assert path[-1] == block.codec.unrank(int(dst[i]))
            for a, b in zip(path, path[1:]):
                assert topology.has_edge(a, b), (path, a, b)

    @pytest.mark.parametrize(
        "topology",
        [HyperButterfly(2, 3), CayleyButterfly(3), Hypercube(4)],
        ids=lambda t: t.name,
    )
    def test_shortest_for_oracle_families(self, topology):
        """Cayley-oracle and e-cube builders produce *shortest* routes."""
        src, dst = _all_pairs(topology)
        block = routes_block(topology, src, dst)
        codec = block.codec
        for i in range(0, block.num_flows, 7):
            u = codec.unrank(int(src[i]))
            v = codec.unrank(int(dst[i]))
            expected = len(topology.bfs_shortest_path(u, v)) - 1
            assert int(block.lengths[i]) == expected

    def test_hd_routes_equal_protocol_walks_exhaustively(self):
        """The one-shot vectorized HD plan is exactly the hop-by-hop
        oblivious walk (overlap grows by one per shift, so the protocol's
        re-scan never jumps ahead)."""
        hd = HyperDeBruijn(2, 3)
        src, dst = _all_pairs(hd)
        block = routes_block(hd, src, dst)
        protocol = HDObliviousProtocol(hd)

        class Probe:
            ident = 0

            def __init__(self, source, target):
                self.source, self.target = source, target

        for i in range(block.num_flows):
            s = block.codec.unrank(int(src[i]))
            t = block.codec.unrank(int(dst[i]))
            walk = [s]
            while walk[-1] != t:
                walk.append(protocol.next_hop(Probe(s, t), walk[-1]))
            assert block.label_path(i) == walk

    def test_generic_fallback_on_a_torus(self):
        torus = Torus(3, 4)
        rng = np.random.default_rng(0)
        src = rng.integers(0, torus.num_nodes, 30)
        dst = rng.integers(0, torus.num_nodes, 30)
        block = routes_block(torus, src, dst)
        for i in range(30):
            path = block.label_path(i)
            expected = torus.bfs_shortest_path(path[0], path[-1])
            assert len(path) - 1 == len(expected) - 1

    def test_registry_override_wins(self):
        calls = []

        def fake_builder(topology, sources, targets):
            calls.append(len(sources))
            return None  # defer to the structural path

        register_route_builder("HyperButterfly", fake_builder)
        try:
            hb = HyperButterfly(2, 3)
            block = routes_block(hb, np.array([0, 1]), np.array([5, 9]))
            assert calls == [2]
            assert block.num_flows == 2
        finally:
            from repro.simulation.flow import _ROUTE_BUILDERS

            del _ROUTE_BUILDERS["HyperButterfly"]

    def test_rank_validation(self):
        hb = HyperButterfly(2, 3)
        with pytest.raises(InvalidParameterError):
            routes_block(hb, np.array([0]), np.array([hb.num_nodes]))
        with pytest.raises(InvalidParameterError):
            routes_block(hb, np.array([-1]), np.array([0]))


def _sample_regime(topology, seed):
    rng = random.Random(seed)
    nodes = list(topology.nodes())
    edges = list(topology.edges())
    static_nodes = rng.sample(nodes, 2)
    static_links = rng.sample(edges, 2)
    events = []
    for t in (1, 2, 4):
        v = rng.choice(nodes)
        events.append(FaultEvent(float(t), "fail", "node", v))
        events.append(FaultEvent(float(t + 2), "repair", "node", v))
        u, w = rng.choice(edges)
        events.append(FaultEvent(float(t), "fail", "link", canonical_link(u, w)))
        events.append(
            FaultEvent(float(t + 3), "repair", "link", canonical_link(u, w))
        )
    return static_nodes, static_links, FaultSchedule(topology, events)


def _assert_bit_identical(topology, tm, routes, *, faults=(), link_faults=(),
                          schedule=None, ttl=None):
    sim = NetworkSimulator(
        topology,
        PrecomputedPathProtocol(routes.path_fn(tm)),
        faults=faults,
        link_faults=link_faults,
        schedule=schedule,
        ttl=ttl,
    )
    for i, (s, t) in enumerate(tm.pairs(routes.codec)):
        sim.inject(s, t, at=float(tm.inject_at[i]))
    sim.run()
    engine = FlowEngine(
        topology, tm, routes,
        faults=faults, link_faults=link_faults, schedule=schedule, ttl=ttl,
    ).run()
    res = engine.result()
    for i, packet in enumerate(sim.packets):
        flow_tick = int(res.delivered_at[i])
        assert (packet.delivered_at is None) == (flow_tick < 0), i
        if packet.delivered_at is not None:
            assert float(flow_tick) == packet.delivered_at, i
        assert packet.hops == int(res.hops[i]), i
        assert (packet.drop_reason or "") == DROP_REASONS[res.drop_code[i]], i
    assert sim.stats() == engine.stats()
    return engine


class TestEventSimPinning:
    """Flow engine == event simulator, flow for flow, across the grid."""

    @pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
    @pytest.mark.parametrize("per_tick", [None, 20], ids=["batch", "paced"])
    def test_fault_free(self, topology, per_tick):
        tm = build_workload(topology, "uniform", count=100, seed=7,
                            per_tick=per_tick)
        routes = routes_block(topology, tm.sources, tm.targets)
        engine = _assert_bit_identical(topology, tm, routes)
        assert engine.stats().delivered == 100

    @pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
    @pytest.mark.parametrize("ttl", [None, 3], ids=["no-ttl", "ttl3"])
    def test_faulty_regime(self, topology, ttl):
        static_nodes, static_links, schedule = _sample_regime(topology, 3)
        tm = build_workload(topology, "uniform", count=120, seed=11, per_tick=20)
        routes = routes_block(topology, tm.sources, tm.targets)
        engine = _assert_bit_identical(
            topology, tm, routes,
            faults=static_nodes, link_faults=static_links,
            schedule=schedule, ttl=ttl,
        )
        # the regime must actually exercise drops for the pin to mean much
        assert engine.stats().dropped > 0

    @pytest.mark.parametrize(
        "family", ["permutation", "bit_reversal", "hotspot", "bursty"]
    )
    def test_other_families_pin_too(self, family):
        hb = HyperButterfly(2, 3)
        tm = build_workload(hb, family, count=96, seed=5, per_tick=16)
        routes = routes_block(hb, tm.sources, tm.targets)
        _assert_bit_identical(hb, tm, routes)

    def test_static_fault_validation_matches_event_sim(self):
        hb = HyperButterfly(2, 3)
        tm = build_workload(hb, "uniform", count=4, seed=0)
        nodes = list(hb.nodes())
        with pytest.raises(SimulationError):
            FlowEngine(hb, tm, link_faults=[(nodes[0], nodes[0])])
        other = HyperButterfly(2, 4)
        schedule = FaultSchedule(other, [])
        with pytest.raises(SimulationError):
            FlowEngine(hb, tm, schedule=schedule)


class TestEngineSemantics:
    def test_unreachable_target_drops_no_route(self):
        # disconnect a node pair by routing over an empty route block
        hb = HyperButterfly(2, 3)
        tm = TrafficMatrix.from_ranks([0], [5])
        routes = routes_block(hb, tm.sources, tm.targets)
        routes.lengths[0] = -1  # pretend unreachable
        engine = FlowEngine(hb, tm, routes).run()
        res = engine.result()
        assert DROP_REASONS[res.drop_code[0]] == "no_route"
        assert int(res.delivered_at[0]) == -1

    def test_zero_length_flow_delivers_at_injection(self):
        hb = HyperButterfly(2, 3)
        tm = TrafficMatrix.from_ranks([3], [3], inject_at=[5])
        engine = FlowEngine(hb, tm).run()
        assert int(engine.result().delivered_at[0]) == 5
        assert engine.stats().mean_latency == 0.0  # reprolint: disable=HB301 -- 0/1 is exactly 0.0 in float64

    def test_link_latency_scales_delivery_time(self):
        hb = HyperButterfly(2, 3)
        tm = build_workload(hb, "uniform", count=20, seed=1)
        routes = routes_block(hb, tm.sources, tm.targets)
        unit = FlowEngine(hb, tm, routes).run().result()
        config = LinkConfig(default=LinkClass("default", latency=3))
        slow = FlowEngine(hb, tm, routes, link_config=config).run().result()
        # uncontended flows: every hop takes exactly 3x as long
        free = unit.delivered_at == tm.inject_at + unit.hops
        assert free.any()
        assert np.array_equal(
            slow.delivered_at[free], tm.inject_at[free] + 3 * slow.hops[free]
        )

    def test_capacity_bounds_per_link_throughput(self):
        # 8 flows over the same single-edge route, capacity 2, latency 1:
        # deliveries complete in ceil(8/2) = 4 batches
        hb = HyperButterfly(2, 3)
        codec = codec_for(hb)
        u = codec.unrank(0)
        v = next(iter(hb.neighbors(u)))
        rv = codec.rank(v)
        tm = TrafficMatrix.from_ranks([0] * 8, [rv] * 8)
        routes = routes_block(hb, tm.sources, tm.targets)
        config = LinkConfig(default=LinkClass("default", capacity=2))
        res = FlowEngine(hb, tm, routes, link_config=config).run().result()
        ticks = np.sort(res.delivered_at)
        assert ticks.tolist() == [1, 1, 2, 2, 3, 3, 4, 4]

    def test_generator_class_assignment(self):
        # cube hops slow (latency 4), butterfly hops unit: a pure-cube
        # flow takes 4 ticks per hop, a pure-butterfly flow stays at 1
        hb = HyperButterfly(2, 3)
        gens = hb.gens
        cube_names = {name for name in gens.names if name.startswith("h_")}
        config = LinkConfig(
            classes=[LinkClass("cube", latency=4)],
            assign={name: "cube" for name in cube_names},
        )
        codec = codec_for(hb)
        cube_target = codec.rank(hb.group.multiply(codec.unrank(0), gens.generators[0]))
        fly_target = codec.rank(
            hb.group.multiply(codec.unrank(0), gens.generators[len(cube_names)])
        )
        tm = TrafficMatrix.from_ranks([0, 0], [cube_target, fly_target])
        routes = routes_block(hb, tm.sources, tm.targets)
        res = FlowEngine(hb, tm, routes, link_config=config).run().result()
        assert res.delivered_at.tolist() == [4, 1]

    def test_until_leaves_flows_in_flight(self):
        hb = HyperButterfly(2, 3)
        tm = build_workload(hb, "uniform", count=50, seed=3, per_tick=5)
        engine = FlowEngine(hb, tm).run(until=2)
        stats = engine.stats()
        assert stats.delivered < 50
        assert stats.dropped == 0  # in flight, not dropped
        engine.run()
        assert engine.stats().delivered == 50

    def test_result_curves_and_drop_counts(self):
        hb = HyperButterfly(2, 3)
        static_nodes, static_links, schedule = _sample_regime(hb, 3)
        tm = build_workload(hb, "uniform", count=80, seed=11, per_tick=20)
        engine = FlowEngine(
            hb, tm, faults=static_nodes, link_faults=static_links,
            schedule=schedule,
        ).run()
        res = engine.result()
        curve = res.delivered_curve()
        assert int(curve.sum()) == engine.stats().delivered
        counts = res.drop_counts()
        assert sum(counts.values()) == engine.stats().dropped
        assert set(counts) <= set(DROP_REASONS[1:])

    def test_negative_injection_rejected(self):
        hb = HyperButterfly(2, 3)
        tm = TrafficMatrix.from_ranks([0], [5], inject_at=[-1])
        with pytest.raises(InvalidParameterError):
            FlowEngine(hb, tm)


class TestCodecGroupOps:
    """The vectorized group arithmetic the route builders rely on."""

    @pytest.mark.parametrize(
        "topology",
        [HyperButterfly(2, 3), CayleyButterfly(3), Hypercube(4)],
        ids=lambda t: t.name,
    )
    def test_matches_scalar_group_ops(self, topology):
        codec = codec_for(topology)
        assert codec.supports_group_ops()
        group = topology.group if hasattr(topology, "group") else None
        n = codec.num_nodes
        rng = np.random.default_rng(1)
        a = rng.integers(0, n, 200)
        b = rng.integers(0, n, 200)
        inv = codec.inverse_block(a)
        prod = codec.multiply_block(a, b)
        if group is not None:
            for i in range(200):
                ea = codec.unrank(int(a[i]))
                eb = codec.unrank(int(b[i]))
                assert int(inv[i]) == codec.rank(group.inverse(ea))
                assert int(prod[i]) == codec.rank(group.multiply(ea, eb))
        # group axioms hold rank-side regardless
        identity = codec.multiply_block(a, inv)
        assert np.all(identity == identity[0])  # a · a⁻¹ is constant...
        assert np.all(codec.multiply_block(identity, b) == b)  # ...the identity

    def test_unsupported_codec_refuses(self):
        from repro.fastgraph.codecs import NodeCodec

        class Plain(NodeCodec):
            num_nodes = 4

            def rank(self, node):
                return int(node)

            def unrank(self, idx):
                return idx

        codec = Plain()
        assert not codec.supports_group_ops()
        with pytest.raises(NotImplementedError):
            codec.inverse_block(np.array([0]))
        with pytest.raises(NotImplementedError):
            codec.multiply_block(np.array([0]), np.array([1]))
