"""Event-queue core tests."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        assert q.run() == 3
        assert log == ["a", "b", "c"]
        assert q.now == 3.0  # reprolint: disable=HB301 -- clock is set to the literal scheduled time, no arithmetic

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        log = []
        for name in "abc":
            q.schedule(1.0, lambda name=name: log.append(name))
        q.run()
        assert log == ["a", "b", "c"]

    def test_until_horizon(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(5.0, lambda: log.append(5))
        assert q.run(until=2.0) == 1
        assert log == [1]
        assert len(q) == 1

    def test_max_events(self):
        q = EventQueue()
        for i in range(10):
            q.schedule(float(i), lambda: None)
        assert q.run(max_events=4) == 4
        assert len(q) == 6

    def test_cascading_events_keep_clock_monotonic(self):
        q = EventQueue()
        times = []

        def fire():
            times.append(q.now)
            if len(times) < 5:
                q.schedule(1.5, fire)

        q.schedule(0.0, fire)
        q.run()
        assert times == [0.0, 1.5, 3.0, 4.5, 6.0]

    def test_rejects_negative_delay(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(-1.0, lambda: None)

    def test_processed_counter(self):
        q = EventQueue()
        q.schedule(0.0, lambda: None)
        q.run()
        q.schedule(0.0, lambda: None)
        q.run()
        assert q.processed == 2
