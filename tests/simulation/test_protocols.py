"""Routing protocol tests."""

from __future__ import annotations

import pytest

from repro.core.hyperbutterfly import HyperButterfly
from repro.core.routing import HBRouter
from repro.simulation.network import NetworkSimulator
from repro.simulation.protocols import (
    BFSProtocol,
    HBObliviousProtocol,
    HDObliviousProtocol,
    PrecomputedPathProtocol,
    _cached_debruijn_route,
)
from repro.simulation.traffic import uniform_random_traffic
from repro.topologies.hyperdebruijn import HyperDeBruijn


class TestHBOblivious:
    def test_hop_by_hop_equals_router_distance(self, hb23, rng):
        protocol = HBObliviousProtocol(hb23)
        router = HBRouter(hb23)
        nodes = list(hb23.nodes())
        for _ in range(40):
            u, v = rng.sample(nodes, 2)
            sim = NetworkSimulator(hb23, HBObliviousProtocol(hb23))
            packet = sim.inject(u, v)
            sim.run()
            assert packet.hops == router.distance(u, v)

    def test_cube_corrected_before_fly(self, hb23):
        protocol = HBObliviousProtocol(hb23)

        class Probe:
            source = (0, (0, 0))
            target = (3, (1, 0b001))
            ident = 0

        hop = protocol.next_hop(Probe, Probe.source)
        assert hop[1] == (0, 0)  # butterfly part untouched first


class TestHDOblivious:
    def test_debruijn_shift_route_is_valid_walk(self):
        hd = HyperDeBruijn(2, 4)
        d = hd.debruijn
        for u in d.nodes():
            for v in d.nodes():
                if u == v:
                    continue
                path = _cached_debruijn_route(4, u, v)
                assert path[0] == u and path[-1] == v
                for a, b in zip(path, path[1:], strict=False):
                    assert b in d.neighbors(a), (u, v, path)
                assert len(path) - 1 <= 4  # at most n hops

    def test_all_pairs_deliver(self, rng):
        hd = HyperDeBruijn(2, 3)
        sim = NetworkSimulator(hd, HDObliviousProtocol(hd))
        sim.inject_all(uniform_random_traffic(hd, 150, seed=8))
        sim.run()
        stats = sim.stats()
        assert stats.delivered == 150 and stats.dropped == 0

    def test_hop_bound_m_plus_n(self, rng):
        hd = HyperDeBruijn(2, 4)
        nodes = list(hd.nodes())
        for _ in range(50):
            u, v = rng.sample(nodes, 2)
            sim = NetworkSimulator(hd, HDObliviousProtocol(hd))
            packet = sim.inject(u, v)
            sim.run()
            assert packet.hops <= hd.m + hd.n


class TestPrecomputedPath:
    def test_follows_given_path(self, hb13):
        router = HBRouter(hb13)
        protocol = PrecomputedPathProtocol(
            lambda s, t: router.route(s, t).path
        )
        sim = NetworkSimulator(hb13, protocol)
        u, v = hb13.identity_node(), (1, (2, 0b011))
        packet = sim.inject(u, v)
        sim.run()
        assert packet.hops == router.distance(u, v)

    def test_none_path_drops(self, hb13):
        protocol = PrecomputedPathProtocol(lambda s, t: None)
        sim = NetworkSimulator(hb13, protocol)
        packet = sim.inject(hb13.identity_node(), (1, (0, 0)))
        sim.run()
        assert packet.dropped


class TestBFSProtocol:
    def test_shortest_under_no_faults(self, hb13, rng):
        nodes = list(hb13.nodes())
        for _ in range(20):
            u, v = rng.sample(nodes, 2)
            sim = NetworkSimulator(hb13, BFSProtocol(hb13))
            packet = sim.inject(u, v)
            sim.run()
            assert packet.hops == hb13.distance(u, v)

    def test_unreachable_drops(self, hb13):
        u = hb13.identity_node()
        v = (1, (1, 0b001))
        faults = hb13.neighbors(u)
        sim = NetworkSimulator(hb13, BFSProtocol(hb13, faults=faults), faults=faults)
        packet = sim.inject(u, v)
        sim.run()
        assert packet.dropped
