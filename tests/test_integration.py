"""End-to-end integration tests across subsystems.

Each test chains several modules the way a downstream user would, so a
regression in any seam (labels ↔ routing ↔ faults ↔ simulation ↔ io ↔
partition) surfaces even if every unit suite still passes.
"""

from __future__ import annotations

import pytest

from repro import (
    FaultTolerantRouter,
    HBRouter,
    HyperButterfly,
    disjoint_paths,
    format_hb_node,
    parse_hb_node,
)
from repro.core.partition import partition_by_cube_bits
from repro.io import dump_paths, load_paths
from repro.routing.base import validate_path
from repro.routing.tables import build_split_table
from repro.simulation import (
    HBObliviousProtocol,
    NetworkSimulator,
    translation_traffic,
)
from repro.viz import path_family_to_dot


class TestRouteSerializeRender:
    def test_full_pipeline(self, hb23, tmp_path):
        """Route optimally, persist the Theorem-5 family, reload, render."""
        u = parse_hb_node("(00;abc)", hb23.m, hb23.n)
        v = parse_hb_node("(11;CAb)", hb23.m, hb23.n)
        route = HBRouter(hb23).route(u, v)
        family = disjoint_paths(hb23, u, v)
        assert any(len(p) - 1 == route.length for p in family)

        file = tmp_path / "family.json"
        dump_paths(family, file, meta={"source": format_hb_node(u, 2, 3)})
        reloaded, meta = load_paths(file, topology=hb23)
        assert reloaded == family
        assert meta["source"] == "(00;abc)"

        dot = path_family_to_dot(hb23, reloaded)
        assert dot.count("penwidth=2.5") == sum(len(p) - 1 for p in family)


class TestFaultsMeetSimulation:
    def test_simulated_delivery_under_survivable_faults(self, hb13, rng):
        """Fault a node on every shortest route; the fault-tolerant path
        still delivers when driven through the packet simulator."""
        router = FaultTolerantRouter(hb13)
        u, v = (0, (0, 0)), (1, (2, 0b101))
        optimal = HBRouter(hb13).route(u, v).path
        faults = [optimal[1]]
        safe_path = router.route(u, v, faults)
        validate_path(hb13, safe_path, source=u, target=v)

        from repro.simulation.protocols import PrecomputedPathProtocol

        sim = NetworkSimulator(
            hb13,
            PrecomputedPathProtocol(lambda s, t: safe_path),
            faults=faults,
        )
        packet = sim.inject(u, v)
        sim.run()
        assert packet.delivered_at is not None
        assert packet.hops == len(safe_path) - 1


class TestPartitionMeetsRouting:
    def test_block_local_routing_matches_projection(self, hb23, rng):
        """Routing inside a partition block == routing in the small HB."""
        block = partition_by_cube_bits(hb23, [1])[1]
        small_router = HBRouter(block.sub)
        sub_nodes = list(block.sub.nodes())
        for _ in range(15):
            a, b = rng.sample(sub_nodes, 2)
            inner = small_router.route(a, b)
            lifted = [block.lift(x) for x in inner.path]
            validate_path(hb23, lifted, source=block.lift(a), target=block.lift(b))
            # block-local optimal == host-optimal whenever endpoints share
            # the frozen bits (the block is isometrically embedded)
            assert inner.length == hb23.distance(lifted[0], lifted[-1])


class TestTablesMeetSimulation:
    def test_table_driven_protocol(self, hb13):
        """Drive the simulator entirely from the split routing table."""
        table = build_split_table(hb13)

        class TableProtocol:
            def next_hop(self, packet, node):
                return table.next_hop(node, packet.target)

        sim = NetworkSimulator(hb13, TableProtocol())
        sim.inject_all(translation_traffic(hb13))
        sim.run()
        stats = sim.stats()
        assert stats.delivered == hb13.num_nodes
        # translation traffic: all packets travel the same optimal distance
        expected = hb13.distance(
            hb13.identity_node(), ((1 << hb13.m) - 1, (hb13.n // 2, 0))
        )
        assert stats.mean_hops == pytest.approx(expected)


class TestEmbeddingMeetsPartition:
    def test_embedded_tree_survives_partition_projection(self, rng):
        """A T(m+n-2) embedded in a half-machine block is also a valid
        embedding in the full machine after lifting."""
        from repro.embeddings.trees import hb_tree_embedding
        from repro.embeddings.base import Embedding

        hb = HyperButterfly(3, 3)
        block = partition_by_cube_bits(hb, [2])[0]
        inner = hb_tree_embedding(block.sub)
        lifted = Embedding(
            guest=inner.guest,
            host=hb,
            mapping={g: block.lift(h) for g, h in inner.mapping.items()},
        )
        lifted.verify()
