"""E6 — Remark 10: routing under maximal faults (fault sweep).

Reproduces the sharp shape of Corollary 1 dynamically: connected fraction
and disjoint-scheme success stay at 1.0 for every fault count below the
connectivity ``m + 4``, then degrade only gently under random faults.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import HyperButterfly
from repro.faults.experiments import fault_sweep


@pytest.fixture(scope="module")
def sweep_result():
    hb = HyperButterfly(2, 3)
    counts = list(range(0, hb.m + 8))
    return hb, fault_sweep(hb, counts, trials=4, pairs_per_trial=10, seed=17)


@pytest.fixture(scope="module")
def sweep_rows(sweep_result) -> str:
    hb, results = sweep_result
    lines = [
        f"host {hb.name}, guaranteed tolerance m+3 = {hb.m + 3} faults",
        "faults  connected  disjoint-ok  overhead",
    ]
    for r in results:
        marker = "  <= guarantee" if r.faults <= hb.m + 3 else ""
        lines.append(
            f"{r.faults:6d}  {r.connected_fraction:9.3f}  "
            f"{r.disjoint_success_rate:11.3f}  {r.mean_overhead:8.3f}{marker}"
        )
    return "\n".join(lines)


def test_fault_sweep_table(benchmark, sweep_rows, sweep_result):
    emit("E6: Remark 10 — fault sweep", sweep_rows)
    hb, results = sweep_result
    # Corollary 1, observed: perfect delivery through the guarantee region
    for r in results:
        if r.faults <= hb.m + 3:
            assert r.connected_fraction == 1.0
            assert r.disjoint_success_rate == 1.0

    def one_sweep_point():
        return fault_sweep(hb, [hb.m + 3], trials=2, pairs_per_trial=5, seed=1)

    benchmark.pedantic(one_sweep_point, rounds=2, iterations=1)


def test_oblivious_overhead_is_small(sweep_result):
    """The oblivious disjoint-path route stays near the adaptive optimum."""
    _, results = sweep_result
    for r in results:
        assert r.mean_overhead <= 1.5


def test_fault_routing_latency_kernel(benchmark, hb23):
    from repro.core.fault_routing import FaultTolerantRouter
    from repro.faults.model import random_node_faults
    import random

    router = FaultTolerantRouter(hb23)
    rng = random.Random(5)
    u, v = (0, (0, 0)), (3, (2, 0b101))
    faults = random_node_faults(hb23, hb23.m + 3, rng=rng, exclude=(u, v))

    def route():
        return router.route(u, v, faults)

    path = benchmark(route)
    assert faults.nodes.isdisjoint(path)
