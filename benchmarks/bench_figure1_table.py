"""E1 — regenerate the paper's **Figure 1** comparison table.

Prints the parametric four-family table at a representative design point,
then at a verified small design point where every cell is measured from an
explicit graph built by this library, and benchmarks the verified-table
generation (construction + exact metrics + exact connectivity).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.compare import figure1_table, render_table


@pytest.fixture(scope="module")
def formula_tables() -> str:
    parts = []
    for (m, n) in [(2, 3), (3, 8)]:
        parts.append(
            render_table(
                figure1_table(m, n), title=f"Figure 1 (formulas) at (m={m}, n={n})"
            )
        )
    return "\n\n".join(parts)


def test_figure1_formula_table(benchmark, formula_tables):
    emit("E1: Figure 1 — parametric comparison", formula_tables)
    result = benchmark(figure1_table, 3, 8)
    assert result["HB(3,8)"]["Fault-tolerance"].value == 7


def test_figure1_verified_small(benchmark):
    table = benchmark.pedantic(
        lambda: figure1_table(1, 3, verify=True), rounds=3, iterations=1
    )
    emit(
        "E1: Figure 1 — verified at (m=1, n=3): every cell measured",
        render_table(table),
    )
    # the verified cells must confirm the paper's formulas
    assert table["HB(1,3)"]["Fault-tolerance"].value == 5
    assert table["HB(1,3)"]["Diameter"].value == 1 + 4
    assert table["HD(1,3)"]["Regular"].value == "no"


def test_figure1_verified_medium(benchmark):
    """Verification at (2, 3): 96-node HB column, flow connectivity."""
    table = benchmark.pedantic(
        lambda: figure1_table(2, 3, verify=True), rounds=1, iterations=1
    )
    assert table["HB(2,3)"]["Fault-tolerance"].value == 6
    assert table["HB(2,3)"]["Regular"].value == "yes"
