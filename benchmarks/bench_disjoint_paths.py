"""E5 — Theorem 5: the m+4 node-disjoint path families.

Reproduces the theorem's content as a table (per case: family size, max
path length vs the proof's bounds, constructive coverage) and benchmarks
the paper's constructive composition against the generic max-flow
extraction — the "extremely simple" claim, quantified.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit
from repro import HyperButterfly
from repro.core.disjoint_paths import (
    construction_case,
    disjoint_paths,
    disjoint_paths_with_info,
    verify_disjoint_paths,
)


def _pairs_by_case(hb, count_per_case, seed):
    rng = random.Random(seed)
    nodes = list(hb.nodes())
    buckets = {1: [], 2: [], 3: []}
    while any(len(b) < count_per_case for b in buckets.values()):
        u, v = rng.sample(nodes, 2)
        case = construction_case(u, v)
        if len(buckets[case]) < count_per_case:
            buckets[case].append((u, v))
    return buckets


@pytest.fixture(scope="module")
def theorem5_rows() -> str:
    hb = HyperButterfly(2, 4)
    buckets = _pairs_by_case(hb, 12, seed=3)
    lines = [
        f"host {hb.name}: families of m+4 = {hb.m + 4} internally disjoint paths",
        "case  pairs  constructive  max-len  (proof bound: <= diam + 2)",
    ]
    bound = hb.diameter_formula() + 2
    for case, pairs in buckets.items():
        constructive = 0
        max_len = 0
        for u, v in pairs:
            family, info = disjoint_paths_with_info(hb, u, v)
            verify_disjoint_paths(hb, u, v, family)
            constructive += info["method"] == "constructive"
            max_len = max(max_len, max(len(p) - 1 for p in family))
        lines.append(
            f"{case:4d}  {len(pairs):5d}  {constructive:12d}  {max_len:7d}"
        )
    return "\n".join(lines)


def test_theorem5_table(benchmark, theorem5_rows, hb24):
    emit("E5: Theorem 5 — disjoint path families by case", theorem5_rows)
    u, v = (0, (0, 0)), (3, (2, 0b1010))

    def construct():
        return disjoint_paths(hb24, u, v)

    family = benchmark(construct)
    assert len(family) == hb24.m + 4


def test_constructive_vs_flow_speed(benchmark, hb24):
    """The ablation: the paper's construction against global max-flow."""
    u, v = (0, (0, 0)), (3, (2, 0b1010))
    constructive = disjoint_paths(hb24, u, v, method="constructive")

    def flow():
        return disjoint_paths(hb24, u, v, method="flow")

    flow_family = benchmark.pedantic(flow, rounds=3, iterations=1)
    assert len(flow_family) == len(constructive) == hb24.m + 4


def test_construction_at_figure2_scale(benchmark, hb38):
    """Constructive Theorem 5 on the 16384-node flagship; flow at this
    scale is orders slower (and is exactly what the construction avoids)."""
    u = hb38.identity_node()
    v = (0b101, (4, 0b10110001))

    def construct():
        family, info = disjoint_paths_with_info(hb38, u, v, method="constructive")
        verify_disjoint_paths(hb38, u, v, family)
        return info

    info = benchmark.pedantic(construct, rounds=2, iterations=1)
    assert info["method"] == "constructive"


def test_constructive_coverage_rate(benchmark):
    """Fraction of random pairs served without the flow fallback."""
    hb = HyperButterfly(3, 4)
    rng = random.Random(9)
    nodes = list(hb.nodes())
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(30)]

    def coverage():
        hits = 0
        for u, v in pairs:
            _, info = disjoint_paths_with_info(hb, u, v)
            hits += info["method"] == "constructive"
        return hits / len(pairs)

    rate = benchmark.pedantic(coverage, rounds=1, iterations=1)
    assert rate >= 0.8  # corners (documented) are the only fallbacks
