"""E10 — scalability, partitionability and VLSI bisection (extensions).

The paper's title promises a *scalable* architecture and its conclusion
promises VLSI results.  This bench makes both measurable:

* partition HB(m,n) into 2^j sub-machines and verify each is an induced
  HB(m-j,n); grow HB(m,n) into HB(m+1,n) without relabelling;
* bisection-width report (spectral lower bound vs canonical cube cut vs
  local-search cut) for HB and the HD baseline;
* single-port gossip rounds vs the log2 N lower bound.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import HyperButterfly, HyperDeBruijn
from repro.analysis.bisection import bisection_report
from repro.core.partition import expansion_embedding, partition_by_cube_bits
from repro.simulation.gossip import gossip_lower_bound, single_port_gossip


@pytest.fixture(scope="module")
def bisection_rows() -> str:
    lines = ["network   nodes  spectral-lower  best-found-cut  canonical-cut"]
    for topo in (HyperButterfly(2, 3), HyperButterfly(1, 4), HyperDeBruijn(2, 4)):
        report = bisection_report(topo, rounds=2)
        canonical = report.canonical_cut if report.canonical_cut else "-"
        lines.append(
            f"{report.name:9s} {report.nodes:5d}  {report.spectral_lower:14.2f}  "
            f"{report.best_cut_upper:14d}  {canonical!s:>13s}"
        )
    return "\n".join(lines)


def test_bisection_table(benchmark, bisection_rows):
    emit("E10: bisection width bounds (VLSI proxy)", bisection_rows)
    hb = HyperButterfly(2, 3)
    report = benchmark.pedantic(
        lambda: bisection_report(hb, rounds=1), rounds=1, iterations=1
    )
    low, high = report.certified_interval
    assert 0 < low <= high <= report.canonical_cut


def test_partition_throughput(benchmark, hb23):
    def split_and_verify():
        blocks = partition_by_cube_bits(hb23, [0])
        for block in blocks:
            block.as_embedding().verify()
        return len(blocks)

    assert benchmark(split_and_verify) == 2


def test_expansion_chain(benchmark):
    def grow_twice():
        hb = HyperButterfly(1, 3)
        for _ in range(2):
            emb = expansion_embedding(hb)
            emb.verify()
            hb = emb.host
        return hb.m

    assert benchmark.pedantic(grow_twice, rounds=2, iterations=1) == 3


def test_gossip_rounds(benchmark, hb23):
    rounds = benchmark.pedantic(
        lambda: len(single_port_gossip(hb23)), rounds=2, iterations=1
    )
    lb = gossip_lower_bound(hb23)
    emit(
        "E10b: single-port gossip",
        f"{hb23.name}: {rounds} rounds vs lower bound {lb} "
        f"(ratio {rounds / lb:.2f})",
    )
    assert rounds <= 3 * lb
