"""E7 — fast graph backend: CSR BFS kernels vs. pure-Python references.

The fastgraph subsystem (codec → CSR adjacency → array kernels) is the
substrate under ``exact_diameter``, the distance oracle, distance
profiles, and fault sweeps.  These benchmarks pin its two acceptance
claims:

* the HB(3,8) single-BFS diameter (16384 nodes) is ≥10× faster than the
  seed's per-source dict BFS, *including* one-time CSR construction;
* a ≥65k-node instance — HB(5,8), 65536 nodes — gets an exact diameter
  well under 60 s, a scale the label-walking code could not touch.

``benchmarks/fastgraph_timings.py`` emits the same measurements as
machine-readable JSON (``BENCH_fastgraph.json``) for cross-PR tracking.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit
from repro.analysis.metrics import exact_diameter
from repro.cayley.graph import DistanceOracle
from repro.core.hyperbutterfly import HyperButterfly
from repro.fastgraph import get_fastgraph


def test_csr_build_hb38(benchmark, hb38):
    """One-time cost: codec-vectorized CSR adjacency for 16384 nodes."""
    fresh = HyperButterfly(3, 8)
    csr = benchmark.pedantic(
        lambda: get_fastgraph(fresh).csr, rounds=1, iterations=1
    )
    assert csr.num_nodes == 16384
    assert csr.num_arcs == 16384 * 7


def test_fast_diameter_speedup_hb38(benchmark):
    """Acceptance bar: ≥10× vs. the seed's dict BFS, build included."""
    anchor_topology = HyperButterfly(3, 8)
    anchor = anchor_topology.identity_node()

    start = time.perf_counter()
    reference = max(
        anchor_topology._bfs_distances_python(anchor, frozenset()).values()
    )
    python_s = time.perf_counter() - start

    fresh = HyperButterfly(3, 8)

    def fast_diameter():
        return get_fastgraph(fresh).eccentricity(fresh.identity_node())

    diameter = benchmark.pedantic(fast_diameter, rounds=1, iterations=1)
    fast_s = benchmark.stats.stats.mean
    assert diameter == reference == 15
    speedup = python_s / fast_s
    emit(
        "E7: HB(3,8) single-BFS diameter — fast backend vs. dict BFS",
        f"pure-Python dict BFS: {python_s:.3f} s\n"
        f"CSR backend (build + BFS): {fast_s:.3f} s\n"
        f"speedup: {speedup:.1f}x (acceptance bar: 10x)",
    )
    assert speedup >= 10.0


def test_oracle_fill_speedup_hb24(benchmark):
    """Identity-rooted oracle (the E4 routing substrate) on HB(2,4)...
    scaled here to HB(3,6) = 4608 nodes where the dict fill is visible."""
    hb = HyperButterfly(3, 6)
    start = time.perf_counter()
    slow = DistanceOracle(hb.group, hb.gens, backend="python")
    python_s = time.perf_counter() - start

    fast = benchmark.pedantic(
        lambda: DistanceOracle(hb.group, hb.gens), rounds=1, iterations=1
    )
    fast_s = benchmark.stats.stats.mean
    assert fast.eccentricity_of_identity() == slow.eccentricity_of_identity()
    emit(
        "E7: HB(3,6) oracle fill — fast vs. python backend",
        f"python fill: {python_s:.3f} s\nfast fill: {fast_s:.3f} s\n"
        f"speedup: {python_s / fast_s:.1f}x",
    )


def test_exact_diameter_65k_under_budget(benchmark):
    """HB(5,8): 65536 nodes, exact diameter, < 60 s wall-clock."""
    hb = HyperButterfly(5, 8)
    assert hb.num_nodes == 65536
    diameter = benchmark.pedantic(
        lambda: exact_diameter(hb), rounds=1, iterations=1
    )
    elapsed = benchmark.stats.stats.mean
    assert diameter == hb.diameter_formula()
    emit(
        "E7: HB(5,8) exact diameter at 65536 nodes",
        f"diameter {diameter} in {elapsed:.3f} s (budget: 60 s)",
    )
    assert elapsed < 60.0


def test_batched_all_eccentricities_hb23(benchmark, hb23):
    """Generic (non-transitive path) all-source eccentricities, batched."""
    from repro.fastgraph.kernels import batched_eccentricities

    fg = get_fastgraph(hb23)
    ecc = benchmark.pedantic(
        lambda: batched_eccentricities(fg.csr, batch=128, name=hb23.name),
        rounds=1,
        iterations=1,
    )
    assert int(ecc.max()) == hb23.diameter_formula()
