"""Shared benchmark configuration.

Each benchmark module regenerates one paper table/figure (experiment ids
E1–E9; see DESIGN.md section 4).  The reproduced rows are printed to
stdout — run with ``pytest benchmarks/ --benchmark-only -s`` to see them —
and the timing kernels are measured by pytest-benchmark.
"""

from __future__ import annotations

import sys

import pytest


def emit(title: str, body: str) -> None:
    """Print a reproduced table with a recognisable banner."""
    bar = "=" * 72
    sys.stdout.write(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def hb23():
    from repro import HyperButterfly

    return HyperButterfly(2, 3)


@pytest.fixture(scope="session")
def hb24():
    from repro import HyperButterfly

    return HyperButterfly(2, 4)


@pytest.fixture(scope="session")
def hb38():
    """The Figure 2 flagship instance (16384 nodes)."""
    from repro import HyperButterfly

    return HyperButterfly(3, 8)
