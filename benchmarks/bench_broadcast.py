"""E8 — the conclusion's broadcast extension, measured.

Reproduces the "asymptotically optimal broadcasting" claim as a table of
round counts versus the ``max(diameter, log2 N)`` lower bound across a
grid, and benchmarks the structured scheduler.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import HyperButterfly, broadcast_rounds
from repro.core.broadcast import broadcast_lower_bound

GRID = [(1, 3), (2, 3), (2, 4), (3, 4), (4, 4)]


@pytest.fixture(scope="module")
def broadcast_rows() -> str:
    lines = ["(m,n)   nodes  lower  all-port  greedy-1port  structured  ratio"]
    for m, n in GRID:
        hb = HyperButterfly(m, n)
        root = hb.identity_node()
        lb = broadcast_lower_bound(hb)
        allport = broadcast_rounds(hb, root, model="all-port")
        greedy = broadcast_rounds(hb, root, model="single-port")
        structured = broadcast_rounds(hb, root, model="structured")
        lines.append(
            f"({m},{n})  {hb.num_nodes:6d} {lb:6d} {allport:9d} "
            f"{greedy:13d} {structured:11d}  {structured / lb:5.2f}"
        )
    return "\n".join(lines)


def test_broadcast_table(benchmark, broadcast_rows):
    emit("E8: broadcast rounds vs lower bound", broadcast_rows)
    hb = HyperButterfly(2, 4)
    root = hb.identity_node()

    def structured():
        return broadcast_rounds(hb, root, model="structured")

    rounds = benchmark(structured)
    assert rounds <= 2 * broadcast_lower_bound(hb)


def test_asymptotic_optimality_across_grid(broadcast_rows):
    """Constant-factor optimality holds at every grid point."""
    for m, n in GRID:
        hb = HyperButterfly(m, n)
        root = hb.identity_node()
        structured = broadcast_rounds(hb, root, model="structured")
        assert structured <= 2 * broadcast_lower_bound(hb)


def test_structured_scheduler_at_scale(benchmark, hb38):
    """Schedule construction on the 16384-node flagship."""
    from repro.core.broadcast import structured_broadcast_schedule

    def build():
        return len(structured_broadcast_schedule(hb38, hb38.identity_node()))

    rounds = benchmark.pedantic(build, rounds=1, iterations=1)
    assert rounds <= 2 * broadcast_lower_bound(hb38)


def test_all_port_flood_kernel(benchmark, hb24):
    root = hb24.identity_node()
    rounds = benchmark(lambda: broadcast_rounds(hb24, root, model="all-port"))
    assert rounds == hb24.eccentricity(root)
