"""E2 — regenerate the paper's **Figure 2**: HB(3,8) vs HD(3,11) vs HD(6,8).

The full variant computes every numeric cell exactly at the paper's
16384-node scale: exact diameters (single-BFS eccentricity for the
vertex-transitive HB; batched boolean BFS over all sources for HD) and
sampled Menger witnesses for the fault-tolerance row.  The embedding rows
for HB are backed by live constructions (verified here for the flagship
instance).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.compare import figure2_table, render_table
from repro.analysis.metrics import exact_diameter
from repro.embeddings.mesh_of_trees import hb_mesh_of_trees_embedding
from repro.embeddings.trees import hb_tree_embedding
from repro.topologies.hyperdebruijn import HyperDeBruijn


def test_figure2_full_table(benchmark):
    table = benchmark.pedantic(
        lambda: figure2_table(exact_diameters=True, connectivity_pairs=3),
        rounds=1,
        iterations=1,
    )
    emit(
        "E2: Figure 2 — exact 16384-node comparison",
        render_table(table),
    )
    # the paper's qualitative claims, now measured:
    assert table["HB(3,8)"]["Regular"].value == "yes"
    assert table["HD(3,11)"]["Regular"].value == "no"
    assert table["HB(3,8)"]["Diameter"].value == 15  # 3 + floor(24/2)
    assert table["HD(3,11)"]["Diameter"].value == 14  # 3 + 11
    assert table["HD(6,8)"]["Diameter"].value == 14  # 6 + 8
    assert table["HB(3,8)"]["Degree"].value == "7"
    assert table["HD(6,8)"]["Degree"].value == "8..10"


def test_figure2_hb_diameter_kernel(benchmark, hb38):
    """The vertex-transitive single-BFS diameter at 16k nodes."""
    diameter = benchmark.pedantic(
        lambda: exact_diameter(hb38), rounds=1, iterations=1
    )
    assert diameter == hb38.diameter_formula() == 15


def test_figure2_hd_diameter_kernel(benchmark):
    """The batched-BFS all-eccentricity diameter for the irregular HD."""
    hd = HyperDeBruijn(3, 11)
    diameter = benchmark.pedantic(
        lambda: exact_diameter(hd), rounds=1, iterations=1
    )
    assert diameter == 14


def test_figure2_embedding_rows_live(benchmark, hb38):
    """The HB(3,8) embedding cells are claims about *this* instance —
    rebuild and verify T(10) and MT(2,256) inside it."""

    def build_and_verify():
        tree = hb_tree_embedding(hb38)
        tree.verify()
        mot = hb_mesh_of_trees_embedding(hb38, 1, 8)
        mot.verify()
        return tree.guest.num_nodes, mot.guest.num_nodes

    tree_nodes, mot_nodes = benchmark.pedantic(
        build_and_verify, rounds=1, iterations=1
    )
    assert tree_nodes == 2**10 - 1
    assert mot_nodes == 3 * 2 * 256 - 2 - 256
