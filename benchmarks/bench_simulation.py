"""E9 — (ablation) dynamic traffic: HB vs HD in the simulator.

The paper's comparison is static; this bench loads matched instances into
the store-and-forward simulator and reproduces the Figure 1 trade-off
dynamically: HD's shorter diameter shows up as lower mean latency, HB's
regular optimal routing as tighter tail behaviour — while HB keeps its
fault-tolerance edge (E6).  Also measures the two leader-election
algorithms (the companion-paper extension).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import HyperButterfly, HyperDeBruijn
from repro.simulation import (
    HBObliviousProtocol,
    HDObliviousProtocol,
    NetworkSimulator,
    flood_max_election,
    permutation_traffic,
    tree_based_election,
    uniform_random_traffic,
)


def _run(topology, protocol, pairs):
    sim = NetworkSimulator(topology, protocol)
    sim.inject_all(pairs)
    sim.run()
    return sim.stats()


@pytest.fixture(scope="module")
def traffic_rows() -> str:
    hb = HyperButterfly(2, 4)   # 256 nodes
    hd = HyperDeBruijn(3, 5)    # 256 nodes
    lines = ["network   workload      delivered  mean-lat  max-lat  makespan"]
    for label, topo, proto in [
        (hb.name, hb, HBObliviousProtocol(hb)),
        (hd.name, hd, HDObliviousProtocol(hd)),
    ]:
        for workload, pairs in [
            ("uniform", uniform_random_traffic(topo, 400, seed=7)),
            ("permutation", permutation_traffic(topo, seed=7)),
        ]:
            stats = _run(topo, proto, pairs)
            lines.append(
                f"{label:9s} {workload:12s} {stats.delivered:9d} "
                f"{stats.mean_latency:9.2f} {stats.max_latency:8.1f} "
                f"{stats.makespan:9.1f}"
            )
    return "\n".join(lines)


def test_traffic_comparison_table(benchmark, traffic_rows):
    emit("E9: dynamic HB vs HD comparison (matched 256-node budget)", traffic_rows)
    hb = HyperButterfly(2, 4)
    pairs = uniform_random_traffic(hb, 200, seed=3)

    def run_sim():
        return _run(hb, HBObliviousProtocol(hb), pairs).delivered

    assert benchmark(run_sim) == 200


def test_everything_delivers(traffic_rows):
    for line in traffic_rows.splitlines()[1:]:
        delivered = int(line.split()[2])
        assert delivered in (400, 256)


def test_leader_election_comparison(benchmark):
    hb = HyperButterfly(2, 4)
    flood = flood_max_election(hb, seed=2)
    tree = tree_based_election(hb, hb.identity_node(), seed=2)
    emit(
        "E9b: leader election (companion-paper extension)",
        f"flood-max : {flood.messages:6d} messages, {flood.rounds} rounds\n"
        f"tree-based: {tree.messages:6d} messages, {tree.rounds} rounds",
    )
    assert flood.leader == tree.leader
    assert tree.messages < flood.messages

    benchmark(lambda: flood_max_election(hb, seed=2).leader)


def test_hd_simulation_kernel(benchmark):
    hd = HyperDeBruijn(3, 5)
    pairs = uniform_random_traffic(hd, 200, seed=3)

    def run_sim():
        return _run(hd, HDObliviousProtocol(hd), pairs).delivered

    assert benchmark(run_sim) == 200
