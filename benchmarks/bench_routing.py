"""E4 — Section 3 optimal routing and Theorem 3 diameter.

Reproduces the routing claims as a table (diameter formula vs exact BFS
over the grid) and benchmarks the two butterfly backends head-to-head —
the covering-walk router (O(1) memory) versus the BFS oracle (O(n·2^n)
one-time table) — the trade-off called out in DESIGN.md section 5.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit
from repro import HBRouter, HyperButterfly

GRID = [(0, 3), (1, 3), (2, 3), (1, 4), (2, 4)]


@pytest.fixture(scope="module")
def diameter_rows() -> str:
    lines = ["(m,n)   formula m+floor(3n/2)   exact (BFS)   agree"]
    for m, n in GRID:
        hb = HyperButterfly(m, n)
        formula, exact = hb.diameter_formula(), hb.diameter()
        lines.append(
            f"({m},{n})  {formula:21d}   {exact:11d}   {formula == exact}"
        )
    return "\n".join(lines)


def _random_pairs(hb, count, seed):
    rng = random.Random(seed)
    nodes = list(hb.nodes())
    return [tuple(rng.sample(nodes, 2)) for _ in range(count)]


def test_theorem3_diameter_table(benchmark, diameter_rows):
    emit("E4: Theorem 3 — diameter, formula vs exact", diameter_rows)
    hb = HyperButterfly(2, 4)
    assert benchmark.pedantic(hb.diameter, rounds=1, iterations=1) == 8


def test_routing_throughput_walk_backend(benchmark, hb24):
    router = HBRouter(hb24, butterfly_backend="walk")
    pairs = _random_pairs(hb24, 200, seed=1)

    def route_all():
        return sum(router.route(u, v).length for u, v in pairs)

    total = benchmark(route_all)
    assert total > 0


def test_routing_throughput_oracle_backend(benchmark, hb24):
    router = HBRouter(hb24, butterfly_backend="oracle")
    hb24.butterfly.oracle  # pay the table cost outside the timer
    pairs = _random_pairs(hb24, 200, seed=1)

    def route_all():
        return sum(router.route(u, v).length for u, v in pairs)

    walk_total = sum(
        HBRouter(hb24, butterfly_backend="walk").route(u, v).length
        for u, v in pairs
    )
    assert benchmark(route_all) == walk_total  # both exactly optimal


def test_oracle_table_build_cost(benchmark):
    """The one-time O(n·2^n) BFS the walk router avoids (n = 8: 2048)."""
    from repro.topologies.butterfly_cayley import CayleyButterfly

    def build():
        return CayleyButterfly(8).oracle.eccentricity_of_identity()

    assert benchmark.pedantic(build, rounds=2, iterations=1) == 12


def test_walk_router_at_oracle_free_scale(benchmark, hb38):
    """Routing on the 16384-node Figure 2 instance, no precomputation."""
    router = HBRouter(hb38, butterfly_backend="walk")
    pairs = _random_pairs(hb38, 100, seed=2)

    def route_all():
        total = 0
        for u, v in pairs:
            result = router.route(u, v)
            assert result.length <= hb38.diameter_formula()
            total += result.length
        return total

    assert benchmark(route_all) > 0


def test_routing_table_rom_sizes(benchmark, hb24):
    """The VLSI angle: a shared full table vs the Remark-8 split table."""
    from benchmarks.conftest import emit
    from repro.routing.tables import build_full_table, build_split_table

    full = build_full_table(hb24)
    split = benchmark.pedantic(
        lambda: build_split_table(hb24), rounds=3, iterations=1
    )
    emit(
        "E4b: routing-table ROM sizes (vertex transitivity at work)",
        f"{hb24.name}: naive per-node tables  {hb24.num_nodes * (hb24.num_nodes - 1)} entries\n"
        f"          shared full table      {full.num_entries} entries\n"
        f"          split (fly-only) table {split.num_entries} entries",
    )
    u, v = (0, (0, 0)), (3, (2, 0b1001))
    assert len(full.route(u, v)) == len(split.route(u, v))
