"""E13 — product-decomposition metrics vs. all-pairs BFS sweeps.

Emits ``BENCH_metrics.json``.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_product_metrics.py [output.json] [--quick]

Two measurement campaigns:

* **speedup table** — exact diameter / average distance / full distance
  histogram per instance, timed on both engines where feasible: the
  factor-histogram convolution (:mod:`repro.analysis.decompose`) and the
  all-sources batched BFS sweep it replaces.  The two histograms are
  asserted **bit-identical** before any speedup is reported; the
  acceptance bar of this subsystem's PR is ≥50× on ``HB(5,8)``
  (65536 nodes).  ``HB(8,10)`` (2.6M nodes) runs decomposition-only —
  the sweep would take days at that scale, which is the point.
* **diameter sweep** — exact ``HB(m,n)`` diameters over a parameter grid,
  compared against the two readings of the paper: Theorem 3's
  ``m + ceil(3n/2)`` and the ``m + floor(3n/2)`` implied by Remark 1's
  butterfly diameter ``floor(3n/2)``.  The grid records, per ``(m, n)``,
  which reading matches (they differ only for odd ``n``).

``--quick`` keeps everything under a few seconds for CI smoke: the big
both-engine instance and the large grid rows are skipped.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from typing import Callable


def _clock(fn: Callable[[], object]) -> tuple[object, float]:
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _metrics_from_counts(counts: dict[int, int], nodes: int) -> dict:
    total = sum(counts.values())
    distinct = total - nodes
    return {
        "diameter": max(counts),
        "average_distance": sum(d * c for d, c in counts.items()) / distinct,
    }


def bench_speedup_instance(m: int, n: int, *, sweep: bool = True) -> dict:
    """Time decomposition vs. the all-sources sweep on a fresh ``HB(m,n)``.

    Fresh instances per engine so each timing includes its true one-time
    costs (factor BFS for decomposition, CSR build for the sweep) and no
    memoized histogram leaks between engines.
    """
    from repro.analysis.distance_stats import pair_distance_counts
    from repro.core.hyperbutterfly import HyperButterfly

    hb = HyperButterfly(m, n)
    decomposed, decomposition_s = _clock(
        lambda: pair_distance_counts(HyperButterfly(m, n))
    )
    entry: dict = {
        "instance": hb.name,
        "nodes": hb.num_nodes,
        "decomposition_s": round(decomposition_s, 6),
        **_metrics_from_counts(decomposed, hb.num_nodes),
    }
    if sweep:
        swept, sweep_s = _clock(
            lambda: pair_distance_counts(
                HyperButterfly(m, n), force_generic=True
            )
        )
        assert swept == decomposed, f"{hb.name}: engines disagree"
        entry["bfs_sweep_s"] = round(sweep_s, 6)
        entry["speedup"] = round(sweep_s / decomposition_s, 1)
        entry["identical_to_sweep"] = True
    return entry


def bench_diameter_sweep(grid: list[tuple[int, int]]) -> list[dict]:
    """Exact decomposition diameters vs. the ceil/floor formula readings."""
    from repro.analysis.decompose import product_diameter
    from repro.core.hyperbutterfly import HyperButterfly

    rows = []
    for m, n in grid:
        exact = product_diameter(HyperButterfly(m, n))
        assert exact is not None
        ceil_reading = m + math.ceil(3 * n / 2)
        floor_reading = m + (3 * n) // 2
        if ceil_reading == floor_reading:
            matches = "both" if exact == floor_reading else "neither"
        elif exact == floor_reading:
            matches = "floor"
        elif exact == ceil_reading:
            matches = "ceil"
        else:
            matches = "neither"
        rows.append(
            {
                "m": m,
                "n": n,
                "nodes": HyperButterfly(m, n).num_nodes,
                "exact_diameter": exact,
                "theorem3_ceil": ceil_reading,
                "remark1_floor": floor_reading,
                "matches": matches,
            }
        )
    return rows


def main(out_path: str = "BENCH_metrics.json", *flags: str) -> dict:
    from repro import __version__

    quick = "--quick" in flags
    speedup_instances: list[tuple[int, int, bool]] = [
        (2, 4, True),  # 256 nodes
        (3, 6, True),  # 3072 nodes
    ]
    if not quick:
        speedup_instances.append((5, 8, True))  # 65536 nodes — acceptance bar
    speedup_instances.append((8, 10, False))  # 2.6M nodes, decomposition only

    grid = [(m, n) for m in range(0, 4) for n in (3, 4, 5, 6)]
    if not quick:
        grid += [(m, n) for m in (2, 5, 8) for n in (7, 8, 9, 10)]

    report = {
        "generated_by": "benchmarks/bench_product_metrics.py",
        "repro_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "mode": "quick" if quick else "full",
        "speedup_table": [
            bench_speedup_instance(m, n, sweep=sweep)
            for m, n, sweep in speedup_instances
        ],
        "diameter_sweep": bench_diameter_sweep(grid),
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for entry in report["speedup_table"]:
        line = (
            f"{entry['instance']:>9s}  {entry['nodes']:>8d} nodes  "
            f"decomposition {entry['decomposition_s']*1e3:9.2f} ms"
        )
        if "bfs_sweep_s" in entry:
            line += (
                f"  sweep {entry['bfs_sweep_s']:8.3f} s"
                f"  x{entry['speedup']}"
            )
        else:
            line += "  (sweep skipped: decomposition-only scale)"
        print(line)
    floor_rows = [r for r in report["diameter_sweep"] if r["matches"] == "floor"]
    neither = [r for r in report["diameter_sweep"] if r["matches"] == "neither"]
    print(
        f"diameter sweep: {len(report['diameter_sweep'])} points, "
        f"{len(floor_rows)} odd-n points match the floor reading, "
        f"{len(neither)} match neither"
    )
    assert not neither, "exact diameter matched neither formula reading"
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    main(*sys.argv[1:])
