"""E16 — vectorized flow engine: saturation campaign + event-sim pinning.

Emits ``BENCH_traffic.json``.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_traffic.py [output.json] [--quick]

Three sections:

* **campaign** (deterministic) — latency-vs-load curves and saturation
  throughput per workload family on the flagship ``HB(6,11)`` (1,441,792
  nodes) against node-count-matched ``HD(6,14)`` and ``H_20`` baselines,
  every measurement at or above 10^6 flows, all through
  :func:`repro.simulation.campaign.run_traffic_campaign`.
* **equivalence** (deterministic) — the flow engine replayed against the
  discrete-event :class:`NetworkSimulator` on a small-instance grid
  (HB/HD/hypercube/butterfly × fault regimes), asserting per-flow
  bit-identical delivery ticks, hop counts and drop reasons.
* **speedup** (wall-clock; the only nondeterministic section) — the same
  uniform workload at the largest size the event simulator still finishes
  in reasonable time, event-by-event versus vectorized; the full run
  asserts the >= 100x bar.

``--quick`` keeps everything under a minute for CI smoke: a small
campaign, a reduced grid, a tiny speedup probe with no 100x assertion.
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time

#: full-mode campaign: >= 10^6 flows per row on the 1.44M-node flagship
FLAGSHIP = dict(m=6, n=11, flows_target=1_100_000)
FLAGSHIP_FAMILIES = (
    "uniform",
    "permutation",
    "bit_reversal",
    "transpose",
    "tornado",
    "hotspot",
)
FLAGSHIP_LOADS = (0.05, 0.15, 0.4, 1.0)

#: speedup probe — largest size the event simulator finishes in ~a minute
SPEEDUP_INSTANCE = (4, 8)
SPEEDUP_FLOWS = 30_000
SPEEDUP_BAR = 100.0

#: equivalence grid: (builder key, args) — small enough for the event sim
EQUIV_GRID = [
    ("hb", (2, 3)),
    ("hd", (2, 3)),
    ("hypercube", (4,)),
    ("butterfly", (3,)),
]
EQUIV_FLOWS = 120


def _build(key: str, args: tuple):
    if key == "hb":
        from repro.core.hyperbutterfly import HyperButterfly

        return HyperButterfly(*args)
    if key == "hd":
        from repro.topologies.hyperdebruijn import HyperDeBruijn

        return HyperDeBruijn(*args)
    if key == "hypercube":
        from repro.topologies.hypercube import Hypercube

        return Hypercube(*args)
    from repro.topologies.butterfly_cayley import CayleyButterfly

    return CayleyButterfly(*args)


def _sample_regime(topology, seed: int):
    """Static faults + an integer-time transient schedule, seeded."""
    from repro.faults.dynamic import FaultEvent, FaultSchedule
    from repro.faults.model import canonical_link

    rng = random.Random(seed)
    nodes = list(topology.nodes())
    edges = list(topology.edges())
    static_nodes = rng.sample(nodes, 2)
    static_links = rng.sample(edges, 2)
    events = []
    for t in (1, 2, 4):
        v = rng.choice(nodes)
        events.append(FaultEvent(float(t), "fail", "node", v))
        events.append(FaultEvent(float(t + 2), "repair", "node", v))
        u, w = rng.choice(edges)
        events.append(FaultEvent(float(t), "fail", "link", canonical_link(u, w)))
        events.append(FaultEvent(float(t + 3), "repair", "link", canonical_link(u, w)))
    return static_nodes, static_links, FaultSchedule(topology, events)


def _pin_once(topology, *, faulty: bool, ttl: int | None, seed: int) -> dict:
    """One engine-vs-event replay; asserts bit-identical per-flow outcomes."""
    from repro.simulation.flow import DROP_REASONS, FlowEngine, routes_block
    from repro.simulation.network import NetworkSimulator
    from repro.simulation.protocols import PrecomputedPathProtocol
    from repro.simulation.workloads import build_workload

    static_nodes: list = []
    static_links: list = []
    schedule = None
    if faulty:
        static_nodes, static_links, schedule = _sample_regime(topology, seed)
    tm = build_workload(topology, "uniform", count=EQUIV_FLOWS, seed=seed, per_tick=20)
    routes = routes_block(topology, tm.sources, tm.targets)
    sim = NetworkSimulator(
        topology,
        PrecomputedPathProtocol(routes.path_fn(tm)),
        faults=static_nodes,
        link_faults=static_links,
        schedule=schedule,
        ttl=ttl,
    )
    for i, (s, t) in enumerate(tm.pairs(routes.codec)):
        sim.inject(s, t, at=float(tm.inject_at[i]))
    sim.run()
    engine = FlowEngine(
        topology,
        tm,
        routes,
        faults=static_nodes,
        link_faults=static_links,
        schedule=schedule,
        ttl=ttl,
    ).run()
    res = engine.result()
    for i, packet in enumerate(sim.packets):
        delivered = packet.delivered_at
        flow_tick = int(res.delivered_at[i])
        assert (delivered is None) == (flow_tick < 0), (topology.name, i)
        if delivered is not None:
            assert float(flow_tick) == delivered, (topology.name, i)
        assert packet.hops == int(res.hops[i]), (topology.name, i)
        assert (packet.drop_reason or "") == DROP_REASONS[res.drop_code[i]], (
            topology.name,
            i,
        )
    assert sim.stats() == engine.stats()
    return {
        "instance": topology.name,
        "flows": tm.num_flows,
        "faulty": faulty,
        "ttl": ttl,
        "delivered": engine.stats().delivered,
        "identical": True,
    }


def bench_equivalence(grid) -> dict:
    rows = []
    for key, args in grid:
        topology = _build(key, args)
        for faulty, ttl in ((False, None), (True, None), (True, 3)):
            row = _pin_once(topology, faulty=faulty, ttl=ttl, seed=11)
            rows.append(row)
            print(
                f"equivalence {row['instance']:>12s} faulty={faulty!s:5s} "
                f"ttl={ttl}  delivered {row['delivered']}/{row['flows']}  OK"
            )
    return {"grid": rows, "all_identical": all(r["identical"] for r in rows)}


def bench_speedup(m: int, n: int, flows: int, *, assert_bar: bool) -> dict:
    """Event-by-event vs vectorized wall clock on identical traffic."""
    from repro.core.hyperbutterfly import HyperButterfly
    from repro.simulation.flow import FlowEngine, routes_block
    from repro.simulation.network import NetworkSimulator
    from repro.simulation.protocols import HBObliviousProtocol
    from repro.simulation.workloads import build_workload

    hb = HyperButterfly(m, n)
    per_tick = max(1, flows // 10)
    tm = build_workload(hb, "uniform", count=flows, seed=0, per_tick=per_tick)

    started = time.perf_counter()
    routes = routes_block(hb, tm.sources, tm.targets)
    engine = FlowEngine(hb, tm, routes).run()
    flow_seconds = time.perf_counter() - started
    flow_stats = engine.stats()

    started = time.perf_counter()
    sim = NetworkSimulator(hb, HBObliviousProtocol(hb))
    for i, (s, t) in enumerate(tm.pairs(routes.codec)):
        sim.inject(s, t, at=float(tm.inject_at[i]))
    sim.run()
    event_seconds = time.perf_counter() - started
    event_stats = sim.stats()

    assert flow_stats.delivered == tm.num_flows
    assert event_stats.delivered == tm.num_flows
    speedup = event_seconds / flow_seconds
    print(
        f"speedup {hb.name}: event {event_seconds:.2f}s vs "
        f"flow {flow_seconds:.3f}s (routes included) -> {speedup:.0f}x"
    )
    if assert_bar:
        assert speedup >= SPEEDUP_BAR, (speedup, SPEEDUP_BAR)
    return {
        "instance": hb.name,
        "nodes": hb.num_nodes,
        "flows": tm.num_flows,
        "protocol_event": "HBObliviousProtocol",
        "protocol_flow": "routes_block(oracle)",
        "event_seconds": round(event_seconds, 4),
        "flow_seconds": round(flow_seconds, 4),
        "speedup": round(speedup, 1),
        "event_mean_latency": round(event_stats.mean_latency, 6),
        "flow_mean_latency": round(flow_stats.mean_latency, 6),
    }


def bench_campaign(quick: bool) -> dict:
    from repro.simulation.campaign import TrafficCampaignConfig, run_traffic_campaign

    if quick:
        config = TrafficCampaignConfig.quick(2, 3)
    else:
        config = TrafficCampaignConfig(
            families=FLAGSHIP_FAMILIES, loads=FLAGSHIP_LOADS, **FLAGSHIP
        )
    started = time.perf_counter()
    results = run_traffic_campaign(config)
    print(f"campaign ({'quick' if quick else 'flagship'}): "
          f"{time.perf_counter() - started:.1f}s")
    for network in results["networks"]:
        for fam in network["families"]:
            print(
                f"  {network['name']:>10s} {fam['family']:<12s} "
                f"saturation {fam['saturation_throughput']:.4f} "
                f"at load {fam['saturation_offered_load']:.3f}"
            )
    return results


def main(out_path: str = "BENCH_traffic.json", *flags: str) -> dict:
    quick = "--quick" in flags
    campaign = bench_campaign(quick)
    grid = EQUIV_GRID[:2] if quick else EQUIV_GRID
    equivalence = bench_equivalence(grid)
    if quick:
        speedup = bench_speedup(2, 4, 2_000, assert_bar=False)
    else:
        m, n = SPEEDUP_INSTANCE
        speedup = bench_speedup(m, n, SPEEDUP_FLOWS, assert_bar=True)
    payload = {
        "campaign": campaign,
        "equivalence": equivalence,
        "speedup": speedup,
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "mode": "quick" if quick else "full",
        },
    }
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    return payload


if __name__ == "__main__":
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flag_args = [a for a in sys.argv[1:] if a.startswith("--")]
    main(args[0] if args else "BENCH_traffic.json", *flag_args)
