"""E7 — Section 4 embeddings: Lemmas 1–4, Theorem 4, Figure 1 rows.

Reproduces the embedding claims as a coverage table (every even cycle
length, the tree and mesh-of-trees design points) with live verification,
and benchmarks the constructive Hamiltonian butterfly cycle — the piece
the paper cites without construction.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import HyperButterfly
from repro.embeddings.base import verify_cycle_embedding
from repro.embeddings.cycles import (
    butterfly_hamiltonian_cycle,
    hb_even_cycle,
    hb_even_cycle_max_length,
)
from repro.embeddings.mesh import hb_torus_embedding
from repro.embeddings.mesh_of_trees import hb_mesh_of_trees_embedding
from repro.embeddings.trees import hb_tree_embedding


@pytest.fixture(scope="module")
def coverage_rows() -> str:
    lines = ["host      even cycles     tree        mesh of trees   torus"]
    for m, n in [(2, 3), (3, 3), (2, 4)]:
        hb = HyperButterfly(m, n)
        top = hb_even_cycle_max_length(hb)
        ok = 0
        for k in range(4, top + 1, 2):
            verify_cycle_embedding(hb, hb_even_cycle(hb, k), expected_length=k)
            ok += 1
        tree = hb_tree_embedding(hb)
        tree.verify()
        mot = "-"
        if m >= 3:
            emb = hb_mesh_of_trees_embedding(hb, 1, n)
            emb.verify()
            mot = emb.guest.name
        torus = hb_torus_embedding(hb, 4, 2 * n)
        torus.verify()
        lines.append(
            f"HB({m},{n})   4..{top} ({ok} ok)  {tree.guest.name} ok     "
            f"{mot:14s}  {torus.guest.name} ok"
        )
    return "\n".join(lines)


def test_embedding_coverage_table(benchmark, coverage_rows, hb23):
    emit("E7: Section 4 — embedding coverage (all verified)", coverage_rows)

    def embed_one():
        cycle = hb_even_cycle(hb23, 60)
        verify_cycle_embedding(hb23, cycle, expected_length=60)
        return len(cycle)

    assert benchmark(embed_one) == 60


def test_constructive_hamiltonian_large_butterfly(benchmark):
    """The binomial-lap Hamiltonian cycle of B_10 (10240 nodes) — the
    construction [7] is cited for but never given in the paper."""
    from repro.topologies.butterfly_cayley import CayleyButterfly

    def build():
        from repro.embeddings import cycles

        cycles._HAMILTONIAN_CACHE = getattr(cycles, "_HAMILTONIAN_CACHE", None)
        return butterfly_hamiltonian_cycle(10)

    cycle = benchmark.pedantic(build, rounds=2, iterations=1)
    assert len(cycle) == 10 * 2**10
    verify_cycle_embedding(CayleyButterfly(10), cycle, expected_length=10 * 2**10)


def test_hamiltonian_cycle_of_flagship(benchmark, hb38):
    """Lemma 2's endpoint on HB(3,8): a 16384-cycle."""

    def build():
        return hb_even_cycle(hb38, hb38.num_nodes)

    cycle = benchmark.pedantic(build, rounds=1, iterations=1)
    verify_cycle_embedding(hb38, cycle, expected_length=hb38.num_nodes)


def test_tree_embedding_kernel(benchmark):
    hb = HyperButterfly(4, 4)

    def build():
        emb = hb_tree_embedding(hb)
        emb.verify()
        return emb.guest.num_nodes

    assert benchmark(build) == 2**7 - 1


def test_mesh_of_trees_kernel(benchmark):
    hb = HyperButterfly(4, 4)

    def build():
        emb = hb_mesh_of_trees_embedding(hb, 2, 4)
        emb.verify()
        return emb.guest.num_nodes

    assert benchmark(build) == 3 * 4 * 16 - 4 - 16
