"""E14 — implicit-adjacency BFS vs CSR vs pure python, time and peak RSS.

Emits ``BENCH_implicit.json``.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_implicit.py [output.json] [--quick]

Two measurement campaigns, each data point in its **own subprocess** so
peak RSS (``getrusage.ru_maxrss``) is attributable to exactly one
(instance, backend) pair:

* **backend grid** — single-source eccentricity + distance histogram on a
  grid of ``HB`` / ``HD`` / hypercube / butterfly instances, per backend
  (``implicit``, ``csr``, and ``python`` where the instance is small
  enough).  The per-source results are asserted identical across backends
  before any timing is reported.
* **flagship** (full mode) — the same per-source exact question on
  ``HB(9,11)`` (11,534,336 nodes, degree 13), where only the implicit
  substrate answers inside the memory budget: both children get the same
  allocation headroom above the interpreter baseline (``RLIMIT_AS``);
  the implicit BFS completes, the CSR build dies with ``MemoryError``
  before its first frontier — the ``O(edges)`` table alone exceeds the
  budget.  This is the acceptance evidence for the backend: exact
  per-source sweeps past 10M nodes without materializing a CSR.

``--quick`` keeps everything under a few seconds for CI smoke: a reduced
grid, no flagship.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time

#: flagship instance — 11,534,336 nodes, past the 10M-node bar
FLAGSHIP = ("hb", 9, 11)
#: allocation headroom (bytes) granted to each flagship child beyond the
#: interpreter baseline; holds the implicit sweep, not the CSR table
FLAGSHIP_BUDGET = 1 << 30
#: gather slice for the flagship children — bounds the slice × degree
#: scratch buffer well inside the budget
FLAGSHIP_SLICE = 1 << 19

#: (family, m, n, python_too): grid instances, ~3k-65k nodes
GRID = [
    ("hb", 3, 6, True),  # 3,072 nodes
    ("hd", 4, 8, True),  # 4,096 nodes
    ("hypercube", 12, None, True),  # 4,096 nodes
    ("butterfly", 8, None, True),  # 2,048 nodes
    ("hb", 5, 8, False),  # 65,536 nodes — python would dominate the bench
]
QUICK_GRID = [
    ("hb", 2, 4, True),  # 256 nodes
    ("hd", 2, 4, True),  # 64 nodes
    ("hypercube", 8, None, True),  # 256 nodes
    ("butterfly", 5, None, True),  # 160 nodes
]


def _build(family: str, m: int, n: int | None):
    if family == "hb":
        from repro.core.hyperbutterfly import HyperButterfly

        return HyperButterfly(m, n)
    if family == "hd":
        from repro.topologies.hyperdebruijn import HyperDeBruijn

        return HyperDeBruijn(m, n)
    if family == "hypercube":
        from repro.topologies.hypercube import Hypercube

        return Hypercube(m)
    if family == "butterfly":
        from repro.topologies.butterfly_cayley import CayleyButterfly

        return CayleyButterfly(m)
    raise ValueError(f"unknown family {family!r}")


def _cap_address_space(headroom_bytes: int) -> None:
    """Cap RLIMIT_AS at current VmSize + headroom (set after imports, so
    the budget measures *algorithm* allocations, not interpreter baseline)."""
    import resource

    vm_size = 0
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmSize:"):
                vm_size = int(line.split()[1]) * 1024
                break
    _, hard = resource.getrlimit(resource.RLIMIT_AS)
    resource.setrlimit(resource.RLIMIT_AS, (vm_size + headroom_bytes, hard))


def _child(argv: list[str]) -> int:
    """Measurement body: one (instance, backend) pair, JSON on stdout."""
    import resource

    family, m, n, backend = argv[0], int(argv[1]), argv[2], argv[3]
    budget = int(argv[4]) if len(argv) > 4 else 0
    topology = _build(family, m, None if n == "-" else int(n))
    source = next(iter(topology.nodes()))
    if budget:
        _cap_address_space(budget)
    started = time.perf_counter()
    try:
        if backend == "python":
            dist = topology.bfs_distances(source, backend="python")
            histogram: dict[int, int] = {}
            for d in dist.values():
                histogram[d] = histogram.get(d, 0) + 1
            ecc = max(dist.values())
        else:
            from repro.fastgraph.backend import get_fastgraph

            fast = get_fastgraph(topology)
            assert fast is not None
            ecc = fast.eccentricity(source, backend=backend)
            histogram = fast.source_histogram(source, backend=backend)
        payload = {
            "ok": True,
            "eccentricity": ecc,
            "histogram": {str(d): c for d, c in sorted(histogram.items())},
        }
    except MemoryError:
        payload = {"ok": False, "error": "MemoryError"}
    payload["seconds"] = round(time.perf_counter() - started, 4)
    payload["peak_rss_kib"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(json.dumps(payload, sort_keys=True))
    return 0


def _run_child(
    family: str,
    m: int,
    n: int | None,
    backend: str,
    *,
    budget: int = 0,
    slice_nodes: int | None = None,
) -> dict:
    env = dict(os.environ)
    src_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env["PYTHONPATH"] = os.path.normpath(src_dir) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    if slice_nodes is not None:
        env["REPRO_IMPLICIT_SLICE"] = str(slice_nodes)
    argv = [
        sys.executable,
        os.path.abspath(__file__),
        "--measure",
        family,
        str(m),
        "-" if n is None else str(n),
        backend,
        str(budget),
    ]
    proc = subprocess.run(argv, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {family}({m},{n}) backend={backend} failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def bench_grid(grid: list[tuple]) -> list[dict]:
    """Per-backend time/RSS rows; per-source results pinned identical."""
    rows = []
    for family, m, n, python_too in grid:
        topology = _build(family, m, n)
        backends = ["implicit", "csr"] + (["python"] if python_too else [])
        runs = {b: _run_child(family, m, n, b) for b in backends}
        reference = runs["implicit"]
        assert reference["ok"], (family, m, n)
        for backend, run in runs.items():
            assert run["ok"], (family, m, n, backend)
            assert run["eccentricity"] == reference["eccentricity"], backend
            assert run["histogram"] == reference["histogram"], backend
        rows.append(
            {
                "instance": topology.name,
                "nodes": topology.num_nodes,
                "eccentricity": reference["eccentricity"],
                "identical_across_backends": True,
                "backends": {
                    backend: {
                        "seconds": run["seconds"],
                        "peak_rss_kib": run["peak_rss_kib"],
                    }
                    for backend, run in runs.items()
                },
            }
        )
        print(
            f"{topology.name:>10s}  {topology.num_nodes:>8d} nodes  "
            + "  ".join(
                f"{b} {runs[b]['seconds']:8.3f}s/{runs[b]['peak_rss_kib'] // 1024:5d}MiB"
                for b in backends
            )
        )
    return rows


def bench_flagship() -> dict:
    """HB(9,11) per-source exactness inside a budget CSR cannot meet."""
    family, m, n = FLAGSHIP
    topology = _build(family, m, n)
    implicit = _run_child(
        family, m, n, "implicit", budget=FLAGSHIP_BUDGET, slice_nodes=FLAGSHIP_SLICE
    )
    assert implicit["ok"], "implicit flagship run must fit the budget"
    csr = _run_child(
        family, m, n, "csr", budget=FLAGSHIP_BUDGET, slice_nodes=FLAGSHIP_SLICE
    )
    assert not csr["ok"] and csr["error"] == "MemoryError", (
        "CSR build unexpectedly fit the flagship budget"
    )
    entry = {
        "instance": topology.name,
        "nodes": topology.num_nodes,
        "degree": topology.degree(next(iter(topology.nodes()))),
        "memory_budget_bytes": FLAGSHIP_BUDGET,
        "implicit": {
            "ok": True,
            "eccentricity": implicit["eccentricity"],
            "distance_histogram": implicit["histogram"],
            "seconds": implicit["seconds"],
            "peak_rss_kib": implicit["peak_rss_kib"],
        },
        "csr": {
            "ok": False,
            "error": csr["error"],
            "seconds": csr["seconds"],
            "peak_rss_kib": csr["peak_rss_kib"],
        },
    }
    reached = sum(int(c) for c in implicit["histogram"].values())
    assert reached == topology.num_nodes, "flagship BFS must reach every node"
    print(
        f"{topology.name}: {topology.num_nodes} nodes — implicit ecc "
        f"{implicit['eccentricity']} in {implicit['seconds']:.1f}s / "
        f"{implicit['peak_rss_kib'] // 1024}MiB; CSR under the same "
        f"{FLAGSHIP_BUDGET >> 20}MiB budget: {csr['error']}"
    )
    return entry


def main(out_path: str = "BENCH_implicit.json", *flags: str) -> dict:
    from repro import __version__

    quick = "--quick" in flags
    report: dict = {
        "generated_by": "benchmarks/bench_implicit.py",
        "repro_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "mode": "quick" if quick else "full",
        "backend_grid": bench_grid(QUICK_GRID if quick else GRID),
    }
    if not quick:
        report["flagship"] = bench_flagship()
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--measure":
        sys.exit(_child(sys.argv[2:]))
    main(*sys.argv[1:])
