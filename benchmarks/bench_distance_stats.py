"""E11 — exact distance profiles: HB vs HD at matched node budgets.

Extends the Figure 1/2 diameter comparison to the full distance
distribution (mean, median, p95) — the quantity sustained traffic actually
sees.  The profile of the 16384-node HB(3,8) flagship costs one BFS
(vertex transitivity); the HD profiles aggregate BFS from every node.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import HyperButterfly, HyperDeBruijn
from repro.analysis.distance_stats import distance_profile, profile_table


@pytest.fixture(scope="module")
def profiles():
    return [
        distance_profile(HyperButterfly(2, 3)),
        distance_profile(HyperDeBruijn(2, 3)),
        distance_profile(HyperButterfly(2, 4)),
        distance_profile(HyperDeBruijn(3, 5)),
    ]


def test_distance_profile_table(benchmark, profiles):
    emit("E11: exact distance profiles (HB vs HD)", profile_table(profiles))
    hb = HyperButterfly(2, 4)
    profile = benchmark(lambda: distance_profile(hb))
    assert profile.diameter == hb.diameter_formula()


def test_hd_shorter_on_average_at_matched_budget(profiles):
    """The Figure 1 trade-off on averages, at the matched 256-node point."""
    hb_256, hd_256 = profiles[2], profiles[3]
    assert hb_256.nodes == hd_256.nodes == 256
    assert hd_256.mean < hb_256.mean
    # and HB's p95 stays within its formula diameter
    assert hb_256.percentile(0.95) <= hb_256.diameter


def test_flagship_profile_single_bfs(benchmark, hb38):
    profile = benchmark.pedantic(
        lambda: distance_profile(hb38), rounds=1, iterations=1
    )
    emit(
        "E11b: HB(3,8) flagship profile",
        f"mean {profile.mean:.3f}, median {profile.percentile(0.5)}, "
        f"p95 {profile.percentile(0.95)}, diameter {profile.diameter}",
    )
    assert profile.diameter == 15
