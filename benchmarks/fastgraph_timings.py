"""Emit machine-readable fast-backend timings to ``BENCH_fastgraph.json``.

Run from the repo root::

    PYTHONPATH=src python benchmarks/fastgraph_timings.py [output.json]

For each instance the script measures, wall-clock:

* ``csr_build_s`` — one-time CSR adjacency construction (vectorized codec);
* ``fast_bfs_s`` — one single-source BFS on the CSR backend (the
  vertex-transitive exact-diameter kernel);
* ``python_bfs_s`` — the seed's per-source dict BFS on labels (skipped
  above a node budget where it would take minutes);
* ``oracle_fast_s`` / ``oracle_python_s`` — full identity-rooted
  DistanceOracle fills (the E4 routing substrate);
* the exact diameter found (cross-checked against the closed form).

The JSON is tracked across PRs so the perf trajectory is visible: the
acceptance bar of this subsystem's PR was ≥10× on the ``HB(3,8)``
single-BFS diameter and an exact ≥65k-node diameter under 60 s.
"""

from __future__ import annotations

import json
import platform
import sys
import time


def _clock(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_instance(topology, *, python_bfs_budget: int = 200_000) -> dict:
    from repro.cayley.graph import DistanceOracle
    from repro.fastgraph import get_fastgraph

    anchor = next(iter(topology.nodes()))
    fast = get_fastgraph(topology)
    _, build_s = _clock(lambda: fast.csr)
    diameter, fast_bfs_s = _clock(lambda: fast.eccentricity(anchor))

    entry: dict = {
        "instance": topology.name,
        "nodes": topology.num_nodes,
        "edges": topology.num_edges,
        "diameter": int(diameter),
        "csr_build_s": round(build_s, 6),
        "fast_bfs_s": round(fast_bfs_s, 6),
    }
    if hasattr(topology, "diameter_formula"):
        assert diameter == topology.diameter_formula(), topology.name

    if topology.num_nodes <= python_bfs_budget:
        dist, python_bfs_s = _clock(
            lambda: topology._bfs_distances_python(anchor, frozenset())
        )
        assert max(dist.values()) == diameter
        entry["python_bfs_s"] = round(python_bfs_s, 6)
        entry["bfs_speedup"] = round(python_bfs_s / (build_s + fast_bfs_s), 2)

    if hasattr(topology, "group"):
        _, oracle_fast_s = _clock(lambda: DistanceOracle(topology.group, topology.gens))
        entry["oracle_fast_s"] = round(oracle_fast_s, 6)
        if topology.num_nodes <= python_bfs_budget:
            _, oracle_python_s = _clock(
                lambda: DistanceOracle(topology.group, topology.gens, backend="python")
            )
            entry["oracle_python_s"] = round(oracle_python_s, 6)
            entry["oracle_speedup"] = round(oracle_python_s / oracle_fast_s, 2)
    return entry


def main(out_path: str = "BENCH_fastgraph.json") -> dict:
    from repro import __version__
    from repro.core.hyperbutterfly import HyperButterfly
    from repro.topologies.butterfly_cayley import CayleyButterfly

    instances = [
        CayleyButterfly(8),  # 2048 nodes
        HyperButterfly(2, 6),  # 1536 nodes
        HyperButterfly(3, 8),  # 16384 nodes — the Figure 2 flagship
        HyperButterfly(4, 8),  # 32768 nodes
        HyperButterfly(5, 8),  # 65536 nodes — beyond the seed's practical cap
        HyperButterfly(4, 9),  # 73728 nodes
    ]
    report = {
        "generated_by": "benchmarks/fastgraph_timings.py",
        "repro_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "entries": [bench_instance(t) for t in instances],
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for entry in report["entries"]:
        speedup = entry.get("bfs_speedup")
        print(
            f"{entry['instance']:>10s}  {entry['nodes']:>7d} nodes  "
            f"build {entry['csr_build_s']*1e3:8.1f} ms  "
            f"bfs {entry['fast_bfs_s']*1e3:8.1f} ms  "
            + (f"python bfs {entry['python_bfs_s']:8.3f} s  x{speedup}"
               if speedup is not None else "(python bfs skipped)")
        )
    print(f"wrote {out_path}")
    return report


if __name__ == "__main__":
    main(*sys.argv[1:])
