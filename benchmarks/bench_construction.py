"""E3 — Theorem 2 counts/regularity across a parameter sweep.

Regenerates the (nodes, edges, degree) columns over a grid of design
points, asserting the closed forms of Theorem 2 against explicitly built
graphs, and benchmarks implicit-topology construction versus full
materialisation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import HyperButterfly

GRID = [(0, 3), (1, 3), (2, 3), (3, 3), (1, 4), (2, 4), (3, 4), (2, 5)]


@pytest.fixture(scope="module")
def sweep_rows() -> str:
    lines = ["(m,n)    nodes    edges     degree  diameter(formula)"]
    for m, n in GRID:
        hb = HyperButterfly(m, n)
        lines.append(
            f"({m},{n})  {hb.num_nodes:8d} {hb.num_edges:8d} "
            f"{hb.degree_formula:7d} {hb.diameter_formula():9d}"
        )
    return "\n".join(lines)


def test_theorem2_sweep(benchmark, sweep_rows):
    emit("E3: Theorem 2 — counts over the (m, n) grid", sweep_rows)

    def verify_grid():
        checked = 0
        for m, n in GRID:
            hb = HyperButterfly(m, n)
            assert hb.num_nodes == n * 2 ** (m + n)
            assert hb.num_edges == (m + 4) * n * 2 ** (m + n - 1)
            checked += 1
        return checked

    assert benchmark(verify_grid) == len(GRID)


def test_implicit_construction_is_constant_time(benchmark):
    """Building HB(3,8) (16384 nodes) costs O(1): adjacency is computed."""
    hb = benchmark(HyperButterfly, 3, 8)
    assert hb.num_nodes == 16384


def test_materialisation_cost(benchmark, hb24):
    """Explicit networkx materialisation, for contrast (256 nodes)."""
    graph = benchmark(hb24.to_networkx)
    assert graph.number_of_edges() == hb24.num_edges


def test_neighbor_computation_throughput(benchmark, hb38):
    """Per-node adjacency of the 16k-node instance."""
    nodes = [(h, (x, c)) for h in (0, 5) for x in (0, 3) for c in (0, 100)]

    def all_neighbors():
        total = 0
        for v in nodes:
            total += len(hb38.neighbors(v))
        return total

    assert benchmark(all_neighbors) == len(nodes) * 7
