"""Generic Cayley-graph construction and exact vertex-transitive routing.

A Cayley graph ``Cay(G, S)`` has the group elements as vertices and an edge
``{v, v·s}`` for every ``v ∈ G`` and generator ``s ∈ S``.  Because ``S`` is
closed under inverse (enforced by :class:`repro.cayley.group.GeneratorSet`)
the graph is undirected.

The key service this module provides beyond construction is **exact
routing**: in a Cayley graph, the map ``v ↦ u·v`` is an automorphism, so
``dist(u, w) = dist(identity, u^{-1}·w)`` and a single BFS from the identity
yields a complete distance oracle and shortest-path router for *all* vertex
pairs.  The paper leans on exactly this (Remark 7) to reduce routing in
``HB(m, n)`` to routing from the identity node.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Hashable, Iterator

import networkx as nx

if TYPE_CHECKING:  # numpy stays a lazy import at runtime
    import numpy as np

from repro.cayley.group import DirectProductGroup, Group, GeneratorSet
from repro.errors import InvalidLabelError

__all__ = ["CayleyGraph", "DistanceOracle", "build_cayley_graph"]

#: a DirectProductGroup generator set split by acting factor:
#: (left gens, their parent indices, right gens, their parent indices)
_ProductSplit = tuple[
    GeneratorSet, tuple[int, ...], GeneratorSet, tuple[int, ...]
]


def _split_product_generators(
    group: Group, gens: GeneratorSet
) -> _ProductSplit | None:
    """Split a product group's generators by the factor they act on.

    The hyper-butterfly generator set (Definition 3) is exactly of this
    shape: ``h_i`` acts on the hypercube part only, ``g/f/g⁻¹/f⁻¹`` on
    the butterfly part only.  Returns ``None`` when the group is not a
    :class:`DirectProductGroup`, some generator moves both factors at
    once, or a non-trivial factor is left with no generators (the product
    graph would be disconnected) — callers then fall back to a whole-group
    BFS fill.
    """
    if not isinstance(group, DirectProductGroup):
        return None
    left_identity = group.left.identity()
    right_identity = group.right.identity()
    left_gens: list[Hashable] = []
    left_names: list[str] = []
    left_index: list[int] = []
    right_gens: list[Hashable] = []
    right_names: list[str] = []
    right_index: list[int] = []
    for i, s in enumerate(gens.generators):
        if not (isinstance(s, tuple) and len(s) == 2):
            return None
        if s[1] == right_identity:
            left_gens.append(s[0])
            left_names.append(gens.names[i])
            left_index.append(i)
        elif s[0] == left_identity:
            right_gens.append(s[1])
            right_names.append(gens.names[i])
            right_index.append(i)
        else:
            return None  # a mixed generator: not a Cartesian product edge set
    if not left_gens and group.left.order() > 1:
        return None
    if not right_gens and group.right.order() > 1:
        return None
    return (
        GeneratorSet(
            group=group.left,
            generators=tuple(left_gens),
            names=tuple(left_names),
        ),
        tuple(left_index),
        GeneratorSet(
            group=group.right,
            generators=tuple(right_gens),
            names=tuple(right_names),
        ),
        tuple(right_index),
    )


class DistanceOracle:
    """BFS tree from the identity, reusable for all pairs via transitivity.

    Stores, for every group element, its distance from the identity and the
    index of the generator whose edge was used to *reach* it in the BFS.
    Shortest paths are reconstructed backwards by applying inverse
    generators.

    Four backends, picked automatically (``backend="auto"``):

    * **product** — when the group is a :class:`DirectProductGroup` whose
      generators each act on a single factor (the hyper-butterfly's shape,
      Definition 3), the oracle holds one *factor* oracle per side and
      answers every query by combination: distances are sums (Remark 8 —
      for ``HB`` literally ``hamming + butterfly_table`` O(1) lookups),
      words are concatenations, the distribution is a convolution.  Build
      cost collapses from ``O(n·2^{m+n})`` to ``O(2^m + n·2^n)``.
    * **dense** — for codec-backed groups the whole oracle lives in three
      numpy arrays indexed by the :mod:`repro.fastgraph` dense-integer
      codec; one vectorized BFS fills distances and parent generators for
      every element at once.  ``backend="dense"`` forces this path (used
      to cross-check the product path).
    * **implicit** — the same three arrays, filled by the CSR-free
      implicit kernel (:mod:`repro.fastgraph.implicit`): frontiers expand
      directly from packed ranks, so no ``order × degree`` neighbor table
      is ever materialized.  ``"auto"`` picks this over ``dense`` past
      the implicit node threshold; ``backend="implicit"`` forces it.
    * **python** (``backend="python"``) — the original dict BFS, the
      reference the other backends are pinned against.
    """

    def __init__(
        self, group: Group, gens: GeneratorSet, *, backend: str = "auto"
    ) -> None:
        self.group = group
        self.gens = gens
        self._dist: dict[Hashable, int] = {}
        self._via: dict[Hashable, int] = {}
        self._codec = None
        self._dist_arr = None  # int32[order]  distance from identity, by rank
        self._via_arr = None  # int64[order]  reaching generator index, by rank
        self._parent_arr = None  # int64[order] BFS-tree parent rank, by rank
        self._left: DistanceOracle | None = None  # product path factor oracles
        self._right: DistanceOracle | None = None
        self._left_index: tuple[int, ...] = ()
        self._right_index: tuple[int, ...] = ()
        if backend == "auto":
            split = _split_product_generators(group, gens)
            if split is not None:
                left_gens, self._left_index, right_gens, self._right_index = split
                self._left = DistanceOracle(group.left, left_gens)
                self._right = DistanceOracle(group.right, right_gens)
                return
        # deferred: cayley sits below fastgraph in the layer DAG (HB401)
        from repro.fastgraph.backend import enabled as fastgraph_enabled
        from repro.fastgraph.codecs import codec_for_group

        if backend in ("auto", "dense", "implicit") and fastgraph_enabled() and len(gens):
            self._codec = codec_for_group(group)
        if self._codec is not None:
            # oracle adjacency is *this* generator set, in *this* order (via
            # indices point into it) — never the codec's family default
            self._codec.generators = tuple(gens.generators)
        if self._codec is None:
            self._run_bfs()
        elif self._use_implicit(backend):
            self._run_bfs_implicit()
        else:
            self._run_bfs_fast()

    def _use_implicit(self, backend: str) -> bool:
        """Whether to fill the oracle arrays CSR-free (never a full table)."""
        assert self._codec is not None
        if backend == "implicit":
            from repro.errors import InvalidParameterError

            if not self._codec.supports_implicit():
                raise InvalidParameterError(
                    f"group codec {type(self._codec).__name__} has no "
                    "implicit adjacency; use backend='dense'"
                )
            return True
        if backend != "auto" or not self._codec.supports_implicit():
            return False
        from repro.fastgraph.backend import implicit_threshold

        return self._codec.num_nodes >= implicit_threshold()

    def _run_bfs(self) -> None:
        identity = self.group.identity()
        self._dist[identity] = 0
        queue: deque[Hashable] = deque([identity])
        while queue:
            v = queue.popleft()
            dv = self._dist[v]
            for i in range(len(self.gens)):
                w = self.gens.apply(v, i)
                if w not in self._dist:
                    self._dist[w] = dv + 1
                    self._via[w] = i
                    queue.append(w)

    def _run_bfs_fast(self) -> None:
        """Vectorized all-elements oracle fill from the identity."""
        import numpy as np

        from repro.fastgraph.csr import CSRAdjacency
        from repro.fastgraph.kernels import bfs_levels

        codec = self._codec
        order = codec.num_nodes
        table = np.column_stack(
            [
                codec.apply_generator(np.arange(order, dtype=np.int64), s)
                for s in self.gens.generators
            ]
        )
        csr = CSRAdjacency(
            indptr=np.arange(order + 1, dtype=np.int64) * table.shape[1],
            indices=np.ascontiguousarray(table.ravel(), dtype=np.int32),
            uniform_degree=table.shape[1],
        )
        root = codec.rank(self.group.identity())
        dist, parents = bfs_levels(csr, root, want_parents=True)
        # the reaching generator of v is v's column in its parent's table row
        via = np.argmax(table[parents] == np.arange(order)[:, None], axis=1)
        via[root] = -1
        self._dist_arr = dist
        self._via_arr = via
        self._parent_arr = parents

    def _run_bfs_implicit(self) -> None:
        """CSR-free oracle fill — no ``order × degree`` table, ever.

        Frontiers expand straight from packed ranks
        (:func:`repro.fastgraph.implicit.implicit_bfs_levels`), so peak
        memory is the three output arrays plus a visited bitset instead of
        the dense path's full neighbor table; results are bit-identical
        (same first-occurrence parent and reaching-generator tie-break).
        """
        from repro.fastgraph.implicit import implicit_bfs_levels

        codec = self._codec
        root = codec.rank(self.group.identity())
        dist, parents, via = implicit_bfs_levels(
            codec, root, want_parents=True, want_via=True
        )
        self._dist_arr = dist
        self._via_arr = via
        self._parent_arr = parents

    def _rank_checked(self, delta: Hashable) -> int:
        if not self.group.contains(delta):
            raise InvalidLabelError(f"{delta!r} is not a group element")
        return self._codec.rank(delta)

    def distance_from_identity(self, delta: Hashable) -> int:
        if self._left is not None and self._right is not None:
            if not self.group.contains(delta):
                raise InvalidLabelError(f"{delta!r} is not a group element")
            return self._left.distance_from_identity(
                delta[0]
            ) + self._right.distance_from_identity(delta[1])
        if self._dist_arr is not None:
            d = int(self._dist_arr[self._rank_checked(delta)])
            if d < 0:  # non-generating set: mirror the dict path's failure
                raise InvalidLabelError(f"{delta!r} is not a group element")
            return d
        try:
            return self._dist[delta]
        except KeyError:
            raise InvalidLabelError(f"{delta!r} is not a group element") from None

    def generator_word(self, delta: Hashable) -> list[int]:
        """Generator indices multiplying the identity out to ``delta``.

        The word has length ``dist(identity, delta)`` — it is a shortest
        path, and applying the word to any vertex ``u`` traces the shortest
        path from ``u`` to ``u·delta``.
        """
        if self._left is not None and self._right is not None:
            if not self.group.contains(delta):
                raise InvalidLabelError(f"{delta!r} is not a group element")
            # factor words, lifted to parent generator indices; left factor
            # first (the paper's cube-then-butterfly concatenation — both
            # orders are optimal because part distances are independent)
            return [
                self._left_index[i]
                for i in self._left.generator_word(delta[0])
            ] + [
                self._right_index[i]
                for i in self._right.generator_word(delta[1])
            ]
        if self._dist_arr is not None:
            word_rev: list[int] = []
            v = self._rank_checked(delta)
            root = self._codec.rank(self.group.identity())
            while v != root:
                word_rev.append(int(self._via_arr[v]))
                v = int(self._parent_arr[v])
            word_rev.reverse()
            return word_rev
        word_rev = []
        v = delta
        identity = self.group.identity()
        while v != identity:
            i = self._via[v] if v in self._via else None
            if i is None:
                raise InvalidLabelError(f"{delta!r} is not a group element")
            word_rev.append(i)
            # step back along the tree edge: v = parent · s_i
            v = self.group.multiply(v, self.group.inverse(self.gens.generators[i]))
        word_rev.reverse()
        return word_rev

    def factor_split(
        self,
    ) -> tuple["DistanceOracle", tuple[int, ...], "DistanceOracle", tuple[int, ...]] | None:
        """The product backend's factor oracles, or ``None``.

        Returns ``(left, left_index, right, right_index)`` where the index
        tuples lift each factor's local generator indices to positions in
        the parent generator set — the layout :meth:`generator_word` uses.
        Bulk consumers (the flow-level route builder) combine the factors'
        :meth:`word_table` results through these lifts.
        """
        if self._left is None or self._right is None:
            return None
        return (self._left, self._left_index, self._right, self._right_index)

    def word_table(self) -> tuple["np.ndarray", "np.ndarray"]:
        """All generator words at once: ``(words, dist)`` arrays by rank.

        ``words`` is ``(order, eccentricity)`` int16 — row ``r`` holds the
        generator-index word of the element of codec rank ``r``, padded
        with ``-1`` beyond ``dist[r]`` — and equals
        :meth:`generator_word` row for row (same BFS tree, filled level by
        level instead of per-element backtracking).  Product oracles raise:
        callers go through :meth:`factor_split` and concatenate factor
        words themselves.
        """
        import numpy as np

        from repro.errors import InvalidParameterError

        if self._left is not None and self._right is not None:
            raise InvalidParameterError(
                "product oracle has no single word table; use factor_split()"
            )
        if self._dist_arr is not None:
            dist = np.asarray(self._dist_arr, dtype=np.int64)
            via = np.asarray(self._via_arr, dtype=np.int64)
            parent = np.asarray(self._parent_arr, dtype=np.int64)
        else:
            # dict backend: materialise rank-indexed arrays once
            from repro.fastgraph.codecs import codec_for_group

            codec = codec_for_group(self.group)
            if codec is None:
                raise InvalidParameterError(
                    f"no codec for group {type(self.group).__name__}; "
                    "word_table needs rank-addressable elements"
                )
            order = codec.num_nodes
            dist = np.full(order, -1, dtype=np.int64)
            via = np.full(order, -1, dtype=np.int64)
            parent = np.full(order, -1, dtype=np.int64)
            identity = self.group.identity()
            for element, d in self._dist.items():
                r = codec.rank(element)
                dist[r] = d
                if element == identity:
                    continue
                i = self._via[element]
                via[r] = i
                back = self.group.multiply(
                    element, self.group.inverse(self.gens.generators[i])
                )
                parent[r] = codec.rank(back)
        ecc = int(dist.max()) if dist.size else 0
        words = np.full((dist.size, max(ecc, 0)), -1, dtype=np.int16)
        # level-by-level prefix copy: parents at distance d-1 are complete
        # before any element at distance d copies from them
        for d in range(1, ecc + 1):
            sel = np.flatnonzero(dist == d)
            if d > 1:
                words[sel, : d - 1] = words[parent[sel], : d - 1]
            # generator indices are tiny; the int16 narrowing is lossless
            words[sel, d - 1] = via[sel].astype(np.int16)
        return words, dist

    def distance(self, u: Hashable, v: Hashable) -> int:
        """Exact distance between arbitrary vertices ``u`` and ``v``."""
        return self.distance_from_identity(self.group.quotient(u, v))

    def shortest_path(self, u: Hashable, v: Hashable) -> list[Hashable]:
        """An exact shortest path from ``u`` to ``v`` (inclusive of both)."""
        word = self.generator_word(self.group.quotient(u, v))
        path = [u]
        for i in word:
            path.append(self.gens.apply(path[-1], i))
        return path

    def eccentricity_of_identity(self) -> int:
        """Max distance from the identity — equals the graph diameter.

        (Vertex transitivity makes every vertex's eccentricity equal.)
        """
        if self._left is not None and self._right is not None:
            # max over pairs of sums = sum of factor maxima (Remark 6)
            return (
                self._left.eccentricity_of_identity()
                + self._right.eccentricity_of_identity()
            )
        if self._dist_arr is not None:
            return int(self._dist_arr.max())
        return max(self._dist.values())

    def distance_distribution(self) -> dict[int, int]:
        """Histogram ``{distance: count}`` over all vertices."""
        if self._left is not None and self._right is not None:
            # distances add and element counts multiply: a convolution
            hist: dict[int, int] = {}
            for d1, c1 in self._left.distance_distribution().items():
                for d2, c2 in self._right.distance_distribution().items():
                    hist[d1 + d2] = hist.get(d1 + d2, 0) + c1 * c2
            return dict(sorted(hist.items()))
        if self._dist_arr is not None:
            import numpy as np

            counts = np.bincount(self._dist_arr[self._dist_arr >= 0])
            return {d: int(c) for d, c in enumerate(counts) if c}
        hist = {}
        for d in self._dist.values():
            hist[d] = hist.get(d, 0) + 1
        return dict(sorted(hist.items()))

    def average_distance(self) -> float:
        """Mean distance from the identity over all vertices (incl. itself)."""
        if self._left is not None and self._right is not None:
            hist = self.distance_distribution()
            return sum(d * c for d, c in hist.items()) / sum(hist.values())
        if self._dist_arr is not None:
            reached = self._dist_arr[self._dist_arr >= 0]
            return float(reached.mean())
        n = len(self._dist)
        return sum(self._dist.values()) / n


class CayleyGraph:
    """A Cayley graph ``Cay(G, S)`` with lazy exact-routing support."""

    def __init__(self, group: Group, gens: GeneratorSet) -> None:
        if gens.group != group:
            raise InvalidLabelError("generator set belongs to a different group")
        self.group = group
        self.gens = gens
        self._gen_set = frozenset(gens.generators)
        self._oracle: DistanceOracle | None = None

    # Basic graph interface ----------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.group.order()

    @property
    def degree(self) -> int:
        return len(self.gens)

    @property
    def num_edges(self) -> int:
        # regular of degree |S| whenever the generator action is fixed-point
        # free and injective (Remark 3); true for every graph in this repo.
        return self.num_nodes * self.degree // 2

    def nodes(self) -> Iterator[Hashable]:
        return self.group.elements()

    def neighbors(self, v: Hashable) -> list[Hashable]:
        return self.gens.neighbors(v)

    def has_node(self, v: Hashable) -> bool:
        return self.group.contains(v)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        # {u, v} is an edge iff u^{-1}·v is a generator: one O(1) set probe
        # instead of materialising and scanning the neighbor list.
        return self.group.quotient(u, v) in self._gen_set

    def to_networkx(self) -> nx.Graph:
        """Materialise as an undirected :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        for v in self.nodes():
            for i, w in enumerate(self.gens.neighbors(v)):
                graph.add_edge(v, w, generator=self.gens.name_of(i))
        return graph

    # Exact routing --------------------------------------------------------

    @property
    def oracle(self) -> DistanceOracle:
        """The identity-rooted BFS distance oracle (built on first use)."""
        if self._oracle is None:
            self._oracle = DistanceOracle(self.group, self.gens)
        return self._oracle

    def distance(self, u: Hashable, v: Hashable) -> int:
        return self.oracle.distance(u, v)

    def shortest_path(self, u: Hashable, v: Hashable) -> list[Hashable]:
        return self.oracle.shortest_path(u, v)

    def diameter(self) -> int:
        return self.oracle.eccentricity_of_identity()


def build_cayley_graph(group: Group, gens: GeneratorSet) -> nx.Graph:
    """One-shot helper: materialise ``Cay(group, gens)`` as a networkx graph."""
    return CayleyGraph(group, gens).to_networkx()
