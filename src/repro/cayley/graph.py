"""Generic Cayley-graph construction and exact vertex-transitive routing.

A Cayley graph ``Cay(G, S)`` has the group elements as vertices and an edge
``{v, v·s}`` for every ``v ∈ G`` and generator ``s ∈ S``.  Because ``S`` is
closed under inverse (enforced by :class:`repro.cayley.group.GeneratorSet`)
the graph is undirected.

The key service this module provides beyond construction is **exact
routing**: in a Cayley graph, the map ``v ↦ u·v`` is an automorphism, so
``dist(u, w) = dist(identity, u^{-1}·w)`` and a single BFS from the identity
yields a complete distance oracle and shortest-path router for *all* vertex
pairs.  The paper leans on exactly this (Remark 7) to reduce routing in
``HB(m, n)`` to routing from the identity node.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterator, Sequence

import networkx as nx

from repro.cayley.group import Group, GeneratorSet
from repro.errors import InvalidLabelError

__all__ = ["CayleyGraph", "DistanceOracle", "build_cayley_graph"]


class DistanceOracle:
    """BFS tree from the identity, reusable for all pairs via transitivity.

    Stores, for every group element, its distance from the identity and the
    index of the generator whose edge was used to *reach* it in the BFS.
    Shortest paths are reconstructed backwards by applying inverse
    generators.
    """

    def __init__(self, group: Group, gens: GeneratorSet) -> None:
        self.group = group
        self.gens = gens
        self._dist: dict[Hashable, int] = {}
        self._via: dict[Hashable, int] = {}
        self._run_bfs()

    def _run_bfs(self) -> None:
        identity = self.group.identity()
        self._dist[identity] = 0
        queue: deque[Hashable] = deque([identity])
        while queue:
            v = queue.popleft()
            dv = self._dist[v]
            for i in range(len(self.gens)):
                w = self.gens.apply(v, i)
                if w not in self._dist:
                    self._dist[w] = dv + 1
                    self._via[w] = i
                    queue.append(w)

    def distance_from_identity(self, delta: Hashable) -> int:
        try:
            return self._dist[delta]
        except KeyError:
            raise InvalidLabelError(f"{delta!r} is not a group element") from None

    def generator_word(self, delta: Hashable) -> list[int]:
        """Generator indices multiplying the identity out to ``delta``.

        The word has length ``dist(identity, delta)`` — it is a shortest
        path, and applying the word to any vertex ``u`` traces the shortest
        path from ``u`` to ``u·delta``.
        """
        word_rev: list[int] = []
        v = delta
        identity = self.group.identity()
        while v != identity:
            i = self._via[v] if v in self._via else None
            if i is None:
                raise InvalidLabelError(f"{delta!r} is not a group element")
            word_rev.append(i)
            # step back along the tree edge: v = parent · s_i
            v = self.group.multiply(v, self.group.inverse(self.gens.generators[i]))
        word_rev.reverse()
        return word_rev

    def distance(self, u: Hashable, v: Hashable) -> int:
        """Exact distance between arbitrary vertices ``u`` and ``v``."""
        return self.distance_from_identity(self.group.quotient(u, v))

    def shortest_path(self, u: Hashable, v: Hashable) -> list[Hashable]:
        """An exact shortest path from ``u`` to ``v`` (inclusive of both)."""
        word = self.generator_word(self.group.quotient(u, v))
        path = [u]
        for i in word:
            path.append(self.gens.apply(path[-1], i))
        return path

    def eccentricity_of_identity(self) -> int:
        """Max distance from the identity — equals the graph diameter.

        (Vertex transitivity makes every vertex's eccentricity equal.)
        """
        return max(self._dist.values())

    def distance_distribution(self) -> dict[int, int]:
        """Histogram ``{distance: count}`` over all vertices."""
        hist: dict[int, int] = {}
        for d in self._dist.values():
            hist[d] = hist.get(d, 0) + 1
        return dict(sorted(hist.items()))

    def average_distance(self) -> float:
        """Mean distance from the identity over all vertices (incl. itself)."""
        n = len(self._dist)
        return sum(self._dist.values()) / n


class CayleyGraph:
    """A Cayley graph ``Cay(G, S)`` with lazy exact-routing support."""

    def __init__(self, group: Group, gens: GeneratorSet) -> None:
        if gens.group != group:
            raise InvalidLabelError("generator set belongs to a different group")
        self.group = group
        self.gens = gens
        self._oracle: DistanceOracle | None = None

    # Basic graph interface ----------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.group.order()

    @property
    def degree(self) -> int:
        return len(self.gens)

    @property
    def num_edges(self) -> int:
        # regular of degree |S| whenever the generator action is fixed-point
        # free and injective (Remark 3); true for every graph in this repo.
        return self.num_nodes * self.degree // 2

    def nodes(self) -> Iterator[Hashable]:
        return self.group.elements()

    def neighbors(self, v: Hashable) -> list[Hashable]:
        return self.gens.neighbors(v)

    def has_node(self, v: Hashable) -> bool:
        return self.group.contains(v)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        return v in self.gens.neighbors(u)

    def to_networkx(self) -> nx.Graph:
        """Materialise as an undirected :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        for v in self.nodes():
            for i, w in enumerate(self.gens.neighbors(v)):
                graph.add_edge(v, w, generator=self.gens.name_of(i))
        return graph

    # Exact routing --------------------------------------------------------

    @property
    def oracle(self) -> DistanceOracle:
        """The identity-rooted BFS distance oracle (built on first use)."""
        if self._oracle is None:
            self._oracle = DistanceOracle(self.group, self.gens)
        return self._oracle

    def distance(self, u: Hashable, v: Hashable) -> int:
        return self.oracle.distance(u, v)

    def shortest_path(self, u: Hashable, v: Hashable) -> list[Hashable]:
        return self.oracle.shortest_path(u, v)

    def diameter(self) -> int:
        return self.oracle.eccentricity_of_identity()


def build_cayley_graph(group: Group, gens: GeneratorSet) -> nx.Graph:
    """One-shot helper: materialise ``Cay(group, gens)`` as a networkx graph."""
    return CayleyGraph(group, gens).to_networkx()
