"""Finite groups underlying the topologies of the paper.

Three groups matter here:

* ``HypercubeGroup(m)`` — the elementary abelian group ``(Z_2)^m`` whose
  Cayley graph over the ``m`` unit generators is the hypercube ``H_m``.
* ``ButterflyGroup(n)`` — the semidirect product ``Z_n ⋉ (Z_2)^n`` (the
  wreath-like group of Vadapalli & Srimani [4]); its Cayley graph over
  ``{g, f, g^{-1}, f^{-1}}`` is the wrapped butterfly ``B_n``.
* ``DirectProductGroup`` — used to realise ``HB(m, n)`` as the Cayley graph
  of ``(Z_2)^m × (Z_n ⋉ (Z_2)^n)`` over the ``m + 4`` generators of
  Definition 3 / Remark 3.

Element encodings are hashable tuples/ints so they can serve directly as
graph node labels.

Butterfly element encoding
--------------------------

A butterfly group element is a pair ``(x, c)`` where ``x ∈ Z_n`` is the
*permutation index* (Definition 1 of the paper: the number of left shifts
from the identity permutation) and ``c`` is an ``n``-bit word of
complementation flags indexed **by symbol** (bit ``k`` of ``c`` says whether
symbol ``t_k`` is complemented), so ``c`` encodes the *complementation
index* of Definition 2 directly as ``CI = c``.

The product rule is ``(x1, c1) · (x2, c2) = (x1 + x2 mod n,
c1 XOR rot(c2, x1))`` with ``rot`` the bit rotation of :mod:`repro._bits`.
Under this rule the four paper generators are::

    g    = (1, 0)          f    = (1, e_0)
    g^-1 = (n-1, 0)        f^-1 = (n-1, e_{n-1})

and right-multiplication reproduces exactly the label rewritings of
Section 2.1 of the paper (verified in ``tests/cayley/test_group.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence

from repro._bits import mask, rotate_left
from repro.errors import InvalidParameterError

__all__ = [
    "Group",
    "HypercubeGroup",
    "ButterflyGroup",
    "DirectProductGroup",
    "GeneratorSet",
]


class Group:
    """Minimal finite-group interface used by the Cayley machinery.

    Subclasses define the element universe (any hashable objects), the
    product, the inverse, and the identity.  The interface is deliberately
    small: it is exactly what :class:`repro.cayley.graph.CayleyGraph` needs.
    """

    def identity(self) -> Hashable:
        raise NotImplementedError

    def multiply(self, a: Hashable, b: Hashable) -> Hashable:
        raise NotImplementedError

    def inverse(self, a: Hashable) -> Hashable:
        raise NotImplementedError

    def order(self) -> int:
        """Number of elements of the group."""
        raise NotImplementedError

    def elements(self) -> Iterator[Hashable]:
        """Iterate over every element (lexicographic where meaningful)."""
        raise NotImplementedError

    def contains(self, a: Hashable) -> bool:
        """Whether ``a`` is a valid element encoding for this group."""
        raise NotImplementedError

    # Convenience derived operations -------------------------------------

    def conjugate(self, a: Hashable, b: Hashable) -> Hashable:
        """Return ``b^{-1} a b``."""
        return self.multiply(self.multiply(self.inverse(b), a), b)

    def quotient(self, a: Hashable, b: Hashable) -> Hashable:
        """Return ``a^{-1} b`` — the translation taking ``a`` to ``b``.

        In a Cayley graph, ``dist(a, b) = dist(identity, a^{-1} b)``; this is
        the workhorse of the exact vertex-transitive routers.
        """
        return self.multiply(self.inverse(a), b)

    def power(self, a: Hashable, k: int) -> Hashable:
        """Return ``a^k`` (``k`` may be negative)."""
        if k < 0:
            return self.power(self.inverse(a), -k)
        result = self.identity()
        base = a
        while k:
            if k & 1:
                result = self.multiply(result, base)
            base = self.multiply(base, base)
            k >>= 1
        return result


class HypercubeGroup(Group):
    """The group ``(Z_2)^m`` with elements encoded as ``m``-bit ints."""

    def __init__(self, m: int) -> None:
        if m < 0:
            raise InvalidParameterError(f"hypercube dimension must be >= 0, got {m}")
        self.m = m

    def identity(self) -> int:
        return 0

    def multiply(self, a: int, b: int) -> int:
        return a ^ b

    def inverse(self, a: int) -> int:
        return a  # every element is an involution

    def order(self) -> int:
        return 1 << self.m

    def elements(self) -> Iterator[int]:
        return iter(range(1 << self.m))

    def contains(self, a: Any) -> bool:
        return isinstance(a, int) and 0 <= a < (1 << self.m)

    def unit_generators(self) -> list[int]:
        """The ``m`` generators ``h_i = e_i`` whose Cayley graph is ``H_m``."""
        return [1 << i for i in range(self.m)]

    def __repr__(self) -> str:
        return f"HypercubeGroup(m={self.m})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HypercubeGroup) and other.m == self.m

    def __hash__(self) -> int:
        return hash(("HypercubeGroup", self.m))


class ButterflyGroup(Group):
    """The semidirect product ``Z_n ⋉ (Z_2)^n`` behind the wrapped butterfly.

    Elements are pairs ``(x, c)`` — see the module docstring for the
    encoding and product rule.  The Cayley graph of this group over
    :meth:`butterfly_generators` is the wrapped butterfly ``B_n`` of [4]
    (and of Section 2.1 of the paper).
    """

    def __init__(self, n: int) -> None:
        if n < 3:
            raise InvalidParameterError(
                f"butterfly dimension must be >= 3 (paper Remark 3), got {n}"
            )
        self.n = n

    def identity(self) -> tuple[int, int]:
        return (0, 0)

    def multiply(self, a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
        x1, c1 = a
        x2, c2 = b
        return ((x1 + x2) % self.n, c1 ^ rotate_left(c2, x1, self.n))

    def inverse(self, a: tuple[int, int]) -> tuple[int, int]:
        x, c = a
        return ((-x) % self.n, rotate_left(c, -x, self.n))

    def order(self) -> int:
        return self.n << self.n

    def elements(self) -> Iterator[tuple[int, int]]:
        for x in range(self.n):
            for c in range(1 << self.n):
                yield (x, c)

    def contains(self, a: Any) -> bool:
        return (
            isinstance(a, tuple)
            and len(a) == 2
            and isinstance(a[0], int)
            and isinstance(a[1], int)
            and 0 <= a[0] < self.n
            and 0 <= a[1] < (1 << self.n)
        )

    # The four paper generators ------------------------------------------

    def g(self) -> tuple[int, int]:
        """Left shift (paper generator ``g``)."""
        return (1, 0)

    def f(self) -> tuple[int, int]:
        """Left shift complementing the wrapped symbol (paper ``f``)."""
        return (1, 1)  # e_0

    def g_inv(self) -> tuple[int, int]:
        """Right shift (paper ``g^{-1}``)."""
        return (self.n - 1, 0)

    def f_inv(self) -> tuple[int, int]:
        """Right shift complementing the wrapped symbol (paper ``f^{-1}``)."""
        return (self.n - 1, 1 << (self.n - 1))  # e_{n-1}

    def butterfly_generators(self) -> list[tuple[int, int]]:
        """``[g, f, g^{-1}, f^{-1}]`` in the paper's order."""
        return [self.g(), self.f(), self.g_inv(), self.f_inv()]

    def __repr__(self) -> str:
        return f"ButterflyGroup(n={self.n})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ButterflyGroup) and other.n == self.n

    def __hash__(self) -> int:
        return hash(("ButterflyGroup", self.n))


class DirectProductGroup(Group):
    """Direct product ``G × H`` with elements ``(g, h)``.

    The hyper-butterfly group is
    ``DirectProductGroup(HypercubeGroup(m), ButterflyGroup(n))``.
    """

    def __init__(self, left: Group, right: Group) -> None:
        self.left = left
        self.right = right

    def identity(self) -> tuple[Hashable, Hashable]:
        return (self.left.identity(), self.right.identity())

    def multiply(self, a: Hashable, b: Hashable) -> tuple[Hashable, Hashable]:
        return (self.left.multiply(a[0], b[0]), self.right.multiply(a[1], b[1]))

    def inverse(self, a: Hashable) -> tuple[Hashable, Hashable]:
        return (self.left.inverse(a[0]), self.right.inverse(a[1]))

    def order(self) -> int:
        return self.left.order() * self.right.order()

    def elements(self) -> Iterator[tuple[Hashable, Hashable]]:
        for g in self.left.elements():
            for h in self.right.elements():
                yield (g, h)

    def contains(self, a: Any) -> bool:
        return (
            isinstance(a, tuple)
            and len(a) == 2
            and self.left.contains(a[0])
            and self.right.contains(a[1])
        )

    def embed_left(self, g: Hashable) -> tuple[Hashable, Hashable]:
        """Lift a left-factor element to the product (identity on the right)."""
        return (g, self.right.identity())

    def embed_right(self, h: Hashable) -> tuple[Hashable, Hashable]:
        """Lift a right-factor element to the product (identity on the left)."""
        return (self.left.identity(), h)

    def __repr__(self) -> str:
        return f"DirectProductGroup({self.left!r}, {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DirectProductGroup)
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("DirectProductGroup", self.left, self.right))


@dataclass(frozen=True)
class GeneratorSet:
    """A named, inverse-closed set of generators for a Cayley graph.

    ``names[i]`` is a human-readable name for ``generators[i]`` (for example
    ``"h_2"`` or ``"f^-1"``).  ``inverse_index[i]`` gives the position of the
    inverse of generator ``i`` (an involution maps to itself); it is computed
    on construction and validated against the group.
    """

    group: Group
    generators: tuple[Hashable, ...]
    names: tuple[str, ...]
    inverse_index: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        if len(self.generators) != len(self.names):
            raise InvalidParameterError("generators and names must have equal length")
        if len(set(self.generators)) != len(self.generators):
            raise InvalidParameterError("generator set contains duplicates")
        identity = self.group.identity()
        index = {s: i for i, s in enumerate(self.generators)}
        inverse_index = []
        for i, s in enumerate(self.generators):
            if s == identity:
                raise InvalidParameterError(f"generator {self.names[i]} is the identity")
            s_inv = self.group.inverse(s)
            if s_inv not in index:
                raise InvalidParameterError(
                    f"generator set is not closed under inverse: "
                    f"{self.names[i]} has no inverse in the set"
                )
            inverse_index.append(index[s_inv])
        object.__setattr__(self, "inverse_index", tuple(inverse_index))

    def __len__(self) -> int:
        return len(self.generators)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.generators)

    def name_of(self, i: int) -> str:
        return self.names[i]

    def apply(self, node: Hashable, i: int) -> Hashable:
        """Right-multiply ``node`` by generator ``i`` (follow that edge)."""
        return self.group.multiply(node, self.generators[i])

    def neighbors(self, node: Hashable) -> list[Hashable]:
        """All Cayley-graph neighbors of ``node`` (may repeat if degenerate)."""
        return [self.group.multiply(node, s) for s in self.generators]

    def is_fixed_point_free(self, sample: Iterable[Hashable] | None = None) -> bool:
        """Check ``σ(v) != v`` and ``σ1(v) != σ2(v)`` for sampled vertices.

        Remark 3 of the paper asserts both properties for the hyper-butterfly
        generators whenever ``n > 2``; for a Cayley graph they only need to be
        checked at a single vertex, but a caller may pass extra samples.
        """
        nodes = list(sample) if sample is not None else [self.group.identity()]
        for v in nodes:
            images = [self.group.multiply(v, s) for s in self.generators]
            if v in images:
                return False
            if len(set(images)) != len(images):
                return False
        return True
