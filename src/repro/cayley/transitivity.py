"""Vertex-transitivity utilities for Cayley graphs.

Remark 7 of the paper uses vertex symmetry to reduce any routing question to
routing from the identity node.  The underlying fact is that in a Cayley
graph ``Cay(G, S)``, every **left translation** ``L_a : v ↦ a·v`` is a graph
automorphism: ``{v, v·s}`` maps to ``{a·v, a·v·s}``, again an edge.  This
module provides those translations and explicit (test-friendly) verifiers.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Hashable

from repro.cayley.group import Group, GeneratorSet

__all__ = [
    "left_translation",
    "verify_translation_automorphism",
    "verify_vertex_transitivity",
]


def left_translation(group: Group, a: Hashable) -> Callable[[Hashable], Hashable]:
    """Return the automorphism ``v ↦ a·v`` of any Cayley graph over ``group``."""

    def translate(v: Hashable) -> Hashable:
        return group.multiply(a, v)

    return translate


def verify_translation_automorphism(
    group: Group,
    gens: GeneratorSet,
    a: Hashable,
    *,
    sample_size: int | None = 256,
    rng: random.Random | None = None,
) -> bool:
    """Check that ``L_a`` maps edges to edges (on a vertex sample).

    With ``sample_size=None`` every vertex is checked (exponential-size
    groups make this expensive; tests use it only on small instances).
    """
    translate = left_translation(group, a)
    if sample_size is None:
        vertices = list(group.elements())
    else:
        rng = rng or random.Random(0)
        order = group.order()
        if order <= sample_size:
            vertices = list(group.elements())
        else:
            # Reservoir-free sampling: draw random generator words from the
            # identity so we do not need to enumerate the whole group.
            vertices = []
            for _ in range(sample_size):
                v = group.identity()
                for _ in range(rng.randrange(0, 4 * len(gens))):
                    v = group.multiply(v, rng.choice(gens.generators))
                vertices.append(v)
    for v in vertices:
        neighbors = set(gens.neighbors(v))
        image_neighbors = set(gens.neighbors(translate(v)))
        if {translate(w) for w in neighbors} != image_neighbors:
            return False
    return True


def verify_vertex_transitivity(
    group: Group,
    gens: GeneratorSet,
    *,
    witnesses: int = 8,
    rng: random.Random | None = None,
) -> bool:
    """Spot-check vertex transitivity with random translation witnesses.

    For every sampled pair ``(u, v)`` we exhibit the automorphism
    ``L_{v·u^{-1}}`` carrying ``u`` to ``v`` and verify it preserves local
    structure around ``u``.  This is a constructive certificate, not a
    search: Cayley graphs are always vertex transitive, so a failure here
    flags a bug in the group implementation rather than in the theorem.
    """
    rng = rng or random.Random(0)

    def random_element() -> Hashable:
        v = group.identity()
        for _ in range(rng.randrange(0, 6 * len(gens))):
            v = group.multiply(v, rng.choice(gens.generators))
        return v

    for _ in range(witnesses):
        u, v = random_element(), random_element()
        a = group.multiply(v, group.inverse(u))
        if group.multiply(a, u) != v:
            return False
        if not verify_translation_automorphism(
            group, gens, a, sample_size=32, rng=rng
        ):
            return False
    return True
