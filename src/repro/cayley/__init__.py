"""Group-theoretic machinery underlying the Cayley-graph topologies.

The hyper-butterfly graph is a Cayley graph (Theorem 1 of the paper); this
subpackage provides the finite groups involved, a generic Cayley-graph
builder, and vertex-transitivity utilities used by the exact routers.
"""

from repro.cayley.group import (
    Group,
    HypercubeGroup,
    ButterflyGroup,
    DirectProductGroup,
    GeneratorSet,
)
from repro.cayley.graph import CayleyGraph, build_cayley_graph
from repro.cayley.transitivity import (
    left_translation,
    verify_translation_automorphism,
    verify_vertex_transitivity,
)

__all__ = [
    "Group",
    "HypercubeGroup",
    "ButterflyGroup",
    "DirectProductGroup",
    "GeneratorSet",
    "CayleyGraph",
    "build_cayley_graph",
    "left_translation",
    "verify_translation_automorphism",
    "verify_vertex_transitivity",
]
