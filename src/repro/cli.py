"""Command-line interface: ``python -m repro`` / ``hyperbutterfly``.

Subcommands:

* ``info M N``            — closed-form + exact properties of ``HB(M, N)``.
* ``route M N SRC DST``   — shortest route between two formatted labels.
* ``figure1 M N``         — regenerate the paper's Figure 1 at ``(M, N)``.
* ``figure2``             — regenerate the paper's Figure 2 (large; minutes).
* ``faults M N K``        — fault-sweep experiment with up to ``K`` faults.
* ``faults-campaign M N`` — degradation campaign past the ``m + 3``
  guarantee (static sweep on HB/HD/hypercube + transient transport
  comparison), emitting ``BENCH_faults.json``.
* ``structure-campaign M N`` — correlated structure-fault campaign
  (kind × size × count sweep on HB/HD/hypercube, seeded cascade with
  retry-vs-no-retry transport replay, structure-fault diameter probes),
  emitting ``BENCH_structure.json``.
* ``traffic-campaign M N`` — latency-vs-load traffic campaign through the
  vectorized flow engine (workload families × offered loads on
  HB/HD/hypercube with native oblivious routes), emitting
  ``BENCH_traffic.json``.
* ``broadcast M N``       — broadcast round counts under all three models.
* ``metrics FAMILY M [N]`` — exact distance metrics (diameter, average
  distance, full histogram) via the cheapest valid engine: product
  decomposition, single transitive BFS, or the all-sources sweep
  (``--force-bfs`` pins the sweep, ``--backend`` pins the BFS substrate
  — csr, implicit, or python — ``--jobs`` pools it, ``--output`` writes
  sorted JSON).
* ``prove``               — verify the paper invariants of every registered
  family: exhaustive sweeps at the small parameter grids, abstract
  bit-vector certificates at the large ones (``--family``, ``--max-bits``,
  ``--format text|json``, ``--output`` for the proof ledger); exit 0
  proved / 1 counterexample / 2 error.
* ``lint [PATHS]``        — run the reprolint paper-invariant checks
  (``--format text|json``, ``--baseline``, ``--self-test``,
  ``--list-rules``); exit 0 clean / 1 findings / 2 linter error.
* ``sanitize``            — dynamic determinism check: run JSON-emitting
  targets twice under different ``PYTHONHASHSEED`` values and structurally
  diff the artefacts; exit 0 reproducible / 1 divergent / 2 error.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING

from repro import __version__

if TYPE_CHECKING:  # runtime imports stay lazy per subcommand
    from repro.topologies.base import Topology

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hyperbutterfly",
        description="Hyper-Butterfly Network (Shi & Srimani, IPPS 1998) toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="properties of HB(m, n)")
    p_info.add_argument("m", type=int)
    p_info.add_argument("n", type=int)
    p_info.add_argument(
        "--exact", action="store_true", help="also compute the exact diameter"
    )

    p_route = sub.add_parser("route", help="shortest route between two labels")
    p_route.add_argument("m", type=int)
    p_route.add_argument("n", type=int)
    p_route.add_argument("source", help="label like '(01;abc)'")
    p_route.add_argument("target", help="label like '(10;Bca)'")

    p_f1 = sub.add_parser("figure1", help="regenerate Figure 1 at (m, n)")
    p_f1.add_argument("m", type=int)
    p_f1.add_argument("n", type=int)
    p_f1.add_argument("--verify", action="store_true")

    p_f2 = sub.add_parser("figure2", help="regenerate Figure 2 (slow)")
    p_f2.add_argument(
        "--fast", action="store_true", help="formula diameters instead of exact"
    )

    p_faults = sub.add_parser("faults", help="fault sweep on HB(m, n)")
    p_faults.add_argument("m", type=int)
    p_faults.add_argument("n", type=int)
    p_faults.add_argument("max_faults", type=int)
    p_faults.add_argument("--trials", type=int, default=5)

    p_fc = sub.add_parser(
        "faults-campaign",
        help="degradation campaign past the m+3 guarantee (JSON output)",
    )
    p_fc.add_argument("m", type=int)
    p_fc.add_argument("n", type=int)
    p_fc.add_argument("--seed", type=int, default=0)
    p_fc.add_argument("--trials", type=int, default=None)
    p_fc.add_argument("--pairs", type=int, default=None)
    p_fc.add_argument(
        "--output", default="BENCH_faults.json", help="JSON output path"
    )
    p_fc.add_argument(
        "--quick",
        action="store_true",
        help="seconds-scale sweep (smoke tests / CI)",
    )

    p_sc = sub.add_parser(
        "structure-campaign",
        help="correlated structure-fault campaign: kind x size x count sweep, "
        "cascade replay, structure-fault diameter probes (JSON output)",
    )
    p_sc.add_argument("m", type=int)
    p_sc.add_argument("n", type=int)
    p_sc.add_argument("--seed", type=int, default=0)
    p_sc.add_argument("--trials", type=int, default=None)
    p_sc.add_argument("--pairs", type=int, default=None)
    p_sc.add_argument(
        "--output", default="BENCH_structure.json", help="JSON output path"
    )
    p_sc.add_argument(
        "--quick",
        action="store_true",
        help="seconds-scale sweep (smoke tests / CI)",
    )

    p_tc = sub.add_parser(
        "traffic-campaign",
        help="latency-vs-load traffic sweep through the vectorized flow "
        "engine: workload families x offered loads on HB/HD/hypercube "
        "(JSON output)",
    )
    p_tc.add_argument("m", type=int)
    p_tc.add_argument("n", type=int)
    p_tc.add_argument("--seed", type=int, default=0)
    p_tc.add_argument(
        "--families", default=None, help="comma-separated workload families"
    )
    p_tc.add_argument(
        "--flows-target", type=int, default=None, help="min flows per row"
    )
    p_tc.add_argument(
        "--output", default="BENCH_traffic.json", help="JSON output path"
    )
    p_tc.add_argument(
        "--quick",
        action="store_true",
        help="seconds-scale sweep (smoke tests / CI)",
    )

    p_bc = sub.add_parser("broadcast", help="broadcast rounds on HB(m, n)")
    p_bc.add_argument("m", type=int)
    p_bc.add_argument("n", type=int)

    p_metrics = sub.add_parser(
        "metrics",
        help="exact distance metrics (decomposition / transitive / BFS sweep)",
    )
    p_metrics.add_argument(
        "family", choices=("hb", "hd", "hypercube", "butterfly", "debruijn")
    )
    p_metrics.add_argument("m", type=int, help="first order parameter")
    p_metrics.add_argument(
        "n",
        type=int,
        nargs="?",
        default=None,
        help="second order parameter (hb/hd only)",
    )
    p_metrics.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process count for the all-sources sweep (default: 1)",
    )
    p_metrics.add_argument(
        "--force-bfs",
        action="store_true",
        help="bypass the decomposition/transitive fast paths (cross-check)",
    )
    p_metrics.add_argument(
        "--backend",
        choices=("auto", "csr", "implicit", "python"),
        default="auto",
        help="pin the BFS substrate (default auto; csr/implicit/python also "
        "bypass the BFS-free decomposition so the engine actually runs)",
    )
    p_metrics.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the payload as sorted JSON",
    )

    p_prove = sub.add_parser(
        "prove",
        help="verify paper invariants: exhaustive small grids, abstract "
        "bit-vector certificates at large ones",
    )
    from repro.devtools.reprolint.prove import configure_parser as _configure_prove

    _configure_prove(p_prove)

    p_lint = sub.add_parser(
        "lint", help="run the reprolint paper-invariant static checks"
    )
    from repro.devtools.reprolint.cli import configure_parser as _configure_lint

    _configure_lint(p_lint)

    p_san = sub.add_parser(
        "sanitize",
        help="dynamic determinism check: A/B runs under two PYTHONHASHSEEDs",
    )
    from repro.devtools.sanitize import configure_parser as _configure_sanitize

    _configure_sanitize(p_san)
    return parser


def _cmd_info(args: argparse.Namespace) -> int:
    from repro import HyperButterfly

    hb = HyperButterfly(args.m, args.n)
    print(f"{hb.name}: the hyper-butterfly graph H_{args.m} x B_{args.n}")
    print(f"  nodes            {hb.num_nodes}")
    print(f"  edges            {hb.num_edges}")
    print(f"  degree           {hb.degree_formula} (regular, Cayley)")
    print(f"  diameter         {hb.diameter_formula()} (m + floor(3n/2))")
    print(f"  fault tolerance  {hb.fault_tolerance_formula()} (maximal)")
    if args.exact:
        print(f"  exact diameter   {hb.diameter()} (BFS from identity)")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro import HBRouter, HyperButterfly, parse_hb_node

    hb = HyperButterfly(args.m, args.n)
    source = parse_hb_node(args.source, args.m, args.n)
    target = parse_hb_node(args.target, args.m, args.n)
    result = HBRouter(hb).route(source, target)
    print(f"distance {result.length}")
    for node, gen in zip(result.path, result.generators + [""], strict=True):
        suffix = f"  --{gen}-->" if gen else ""
        print(f"  {hb.format_node(node)}{suffix}")
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.analysis.compare import figure1_table, render_table

    table = figure1_table(args.m, args.n, verify=args.verify)
    print(render_table(table, title=f"Figure 1 at (m={args.m}, n={args.n})"))
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.analysis.compare import figure2_table, render_table

    table = figure2_table(exact_diameters=not args.fast)
    print(render_table(table, title="Figure 2: HB(3,8) vs HD(3,11) vs HD(6,8)"))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro import HyperButterfly
    from repro.faults.experiments import fault_sweep

    hb = HyperButterfly(args.m, args.n)
    results = fault_sweep(
        hb, list(range(args.max_faults + 1)), trials=args.trials
    )
    print(f"fault sweep on {hb.name} (guaranteed tolerance {hb.m + 3} faults)")
    print("faults  connected  disjoint-ok  overhead")
    for r in results:
        print(
            f"{r.faults:6d}  {r.connected_fraction:9.3f}  "
            f"{r.disjoint_success_rate:11.3f}  {r.mean_overhead:8.3f}"
        )
    return 0


def _cmd_faults_campaign(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.faults.campaigns import (
        CampaignConfig,
        run_campaign,
        write_campaign_json,
    )

    if args.quick:
        config = CampaignConfig.quick(args.m, args.n, seed=args.seed)
    else:
        config = CampaignConfig(m=args.m, n=args.n, seed=args.seed)
    overrides = {}
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.pairs is not None:
        overrides["pairs"] = args.pairs
    if overrides:
        config = dataclasses.replace(config, **overrides)
    results = run_campaign(config)
    write_campaign_json(results, args.output)
    for network in results["networks"]:
        print(
            f"{network['name']}: {network['num_nodes']} nodes, "
            f"guarantee {network['guaranteed_tolerance']} faults, "
            f"breaking point {network['breaking_point']}"
        )
        print("  faults  delivery  stretch  disjoint-share")
        for row in network["curve"]:
            stretch = row["mean_stretch"]
            share = row["disjoint_share"]
            print(
                f"  {row['faults']:6d}  {row['delivery_ratio']:8.3f}  "
                f"{stretch if stretch is not None else float('nan'):7.3f}  "
                f"{share if share is not None else float('nan'):14.3f}"
            )
    print(f"transient transport on {results['transient']['network']}:")
    print("  rate    no-retry  retry     mean-rexmit")
    for row in results["transient"]["curve"]:
        print(
            f"  {row['rate']:5.2f}  {row['no_retry_delivery']:8.3f}  "
            f"{row['retry_delivery']:8.3f}  {row['mean_retransmissions']:11.3f}"
        )
    print(f"wrote {args.output}")
    return 0


def _cmd_structure_campaign(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.faults.campaigns import (
        StructureCampaignConfig,
        run_structure_campaign,
        write_campaign_json,
    )

    if args.quick:
        config = StructureCampaignConfig.quick(args.m, args.n, seed=args.seed)
    else:
        config = StructureCampaignConfig(m=args.m, n=args.n, seed=args.seed)
    overrides = {}
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.pairs is not None:
        overrides["pairs"] = args.pairs
    if overrides:
        config = dataclasses.replace(config, **overrides)
    results = run_structure_campaign(config)
    write_campaign_json(results, args.output)
    for network in results["networks"]:
        print(f"{network['name']}: {network['num_nodes']} nodes ({network['scheme']})")
        print("  kind     size  count  faulted  delivery  connected")
        for row in network["rows"]:
            delivery = row["delivery_ratio"]
            print(
                f"  {row['kind']:<8} {row['size']:4d}  {row['count']:5d}  "
                f"{row['mean_faulted']:7.1f}  "
                f"{delivery if delivery is not None else float('nan'):8.3f}  "
                f"{row['connected_fraction']:9.3f}"
            )
    cascade = results["cascade"]
    replay = cascade["transport_replay"]
    print(
        f"cascade on {cascade['network']}: {cascade['total_failed']} failed over "
        f"{len(cascade['epochs'])} epochs; delivery "
        f"no-retry {replay['no_retry']['delivery']:.3f} "
        f"vs retry {replay['retry']['delivery']:.3f}"
    )
    print("structure-fault diameter probes:")
    for row in results["structure_fault_diameter"]:
        mode = "exact" if row["exact"] else "lower bound"
        print(
            f"  {row['name']} ({row['num_nodes']} nodes, {row['backend']}): "
            f"{row['kind']} -> {row['structure_fault_diameter']} "
            f"(fault-free {row['fault_free_diameter']}, {mode})"
        )
    print(f"wrote {args.output}")
    return 0


def _cmd_prove(args: argparse.Namespace) -> int:
    from repro.devtools.reprolint.prove import run

    return run(args)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.reprolint.cli import run

    return run(args)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.devtools.sanitize import run

    return run(args)


def _metrics_topology(args: argparse.Namespace) -> "Topology":
    """Instantiate the requested family, validating the parameter count."""
    from repro.errors import InvalidParameterError

    if args.family in ("hb", "hd"):
        if args.n is None:
            raise InvalidParameterError(
                f"family {args.family!r} needs both m and n"
            )
        if args.family == "hb":
            from repro import HyperButterfly

            return HyperButterfly(args.m, args.n)
        from repro.topologies.hyperdebruijn import HyperDeBruijn

        return HyperDeBruijn(args.m, args.n)
    if args.n is not None:
        raise InvalidParameterError(
            f"family {args.family!r} takes a single order parameter"
        )
    if args.family == "hypercube":
        from repro.topologies.hypercube import Hypercube

        return Hypercube(args.m)
    if args.family == "butterfly":
        from repro.topologies.butterfly_cayley import CayleyButterfly

        return CayleyButterfly(args.m)
    from repro.topologies.debruijn import DeBruijn

    return DeBruijn(args.m)


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.decompose import leaf_factors
    from repro.analysis.distance_stats import pair_distance_counts
    from repro.errors import ReproError

    try:
        topology = _metrics_topology(args)
        pinned = args.backend != "auto"
        if args.force_bfs:
            engine = "bfs-sweep"
        elif not pinned and leaf_factors(topology) is not None:
            engine = "decomposition"
        elif topology.is_vertex_transitive:
            engine = "transitive-bfs"
        else:
            engine = "bfs-sweep"
        counts = pair_distance_counts(
            topology,
            jobs=args.jobs,
            force_generic=args.force_bfs,
            backend=args.backend,
        )
    except ReproError as exc:
        print(f"metrics: error: {exc}", file=sys.stderr)
        return 2
    total = sum(counts.values())
    distinct = total - topology.num_nodes
    average = (
        sum(d * c for d, c in counts.items()) / distinct if distinct > 0 else 0.0
    )
    payload = {
        "name": topology.name,
        "family": args.family,
        "engine": engine,
        "backend": args.backend,
        "jobs": args.jobs,
        "num_nodes": topology.num_nodes,
        "diameter": max(counts),
        "average_distance": average,
        "distance_histogram": {str(d): c for d, c in counts.items()},
    }
    print(f"{payload['name']}: exact distance metrics ({engine})")
    print(f"  nodes             {payload['num_nodes']}")
    print(f"  diameter          {payload['diameter']}")
    print(f"  average distance  {payload['average_distance']:.6f}")
    if args.output is not None:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}")
    return 0


def _cmd_traffic_campaign(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.simulation.campaign import (
        TrafficCampaignConfig,
        run_traffic_campaign,
        write_campaign_json,
    )

    if args.quick:
        config = TrafficCampaignConfig.quick(args.m, args.n, seed=args.seed)
    else:
        config = TrafficCampaignConfig(m=args.m, n=args.n, seed=args.seed)
    overrides: dict = {}
    if args.families is not None:
        overrides["families"] = tuple(args.families.split(","))
    if args.flows_target is not None:
        overrides["flows_target"] = args.flows_target
    if overrides:
        config = dataclasses.replace(config, **overrides)
    results = run_traffic_campaign(config)
    write_campaign_json(results, args.output)
    for network in results["networks"]:
        print(f"{network['name']}: {network['num_nodes']} nodes")
        print("  family        saturation  at-load   peak-latency")
        for fam in network["families"]:
            worst = max(row["mean_latency"] for row in fam["curve"])
            print(
                f"  {fam['family']:<12}  {fam['saturation_throughput']:10.4f}  "
                f"{fam['saturation_offered_load']:7.3f}  {worst:12.2f}"
            )
    print(f"wrote {args.output}")
    return 0


def _cmd_broadcast(args: argparse.Namespace) -> int:
    from repro import HyperButterfly, broadcast_rounds
    from repro.core.broadcast import broadcast_lower_bound

    hb = HyperButterfly(args.m, args.n)
    root = hb.identity_node()
    print(f"broadcast on {hb.name} from {hb.format_node(root)}")
    print(f"  lower bound        {broadcast_lower_bound(hb)}")
    print(f"  all-port flooding  {broadcast_rounds(hb, root, model='all-port')}")
    print(f"  single-port greedy {broadcast_rounds(hb, root, model='single-port')}")
    print(f"  structured scheme  {broadcast_rounds(hb, root, model='structured')}")
    return 0


_HANDLERS = {
    "info": _cmd_info,
    "route": _cmd_route,
    "figure1": _cmd_figure1,
    "figure2": _cmd_figure2,
    "faults": _cmd_faults,
    "faults-campaign": _cmd_faults_campaign,
    "structure-campaign": _cmd_structure_campaign,
    "traffic-campaign": _cmd_traffic_campaign,
    "broadcast": _cmd_broadcast,
    "metrics": _cmd_metrics,
    "prove": _cmd_prove,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
}


def main(argv: list[str] | None = None) -> int:
    from repro.fastgraph.guard import install_errstate_from_env

    install_errstate_from_env()  # sanitize --mode overflow trap, else no-op
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
