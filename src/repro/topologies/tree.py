"""The complete binary tree ``T(k)`` (paper Figure 1 / Lemma 3 guest).

``T(k)`` has ``k`` levels and ``2^k - 1`` vertices, matching the paper's
usage (e.g. ``T(n+1)`` is a subgraph of ``B_n``, Lemma 3).  Vertices are
heap indices ``1 … 2^k - 1``: node ``v`` has children ``2v`` and ``2v + 1``.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = ["CompleteBinaryTree"]


class CompleteBinaryTree(Topology):
    """``T(k)``: complete binary tree with ``2^k - 1`` heap-indexed nodes."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise InvalidParameterError(f"tree must have k >= 1 levels, got {k}")
        self.k = k
        self.name = f"T({k})"

    @property
    def num_nodes(self) -> int:
        return (1 << self.k) - 1

    @property
    def num_edges(self) -> int:
        return self.num_nodes - 1

    def nodes(self) -> Iterator[int]:
        return iter(range(1, 1 << self.k))

    def has_node(self, v: Hashable) -> bool:
        return isinstance(v, int) and 1 <= v < (1 << self.k)

    def neighbors(self, v: int) -> list[int]:
        self.validate_node(v)
        out = []
        if v > 1:
            out.append(v // 2)
        if 2 * v < (1 << self.k):
            out.append(2 * v)
            out.append(2 * v + 1)
        return out

    # Tree structure accessors -------------------------------------------

    @property
    def root(self) -> int:
        return 1

    def parent(self, v: int) -> int | None:
        self.validate_node(v)
        return v // 2 if v > 1 else None

    def children(self, v: int) -> list[int]:
        self.validate_node(v)
        if self.is_leaf(v):
            return []
        return [2 * v, 2 * v + 1]

    def is_leaf(self, v: int) -> bool:
        self.validate_node(v)
        return 2 * v >= (1 << self.k)

    def depth(self, v: int) -> int:
        """Depth of ``v`` (root has depth 0, leaves depth ``k - 1``)."""
        self.validate_node(v)
        return v.bit_length() - 1

    def leaves(self) -> Iterator[int]:
        """Leaves left to right: heap indices ``2^{k-1} … 2^k - 1``."""
        return iter(range(1 << (self.k - 1), 1 << self.k))

    def leaf_index(self, v: int) -> int:
        """Position of leaf ``v`` among the leaves, left to right."""
        if not self.is_leaf(v):
            raise InvalidParameterError(f"{v} is not a leaf of {self.name}")
        return v - (1 << (self.k - 1))


register_invariants(
    InvariantSpec(
        family="CompleteBinaryTree",
        params=("k",),
        build=CompleteBinaryTree,
        small=((1,), (2,), (3,), (5,)),
        large=((40,),),
        regular=False,
        degree_max="3",
        paper="Lemma 3",
    )
)
