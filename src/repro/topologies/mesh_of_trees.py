"""The mesh of trees ``MT(2^p, 2^q)`` (paper Lemma 4 / Theorem 4 guest).

``MT(a, b)`` (with ``a = 2^p``, ``b = 2^q``) consists of an ``a × b`` grid
of *leaf* processors, a complete binary *row tree* over the ``b`` leaves of
each row, and a complete binary *column tree* over the ``a`` leaves of each
column.  Row/column tree internal vertices are distinct, so

``|V| = a·b + a·(b - 1) + b·(a - 1) = 3ab - a - b``.

Vertex labels:

* ``("leaf", i, j)`` — grid leaf at row ``i``, column ``j``;
* ``("row", i, v)`` — internal vertex ``v`` (heap index ``1 … b-1``) of the
  row-``i`` tree; its would-be heap children in ``[b, 2b)`` are the leaves
  ``("leaf", i, child - b)``;
* ``("col", j, v)`` — symmetric for column trees.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = ["MeshOfTrees"]


class MeshOfTrees(Topology):  # reprolint: disable=HB201 -- three node kinds (grid/row-tree/col-tree) with irregular degrees defeat a dense packing; the EnumerationCodec fallback is the intended substrate
    """``MT(rows, cols)`` with power-of-two side lengths."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 2 or rows & (rows - 1):
            raise InvalidParameterError(f"rows must be a power of two >= 2, got {rows}")
        if cols < 2 or cols & (cols - 1):
            raise InvalidParameterError(f"cols must be a power of two >= 2, got {cols}")
        self.rows = rows
        self.cols = cols
        self.name = f"MT({rows},{cols})"

    @property
    def num_nodes(self) -> int:
        return 3 * self.rows * self.cols - self.rows - self.cols

    @property
    def num_edges(self) -> int:
        # each tree with L leaves contributes 2(L-1) edges
        return self.rows * 2 * (self.cols - 1) + self.cols * 2 * (self.rows - 1)

    def nodes(self) -> Iterator[tuple]:
        for i in range(self.rows):
            for j in range(self.cols):
                yield ("leaf", i, j)
        for i in range(self.rows):
            for v in range(1, self.cols):
                yield ("row", i, v)
        for j in range(self.cols):
            for v in range(1, self.rows):
                yield ("col", j, v)

    def has_node(self, v: Hashable) -> bool:
        if not (isinstance(v, tuple) and len(v) == 3):
            return False
        kind, a, b = v
        if not (isinstance(a, int) and isinstance(b, int)):
            return False
        if kind == "leaf":
            return 0 <= a < self.rows and 0 <= b < self.cols
        if kind == "row":
            return 0 <= a < self.rows and 1 <= b < self.cols
        if kind == "col":
            return 0 <= a < self.cols and 1 <= b < self.rows
        return False

    def _tree_children(self, v: int, leaf_count: int) -> list[tuple[bool, int]]:
        """Heap children of internal index ``v``: ``(is_leaf, index)`` pairs."""
        out = []
        for c in (2 * v, 2 * v + 1):
            if c < leaf_count:
                out.append((False, c))
            else:
                out.append((True, c - leaf_count))
        return out

    def neighbors(self, v: tuple) -> list[tuple]:
        self.validate_node(v)
        kind, a, b = v
        out: list[tuple] = []
        if kind == "leaf":
            i, j = a, b
            # parent in row tree i: heap parent of leaf index (cols + j)
            out.append(("row", i, (self.cols + j) // 2))
            # parent in column tree j
            out.append(("col", j, (self.rows + i) // 2))
            return out
        if kind == "row":
            i, v_idx = a, b
            if v_idx > 1:
                out.append(("row", i, v_idx // 2))
            for is_leaf, c in self._tree_children(v_idx, self.cols):
                out.append(("leaf", i, c) if is_leaf else ("row", i, c))
            return out
        # kind == "col"
        j, v_idx = a, b
        if v_idx > 1:
            out.append(("col", j, v_idx // 2))
        for is_leaf, c in self._tree_children(v_idx, self.rows):
            out.append(("leaf", c, j) if is_leaf else ("col", j, c))
        return out

    def leaf(self, i: int, j: int) -> tuple:
        """The grid leaf label at row ``i``, column ``j`` (validated)."""
        label = ("leaf", i, j)
        self.validate_node(label)
        return label

    def row_root(self, i: int) -> tuple:
        """Root of row tree ``i``."""
        label = ("row", i, 1)
        self.validate_node(label)
        return label

    def col_root(self, j: int) -> tuple:
        """Root of column tree ``j``."""
        label = ("col", j, 1)
        self.validate_node(label)
        return label


register_invariants(
    InvariantSpec(
        family="MeshOfTrees",
        params=("rows", "cols"),
        build=MeshOfTrees,
        small=((2, 2), (2, 4), (4, 4)),
        regular=False,
        degree_max="3",
        paper="Lemma 4",
    )
)
