"""The wrapped butterfly ``B_n`` in its classic ``⟨word, level⟩`` form.

Vertices are pairs ``(w, ℓ)`` with ``w`` an ``n``-bit word and
``ℓ ∈ {0, …, n-1}`` a level.  Following the paper's definition [3] (with the
bit-index convention fixed in DESIGN.md), ``(w, ℓ)`` and ``(w', ℓ')`` are
adjacent iff ``ℓ' = ℓ + 1 (mod n)`` and either ``w' = w`` (a *straight*
edge) or ``w' = w ⊕ 2^ℓ`` (a *cross* edge — the crossed bit is indexed by
the source level).

Key properties (Remark 1): ``n·2^n`` vertices, ``n·2^{n+1}`` edges, regular
of degree 4, diameter ``⌊3n/2⌋``, vertex connectivity 4.

Under this convention the identity map ``(PI, CI) → (level, word)`` is an
isomorphism onto :class:`repro.topologies.butterfly_cayley.CayleyButterfly`
— see that module (paper Remark 2).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro._bits import format_word
from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = ["WrappedButterfly"]


class WrappedButterfly(Topology):
    """The wrapped butterfly ``B_n``, vertices ``(word, level)``."""

    def __init__(self, n: int) -> None:
        if n < 3:
            raise InvalidParameterError(
                f"wrapped butterfly requires n >= 3 for simple 4-regularity, got {n}"
            )
        self.n = n
        self.name = f"B_{n}"

    # Topology interface ----------------------------------------------------

    @property
    def is_vertex_transitive(self) -> bool:
        """``True`` — isomorphic to the Cayley graph of ``Z_n ⋉ (Z_2)^n``
        (Remark 2; the identity map onto :class:`CayleyButterfly`)."""
        return True

    @property
    def num_nodes(self) -> int:
        return self.n << self.n

    @property
    def num_edges(self) -> int:
        # 4-regular: closed form n * 2^(n+1)
        return self.n << (self.n + 1)

    def nodes(self) -> Iterator[tuple[int, int]]:
        for w in range(1 << self.n):
            for level in range(self.n):
                yield (w, level)

    def has_node(self, v: Hashable) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == 2
            and isinstance(v[0], int)
            and isinstance(v[1], int)
            and 0 <= v[0] < (1 << self.n)
            and 0 <= v[1] < self.n
        )

    def neighbors(self, v: tuple[int, int]) -> list[tuple[int, int]]:
        self.validate_node(v)
        w, level = v
        up = (level + 1) % self.n
        down = (level - 1) % self.n
        return [
            (w, up),                           # forward straight
            (w ^ (1 << level), up),            # forward cross (bit = src level)
            (w, down),                         # backward straight
            (w ^ (1 << down), down),           # backward cross (bit = dst level)
        ]

    # Structured accessors used by routers and embeddings ---------------------

    def forward_straight(self, v: tuple[int, int]) -> tuple[int, int]:
        w, level = v
        return (w, (level + 1) % self.n)

    def forward_cross(self, v: tuple[int, int]) -> tuple[int, int]:
        w, level = v
        return (w ^ (1 << level), (level + 1) % self.n)

    def backward_straight(self, v: tuple[int, int]) -> tuple[int, int]:
        w, level = v
        return (w, (level - 1) % self.n)

    def backward_cross(self, v: tuple[int, int]) -> tuple[int, int]:
        w, level = v
        down = (level - 1) % self.n
        return (w ^ (1 << down), down)

    def level_nodes(self, level: int) -> Iterator[tuple[int, int]]:
        """All ``2^n`` vertices of a given level."""
        if not 0 <= level < self.n:
            raise InvalidParameterError(f"level must be in [0, {self.n}), got {level}")
        for w in range(1 << self.n):
            yield (w, level)

    def format_node(self, v: tuple[int, int]) -> str:
        self.validate_node(v)
        w, level = v
        return f"<{format_word(w, self.n)};{level}>"

    def diameter_formula(self) -> int:
        """``⌊3n/2⌋`` (Remark 1) — cross-checked against exact BFS in tests."""
        return (3 * self.n) // 2


register_invariants(
    InvariantSpec(
        family="WrappedButterfly",
        params=("n",),
        build=WrappedButterfly,
        small=((3,), (4,), (5,)),
        large=((16,), (24,)),
        degree="4",
        paper="Remark 1 / [3]",
    )
)
