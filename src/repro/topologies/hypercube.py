"""The binary hypercube ``H_m`` (paper Section 2.1).

Vertices are the ``2^m`` integers ``0 .. 2^m - 1`` read as ``m``-bit words;
``{u, v}`` is an edge iff the Hamming distance of ``u`` and ``v`` is 1.
Known facts restated by the paper and surfaced as methods here:

* ``m · 2^{m-1}`` edges, regular of degree ``m``;
* diameter ``m``;
* vertex connectivity ``m`` (maximally fault tolerant) [5];
* even cycles of every length ``4 .. 2^m`` as subgraphs (Remark 9).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro._bits import flip, format_word, popcount
from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = ["Hypercube"]


class Hypercube(Topology):
    """The hypercube ``H_m`` with integer-word vertex labels."""

    def __init__(self, m: int) -> None:
        if m < 0:
            raise InvalidParameterError(f"hypercube dimension must be >= 0, got {m}")
        self.m = m
        self.name = f"H_{m}"

    # Topology interface ----------------------------------------------------

    @property
    def is_vertex_transitive(self) -> bool:
        """``True`` — ``H_m`` is the Cayley graph of ``(Z_2)^m``."""
        return True

    @property
    def num_nodes(self) -> int:
        return 1 << self.m

    @property
    def num_edges(self) -> int:
        # closed form m * 2^(m-1)
        return self.m << (self.m - 1) if self.m > 0 else 0

    def nodes(self) -> Iterator[int]:
        return iter(range(1 << self.m))

    def neighbors(self, v: int) -> list[int]:
        self.validate_node(v)
        return [flip(v, i) for i in range(self.m)]

    def has_node(self, v: Hashable) -> bool:
        return isinstance(v, int) and 0 <= v < (1 << self.m)

    # Hypercube-specific services --------------------------------------------

    def distance(self, u: int, v: int) -> int:
        """Hamming distance — exactly the graph distance in ``H_m``."""
        self.validate_node(u)
        self.validate_node(v)
        return popcount(u ^ v)

    def diameter(self) -> int:
        """``m`` — attained by antipodal pairs."""
        return self.m

    def format_node(self, v: int) -> str:
        """Render in the paper's ``x_{m-1} ... x_0`` order."""
        self.validate_node(v)
        return format_word(v, self.m)

    def antipode(self, v: int) -> int:
        """The unique vertex at distance ``m`` from ``v``."""
        self.validate_node(v)
        return v ^ ((1 << self.m) - 1)


register_invariants(
    InvariantSpec(
        family="Hypercube",
        params=("m",),
        build=Hypercube,
        small=((0,), (1,), (2,), (3,), (4,), (6,)),
        large=((16,), (48,)),
        degree="m",
        paper="Section 2.1 / [5]",
    )
)
