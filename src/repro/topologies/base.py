"""Common interface for every topology in the library.

A :class:`Topology` is an implicitly represented undirected graph: nodes are
hashable labels and adjacency is computed from the label, never stored.
This keeps construction ``O(1)`` and lets algorithms work on instances far
larger than what an explicit adjacency structure would allow, while
``to_networkx()`` materialises an explicit graph when exact global analysis
(max-flow connectivity, iFUB diameter, isomorphism checks) is needed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator

import networkx as nx

from repro.errors import DisconnectedError, InvalidLabelError

if TYPE_CHECKING:
    from repro.fastgraph.backend import FastGraph

__all__ = ["Topology"]


def _fastgraph(topology: "Topology") -> "FastGraph | None":
    """Fast-backend view of ``topology``, or ``None`` without a codec.

    Deferred import: topologies sit *below* fastgraph in the layer DAG —
    the acceleration layer knows about topologies, never the reverse
    (reprolint HB401); binding it here at import time would also cycle.
    """
    from repro.fastgraph.backend import get_fastgraph

    return get_fastgraph(topology)


class Topology(ABC):
    """Implicit undirected graph with computed adjacency."""

    #: short human-readable family name, e.g. ``"H_4"`` or ``"HB(2,3)"``
    name: str = "topology"

    @property
    def is_vertex_transitive(self) -> bool:
        """Whether the automorphism group acts transitively on vertices.

        Declared per family (conservative default ``False``) instead of
        inferred from class names or attribute probing: algorithms such as
        :func:`repro.analysis.metrics.exact_diameter` use it to collapse
        all-sources sweeps into a single BFS, so a wrong ``True`` silently
        produces wrong numbers.  Cayley-backed topologies override this
        with ``True`` (every Cayley graph is vertex transitive); Cartesian
        products are transitive exactly when every factor is.
        """
        return False

    # Core interface -------------------------------------------------------

    @property
    @abstractmethod
    def num_nodes(self) -> int:
        """Number of vertices."""

    @abstractmethod
    def nodes(self) -> Iterator[Hashable]:
        """Iterate over all vertex labels."""

    @abstractmethod
    def neighbors(self, v: Hashable) -> list[Hashable]:
        """Adjacent vertices of ``v`` (no duplicates, no self-loops)."""

    @abstractmethod
    def has_node(self, v: Hashable) -> bool:
        """Whether ``v`` is a valid vertex label of this topology."""

    # Derived helpers --------------------------------------------------------

    def validate_node(self, v: Hashable) -> None:
        """Raise :class:`InvalidLabelError` unless ``v`` is a vertex."""
        if not self.has_node(v):
            raise InvalidLabelError(f"{v!r} is not a node of {self.name}")

    def degree(self, v: Hashable) -> int:
        """Degree of vertex ``v``."""
        return len(self.neighbors(v))

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Whether ``{u, v}`` is an edge — short-circuit scan of ``u``'s
        neighbor list, no per-probe set allocation."""
        return any(w == v for w in self.neighbors(u))

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Iterate each undirected edge exactly once.

        With a fast-backend codec the rank order replaces the ``seen`` set
        (an edge is emitted from its lower-ranked endpoint), so the walk
        holds O(1) extra state instead of a set of every vertex.
        """
        fast = _fastgraph(self)
        if fast is not None:
            yield from fast.edges()
            return
        seen: set[Hashable] = set()
        for u in self.nodes():
            seen.add(u)
            for v in self.neighbors(u):
                if v not in seen:
                    yield (u, v)

    @property
    def num_edges(self) -> int:
        """Number of edges (computed by degree sum; override when closed-form)."""
        return sum(self.degree(v) for v in self.nodes()) // 2

    def degree_stats(self) -> tuple[int, int]:
        """``(min degree, max degree)`` over all vertices."""
        degrees = [self.degree(v) for v in self.nodes()]
        return (min(degrees), max(degrees))

    def is_regular(self) -> bool:
        """Whether all vertices have equal degree."""
        lo, hi = self.degree_stats()
        return lo == hi

    def to_networkx(self) -> nx.Graph:
        """Materialise as an explicit :class:`networkx.Graph`."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        for u in self.nodes():
            for v in self.neighbors(u):
                graph.add_edge(u, v)
        return graph

    def subgraph_networkx(self, vertices: Iterable[Hashable]) -> nx.Graph:
        """Explicit induced subgraph on ``vertices`` (validated)."""
        keep = set(vertices)
        for v in keep:
            self.validate_node(v)
        graph = nx.Graph()
        graph.add_nodes_from(keep)
        for u in keep:
            for v in self.neighbors(u):
                if v in keep:
                    graph.add_edge(u, v)
        return graph

    # BFS utilities shared by routing/analysis -------------------------------

    def bfs_distances(
        self,
        source: Hashable,
        *,
        blocked: frozenset | set | None = None,
        backend: str | None = None,
    ) -> dict[Hashable, int]:
        """Unweighted distances from ``source`` (skipping ``blocked`` nodes).

        ``backend`` pins the BFS substrate: ``"python"`` forces the label
        BFS, ``"csr"``/``"implicit"`` force a fast-backend substrate
        (:class:`~repro.errors.InvalidParameterError` when the family has
        no codec), ``None``/``"auto"`` picks the cheapest valid one.
        """
        self.validate_node(source)
        blocked = blocked or frozenset()
        if source in blocked:
            raise InvalidLabelError("source node is blocked")
        if backend == "python":
            return self._bfs_distances_python(source, blocked)
        fast = _fastgraph(self)
        if fast is not None:
            return fast.bfs_distances(source, blocked, backend=backend)
        if backend in ("csr", "implicit"):
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(
                f"{self.name} has no fastgraph codec; backend={backend!r} "
                "is unavailable (use backend='python')"
            )
        return self._bfs_distances_python(source, blocked)

    def _bfs_distances_python(
        self, source: Hashable, blocked: frozenset | set
    ) -> dict[Hashable, int]:
        """Pure-Python label BFS — fallback for codec-less topologies and the
        reference the fast backend is property-tested against."""
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for w in self.neighbors(u):
                if w not in dist and w not in blocked:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return dist

    def bfs_shortest_path(
        self,
        source: Hashable,
        target: Hashable,
        *,
        blocked: frozenset | set | None = None,
    ) -> list[Hashable] | None:
        """A shortest path ``source → target`` avoiding ``blocked``; ``None``
        if unreachable.  Bidirectional-free plain BFS: simple and adequate for
        the instance sizes used in verification."""
        self.validate_node(source)
        self.validate_node(target)
        blocked = blocked or frozenset()
        if source in blocked or target in blocked:
            return None
        if source == target:
            return [source]
        fast = _fastgraph(self)
        if fast is not None:
            return fast.shortest_path(source, target, blocked=blocked)
        return self._bfs_shortest_path_python(source, target, blocked)

    def _bfs_shortest_path_python(
        self, source: Hashable, target: Hashable, blocked: frozenset | set
    ) -> list[Hashable] | None:
        parent: dict[Hashable, Hashable] = {source: source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for w in self.neighbors(u):
                if w in parent or w in blocked:
                    continue
                parent[w] = u
                if w == target:
                    path = [w]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(w)
        return None

    def eccentricity(self, v: Hashable, *, backend: str | None = None) -> int:
        """Eccentricity of ``v`` (max BFS distance; graph must be connected).

        ``backend`` as in :meth:`bfs_distances`; the implicit substrate
        answers this per-source exact question in ``O(num_nodes / 8)``
        memory, which is what makes it available past CSR scale.
        """
        self.validate_node(v)
        fast = _fastgraph(self) if backend != "python" else None
        if fast is not None:
            # array max — skips materialising a num_nodes-sized label dict
            return fast.eccentricity(v, backend=backend)
        if backend in ("csr", "implicit"):
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(
                f"{self.name} has no fastgraph codec; backend={backend!r} "
                "is unavailable (use backend='python')"
            )
        dist = self._bfs_distances_python(v, frozenset())
        if len(dist) != self.num_nodes:
            raise DisconnectedError(f"{self.name} is not connected from {v!r}")
        return max(dist.values())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}: {self.num_nodes} nodes>"
