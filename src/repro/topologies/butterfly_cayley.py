"""The wrapped butterfly ``B_n`` as a Cayley graph (paper Section 2.1, [4]).

This is the representation the paper actually builds on: each vertex is a
cyclic permutation of ``n`` symbols in lexicographic order, each symbol
possibly complemented, and the four generators ``g, f, g^{-1}, f^{-1}``
rotate the label (complementing the wrapped symbol for ``f``-type moves).

We encode a vertex as the pair ``(PI, CI)``:

* ``PI ∈ Z_n`` — the *permutation index* (Definition 1): the number of left
  shifts from the identity permutation ``t_0 t_1 … t_{n-1}``.
* ``CI`` — the *complementation index* (Definition 2): bit ``k`` is set iff
  symbol ``t_k`` appears complemented.

With this encoding the generators act exactly as in
:class:`repro.cayley.group.ButterflyGroup`, and the **identity map**
``(PI, CI) ↦ (level=PI, word=CI)`` is an isomorphism onto the classic
``⟨word, level⟩`` butterfly of :mod:`repro.topologies.butterfly`
(paper Remark 2); :func:`cayley_to_classic` / :func:`classic_to_cayley`
expose it and the tests verify edge preservation exhaustively.
"""

from __future__ import annotations

import string
from typing import Hashable, Iterator

from repro._bits import bit
from repro.cayley.graph import CayleyGraph, DistanceOracle
from repro.cayley.group import ButterflyGroup, GeneratorSet
from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = [
    "CayleyButterfly",
    "cayley_to_classic",
    "classic_to_cayley",
    "butterfly_generator_set",
]


def butterfly_generator_set(group: ButterflyGroup) -> GeneratorSet:
    """The paper's generator set ``{g, f, g^{-1}, f^{-1}}`` for ``B_n``."""
    return GeneratorSet(
        group=group,
        generators=tuple(group.butterfly_generators()),
        names=("g", "f", "g^-1", "f^-1"),
    )


class CayleyButterfly(Topology):
    """``B_n`` with ``(PI, CI)`` vertex labels and Cayley-graph services."""

    def __init__(self, n: int) -> None:
        if n < 3:
            raise InvalidParameterError(
                f"butterfly dimension must be >= 3 (Remark 3), got {n}"
            )
        self.n = n
        self.name = f"B_{n}(Cayley)"
        self.group = ButterflyGroup(n)
        self.gens = butterfly_generator_set(self.group)
        self.cayley = CayleyGraph(self.group, self.gens)

    # Topology interface ----------------------------------------------------

    @property
    def is_vertex_transitive(self) -> bool:
        """``True`` — a Cayley graph by construction."""
        return True

    @property
    def num_nodes(self) -> int:
        return self.n << self.n

    @property
    def num_edges(self) -> int:
        return self.n << (self.n + 1)

    def nodes(self) -> Iterator[tuple[int, int]]:
        return self.group.elements()

    def has_node(self, v: Hashable) -> bool:
        return self.group.contains(v)

    def neighbors(self, v: tuple[int, int]) -> list[tuple[int, int]]:
        self.validate_node(v)
        return self.gens.neighbors(v)

    # Paper vocabulary --------------------------------------------------------

    @staticmethod
    def permutation_index(v: tuple[int, int]) -> int:
        """``PI(v)`` of Definition 1."""
        return v[0]

    @staticmethod
    def complementation_index(v: tuple[int, int]) -> int:
        """``CI(v)`` of Definition 2 (as an integer bit vector over symbols)."""
        return v[1]

    def identity_node(self) -> tuple[int, int]:
        """The identity node ``I`` (uncomplemented ``t_0 t_1 … t_{n-1}``)."""
        return self.group.identity()

    def symbol_sequence(self, v: tuple[int, int]) -> list[tuple[int, bool]]:
        """The label as a list of ``(symbol index, complemented?)`` pairs.

        Position ``i`` of a node with ``PI = x`` carries symbol
        ``t_{(x + i) mod n}``; its complement flag is the corresponding
        ``CI`` bit.
        """
        self.validate_node(v)
        x, c = v
        return [((x + i) % self.n, bool(bit(c, (x + i) % self.n))) for i in range(self.n)]

    def format_node(self, v: tuple[int, int]) -> str:
        """Render like the paper's examples: ``bcA`` means ``b c a̅``.

        Symbols are lowercase letters in lexicographic order; a complemented
        symbol is rendered uppercase (the paper uses an overbar).
        """
        if self.n > len(string.ascii_lowercase):
            x, c = v
            return f"(PI={x},CI={c:0{self.n}b})"
        out = []
        for sym, complemented in self.symbol_sequence(v):
            ch = string.ascii_lowercase[sym]
            out.append(ch.upper() if complemented else ch)
        return "".join(out)

    def node_from_string(self, label: str) -> tuple[int, int]:
        """Parse :meth:`format_node` output back into ``(PI, CI)``."""
        if len(label) != self.n:
            raise InvalidParameterError(
                f"label {label!r} has length {len(label)}, expected {self.n}"
            )
        symbols = [string.ascii_lowercase.index(ch.lower()) for ch in label]
        x = symbols[0]
        # validate that the label is a cyclic shift of the identity order
        for i, sym in enumerate(symbols):
            if sym != (x + i) % self.n:
                raise InvalidParameterError(
                    f"label {label!r} is not a cyclic permutation in lexicographic order"
                )
        ci = 0
        for ch, sym in zip(label, symbols, strict=True):
            if ch.isupper():
                ci |= 1 << sym
        return (x, ci)

    # Generator applications ----------------------------------------------

    def apply_g(self, v: tuple[int, int]) -> tuple[int, int]:
        return self.group.multiply(v, self.group.g())

    def apply_f(self, v: tuple[int, int]) -> tuple[int, int]:
        return self.group.multiply(v, self.group.f())

    def apply_g_inv(self, v: tuple[int, int]) -> tuple[int, int]:
        return self.group.multiply(v, self.group.g_inv())

    def apply_f_inv(self, v: tuple[int, int]) -> tuple[int, int]:
        return self.group.multiply(v, self.group.f_inv())

    # Exact routing services ---------------------------------------------

    @property
    def oracle(self) -> DistanceOracle:
        return self.cayley.oracle

    def distance(self, u: tuple[int, int], v: tuple[int, int]) -> int:
        return self.cayley.distance(u, v)

    def shortest_path(self, u: tuple[int, int], v: tuple[int, int]) -> list[tuple[int, int]]:
        return self.cayley.shortest_path(u, v)

    def diameter(self) -> int:
        return self.cayley.diameter()

    def diameter_formula(self) -> int:
        """``⌊3n/2⌋`` (Remark 1)."""
        return (3 * self.n) // 2


def cayley_to_classic(v: tuple[int, int]) -> tuple[int, int]:
    """Isomorphism ``(PI, CI) → (word, level)`` (Remark 2).

    Under the conventions of DESIGN.md the map is simply
    ``word = CI, level = PI``; the function exists to make call sites
    self-documenting and to pin the direction of the swap.
    """
    x, c = v
    return (c, x)


def classic_to_cayley(v: tuple[int, int]) -> tuple[int, int]:
    """Inverse of :func:`cayley_to_classic`: ``(word, level) → (PI, CI)``."""
    w, level = v
    return (level, w)


register_invariants(
    InvariantSpec(
        family="CayleyButterfly",
        params=("n",),
        build=CayleyButterfly,
        small=((3,), (4,), (5,)),
        large=((16,), (24,)),
        degree="4",
        paper="Remark 1 / [4]",
    )
)
