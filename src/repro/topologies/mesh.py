"""2-D meshes and wrap-around meshes (tori) — guests of Lemmas 1 and 2.

The paper's ``M(n1, n2)`` is the *wrap-around* mesh ``C(n1) × C(n2)``
(a torus); we also provide the open mesh since the Figure 1 embedding row
("Mesh") refers to ordinary 2-D mesh embeddability.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = ["Torus", "Mesh"]


class Torus(Topology):
    """Wrap-around mesh ``M(n1, n2) = C(n1) × C(n2)``; labels ``(i, j)``."""

    def __init__(self, n1: int, n2: int) -> None:
        if n1 < 3 or n2 < 3:
            raise InvalidParameterError(
                f"torus sides must be >= 3 for simple cycles, got ({n1}, {n2})"
            )
        self.n1 = n1
        self.n2 = n2
        self.name = f"M({n1},{n2})"

    @property
    def is_vertex_transitive(self) -> bool:
        """``True`` — the Cayley graph of ``Z_{n1} × Z_{n2}``."""
        return True

    @property
    def num_nodes(self) -> int:
        return self.n1 * self.n2

    @property
    def num_edges(self) -> int:
        return 2 * self.n1 * self.n2

    def nodes(self) -> Iterator[tuple[int, int]]:
        for i in range(self.n1):
            for j in range(self.n2):
                yield (i, j)

    def has_node(self, v: Hashable) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == 2
            and isinstance(v[0], int)
            and isinstance(v[1], int)
            and 0 <= v[0] < self.n1
            and 0 <= v[1] < self.n2
        )

    def neighbors(self, v: tuple[int, int]) -> list[tuple[int, int]]:
        self.validate_node(v)
        i, j = v
        return [
            ((i + 1) % self.n1, j),
            ((i - 1) % self.n1, j),
            (i, (j + 1) % self.n2),
            (i, (j - 1) % self.n2),
        ]


class Mesh(Topology):
    """Open (non-wrapping) ``n1 × n2`` mesh; labels ``(i, j)``."""

    def __init__(self, n1: int, n2: int) -> None:
        if n1 < 1 or n2 < 1:
            raise InvalidParameterError(f"mesh sides must be >= 1, got ({n1}, {n2})")
        self.n1 = n1
        self.n2 = n2
        self.name = f"Mesh({n1},{n2})"

    @property
    def num_nodes(self) -> int:
        return self.n1 * self.n2

    @property
    def num_edges(self) -> int:
        return self.n1 * (self.n2 - 1) + self.n2 * (self.n1 - 1)

    def nodes(self) -> Iterator[tuple[int, int]]:
        for i in range(self.n1):
            for j in range(self.n2):
                yield (i, j)

    def has_node(self, v: Hashable) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == 2
            and isinstance(v[0], int)
            and isinstance(v[1], int)
            and 0 <= v[0] < self.n1
            and 0 <= v[1] < self.n2
        )

    def neighbors(self, v: tuple[int, int]) -> list[tuple[int, int]]:
        self.validate_node(v)
        i, j = v
        out = []
        if i + 1 < self.n1:
            out.append((i + 1, j))
        if i - 1 >= 0:
            out.append((i - 1, j))
        if j + 1 < self.n2:
            out.append((i, j + 1))
        if j - 1 >= 0:
            out.append((i, j - 1))
        return out


register_invariants(
    InvariantSpec(
        family="Torus",
        params=("n1", "n2"),
        build=Torus,
        small=((3, 3), (3, 4), (4, 5)),
        large=((1024, 4096),),
        degree="4",
        paper="Lemma 2",
    )
)

register_invariants(
    InvariantSpec(
        family="Mesh",
        params=("n1", "n2"),
        build=Mesh,
        small=((1, 1), (1, 4), (3, 3), (3, 4), (4, 5)),
        large=((1024, 4096),),
        regular=False,
        degree_max="4",
        paper="Lemma 1",
    )
)
