"""The hyper-deBruijn graph ``HD(m, n)`` of Ganesan & Pradhan [1].

``HD(m, n) = H_m × D_n`` — the baseline the paper compares against in
Figures 1 and 2.  Built on the generic product so that its claimed
shortcomings can be measured rather than asserted:

* it is **not regular** (degrees range between ``m + 2`` and ``m + 4``);
* its fault tolerance (vertex connectivity) is ``m + 2``, below the degree
  of the vast majority of its vertices.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import InvalidParameterError
from repro.topologies.debruijn import DeBruijn
from repro.topologies.hypercube import Hypercube
from repro.topologies.invariants import InvariantSpec, register_invariants
from repro.topologies.product import CartesianProduct

__all__ = ["HyperDeBruijn"]


class HyperDeBruijn(CartesianProduct):
    """``HD(m, n)`` with labels ``(hypercube word, de Bruijn word)``."""

    def __init__(self, m: int, n: int) -> None:
        if m < 0:
            raise InvalidParameterError(f"hypercube order must be >= 0, got {m}")
        if n < 1:
            raise InvalidParameterError(f"de Bruijn order must be >= 1, got {n}")
        self.m = m
        self.n = n
        super().__init__(Hypercube(m), DeBruijn(n), name=f"HD({m},{n})")

    @property
    def hypercube(self) -> Hypercube:
        return self.left

    @property
    def debruijn(self) -> DeBruijn:
        return self.right

    def nodes(self) -> Iterator[tuple[int, int]]:
        return super().nodes()

    def max_degree(self) -> int:
        """``m + 4`` — generic vertices."""
        return self.m + 4

    def min_degree(self) -> int:
        """``m + 2`` — vertices whose de Bruijn part is ``0…0`` or ``1…1``."""
        return self.m + 2

    def diameter_formula(self) -> int:
        """``m + n`` (Figure 1)."""
        return self.m + self.n

    def fault_tolerance_formula(self) -> int:
        """``m + 2`` (Figure 1) — limited by the minimum degree."""
        return self.m + 2

    def format_node(self, v: tuple[int, int]) -> str:
        self.validate_node(v)
        h, d = v
        return f"({self.hypercube.format_node(h)};{self.debruijn.format_node(d)})"


register_invariants(
    InvariantSpec(
        family="HyperDeBruijn",
        params=("m", "n"),
        build=HyperDeBruijn,
        small=((1, 2), (2, 3), (1, 4)),
        large=((8, 10),),
        regular=False,
        degree_min="m + 2",
        degree_max="m + 4",
        paper="Figure 1 / [1]",
    )
)
