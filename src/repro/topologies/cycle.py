"""The cycle ``C(k)`` (paper Section 4) — the simplest guest graph."""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = ["Cycle"]


class Cycle(Topology):
    """The cycle ``C(k)`` on vertices ``0 … k-1``, ``i ~ (i+1) mod k``."""

    def __init__(self, k: int) -> None:
        if k < 3:
            raise InvalidParameterError(f"a simple cycle needs k >= 3, got {k}")
        self.k = k
        self.name = f"C({k})"

    @property
    def is_vertex_transitive(self) -> bool:
        """``True`` — the Cayley graph of ``Z_k`` over ``{±1}``."""
        return True

    @property
    def num_nodes(self) -> int:
        return self.k

    @property
    def num_edges(self) -> int:
        return self.k

    def nodes(self) -> Iterator[int]:
        return iter(range(self.k))

    def has_node(self, v: Hashable) -> bool:
        return isinstance(v, int) and 0 <= v < self.k

    def neighbors(self, v: int) -> list[int]:
        self.validate_node(v)
        return [(v + 1) % self.k, (v - 1) % self.k]

    def distance(self, u: int, v: int) -> int:
        self.validate_node(u)
        self.validate_node(v)
        d = abs(u - v)
        return min(d, self.k - d)

    def diameter(self) -> int:
        return self.k // 2


register_invariants(
    InvariantSpec(
        family="Cycle",
        params=("k",),
        build=Cycle,
        small=((3,), (4,), (5,), (8,), (12,)),
        large=((1_000_000,),),
        degree="2",
        paper="Section 4",
    )
)
