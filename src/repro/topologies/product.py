"""Generic Cartesian product of topologies (paper Section 2.2 preamble).

``(u, x)`` and ``(v, y)`` are adjacent in ``G × H`` iff either ``(u, v)`` is
an edge of ``G`` and ``x = y``, or ``(x, y)`` is an edge of ``H`` and
``u = v``.  Both the hyper-butterfly (``H_m × B_n``) and the hyper-deBruijn
(``H_m × D_n``) baselines are products, and the embedding lemmas
(Lemma 1, Lemma 4) are product-graph facts, so a generic, well-tested
product is a genuine substrate here rather than a convenience.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.topologies.base import Topology
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = ["CartesianProduct"]


class CartesianProduct(Topology):
    """Cartesian product ``G × H`` with pair labels ``(g_node, h_node)``."""

    def __init__(self, left: Topology, right: Topology, name: str | None = None) -> None:
        self.left = left
        self.right = right
        self.name = name or f"{left.name}x{right.name}"

    def factors(self) -> tuple[Topology, Topology]:
        """The product's factor topologies ``(G, H)``, in label order.

        The uniform structural accessor the decomposition engine
        (:mod:`repro.analysis.decompose`) dispatches on: a node of this
        topology is a pair whose coordinate ``i`` is a node of
        ``factors()[i]``, and distances are the sums of factor distances
        (paper Remarks 6 & 8).
        """
        return (self.left, self.right)

    @property
    def is_vertex_transitive(self) -> bool:
        """A Cartesian product is vertex transitive iff every factor is."""
        return self.left.is_vertex_transitive and self.right.is_vertex_transitive

    @property
    def num_nodes(self) -> int:
        return self.left.num_nodes * self.right.num_nodes

    @property
    def num_edges(self) -> int:
        return (
            self.left.num_edges * self.right.num_nodes
            + self.left.num_nodes * self.right.num_edges
        )

    def nodes(self) -> Iterator[tuple[Hashable, Hashable]]:
        for u in self.left.nodes():
            for x in self.right.nodes():
                yield (u, x)

    def has_node(self, v: Hashable) -> bool:
        return (
            isinstance(v, tuple)
            and len(v) == 2
            and self.left.has_node(v[0])
            and self.right.has_node(v[1])
        )

    def neighbors(self, v: tuple[Hashable, Hashable]) -> list[tuple[Hashable, Hashable]]:
        self.validate_node(v)
        u, x = v
        out = [(w, x) for w in self.left.neighbors(u)]
        out.extend((u, y) for y in self.right.neighbors(x))
        return out

    # Copy accessors: the paper's Remark 5 decompositions --------------------

    def left_copy(self, x: Hashable) -> Iterator[tuple[Hashable, Hashable]]:
        """The ``G``-copy ``(G, x)``: all nodes sharing right coordinate ``x``."""
        self.right.validate_node(x)
        for u in self.left.nodes():
            yield (u, x)

    def right_copy(self, u: Hashable) -> Iterator[tuple[Hashable, Hashable]]:
        """The ``H``-copy ``(u, H)``: all nodes sharing left coordinate ``u``."""
        self.left.validate_node(u)
        for x in self.right.nodes():
            yield (u, x)


def _hypercube_times_cycle(m: int, k: int) -> CartesianProduct:
    """Representative product ``H_m × C(k)`` used to verify the generic
    product machinery itself (the concrete paper products — HB, HD —
    register their own specs in their own modules)."""
    from repro.topologies.cycle import Cycle
    from repro.topologies.hypercube import Hypercube

    return CartesianProduct(Hypercube(m), Cycle(k))


register_invariants(
    InvariantSpec(
        family="CartesianProduct",
        params=("m", "k"),
        build=_hypercube_times_cycle,
        small=((1, 3), (2, 4), (2, 5)),
        large=((20, 1000),),
        degree="m + 2",
        paper="Section 2.2 preamble",
    )
)
