"""Interconnection-network topologies used or compared by the paper.

Host graphs:

* :class:`Hypercube` — ``H_m`` (Section 2.1).
* :class:`WrappedButterfly` — classic ``⟨word, level⟩`` form of ``B_n``.
* :class:`CayleyButterfly` — the Cayley form of ``B_n`` from [4] used by the
  paper, with the explicit isomorphism between the two (Remark 2).
* :class:`DeBruijn` and :class:`HyperDeBruijn` — the baseline family [1].
* :class:`CartesianProduct` — generic product ``G × H`` (Definition 3 setup).

Guest graphs for Section 4 embeddings:

* :class:`Cycle`, :class:`Torus` (wrap-around mesh ``M(n1, n2)``),
  :class:`CompleteBinaryTree` (``T(k)``), :class:`MeshOfTrees`
  (``MT(2^p, 2^q)``).
"""

from repro.topologies.base import Topology
from repro.topologies.invariants import (
    InvariantSpec,
    all_invariant_specs,
    invariant_spec,
    register_invariants,
)
from repro.topologies.hypercube import Hypercube
from repro.topologies.butterfly import WrappedButterfly
from repro.topologies.butterfly_cayley import (
    CayleyButterfly,
    cayley_to_classic,
    classic_to_cayley,
)
from repro.topologies.debruijn import DeBruijn
from repro.topologies.hyperdebruijn import HyperDeBruijn
from repro.topologies.product import CartesianProduct
from repro.topologies.cycle import Cycle
from repro.topologies.mesh import Torus, Mesh
from repro.topologies.tree import CompleteBinaryTree
from repro.topologies.mesh_of_trees import MeshOfTrees
from repro.topologies.quotients import (
    butterfly_to_debruijn,
    debruijn_fiber,
    hb_to_hyperdebruijn,
)

__all__ = [
    "Topology",
    "InvariantSpec",
    "register_invariants",
    "invariant_spec",
    "all_invariant_specs",
    "Hypercube",
    "WrappedButterfly",
    "CayleyButterfly",
    "cayley_to_classic",
    "classic_to_cayley",
    "DeBruijn",
    "HyperDeBruijn",
    "CartesianProduct",
    "Cycle",
    "Torus",
    "Mesh",
    "CompleteBinaryTree",
    "MeshOfTrees",
    "butterfly_to_debruijn",
    "debruijn_fiber",
    "hb_to_hyperdebruijn",
]
