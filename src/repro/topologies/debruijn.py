"""The binary de Bruijn graph ``D_n`` — substrate of the baseline family [1].

The directed de Bruijn graph on ``2^n`` vertices has an arc
``w → (2w + b) mod 2^n`` for ``b ∈ {0, 1}`` (shift in a new low/high bit —
we use the standard "shift left" form).  The *undirected simple* version
used by interconnection networks keeps one edge per adjacent pair and drops
self-loops; this makes ``D_n`` **irregular**: generic vertices have degree
4, but ``00…0`` and ``11…1`` lose their self-loop (degree 2) and
alternating words merge a shift-in/shift-out pair (degree 3).  That
irregularity — inherited by the hyper-deBruijn graphs — is precisely the
shortcoming the hyper-butterfly paper sets out to fix.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro._bits import format_word, mask
from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.invariants import InvariantSpec, register_invariants

__all__ = ["DeBruijn"]


class DeBruijn(Topology):
    """Undirected simple binary de Bruijn graph on ``2^n`` vertices."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise InvalidParameterError(f"de Bruijn dimension must be >= 1, got {n}")
        self.n = n
        self.name = f"D_{n}"

    @property
    def num_nodes(self) -> int:
        return 1 << self.n

    def nodes(self) -> Iterator[int]:
        return iter(range(1 << self.n))

    def has_node(self, v: Hashable) -> bool:
        return isinstance(v, int) and 0 <= v < (1 << self.n)

    def neighbors(self, v: int) -> list[int]:
        self.validate_node(v)
        m = mask(self.n)
        out = []
        seen = {v}  # excludes self-loops
        # shift-left successors: drop the top bit, shift in b at the bottom
        base_left = (v << 1) & m
        for b in (0, 1):
            w = base_left | b
            if w not in seen:
                seen.add(w)
                out.append(w)
        # shift-right successors: drop the bottom bit, shift in b at the top
        base_right = v >> 1
        for b in (0, 1):
            w = base_right | (b << (self.n - 1))
            if w not in seen:
                seen.add(w)
                out.append(w)
        return out

    def format_node(self, v: int) -> str:
        self.validate_node(v)
        return format_word(v, self.n)

    def diameter_formula(self) -> int:
        """``n`` — shifting in the target word bit by bit."""
        return self.n


register_invariants(
    InvariantSpec(
        family="DeBruijn",
        params=("n",),
        build=DeBruijn,
        small=((2,), (3,), (4,), (5,), (6,)),
        large=((16,), (24,)),
        regular=False,
        degree_min="2",
        degree_max="4",
        paper="Section 2.2 / [1]",
    )
)
