"""Quotient maps between the compared families.

The wrapped butterfly is a classical *cyclic cover* of the de Bruijn
graph: rotating a node's word by its level collapses the ``n`` levels onto
one de Bruijn vertex while sending butterfly edges onto de Bruijn shift
edges.  Concretely, with the conventions of this library,

``φ(w, ℓ) = rotate_left(w, -ℓ)``   (classic coordinates)

is a surjective graph homomorphism ``B_n → D_n`` whose fibers are the
``n`` levels (self-loops of ``D_n`` absorb the straight edges at the two
constant words).  Applying ``φ`` to the butterfly part of ``HB(m, n)``
yields a homomorphism onto the hyper-deBruijn graph ``HD(m, n)`` — the
structural reason the two families in Figures 1–2 share so many
parameters while differing in regularity: ``HB`` un-collapses ``HD``'s
degree-deficient vertices across ``n`` levels.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro._bits import rotate_left
from repro.errors import InvalidParameterError
from repro.topologies.butterfly_cayley import CayleyButterfly, cayley_to_classic
from repro.topologies.debruijn import DeBruijn

if TYPE_CHECKING:  # avoid the topologies <-> core import cycle at runtime
    from repro.core.hyperbutterfly import HBNode, HyperButterfly

__all__ = [
    "butterfly_to_debruijn",
    "debruijn_fiber",
    "hb_to_hyperdebruijn",
    "verify_quotient_homomorphism",
]


def butterfly_to_debruijn(n: int, node: tuple[int, int]) -> int:
    """The covering map ``B_n → D_n`` in Cayley ``(PI, CI)`` coordinates.

    The image is the word read off from the node's own rotated frame:
    classic ``(word, level) ↦ rotate_left(word, -level)``.
    """
    butterfly = CayleyButterfly(n)
    butterfly.validate_node(node)
    word, level = cayley_to_classic(node)
    return rotate_left(word, -level, n)


def debruijn_fiber(n: int, word: int) -> list[tuple[int, int]]:
    """All ``n`` butterfly nodes mapping to a de Bruijn ``word``.

    The fiber of ``word`` is ``{(rotate_left(word, ℓ), ℓ) : 0 <= ℓ < n}``
    in classic coordinates, returned here in Cayley ``(PI, CI)`` form.
    """
    if not 0 <= word < (1 << n):
        raise InvalidParameterError(f"{word} is not an {n}-bit word")
    fiber = []
    for level in range(n):
        classic_word = rotate_left(word, level, n)
        fiber.append((level, classic_word))  # (PI, CI) = (level, word)
    return fiber


def hb_to_hyperdebruijn(hb: HyperButterfly, node: HBNode) -> tuple[int, int]:
    """The induced homomorphism ``HB(m, n) → HD(m, n)``.

    Identity on the hypercube part, the covering map on the butterfly part.
    """
    hb.validate_node(node)
    h, b = node
    return (h, butterfly_to_debruijn(hb.n, b))


def verify_quotient_homomorphism(n: int) -> bool:
    """Exhaustively check that every ``B_n`` edge maps to a ``D_n`` edge or
    a collapsed self-loop (the homomorphism property)."""
    butterfly = CayleyButterfly(n)
    debruijn = DeBruijn(n)
    for u in butterfly.nodes():
        image_u = butterfly_to_debruijn(n, u)
        for v in butterfly.neighbors(u):
            image_v = butterfly_to_debruijn(n, v)
            if image_u == image_v:
                # collapsed onto a de Bruijn self-loop (constant words only)
                if image_u not in (0, (1 << n) - 1):
                    return False
                continue
            if image_v not in debruijn.neighbors(image_u):
                return False
    return True
