"""Per-family invariant specifications — what the paper says must hold.

Every topology family registers an :class:`InvariantSpec` describing the
structural facts its implementation is supposed to satisfy: the paper's
degree formula, regularity, the parameter grids at which the facts are
checked exhaustively, and the larger grids at which they are certified by
the abstract bit-vector domain of
:mod:`repro.devtools.reprolint.symexec`.  The specs are *data*: the
verification engines that consume them live above this layer
(``hyperbutterfly prove`` and the HB8xx reprolint rules), so declaring a
spec never pulls in numpy, fastgraph, or devtools.

Registrations are deliberately written as inline literal
``register_invariants(InvariantSpec(...))`` calls in each family's module:
the HB8xx rules read the constant fields straight from the AST, so the
same declaration drives both the runtime prover and the static verifier.

Degree formulas are strings over the spec's parameters (``"m + 4"``) so
they stay legible to both consumers; :func:`eval_param_expr` evaluates
them over a restricted arithmetic-only expression language.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import InvalidParameterError

if TYPE_CHECKING:
    from repro.topologies.base import Topology

__all__ = [
    "InvariantSpec",
    "register_invariants",
    "invariant_spec",
    "all_invariant_specs",
    "eval_param_expr",
]


@dataclass(frozen=True)
class InvariantSpec:
    """Declarative invariants of one topology family.

    ``family`` is the topology class name — the same key the fastgraph
    codec registry uses, so the two registries can be joined.  ``small``
    lists parameter tuples (in ``params`` order) for exhaustive
    enumeration; ``large`` lists tuples reserved for the abstract
    bit-vector certificates where enumeration is out of reach.
    """

    #: topology class name (codec-registry key)
    family: str
    #: constructor parameter names, in positional order
    params: tuple[str, ...]
    #: ``build(*values) -> Topology`` for a ``params``-ordered value tuple
    build: Callable[..., "Topology"] = field(compare=False)
    #: parameter tuples verified by exhaustive enumeration
    small: tuple[tuple[int, ...], ...] = ()
    #: parameter tuples certified by the abstract bit-vector domain
    large: tuple[tuple[int, ...], ...] = ()
    #: exact degree of every vertex (regular families), expr over params
    degree: str | None = None
    #: degree bounds for irregular families, exprs over params
    degree_min: str | None = None
    degree_max: str | None = None
    #: whether every vertex has the same degree
    regular: bool = True
    #: where the paper states the invariant (e.g. ``"Theorem 2(1)"``)
    paper: str = ""

    def build_instance(self, values: tuple[int, ...]) -> "Topology":
        """Instantiate the family at one parameter tuple."""
        if len(values) != len(self.params):
            raise InvalidParameterError(
                f"{self.family} expects {len(self.params)} parameter(s) "
                f"{self.params}, got {values!r}"
            )
        return self.build(*values)

    def degree_at(self, values: tuple[int, ...]) -> int | None:
        """The paper's exact degree at one parameter tuple, or ``None``."""
        if self.degree is None:
            return None
        return eval_param_expr(self.degree, dict(zip(self.params, values, strict=True)))

    def degree_bounds_at(
        self, values: tuple[int, ...]
    ) -> tuple[int | None, int | None]:
        """``(min, max)`` degree bounds at one parameter tuple."""
        env = dict(zip(self.params, values, strict=True))
        exact = self.degree_at(values)
        if exact is not None:
            return (exact, exact)
        lo = eval_param_expr(self.degree_min, env) if self.degree_min else None
        hi = eval_param_expr(self.degree_max, env) if self.degree_max else None
        return (lo, hi)


_SPECS: dict[str, InvariantSpec] = {}


def register_invariants(spec: InvariantSpec) -> InvariantSpec:
    """Register (or replace) the invariant spec for ``spec.family``.

    Re-registration replaces silently so interactive reloads and test
    doubles behave; the verification engines read whatever is current.
    """
    _SPECS[spec.family] = spec
    return spec


def invariant_spec(family: str) -> InvariantSpec | None:
    """The registered spec for a family name, or ``None``."""
    return _SPECS.get(family)


def all_invariant_specs() -> dict[str, InvariantSpec]:
    """Every registered spec, keyed and sorted by family name."""
    return {k: _SPECS[k] for k in sorted(_SPECS)}


# -- restricted expression evaluation ---------------------------------------

_ALLOWED_CALLS = {"min", "max", "abs"}


def eval_param_expr(expr: str, env: dict[str, int]) -> int:
    """Evaluate an arithmetic expression over integer parameters.

    Supports integer literals, the parameter names in ``env``, the binary
    operators ``+ - * // %`` and ``<< >>``, unary minus, parentheses, and
    ``min``/``max``/``abs`` calls — enough for every degree/diameter
    formula in the paper, and nothing that could execute code.
    """
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise InvalidParameterError(f"bad invariant expression {expr!r}: {exc.msg}") from exc
    return _eval_expr_node(tree.body, env, expr)


def _eval_expr_node(node: ast.expr, env: dict[str, int], expr: str) -> int:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
        raise InvalidParameterError(
            f"invariant expression {expr!r} uses unknown parameter {node.id!r}"
        )
    if isinstance(node, ast.BinOp):
        left = _eval_expr_node(node.left, env, expr)
        right = _eval_expr_node(node.right, env, expr)
        op = node.op
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Mod):
            return left % right
        if isinstance(op, ast.LShift):
            return left << right
        if isinstance(op, ast.RShift):
            return left >> right
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_eval_expr_node(node.operand, env, expr)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _ALLOWED_CALLS
        and not node.keywords
    ):
        values = [_eval_expr_node(arg, env, expr) for arg in node.args]
        if node.func.id == "min":
            return min(values)
        if node.func.id == "max":
            return max(values)
        return abs(values[0])
    raise InvalidParameterError(
        f"invariant expression {expr!r} uses an unsupported construct "
        f"({type(node).__name__})"
    )
