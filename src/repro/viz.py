"""Graphviz DOT export for small instances and highlighted structures.

Interconnection-network papers live on figures; this module renders any
library topology as DOT text (no graphviz dependency required — the output
is plain text a user pipes into ``dot``), with optional highlighting of

* a path (e.g. an optimal route),
* a family of disjoint paths (each gets its own color),
* an embedding image (guest nodes emphasised inside the host).

Edge classes of ``HB(m, n)`` (hypercube vs butterfly, Remark 4) are styled
differently so the product structure is visible.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.hyperbutterfly import HyperButterfly
from repro.embeddings.base import Embedding
from repro.errors import InvalidParameterError
from repro.topologies.base import Topology
from repro.topologies.butterfly import WrappedButterfly

__all__ = [
    "to_dot",
    "path_family_to_dot",
    "embedding_to_dot",
    "node_stage",
    "stage_positions",
]

_PALETTE = [
    "#d62728", "#1f77b4", "#2ca02c", "#9467bd",
    "#ff7f0e", "#8c564b", "#e377c2", "#17becf",
]

_MAX_NODES = 4096


def _label(topology: Topology, v: Hashable) -> str:
    formatter = getattr(topology, "format_node", None)
    return formatter(v) if formatter else str(v)


def _node_id(v: Hashable) -> str:
    return '"' + repr(v).replace('"', "'") + '"'


def _check_size(topology: Topology) -> None:
    if topology.num_nodes > _MAX_NODES:
        raise InvalidParameterError(
            f"{topology.name} has {topology.num_nodes} nodes; DOT export is "
            f"capped at {_MAX_NODES} (render a partition block instead)"
        )


def _edge_style(topology: Topology, u: Hashable, v: Hashable) -> str:
    if isinstance(topology, HyperButterfly):
        kind = topology.edge_kind(u, v)
        if kind == "hypercube":
            return ' [style=dashed, color="#555555"]'
        return ' [color="#999999"]'
    return ""


def node_stage(topology: Topology, v: Hashable) -> int | None:
    """The butterfly stage (pipeline column) of ``v``, if the family has one.

    ``WrappedButterfly`` nodes are ``(word, stage)``; ``HB(m, n)`` nodes
    carry their butterfly component second, so the stage is its level.
    Families without stage structure return ``None``.
    """
    if isinstance(topology, HyperButterfly):
        topology.validate_node(v)
        return int(v[1][1])  # type: ignore[index]
    if isinstance(topology, WrappedButterfly):
        topology.validate_node(v)
        return int(v[1])  # type: ignore[index]
    return None


def stage_positions(
    topology: Topology, *, xgap: float = 1.6, ygap: float = 0.9
) -> dict[Hashable, tuple[float, float]] | None:
    """Deterministic layered ``{node: (x, y)}`` layout, stages as columns.

    Rows follow ``topology.nodes()`` encounter order within each stage, so
    the figure is a pure function of the topology.  Returns ``None`` for
    stageless families (let ``dot`` pick its own layout there).
    """
    if topology.num_nodes and node_stage(topology, next(iter(topology.nodes()))) is None:
        return None
    rows: dict[int, int] = {}
    positions: dict[Hashable, tuple[float, float]] = {}
    for v in topology.nodes():
        stage = node_stage(topology, v)
        assert stage is not None
        row = rows.get(stage, 0)
        rows[stage] = row + 1
        positions[v] = (stage * xgap, -row * ygap)
    return positions


def to_dot(
    topology: Topology,
    *,
    highlight_nodes: Sequence[Hashable] = (),
    name: str | None = None,
    stage_layout: bool = False,
) -> str:
    """Render the whole topology as an undirected DOT graph.

    ``stage_layout=True`` pins every node to its :func:`stage_positions`
    coordinate (``pos="x,y!"``, honoured by ``neato``/``fdp``) so
    butterfly stages render as columns; it raises for stageless families.
    """
    _check_size(topology)
    positions: dict[Hashable, tuple[float, float]] | None = None
    if stage_layout:
        positions = stage_positions(topology)
        if positions is None:
            raise InvalidParameterError(
                f"{topology.name} has no stage structure to lay out"
            )
    highlighted = set(highlight_nodes)
    for v in highlighted:
        topology.validate_node(v)
    lines = [f'graph "{name or topology.name}" {{']
    lines.append("  node [shape=ellipse, fontsize=10];")
    for v in topology.nodes():
        attrs = f'label="{_label(topology, v)}"'
        if positions is not None:
            x, y = positions[v]
            attrs += f', pos="{x:g},{y:g}!"'
        if v in highlighted:
            attrs += ', style=filled, fillcolor="#ffd54d"'
        lines.append(f"  {_node_id(v)} [{attrs}];")
    for u, v in topology.edges():
        lines.append(f"  {_node_id(u)} -- {_node_id(v)}{_edge_style(topology, u, v)};")
    lines.append("}")
    return "\n".join(lines)


def path_family_to_dot(
    topology: Topology,
    paths: Sequence[Sequence[Hashable]],
    *,
    name: str | None = None,
) -> str:
    """Render the topology with each path drawn in its own color.

    Built for Theorem 5 families: endpoints are filled, each family member
    gets a palette color and a heavier pen.
    """
    _check_size(topology)
    if not paths:
        raise InvalidParameterError("need at least one path to highlight")
    colored: dict[tuple, str] = {}
    for idx, path in enumerate(paths):
        color = _PALETTE[idx % len(_PALETTE)]
        for a, b in zip(path, path[1:], strict=False):
            key = (a, b) if repr(a) <= repr(b) else (b, a)
            colored[key] = color
    endpoints = {paths[0][0], paths[0][-1]}
    lines = [f'graph "{name or topology.name}" {{']
    lines.append("  node [shape=ellipse, fontsize=10];")
    for v in topology.nodes():
        attrs = f'label="{_label(topology, v)}"'
        if v in endpoints:
            attrs += ', style=filled, fillcolor="#90caf9"'
        lines.append(f"  {_node_id(v)} [{attrs}];")
    for u, v in topology.edges():
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        if key in colored:
            lines.append(
                f'  {_node_id(u)} -- {_node_id(v)} '
                f'[color="{colored[key]}", penwidth=2.5];'
            )
        else:
            lines.append(
                f'  {_node_id(u)} -- {_node_id(v)} [color="#dddddd"];'
            )
    lines.append("}")
    return "\n".join(lines)


def embedding_to_dot(embedding: Embedding, *, name: str | None = None) -> str:
    """Render a host graph with an embedding's image emphasised.

    Image nodes are filled; image edges (images of guest edges) are bold.
    """
    host = embedding.host
    _check_size(host)
    image_nodes = set(embedding.mapping.values())
    image_edges = set()
    for a, b in embedding.guest.edges():
        ha, hb_ = embedding.mapping[a], embedding.mapping[b]
        key = (ha, hb_) if repr(ha) <= repr(hb_) else (hb_, ha)
        image_edges.add(key)
    lines = [f'graph "{name or f"{embedding.guest.name} in {host.name}"}" {{']
    lines.append("  node [shape=ellipse, fontsize=10];")
    for v in host.nodes():
        attrs = f'label="{_label(host, v)}"'
        if v in image_nodes:
            attrs += ', style=filled, fillcolor="#a5d6a7"'
        lines.append(f"  {_node_id(v)} [{attrs}];")
    for u, v in host.edges():
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        if key in image_edges:
            lines.append(
                f'  {_node_id(u)} -- {_node_id(v)} [color="#2e7d32", penwidth=2.5];'
            )
        else:
            lines.append(f'  {_node_id(u)} -- {_node_id(v)} [color="#dddddd"];')
    lines.append("}")
    return "\n".join(lines)
