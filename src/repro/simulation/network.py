"""Store-and-forward packet simulator over any topology.

Model: each node has one output queue per link; a link transfers one
packet per ``link_time`` (unit by default) and a node spends ``hop_time``
forwarding.  Routing is delegated to a
:class:`repro.simulation.protocols.RoutingProtocol`, which may be
oblivious (paths fixed at injection) or hop-by-hop.

Faults come in two flavours:

* **static** — the classic ``faults=``/``link_faults=`` sets, down for the
  whole run;
* **dynamic** — a :class:`repro.faults.dynamic.FaultSchedule` whose
  fail/repair events toggle node and link health *mid-run*.  Components
  interested in health changes (adaptive protocols, the resilient router's
  route cache) register through :meth:`NetworkSimulator.add_fault_listener`.

Without a :class:`TransportConfig` packets are fire-and-forget: a hop into
a faulty node or across a faulty link silently loses the packet.  With
one, every hop is acknowledged: data that arrives triggers an ack back to
the sender; a sender that misses the ack retransmits with exponential
backoff plus seeded jitter (up to ``max_retries``), and receivers suppress
duplicate deliveries caused by lost acks.  Delivered/dropped/retried/
duplicate counts are tracked per packet, so campaign runs can compare the
fire-and-forget and reliable transports on identical fault schedules.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Iterable

from repro.errors import SimulationError
from repro.fastgraph.backend import get_fastgraph
from repro.faults.dynamic import FaultEvent, FaultSchedule, FaultState
from repro.faults.model import canonical_link
from repro.simulation.events import EventQueue
from repro.simulation.stats import LatencyStats
from repro.topologies.base import Topology

if TYPE_CHECKING:  # protocols imports the simulator types lazily; mirror that
    from repro.simulation.protocols import RoutingProtocol

__all__ = ["Packet", "TransportConfig", "NetworkSimulator"]


@dataclass
class Packet:
    """One message travelling through the network."""

    ident: int
    source: Hashable
    target: Hashable
    injected_at: float
    delivered_at: float | None = None
    hops: int = 0
    dropped: bool = False
    drop_reason: str | None = None
    ttl: int | None = None
    retransmissions: int = 0
    duplicates: int = 0

    @property
    def latency(self) -> float | None:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at


@dataclass(frozen=True)
class TransportConfig:
    """Reliable per-hop transport: acks, retransmission, dedup.

    ``ack_timeout`` is measured from the moment data *would* arrive; it
    must exceed ``link_time`` (the ack's return trip) or every hop
    retransmits spuriously.  Retry ``k`` waits
    ``backoff_base * backoff_factor**k + U(0, jitter)`` before resending —
    exponential backoff with seeded jitter so synchronized senders desync.
    """

    ack_timeout: float = 2.0
    max_retries: int = 8
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    jitter: float = 0.5

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        delay = self.backoff_base * self.backoff_factor**attempt
        if self.jitter > 0:
            delay += rng.uniform(0.0, self.jitter)
        return delay


class NetworkSimulator:
    """Discrete-event store-and-forward simulation on a topology."""

    def __init__(
        self,
        topology: Topology,
        protocol: RoutingProtocol,
        *,
        link_time: float = 1.0,
        hop_time: float = 0.0,
        faults: Iterable[Hashable] = (),
        link_faults: Iterable[tuple[Hashable, Hashable]] = (),
        schedule: FaultSchedule | None = None,
        transport: TransportConfig | None = None,
        ttl: int | None = None,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.protocol = protocol
        self.link_time = link_time
        self.hop_time = hop_time
        self.transport = transport
        self.default_ttl = ttl
        self.queue = EventQueue()
        self.packets: list[Packet] = []
        self._ids = itertools.count()
        self._hop_ids = itertools.count()
        self._rng = random.Random(seed)
        # live health state: static faults are applied as depth-1 failures
        self._state = FaultState()
        for v in dict.fromkeys(faults):  # ordered de-duplication
            topology.validate_node(v)
            self._state.apply(FaultEvent(0.0, "fail", "node", v))
        for u, v in link_faults:
            if not topology.has_edge(u, v):
                raise SimulationError(f"({u!r}, {v!r}) is not an edge")
            self._state.apply(
                FaultEvent(0.0, "fail", "link", canonical_link(u, v))
            )
        self._fault_listeners: list[Callable[[FaultEvent], None]] = []
        self.schedule = schedule
        if schedule is not None:
            if schedule.topology.name != topology.name:
                raise SimulationError(
                    f"fault schedule belongs to {schedule.topology.name}, "
                    f"not {topology.name}"
                )
            for event in schedule:
                self.queue.schedule(
                    event.time,
                    lambda e=event: self._apply_fault_event(e),
                    label=f"fault:{event.action}",
                )
        # reliable-transport state
        self._acked: set[tuple[int, int]] = set()  # (packet id, hop id)
        self._seen: set[tuple[Hashable, int, int]] = set()  # receiver dedup
        # per-directed-link busy-until time: contention modelling
        self._link_free_at: dict[tuple[Hashable, Hashable], float] = {}
        # CSR-backed edge validation for the per-hop protocol check
        self._fast = get_fastgraph(topology)
        bind = getattr(protocol, "bind", None)
        if callable(bind):
            bind(self)

    # -- fault state ---------------------------------------------------------

    @property
    def faults(self) -> frozenset:
        """Currently faulty nodes (static plus live schedule state)."""
        return self._state.faulty_nodes

    @property
    def faulty_links(self) -> frozenset:
        """Currently faulty links, in canonical orientation."""
        return self._state.faulty_links

    def node_ok(self, v: Hashable) -> bool:
        return not self._state.node_faulty(v)

    def link_ok(self, u: Hashable, v: Hashable) -> bool:
        return not self._state.link_faulty(u, v)

    def add_fault_listener(self, fn: Callable[[FaultEvent], None]) -> None:
        """Call ``fn(event)`` whenever a component's health actually flips."""
        self._fault_listeners.append(fn)

    def _apply_fault_event(self, event: FaultEvent) -> None:
        if self._state.apply(event):
            for fn in self._fault_listeners:
                fn(event)

    def _edge_ok(self, u: Hashable, v: Hashable) -> bool:
        if self._fast is not None:
            return self._fast.has_edge(u, v)
        return self.topology.has_edge(u, v)

    # -- injection ---------------------------------------------------------

    def inject(
        self,
        source: Hashable,
        target: Hashable,
        *,
        at: float = 0.0,
        ttl: int | None = None,
    ) -> Packet:
        """Schedule a packet injection at absolute time ``at``."""
        self.topology.validate_node(source)
        self.topology.validate_node(target)
        packet = Packet(
            ident=next(self._ids),
            source=source,
            target=target,
            injected_at=at,
            ttl=ttl if ttl is not None else self.default_ttl,
        )
        self.packets.append(packet)
        if at < self.queue.now:
            raise SimulationError("cannot inject in the past")
        self.queue.schedule(
            at - self.queue.now,
            lambda: self._arrive(packet, source),
            label=f"inject#{packet.ident}",
        )
        return packet

    def inject_all(self, pairs: Iterable[tuple[Hashable, Hashable]]) -> list[Packet]:
        """Inject one packet per ``(source, target)`` pair at time 0."""
        return [self.inject(s, t) for s, t in pairs]

    # -- core event handlers -------------------------------------------------

    def _drop(self, packet: Packet, reason: str) -> None:
        packet.dropped = True
        packet.drop_reason = reason

    def _arrive(self, packet: Packet, node: Hashable) -> None:
        """Node logic once a packet is *at* ``node``: deliver or forward."""
        if packet.dropped or packet.delivered_at is not None:
            return
        if self._state.node_faulty(node):
            self._drop(packet, "node_fault")
            return
        if node == packet.target:
            packet.delivered_at = self.queue.now
            return
        if packet.ttl is not None and packet.hops >= packet.ttl:
            self._drop(packet, "ttl_expired")
            return
        next_hop = self.protocol.next_hop(packet, node)
        if next_hop is None:
            self._drop(packet, "no_route")
            return
        if not self._edge_ok(node, next_hop):
            raise SimulationError(
                f"protocol proposed non-edge {node!r} -> {next_hop!r}"
            )
        if self.transport is None:
            self._send(packet, node, next_hop)
        else:
            self._send_reliable(packet, node, next_hop, next(self._hop_ids), 0)

    # -- fire-and-forget hop --------------------------------------------------

    def _send(self, packet: Packet, node: Hashable, next_hop: Hashable) -> None:
        link = (node, next_hop)
        now = self.queue.now
        start = max(now + self.hop_time, self._link_free_at.get(link, 0.0))
        finish = start + self.link_time
        self._link_free_at[link] = finish
        packet.hops += 1
        self.queue.schedule(
            finish - now,
            lambda: self._finish_hop(packet, node, next_hop),
            label=f"hop#{packet.ident}",
        )

    def _finish_hop(self, packet: Packet, node: Hashable, next_hop: Hashable) -> None:
        if packet.dropped or packet.delivered_at is not None:
            return
        if self._state.link_faulty(node, next_hop):
            self._drop(packet, "link_fault")
            return
        self._arrive(packet, next_hop)

    # -- reliable hop ----------------------------------------------------------

    def _send_reliable(
        self,
        packet: Packet,
        node: Hashable,
        next_hop: Hashable,
        hop_id: int,
        attempt: int,
    ) -> None:
        if packet.dropped or packet.delivered_at is not None:
            return
        cfg = self.transport
        link = (node, next_hop)
        now = self.queue.now
        start = max(now + self.hop_time, self._link_free_at.get(link, 0.0))
        finish = start + self.link_time
        self._link_free_at[link] = finish
        self.queue.schedule(
            finish - now,
            lambda: self._data_arrival(packet, node, next_hop, hop_id),
            label=f"data#{packet.ident}",
        )
        self.queue.schedule(
            finish - now + cfg.ack_timeout,
            lambda: self._ack_timeout(packet, node, next_hop, hop_id, attempt),
            label=f"timeout#{packet.ident}",
        )

    def _data_arrival(
        self, packet: Packet, node: Hashable, next_hop: Hashable, hop_id: int
    ) -> None:
        if packet.delivered_at is not None or packet.dropped:
            return
        # data is lost if the link or the receiver is down right now;
        # the sender's ack timeout will notice and retransmit
        if self._state.link_faulty(node, next_hop):
            return
        if self._state.node_faulty(next_hop):
            return
        key = (next_hop, packet.ident, hop_id)
        duplicate = key in self._seen
        # ack returns over the reverse link (acks are tiny control frames:
        # no contention modelled); lost if the reverse trip is down then
        self.queue.schedule(
            self.link_time,
            lambda: self._ack_arrival(packet, node, next_hop, hop_id),
            label=f"ack#{packet.ident}",
        )
        if duplicate:
            packet.duplicates += 1
            return
        self._seen.add(key)
        packet.hops += 1
        self._arrive(packet, next_hop)

    def _ack_arrival(
        self, packet: Packet, node: Hashable, next_hop: Hashable, hop_id: int
    ) -> None:
        if self._state.link_faulty(next_hop, node):
            return
        if self._state.node_faulty(node):
            return
        self._acked.add((packet.ident, hop_id))

    def _ack_timeout(
        self,
        packet: Packet,
        node: Hashable,
        next_hop: Hashable,
        hop_id: int,
        attempt: int,
    ) -> None:
        if (packet.ident, hop_id) in self._acked:
            return
        if packet.dropped or packet.delivered_at is not None:
            return
        cfg = self.transport
        if attempt >= cfg.max_retries:
            self._drop(packet, "retries_exhausted")
            return
        packet.retransmissions += 1
        delay = cfg.backoff_delay(attempt, self._rng)
        self.queue.schedule(
            delay,
            lambda: self._send_reliable(packet, node, next_hop, hop_id, attempt + 1),
            label=f"retry#{packet.ident}",
        )

    # -- running and reporting ------------------------------------------------

    def run(self, *, until: float | None = None, max_events: int | None = None) -> None:
        self.queue.run(until=until, max_events=max_events)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_packets(self.packets)
