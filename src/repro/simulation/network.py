"""Store-and-forward packet simulator over any topology.

Model: each node has one output queue per link; a link transfers one
packet per ``link_time`` (unit by default) and a node spends ``hop_time``
forwarding.  Routing is delegated to a
:class:`repro.simulation.protocols.RoutingProtocol`, which may be
oblivious (paths fixed at injection) or hop-by-hop.  Faulty nodes drop
everything — delivery statistics under faults measure Remark 10's scheme
dynamically rather than just existentially.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.errors import SimulationError
from repro.fastgraph.backend import get_fastgraph
from repro.simulation.events import EventQueue
from repro.simulation.stats import LatencyStats
from repro.topologies.base import Topology

__all__ = ["Packet", "NetworkSimulator"]


@dataclass
class Packet:
    """One message travelling through the network."""

    ident: int
    source: Hashable
    target: Hashable
    injected_at: float
    delivered_at: float | None = None
    hops: int = 0
    dropped: bool = False

    @property
    def latency(self) -> float | None:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at


class NetworkSimulator:
    """Discrete-event store-and-forward simulation on a topology."""

    def __init__(
        self,
        topology: Topology,
        protocol,
        *,
        link_time: float = 1.0,
        hop_time: float = 0.0,
        faults: Iterable[Hashable] = (),
    ) -> None:
        self.topology = topology
        self.protocol = protocol
        self.link_time = link_time
        self.hop_time = hop_time
        self.faults = frozenset(faults)
        for v in self.faults:
            topology.validate_node(v)
        self.queue = EventQueue()
        self.packets: list[Packet] = []
        self._ids = itertools.count()
        # per-directed-link busy-until time: contention modelling
        self._link_free_at: dict[tuple[Hashable, Hashable], float] = {}
        # CSR-backed edge validation for the per-hop protocol check
        self._fast = get_fastgraph(topology)

    def _edge_ok(self, u: Hashable, v: Hashable) -> bool:
        if self._fast is not None:
            return self._fast.has_edge(u, v)
        return self.topology.has_edge(u, v)

    # -- injection ---------------------------------------------------------

    def inject(self, source: Hashable, target: Hashable, *, at: float = 0.0) -> Packet:
        """Schedule a packet injection at absolute time ``at``."""
        self.topology.validate_node(source)
        self.topology.validate_node(target)
        packet = Packet(
            ident=next(self._ids), source=source, target=target, injected_at=at
        )
        self.packets.append(packet)
        if at < self.queue.now:
            raise SimulationError("cannot inject in the past")
        self.queue.schedule(
            at - self.queue.now,
            lambda: self._arrive(packet, source),
            label=f"inject#{packet.ident}",
        )
        return packet

    def inject_all(self, pairs: Iterable[tuple[Hashable, Hashable]]) -> list[Packet]:
        """Inject one packet per ``(source, target)`` pair at time 0."""
        return [self.inject(s, t) for s, t in pairs]

    # -- core event handlers -------------------------------------------------

    def _arrive(self, packet: Packet, node: Hashable) -> None:
        if packet.dropped or packet.delivered_at is not None:
            return
        if node in self.faults:
            packet.dropped = True
            return
        if node == packet.target:
            packet.delivered_at = self.queue.now
            return
        next_hop = self.protocol.next_hop(packet, node)
        if next_hop is None:
            packet.dropped = True
            return
        if not self._edge_ok(node, next_hop):
            raise SimulationError(
                f"protocol proposed non-edge {node!r} -> {next_hop!r}"
            )
        self._send(packet, node, next_hop)

    def _send(self, packet: Packet, node: Hashable, next_hop: Hashable) -> None:
        link = (node, next_hop)
        now = self.queue.now
        start = max(now + self.hop_time, self._link_free_at.get(link, 0.0))
        finish = start + self.link_time
        self._link_free_at[link] = finish
        packet.hops += 1
        self.queue.schedule(
            finish - now,
            lambda: self._arrive(packet, next_hop),
            label=f"hop#{packet.ident}",
        )

    # -- running and reporting ------------------------------------------------

    def run(self, *, until: float | None = None, max_events: int | None = None) -> None:
        self.queue.run(until=until, max_events=max_events)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_packets(self.packets)
