"""A minimal discrete-event core: time-ordered event queue.

Events carry an action callback; ties break by insertion order so
simulations are fully deterministic (important: benchmark runs must be
reproducible across processes, and Python's ``heapq`` is not stable on
equal keys by itself).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True)
class Event:
    """A scheduled action at a simulated time."""

    time: float
    action: Callable[[], Any]
    label: str = ""


class EventQueue:
    """Deterministic time-ordered queue with a monotonic clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed(self) -> int:
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], Any], label: str = "") -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(time=self._now + delay, action=action, label=label)
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def run(self, *, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        ``until`` stops the clock at a horizon (events beyond it stay
        queued); ``max_events`` bounds runaway simulations.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            time, _, event = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            if time < self._now:
                raise SimulationError("event queue time went backwards (bug)")
            self._now = time
            event.action()
            processed += 1
        self._processed += processed
        return processed
