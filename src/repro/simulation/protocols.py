"""Routing protocols plugged into the network simulator.

* :class:`PrecomputedPathProtocol` — source routing along any path function.
* :class:`HBObliviousProtocol` — the paper's Section 3 scheme, hop by hop:
  correct hypercube bits first (e-cube), then follow the exact butterfly
  covering-walk route.
* :class:`HDObliviousProtocol` — the hyper-deBruijn baseline: e-cube on the
  cube part, classic shift-in routing on the de Bruijn part (with longest
  suffix/prefix overlap shortcutting), as in [1].
* :class:`BFSProtocol` — shortest-path-under-faults reference (adaptive).
* :class:`ResilientProtocol` — hop-by-hop forwarding along
  :class:`repro.core.resilient.ResilientRouter` routes, re-planned when
  the simulator reports a fault event.

Protocols are deliberately *stateless across hops* where the underlying
scheme is oblivious, so the simulator measures the algorithm the paper
describes rather than a cached table.  Protocols that expose a ``bind``
method are handed the simulator at construction time and may subscribe to
its fault events — that is how adaptive protocols see mid-run failures.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Protocol, Sequence

from repro._bits import mask, set_bits
from repro.core.hyperbutterfly import HyperButterfly
from repro.core.resilient import ResilientRouter
from repro.errors import RoutingError
from repro.routing.base import loop_erase
from repro.routing.butterfly import butterfly_route_walk
from repro.topologies.base import Topology
from repro.topologies.hyperdebruijn import HyperDeBruijn

if TYPE_CHECKING:  # simulator imports protocols' consumers; keep runtime lazy
    from repro.core.resilient import RouteOutcome  # noqa: F401
    from repro.faults.dynamic import FaultEvent
    from repro.simulation.network import NetworkSimulator, Packet

__all__ = [
    "RoutingProtocol",
    "PrecomputedPathProtocol",
    "HBObliviousProtocol",
    "HDObliviousProtocol",
    "BFSProtocol",
    "ResilientProtocol",
]


class RoutingProtocol(Protocol):
    """Anything that can pick the next hop for a packet at a node."""

    def next_hop(self, packet: Packet, node: Hashable) -> Hashable | None:
        """The neighbor to forward to, or ``None`` to drop."""


class PrecomputedPathProtocol:
    """Source routing: a path is computed at injection and followed."""

    def __init__(
        self, path_fn: Callable[[Hashable, Hashable], Sequence[Hashable] | None]
    ) -> None:
        self._path_fn = path_fn
        self._progress: dict[int, list] = {}

    def next_hop(self, packet: Packet, node: Hashable) -> Hashable | None:
        remaining = self._progress.get(packet.ident)
        if remaining is None:
            path = self._path_fn(packet.source, packet.target)
            if path is None:
                return None
            remaining = list(path)
            self._progress[packet.ident] = remaining
        # drop everything up to (and including) the current node
        while remaining and remaining[0] != node:
            remaining.pop(0)
        if len(remaining) < 2:
            return None
        remaining.pop(0)
        return remaining[0]


class HBObliviousProtocol:
    """Paper Section 3: e-cube on the hypercube part, then the butterfly."""

    def __init__(self, hb: HyperButterfly) -> None:
        self.hb = hb

    def next_hop(self, packet: Packet, node: Hashable) -> Hashable | None:
        h, b = node
        h2, b2 = packet.target
        if h != h2:
            lowest = set_bits(h ^ h2)[0]
            return (h ^ (1 << lowest), b)
        if b != b2:
            step = self._butterfly_step(b, b2)
            return (h, step)
        return None

    def _butterfly_step(
        self, b: tuple[int, int], b2: tuple[int, int]
    ) -> tuple[int, int]:
        return _cached_butterfly_route(self.hb.n, b, b2)[1]


@lru_cache(maxsize=65536)
def _cached_butterfly_route(
    n: int, b: tuple[int, int], b2: tuple[int, int]
) -> tuple[tuple[int, int], ...]:
    return tuple(butterfly_route_walk(n, b, b2))


class HDObliviousProtocol:
    """Hyper-deBruijn baseline: e-cube then de Bruijn shift-in routing.

    The de Bruijn leg left-shifts the current word, inserting target bits
    most-significant first, after skipping the longest overlap between a
    suffix of the current word and a prefix of the target — the standard
    ``<= n``-hop scheme of [1] (not always shortest, like the original).
    """

    def __init__(self, hd: HyperDeBruijn) -> None:
        self.hd = hd

    def next_hop(self, packet: Packet, node: Hashable) -> Hashable | None:
        h, d = node
        h2, d2 = packet.target
        if h != h2:
            lowest = set_bits(h ^ h2)[0]
            return (h ^ (1 << lowest), d)
        if d != d2:
            path = _cached_debruijn_route(self.hd.n, d, d2)
            try:
                idx = path.index(d)
            except ValueError:
                return None  # should not happen: route starts at d
            if idx + 1 >= len(path):
                return None
            return (h, path[idx + 1])
        return None


@lru_cache(maxsize=65536)
def _cached_debruijn_route(n: int, d: int, d2: int) -> tuple:
    """Shift-in route ``d -> d2`` in the undirected simple de Bruijn graph."""
    m = mask(n)
    # longest k such that the low k bits of d equal the high k bits of d2
    # (after k more left-shifts the inserted prefix of d2 lines up)
    best = 0
    for k in range(n, 0, -1):
        if (d & mask(k)) == (d2 >> (n - k)):
            best = k
            break
    path = [d]
    current = d
    for i in range(n - best):
        insert_bit = (d2 >> (n - best - 1 - i)) & 1
        current = ((current << 1) & m) | insert_bit
        path.append(current)
    deduped = [path[0]]
    for w in path[1:]:
        if w != deduped[-1]:  # skip self-loop words (00..0 / 11..1)
            deduped.append(w)
    return tuple(loop_erase(deduped))


class BFSProtocol:
    """Adaptive shortest-path routing around a fault set (reference).

    When bound to a simulator (:meth:`bind` is called automatically by
    :class:`repro.simulation.network.NetworkSimulator`), the protocol also
    avoids the simulator's *live* faulty nodes and flushes its path cache
    whenever a fault event fires, so mid-run failures reroute packets.
    """

    def __init__(
        self, topology: Topology, faults: Iterable[Hashable] = ()
    ) -> None:
        self.topology = topology
        self.faults = frozenset(faults)
        self._cache: dict[tuple, tuple | None] = {}
        self._sim: NetworkSimulator | None = None

    def bind(self, sim: NetworkSimulator) -> None:
        self._sim = sim
        sim.add_fault_listener(self._on_fault)

    def _on_fault(self, event: FaultEvent) -> None:
        self._cache.clear()

    def _blocked(self) -> frozenset:
        if self._sim is None:
            return self.faults
        return self.faults | self._sim.faults

    def next_hop(self, packet: Packet, node: Hashable) -> Hashable | None:
        key = (node, packet.target)
        path = self._cache.get(key)
        if key not in self._cache:
            raw = self.topology.bfs_shortest_path(
                node, packet.target, blocked=self._blocked()
            )
            path = tuple(raw) if raw else None
            self._cache[key] = path
        if path is None or len(path) < 2:
            return None
        return path[1]


class ResilientProtocol:
    """Forwarding along :class:`ResilientRouter` escalation routes.

    A full route is planned at the packet's current node and then followed
    hop by hop; any fault event invalidates the router's adaptive cache
    *and* every in-flight plan, so the next hop decision re-plans against
    the current fault state (disjoint families are fault-independent and
    survive, keeping re-planning cheap).
    """

    def __init__(self, router: ResilientRouter) -> None:
        self.router = router
        self._sim: NetworkSimulator | None = None
        # packet ident -> remaining planned path (starting at current node)
        self._plans: dict[int, tuple] = {}

    def bind(self, sim: NetworkSimulator) -> None:
        self._sim = sim
        sim.add_fault_listener(self._on_fault)

    def _on_fault(self, event: FaultEvent) -> None:
        self.router.on_fault_event(event)
        self._plans.clear()

    def _current_faults(self) -> tuple[frozenset, frozenset]:
        if self._sim is None:
            return frozenset(), frozenset()
        return self._sim.faults, self._sim.faulty_links

    def next_hop(self, packet: Packet, node: Hashable) -> Hashable | None:
        plan = self._plans.get(packet.ident)
        if plan and plan[0] == node and len(plan) >= 2:
            self._plans[packet.ident] = plan[1:]
            return plan[1]
        node_faults, link_faults = self._current_faults()
        try:
            outcome = self.router.route_ex(
                node, packet.target,
                node_faults=node_faults, link_faults=link_faults,
            )
        except RoutingError:  # includes Disconnected/DegradedRouteError
            return None
        path = outcome.path
        if len(path) < 2:
            return None
        self._plans[packet.ident] = path[1:]
        return path[1]
