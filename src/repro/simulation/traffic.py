"""Synthetic traffic workloads for the simulator (experiment E9).

Besides the generic loads (uniform, random permutation, hotspot), this
module provides the structured adversarial permutations classic for
butterfly-family networks, adapted to the two-part HB label space:

* **bit reversal** — reverse the concatenated (cube word, CI) address,
  keeping the level; the canonical worst case for level-structured
  networks;
* **translation** — every node sends to ``v·δ`` for a fixed group element
  ``δ`` (the Cayley-graph analogue of tornado traffic: perfectly uniform
  link demand by vertex transitivity).

These are the label-level (Hashable) wrappers; the draws themselves live
in :mod:`repro.simulation.workloads` as rank-based generators shared with
the vectorized flow engine.  Enumeration position in ``topology.nodes()``
equals the :class:`repro.fastgraph.codecs.NodeCodec` rank for every
registered family, so the two APIs agree on which node each draw means.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.hyperbutterfly import HBNode, HyperButterfly
from repro.errors import InvalidParameterError
from repro.simulation import workloads
from repro.topologies.base import Topology

__all__ = [
    "uniform_random_traffic",
    "permutation_traffic",
    "hotspot_traffic",
    "bit_reversal_traffic",
    "translation_traffic",
]


def uniform_random_traffic(
    topology: Topology, count: int, *, seed: int = 0
) -> list[tuple[Hashable, Hashable]]:
    """``count`` independent (source, target) pairs, uniform over distinct
    node pairs — the canonical interconnection-network benchmark load."""
    nodes = list(topology.nodes())
    if len(nodes) < 2:
        raise InvalidParameterError("need at least two nodes")
    src, dst = workloads.uniform_pairs(len(nodes), count, seed=seed)
    return [(nodes[s], nodes[t]) for s, t in zip(src, dst, strict=True)]


def permutation_traffic(
    topology: Topology, *, seed: int = 0
) -> list[tuple[Hashable, Hashable]]:
    """A random permutation workload: every node sends to a distinct node
    (fixed-point-free), stressing global bandwidth uniformly.

    Sampled in O(n) by one shuffle plus a deterministic fixed-point
    cleanup (see :func:`repro.simulation.workloads.derangement_pairs`) —
    not by rejection, whose retry count is unbounded.
    """
    nodes = list(topology.nodes())
    src, dst = workloads.derangement_pairs(len(nodes), seed=seed)
    return [(nodes[s], nodes[t]) for s, t in zip(src, dst, strict=True)]


def hotspot_traffic(
    topology: Topology,
    count: int,
    *,
    hotspot: Hashable | None = None,
    hot_fraction: float = 0.5,
    seed: int = 0,
) -> list[tuple[Hashable, Hashable]]:
    """Uniform traffic where a fraction targets one hot node (contention)."""
    nodes = list(topology.nodes())
    if hotspot is None:
        hot_rank = 0
    else:
        topology.validate_node(hotspot)
        hot_rank = nodes.index(hotspot)
    src, dst = workloads.hotspot_pairs(
        len(nodes), count, hotspot=hot_rank, hot_fraction=hot_fraction, seed=seed
    )
    return [(nodes[s], nodes[t]) for s, t in zip(src, dst, strict=True)]


def bit_reversal_traffic(hb: HyperButterfly) -> list[tuple[HBNode, HBNode]]:
    """Bit-reversal permutation on the ``m + n``-bit (cube, CI) address.

    Node ``(h, (x, c))`` sends to ``(h', (x, c'))`` where ``h'∥c'`` is the
    bitwise reversal of ``h∥c`` (levels preserved).  An involution, so the
    workload is a valid permutation; fixed points (palindromic addresses)
    are dropped.
    """
    nodes = list(hb.nodes())
    src, dst = workloads.bit_reversal_pairs(hb)
    return [(nodes[s], nodes[t]) for s, t in zip(src, dst, strict=True)]


def translation_traffic(
    hb: HyperButterfly, delta: HBNode | None = None
) -> list[tuple[HBNode, HBNode]]:
    """Every node sends to its right-translate ``v·δ`` (tornado-style).

    ``δ`` defaults to a "half-way" element: antipodal cube word and a
    half-rotation of the butterfly (distance close to the diameter for
    every sender, by vertex transitivity).  ``δ`` must not be the group
    identity.
    """
    delta_rank: int | None = None
    if delta is not None:
        hb.validate_node(delta)
        if delta == hb.group.identity():
            raise InvalidParameterError("translation by the identity is a no-op")
        nodes = list(hb.nodes())
        delta_rank = nodes.index(delta)
    else:
        nodes = list(hb.nodes())
    src, dst = workloads.translation_pairs(hb, delta_rank=delta_rank)
    return [(nodes[s], nodes[t]) for s, t in zip(src, dst, strict=True)]
