"""Synthetic traffic workloads for the simulator (experiment E9).

Besides the generic loads (uniform, random permutation, hotspot), this
module provides the structured adversarial permutations classic for
butterfly-family networks, adapted to the two-part HB label space:

* **bit reversal** — reverse the concatenated (cube word, CI) address,
  keeping the level; the canonical worst case for level-structured
  networks;
* **translation** — every node sends to ``v·δ`` for a fixed group element
  ``δ`` (the Cayley-graph analogue of tornado traffic: perfectly uniform
  link demand by vertex transitivity).
"""

from __future__ import annotations

import random
from typing import Hashable

from repro._bits import mask
from repro.core.hyperbutterfly import HBNode, HyperButterfly
from repro.errors import InvalidParameterError
from repro.topologies.base import Topology

__all__ = [
    "uniform_random_traffic",
    "permutation_traffic",
    "hotspot_traffic",
    "bit_reversal_traffic",
    "translation_traffic",
]


def uniform_random_traffic(
    topology: Topology, count: int, *, seed: int = 0
) -> list[tuple[Hashable, Hashable]]:
    """``count`` independent (source, target) pairs, uniform over distinct
    node pairs — the canonical interconnection-network benchmark load."""
    if count < 0:
        raise InvalidParameterError("count must be >= 0")
    rng = random.Random(seed)
    nodes = list(topology.nodes())
    if len(nodes) < 2:
        raise InvalidParameterError("need at least two nodes")
    return [tuple(rng.sample(nodes, 2)) for _ in range(count)]


def permutation_traffic(
    topology: Topology, *, seed: int = 0
) -> list[tuple[Hashable, Hashable]]:
    """A random permutation workload: every node sends to a distinct node
    (fixed-point-free), stressing global bandwidth uniformly."""
    rng = random.Random(seed)
    nodes = list(topology.nodes())
    targets = nodes[:]
    while True:
        rng.shuffle(targets)
        if all(s != t for s, t in zip(nodes, targets, strict=True)):
            break
    return list(zip(nodes, targets, strict=True))


def hotspot_traffic(
    topology: Topology,
    count: int,
    *,
    hotspot: Hashable | None = None,
    hot_fraction: float = 0.5,
    seed: int = 0,
) -> list[tuple[Hashable, Hashable]]:
    """Uniform traffic where a fraction targets one hot node (contention)."""
    if not 0.0 <= hot_fraction <= 1.0:
        raise InvalidParameterError("hot_fraction must be in [0, 1]")
    rng = random.Random(seed)
    nodes = list(topology.nodes())
    if hotspot is None:
        hotspot = nodes[0]
    else:
        topology.validate_node(hotspot)
    pairs = []
    for _ in range(count):
        source = rng.choice(nodes)
        if rng.random() < hot_fraction and source != hotspot:
            pairs.append((source, hotspot))
        else:
            target = rng.choice(nodes)
            while target == source:
                target = rng.choice(nodes)
            pairs.append((source, target))
    return pairs


def _reverse_bits(word: int, width: int) -> int:
    out = 0
    for i in range(width):
        out |= ((word >> i) & 1) << (width - 1 - i)
    return out


def bit_reversal_traffic(hb: HyperButterfly) -> list[tuple[HBNode, HBNode]]:
    """Bit-reversal permutation on the ``m + n``-bit (cube, CI) address.

    Node ``(h, (x, c))`` sends to ``(h', (x, c'))`` where ``h'∥c'`` is the
    bitwise reversal of ``h∥c`` (levels preserved).  An involution, so the
    workload is a valid permutation; fixed points (palindromic addresses)
    are dropped.
    """
    width = hb.m + hb.n
    pairs = []
    for h, (x, c) in hb.nodes():
        address = (h << hb.n) | c
        flipped = _reverse_bits(address, width)
        target = (flipped >> hb.n, (x, flipped & mask(hb.n)))
        if target != (h, (x, c)):
            pairs.append(((h, (x, c)), target))
    return pairs


def translation_traffic(
    hb: HyperButterfly, delta: HBNode | None = None
) -> list[tuple[HBNode, HBNode]]:
    """Every node sends to its right-translate ``v·δ`` (tornado-style).

    ``δ`` defaults to a "half-way" element: antipodal cube word and a
    half-rotation of the butterfly (distance close to the diameter for
    every sender, by vertex transitivity).  ``δ`` must not be the group
    identity.
    """
    if delta is None:
        delta = ((1 << hb.m) - 1, (hb.n // 2, 0))
    hb.validate_node(delta)
    if delta == hb.group.identity():
        raise InvalidParameterError("translation by the identity is a no-op")
    return [(v, hb.group.multiply(v, delta)) for v in hb.nodes()]
