"""Discrete-event message-passing network simulator.

The paper argues its claims analytically; this substrate exercises them
dynamically (DESIGN.md substitution table): store-and-forward packet
delivery over any :class:`repro.topologies.base.Topology`, pluggable
routing protocols, synthetic traffic workloads, broadcast, and the leader
election of the companion paper, with latency/throughput statistics.

Two execution engines share the same topologies, workloads and fault
models: the exact event-by-event :class:`NetworkSimulator`, and the
numpy-vectorized :class:`repro.simulation.flow.FlowEngine` that advances
whole traffic matrices per tick (pinned bit-identical to the event
simulator under the unit-link model).
"""

from repro.simulation.events import Event, EventQueue
from repro.simulation.network import NetworkSimulator, Packet, TransportConfig
from repro.simulation.protocols import (
    RoutingProtocol,
    PrecomputedPathProtocol,
    HBObliviousProtocol,
    HDObliviousProtocol,
    BFSProtocol,
    ResilientProtocol,
)
from repro.simulation.traffic import (
    uniform_random_traffic,
    permutation_traffic,
    hotspot_traffic,
    bit_reversal_traffic,
    translation_traffic,
)
from repro.simulation.gossip import (
    single_port_gossip,
    all_port_gossip_rounds,
    gossip_lower_bound,
)
from repro.simulation.workloads import (
    TrafficMatrix,
    WORKLOAD_FAMILIES,
    build_workload,
)
from repro.simulation.linkconfig import LinkClass, LinkConfig
from repro.simulation.flow import (
    FlowEngine,
    FlowResult,
    RouteBlock,
    routes_block,
)
from repro.simulation.campaign import (
    TrafficCampaignConfig,
    run_traffic_campaign,
)
from repro.simulation.stats import LatencyStats
from repro.simulation.leader_election import (
    flood_max_election,
    tree_based_election,
    ElectionResult,
)

__all__ = [
    "Event",
    "EventQueue",
    "NetworkSimulator",
    "Packet",
    "TransportConfig",
    "RoutingProtocol",
    "PrecomputedPathProtocol",
    "HBObliviousProtocol",
    "HDObliviousProtocol",
    "BFSProtocol",
    "ResilientProtocol",
    "uniform_random_traffic",
    "permutation_traffic",
    "hotspot_traffic",
    "bit_reversal_traffic",
    "translation_traffic",
    "TrafficMatrix",
    "WORKLOAD_FAMILIES",
    "build_workload",
    "LinkClass",
    "LinkConfig",
    "FlowEngine",
    "FlowResult",
    "RouteBlock",
    "routes_block",
    "TrafficCampaignConfig",
    "run_traffic_campaign",
    "single_port_gossip",
    "all_port_gossip_rounds",
    "gossip_lower_bound",
    "LatencyStats",
    "flood_max_election",
    "tree_based_election",
    "ElectionResult",
]
