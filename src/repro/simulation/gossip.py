"""Gossiping (all-to-all broadcast) — companion extension to E8.

Gossiping is the natural follow-on to the paper's broadcast teaser: every
node starts with a token and all nodes must learn all tokens.  We provide
round-synchronous schedulers under the two standard port models and the
matching lower bounds, so the HB structure can be judged the same way the
broadcast bench judges it:

* all-port: each round a node sends its full known set to all neighbors —
  finishes in exactly ``diameter`` rounds;
* single-port: each round a node exchanges (telephone model) with at most
  one neighbor — lower bound ``ceil(log2 N)`` rounds; we schedule the
  hypercube dimensions first (perfect recursive doubling) and finish the
  butterfly factor greedily.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import SimulationError
from repro.topologies.base import Topology

__all__ = [
    "all_port_gossip_rounds",
    "single_port_gossip",
    "gossip_lower_bound",
]


def all_port_gossip_rounds(topology: Topology) -> int:
    """All-port gossip time = diameter (every token floods independently)."""
    diameter_fn = getattr(topology, "diameter_formula", None)
    if diameter_fn is not None:
        return diameter_fn()
    anchor = next(iter(topology.nodes()))
    return topology.eccentricity(anchor)


def gossip_lower_bound(topology: Topology) -> int:
    """``ceil(log2 N)``: the single-port (telephone) information bound."""
    return math.ceil(math.log2(topology.num_nodes))


def _verify_matching(
    topology: Topology, pairs: list[tuple[Hashable, Hashable]]
) -> None:
    used: set[Hashable] = set()
    for a, b in pairs:
        if a in used or b in used or a == b:
            raise SimulationError("gossip round is not a matching")
        if not topology.has_edge(a, b):
            raise SimulationError(f"gossip pair {a!r}-{b!r} is not an edge")
        used.add(a)
        used.add(b)


def single_port_gossip(
    hb: HyperButterfly, *, verify: bool = True
) -> list[list[tuple]]:
    """A single-port (telephone) gossip schedule for ``HB(m, n)``.

    Rounds 1..m pair nodes across hypercube dimension ``i`` — a perfect
    matching that doubles everyone's knowledge (recursive doubling).  The
    remaining rounds gossip inside every butterfly copy simultaneously
    with a greedy maximal-matching heuristic on "useful" edges (pairs that
    still teach each other something), which terminates because every
    connected telephone instance admits a useful call while incomplete.

    Returns the per-round call lists; with ``verify=True`` each round is
    checked to be a matching of edges and the final state is checked for
    completeness.
    """
    knowledge: dict[tuple, frozenset] = {
        v: frozenset([v]) for v in hb.nodes()
    }
    rounds: list[list[tuple]] = []

    def exchange(pairs: list[tuple]) -> None:
        if verify:
            _verify_matching(hb, pairs)
        updates = {}
        for a, b in pairs:
            merged = knowledge[a] | knowledge[b]
            updates[a] = merged
            updates[b] = merged
        knowledge.update(updates)
        rounds.append(pairs)

    # phase 1: hypercube recursive doubling (perfect matchings)
    for i in range(hb.m):
        pairs = []
        for v in hb.nodes():
            if (v[0] >> i) & 1 == 0:
                pairs.append((v, (v[0] ^ (1 << i), v[1])))
        exchange(pairs)

    # phase 2: greedy useful matchings inside the butterfly copies
    total = hb.num_nodes
    target_size = total
    while any(len(k) < target_size for k in knowledge.values()):
        pairs = []
        busy: set[tuple] = set()
        for v in hb.nodes():
            if v in busy:
                continue
            for w in hb.butterfly_neighbors(v):
                if w in busy:
                    continue
                if knowledge[v] != knowledge[w]:
                    pairs.append((v, w))
                    busy.add(v)
                    busy.add(w)
                    break
        if not pairs:
            raise SimulationError("gossip stalled before completion (bug)")
        exchange(pairs)

    if verify and any(len(k) != total for k in knowledge.values()):
        raise SimulationError("gossip ended incomplete (bug)")
    return rounds
