"""Declarative per-link latency/capacity configuration for the flow engine.

gem5's garnet topologies wire routers with per-link ``latency`` and
``weight`` keywords; the Cayley analogue is to key link properties by the
**generator** that induces the link — every directed edge ``(v, v·s)`` of
a Cayley graph is labelled by exactly one generator ``s``, so a map from
generator names to link classes configures the whole network in a few
declarative lines:

>>> config = LinkConfig(
...     classes=[LinkClass("cube", latency=2), LinkClass("fly", capacity=4)],
...     assign={"h_0": "cube", "h_1": "cube", "g": "fly", "f": "fly"},
... )

Unassigned generators fall back to the default class (latency 1,
capacity 1 — the event simulator's unit-link model, under which the flow
engine is pinned bit-identical to it).  ``capacity`` is the number of
packets a link moves per ``latency`` ticks; both are integer ticks so the
engine stays exactly replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.errors import InvalidParameterError

if TYPE_CHECKING:  # numpy stays a lazy import at runtime
    import numpy as np

__all__ = ["LinkClass", "LinkConfig"]


@dataclass(frozen=True)
class LinkClass:
    """One named kind of link: serialization latency and batch capacity."""

    name: str
    latency: int = 1
    capacity: int = 1

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise InvalidParameterError("link latency must be >= 1 tick")
        if self.capacity < 1:
            raise InvalidParameterError("link capacity must be >= 1 packet")


_DEFAULT = LinkClass("default")


class LinkConfig:
    """Generator-name → :class:`LinkClass` assignment with a default."""

    def __init__(
        self,
        classes: Iterable[LinkClass] = (),
        assign: Mapping[str, str] | None = None,
        *,
        default: LinkClass = _DEFAULT,
    ) -> None:
        self.default = default
        self._classes: dict[str, LinkClass] = {default.name: default}
        for cls in classes:
            if cls.name in self._classes and self._classes[cls.name] != cls:
                raise InvalidParameterError(f"duplicate link class {cls.name!r}")
            self._classes[cls.name] = cls
        self._assign: dict[str, str] = dict(assign or {})
        for gen_name, cls_name in self._assign.items():
            if cls_name not in self._classes:
                raise InvalidParameterError(
                    f"generator {gen_name!r} assigned to unknown "
                    f"link class {cls_name!r}"
                )

    @classmethod
    def uniform(cls, *, latency: int = 1, capacity: int = 1) -> "LinkConfig":
        """All links identical — the event simulator's unit model scaled."""
        return cls(default=LinkClass("default", latency=latency, capacity=capacity))

    def class_for(self, gen_name: str) -> LinkClass:
        return self._classes[self._assign.get(gen_name, self.default.name)]

    def resolve(
        self, gen_names: Sequence[str] | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-generator ``(latency, capacity)`` int64 arrays.

        The arrays carry one trailing entry for the default class, so a
        route hop with generator index ``-1`` (builders that do not label
        hops) indexes the default — the flow engine relies on that layout.
        """
        import numpy as np

        names = list(gen_names or ())
        lat = np.empty(len(names) + 1, dtype=np.int64)
        cap = np.empty(len(names) + 1, dtype=np.int64)
        for i, name in enumerate(names):
            cls = self.class_for(name)
            lat[i] = cls.latency
            cap[i] = cls.capacity
        lat[-1] = self.default.latency
        cap[-1] = self.default.capacity
        return lat, cap
