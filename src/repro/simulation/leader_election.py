"""Leader election — the companion-paper extension (DESIGN.md).

Shi & Srimani's companion paper studies leader election on hyper-butterfly
graphs; we provide two message-counted, round-synchronous algorithms on any
topology so the structured/unstructured trade-off can be measured:

* :func:`flood_max_election` — extrema flooding with no distinguished
  node: every node repeatedly forwards the largest identifier it has seen;
  terminates after eccentricity-many rounds.  Message cost ``O(|E|·D)``
  worst case but usually far less (only *changed* values are re-sent).
* :func:`tree_based_election` — when an initiator exists: BFS-tree
  construction, convergecast of the maximum, broadcast of the result —
  ``3(N-1)`` messages, ``~3·ecc`` rounds; the message-optimal counterpart.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.core.broadcast import broadcast_tree
from repro.errors import SimulationError
from repro.topologies.base import Topology

__all__ = ["ElectionResult", "flood_max_election", "tree_based_election"]


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of a leader election run."""

    leader: Hashable
    leader_id: int
    rounds: int
    messages: int
    algorithm: str


def _identifiers(
    topology: Topology, ids: Mapping[Hashable, int] | None, seed: int
) -> dict[Hashable, int]:
    if ids is not None:
        values = list(ids.values())
        if len(set(values)) != len(values):
            raise SimulationError("node identifiers must be distinct")
        return dict(ids)
    rng = random.Random(seed)
    nodes = list(topology.nodes())
    values = list(range(len(nodes)))
    rng.shuffle(values)
    return dict(zip(nodes, values, strict=True))


def flood_max_election(
    topology: Topology,
    *,
    ids: Mapping[Hashable, int] | None = None,
    seed: int = 0,
) -> ElectionResult:
    """Extrema flooding: all nodes start; max identifier wins."""
    identifier = _identifiers(topology, ids, seed)
    best = dict(identifier)
    rounds = 0
    messages = 0
    changed = set(topology.nodes())
    while changed:
        rounds += 1
        inbox: dict[Hashable, int] = {}
        for v in changed:
            for w in topology.neighbors(v):
                messages += 1
                if best[v] > inbox.get(w, -1):
                    inbox[w] = best[v]
        changed = set()
        for w, value in inbox.items():
            if value > best[w]:
                best[w] = value
                changed.add(w)
    leader_id = max(identifier.values())
    leader = next(v for v, i in identifier.items() if i == leader_id)
    if any(b != leader_id for b in best.values()):
        raise SimulationError("flooding terminated without agreement (bug)")
    return ElectionResult(
        leader=leader,
        leader_id=leader_id,
        rounds=rounds,
        messages=messages,
        algorithm="flood-max",
    )


def tree_based_election(
    topology: Topology,
    initiator: Hashable,
    *,
    ids: Mapping[Hashable, int] | None = None,
    seed: int = 0,
) -> ElectionResult:
    """Initiator-driven election: build a BFS tree, convergecast the max,
    broadcast the winner.  ``3(N-1)`` messages total."""
    topology.validate_node(initiator)
    identifier = _identifiers(topology, ids, seed)
    parent = broadcast_tree(topology, initiator)  # N-1 tree-build messages

    # convergecast: process nodes deepest-first via an explicit child index
    children: dict[Hashable, list[Hashable]] = {}
    for child, p in parent.items():
        children.setdefault(p, []).append(child)
    stack = [initiator]
    post: list[Hashable] = []
    while stack:
        v = stack.pop()
        post.append(v)
        stack.extend(children.get(v, []))
    best: dict[Hashable, int] = {}
    for v in reversed(post):  # leaves first
        best[v] = max(
            [identifier[v]] + [best[c] for c in children.get(v, [])]
        )
    leader_id = best[initiator]
    leader = next(v for v, i in identifier.items() if i == leader_id)

    n = topology.num_nodes
    messages = 3 * (n - 1)  # build + convergecast + result broadcast
    eccentricity = max(
        _tree_depths(initiator, children).values(), default=0
    )
    rounds = 3 * eccentricity
    return ElectionResult(
        leader=leader,
        leader_id=leader_id,
        rounds=rounds,
        messages=messages,
        algorithm="tree-based",
    )


def _tree_depths(root: Hashable, children: dict) -> dict[Hashable, int]:
    depths = {root: 0}
    stack = [root]
    while stack:
        v = stack.pop()
        for c in children.get(v, []):
            depths[c] = depths[v] + 1
            stack.append(c)
    return depths
