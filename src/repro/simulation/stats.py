"""Delivery statistics for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["LatencyStats"]


@dataclass(frozen=True)
class LatencyStats:
    """Aggregate latency/delivery numbers for a set of packets."""

    injected: int
    delivered: int
    dropped: int
    mean_latency: float
    max_latency: float
    mean_hops: float
    makespan: float  # last delivery time
    retransmissions: int = 0  # reliable transport: total resends
    duplicates: int = 0  # reliable transport: suppressed duplicate arrivals

    @classmethod
    def from_packets(cls, packets: Sequence) -> "LatencyStats":
        delivered = [p for p in packets if p.delivered_at is not None]
        dropped = sum(1 for p in packets if p.dropped)
        latencies = [p.latency for p in delivered]
        hops = [p.hops for p in delivered]
        return cls(
            injected=len(packets),
            delivered=len(delivered),
            dropped=dropped,
            mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
            max_latency=max(latencies) if latencies else 0.0,
            mean_hops=sum(hops) / len(hops) if hops else 0.0,
            makespan=max((p.delivered_at for p in delivered), default=0.0),
            retransmissions=sum(getattr(p, "retransmissions", 0) for p in packets),
            duplicates=sum(getattr(p, "duplicates", 0) for p in packets),
        )

    @classmethod
    def from_arrays(
        cls,
        inject_at: Sequence,
        delivered_at: Sequence,
        hops: Sequence,
        *,
        dropped: int | None = None,
    ) -> "LatencyStats":
        """Bulk ingestion from per-flow arrays (the flow-engine path).

        ``delivered_at[i] < 0`` means flow ``i`` was not delivered.  Sums
        run in int64 — exact, hence bit-equal to :meth:`from_packets` on
        the same integer-tick outcomes.  ``dropped`` defaults to every
        undelivered flow; pass the true count when some are still in
        flight (e.g. a truncated run).
        """
        import numpy as np

        inject = np.asarray(inject_at, dtype=np.int64)
        done_at = np.asarray(delivered_at, dtype=np.int64)
        hop_arr = np.asarray(hops, dtype=np.int64)
        done = done_at >= 0
        count = int(done.sum())
        latencies = done_at[done] - inject[done]
        return cls(
            injected=len(inject),
            delivered=count,
            dropped=len(inject) - count if dropped is None else dropped,
            mean_latency=int(latencies.sum()) / count if count else 0.0,
            max_latency=float(latencies.max()) if count else 0.0,
            mean_hops=int(hop_arr[done].sum()) / count if count else 0.0,
            makespan=float(done_at[done].max()) if count else 0.0,
        )

    @classmethod
    def merge(cls, parts: Sequence["LatencyStats"]) -> "LatencyStats":
        """Combine per-shard stats as if their packets were one set.

        Counts add, extrema take the max, and the means recombine
        delivered-weighted — so ``merge([from_packets(a), from_packets(b)])
        == from_packets(a + b)`` and the empty sequence is the identity.
        """
        injected = sum(p.injected for p in parts)
        delivered = sum(p.delivered for p in parts)
        latency_total = sum(p.mean_latency * p.delivered for p in parts)
        hops_total = sum(p.mean_hops * p.delivered for p in parts)
        return cls(
            injected=injected,
            delivered=delivered,
            dropped=sum(p.dropped for p in parts),
            mean_latency=latency_total / delivered if delivered else 0.0,
            max_latency=max((p.max_latency for p in parts), default=0.0),
            mean_hops=hops_total / delivered if delivered else 0.0,
            makespan=max((p.makespan for p in parts), default=0.0),
            retransmissions=sum(p.retransmissions for p in parts),
            duplicates=sum(p.duplicates for p in parts),
        )

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.injected if self.injected else 1.0

    def summary(self) -> str:
        return (
            f"{self.delivered}/{self.injected} delivered "
            f"(drop {self.dropped}), mean latency {self.mean_latency:.2f}, "
            f"max {self.max_latency:.2f}, mean hops {self.mean_hops:.2f}, "
            f"makespan {self.makespan:.2f}"
        )
