"""Traffic campaigns: latency-vs-load curves through the flow engine.

The classic interconnection-network methodology: for each workload family
and each offered load (flows per node per tick), inject a paced traffic
matrix, run it to completion through the vectorized
:class:`repro.simulation.flow.FlowEngine`, and record delivery, latency
and per-node accepted throughput.  The *saturation throughput* of a
family is the largest accepted throughput seen across the load sweep —
the flat top of the accepted-vs-offered curve once queueing dominates.

``HB(m, n)`` is compared against node-count-matched baselines (hyper-de
Bruijn with the same cube dimension, and the plain hypercube), each
routed by its own native oblivious scheme (the same routes the event
simulator's protocols take, built in bulk by
:func:`repro.simulation.flow.routes_block`).

Every measurement keeps the flow count at or above ``flows_target`` by
widening the injection window at low loads, so latency means are
comparably tight across the sweep.  Everything is seeded and integer-
-timed; the same :class:`TrafficCampaignConfig` reproduces the emitted
JSON bit for bit (the campaign determinism test enforces this).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError
from repro.faults.campaigns import write_campaign_json
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn

__all__ = [
    "TrafficCampaignConfig",
    "run_traffic_campaign",
    "write_campaign_json",
]

_DEFAULT_FAMILIES = (
    "uniform",
    "permutation",
    "bit_reversal",
    "transpose",
    "tornado",
    "hotspot",
    "incast",
    "bursty",
)


@dataclass(frozen=True)
class TrafficCampaignConfig:
    """Parameters of one traffic campaign on ``HB(m, n)`` + baselines."""

    m: int = 3
    n: int = 4
    seed: int = 0
    families: tuple[str, ...] = _DEFAULT_FAMILIES
    #: offered loads, in flows per node per tick
    loads: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 1.0)
    #: minimum flows per measurement (injection window widens at low load)
    flows_target: int = 20_000
    ttl: int | None = None

    @classmethod
    def quick(cls, m: int, n: int, *, seed: int = 0) -> "TrafficCampaignConfig":
        """A seconds-scale configuration for smoke tests and CI."""
        return cls(
            m=m,
            n=n,
            seed=seed,
            loads=(0.1, 0.5),
            flows_target=400,
        )


def _round(x: float) -> float:
    return round(x, 6)


def _baselines(hb: HyperButterfly) -> list[Any]:
    """Node-count-matched comparison networks (same log2 scale as HB)."""
    import math

    bits = max(3, round(math.log2(hb.num_nodes)))
    return [
        hb,
        HyperDeBruijn(hb.m, max(1, bits - hb.m)),
        Hypercube(bits),
    ]


def _family_curve(
    topology: Any, family: str, config: TrafficCampaignConfig
) -> list[dict]:
    from repro.simulation.flow import FlowEngine, routes_block
    from repro.simulation.workloads import build_workload

    num_nodes = topology.num_nodes
    rows: list[dict] = []
    for load in config.loads:
        per_tick = max(1, round(load * num_nodes))
        ticks = max(1, -(-config.flows_target // per_tick))
        count = per_tick * ticks
        tm = build_workload(
            topology, family, count=count, seed=config.seed, per_tick=per_tick
        )
        routes = routes_block(topology, tm.sources, tm.targets)
        engine = FlowEngine(topology, tm, routes, ttl=config.ttl).run()
        stats = engine.stats()
        # accepted throughput: delivered flows per node per tick over the
        # whole run (injection window + drain)
        span = stats.makespan + 1.0
        rows.append(
            {
                "offered_load": _round(per_tick / num_nodes),
                "flows": tm.num_flows,
                "injection_ticks": ticks,
                "delivered": stats.delivered,
                "delivery_ratio": _round(stats.delivery_rate),
                "mean_latency": _round(stats.mean_latency),
                "max_latency": _round(stats.max_latency),
                "mean_hops": _round(stats.mean_hops),
                "makespan": _round(stats.makespan),
                "throughput_per_node": _round(
                    stats.delivered / (span * num_nodes)
                ),
            }
        )
    return rows


def run_traffic_campaign(config: TrafficCampaignConfig) -> dict:
    """Latency-vs-load sweeps: families × loads on HB + matched baselines."""
    from repro.simulation.workloads import WORKLOAD_FAMILIES

    unknown = [f for f in config.families if f not in WORKLOAD_FAMILIES]
    if unknown:
        raise InvalidParameterError(f"unknown workload families: {unknown!r}")
    hb = HyperButterfly(config.m, config.n)
    networks = []
    for topology in _baselines(hb):
        families = []
        for family in config.families:
            curve = _family_curve(topology, family, config)
            peak = max(curve, key=lambda r: r["throughput_per_node"])
            families.append(
                {
                    "family": family,
                    "curve": curve,
                    "saturation_throughput": peak["throughput_per_node"],
                    "saturation_offered_load": peak["offered_load"],
                }
            )
        networks.append(
            {
                "name": topology.name,
                "num_nodes": topology.num_nodes,
                "families": families,
            }
        )
    return {"config": asdict(config), "networks": networks}
