"""Vectorized flow-level traffic engine: whole traffic matrices per tick.

The discrete-event simulator (:mod:`repro.simulation.network`) processes
one packet-hop event at a time — exact, but hopeless past ~10^5 packets.
This module advances **all in-flight flows of a tick at once** with numpy
array arithmetic, at cost ``O(flows arriving this tick)`` per tick:

* **Routes** are precomputed in bulk (:func:`routes_block`) as packed-rank
  hop arrays — a ``(flows, max_hops)`` int64 matrix of successive node
  ranks — via the :class:`repro.cayley.graph.DistanceOracle` factor-split
  fast path (per-factor word tables combined through the quotient
  ``source⁻¹·target``, computed with the codec's vectorized group
  arithmetic) for Cayley families, a dedicated e-cube + shift-in builder
  for the hyper-de Bruijn baseline, a bit-scatter e-cube builder for the
  hypercube, and a per-pair python fallback for everything else.
* **Dynamics** (:class:`FlowEngine`) replay the event simulator's
  fire-and-forget store-and-forward model tick-synchronously: per-link
  occupancy is aggregated with sort + ``np.unique`` group-bys (the
  scatter-add analogue of ``np.bincount`` on packed directed link ids),
  transmission slots are handed out capacity-limited per link, and fault
  fail/repair events replay the depth-counted
  :class:`repro.faults.dynamic.FaultState` epochs as vectorized masks.

**Bit-identical fallback discipline.**  With unit link classes the engine
is pinned *event for event* against :class:`NetworkSimulator` (hop_time 0,
link_time 1, integer injection ticks, fire-and-forget transport, source
routing along the same :class:`RouteBlock`): identical per-flow delivery
ticks, hop counts, drop reasons and therefore identical
:class:`LatencyStats`.  The equivalence argument: with those parameters
every event lands on an integer tick and no event schedules another event
at its own tick, so processing whole ticks in event order is exact; within
a tick the event queue orders fault events before injections before hop
completions (scheduling order), and hop completions by the order their
sends were processed — reproduced here by per-flow *stamps* (injection
index, then a global send counter) that sort each tick's arrivals.
Capacity/latency link classes beyond the unit model generalize the event
simulator rather than mirror it (it has no capacity notion).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.errors import InvalidParameterError, SimulationError
from repro.simulation.linkconfig import LinkConfig
from repro.simulation.stats import LatencyStats
from repro.simulation.workloads import TrafficMatrix

if TYPE_CHECKING:  # numpy stays a lazy import at runtime
    import numpy as np

    from repro.faults.dynamic import FaultSchedule
    from repro.fastgraph.codecs import NodeCodec

__all__ = [
    "DROP_REASONS",
    "RouteBlock",
    "routes_block",
    "register_route_builder",
    "FlowResult",
    "FlowEngine",
]

#: drop-code -> reason string, aligned with the event simulator's reasons
DROP_REASONS = ("", "node_fault", "link_fault", "ttl_expired", "no_route")
_DROP_NODE = 1
_DROP_LINK = 2
_DROP_TTL = 3
_DROP_NOROUTE = 4


# Route blocks --------------------------------------------------------------


@dataclass(eq=False)
class RouteBlock:
    """Bulk source routes: packed-rank hop arrays for a flow batch.

    ``hops[i, k]`` is the rank of flow ``i``'s position after ``k + 1``
    edges; ``lengths[i]`` is the edge count (0 when source == target, -1
    when unreachable), entries beyond it are ``-1`` padding.  ``gen_idx``
    labels each hop with the index of the generator/dimension that induced
    it (``-1`` = unlabelled), which :class:`LinkConfig` maps to link
    classes via ``gen_names``.
    """

    codec: NodeCodec
    sources: np.ndarray
    hops: np.ndarray
    lengths: np.ndarray
    gen_idx: np.ndarray | None = None
    gen_names: tuple[str, ...] | None = None

    @property
    def num_flows(self) -> int:
        return len(self.sources)

    @property
    def max_hops(self) -> int:
        return self.hops.shape[1]

    def label_path(self, i: int) -> list[Hashable] | None:
        """Flow ``i``'s route as node labels (``None`` if unreachable) —
        the event-simulator interop used by the pinning tests."""
        if self.lengths[i] < 0:
            return None
        path = [self.codec.unrank(int(self.sources[i]))]
        for k in range(int(self.lengths[i])):
            path.append(self.codec.unrank(int(self.hops[i, k])))
        return path

    def path_fn(
        self, traffic: TrafficMatrix
    ) -> Callable[[Hashable, Hashable], list[Hashable] | None]:
        """A ``(source, target) -> path`` function over this block, for
        :class:`repro.simulation.protocols.PrecomputedPathProtocol`."""
        index: dict[tuple[int, int], int] = {}
        for i, (s, t) in enumerate(
            zip(traffic.sources, traffic.targets, strict=True)
        ):
            index.setdefault((int(s), int(t)), i)

        def fn(source: Hashable, target: Hashable) -> list[Hashable] | None:
            i = index[(self.codec.rank(source), self.codec.rank(target))]
            return self.label_path(i)

        return fn


def _validated(
    codec: NodeCodec, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    import numpy as np

    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    if len(src) != len(dst):
        raise InvalidParameterError("sources and targets must share one length")
    for arr in (src, dst):
        if len(arr) and (int(arr.min()) < 0 or int(arr.max()) >= codec.num_nodes):
            raise InvalidParameterError("rank out of range for this topology")
    return src, dst


def _expand_gen_matrix(
    codec: NodeCodec,
    generators: tuple[Any, ...],
    sources: np.ndarray,
    gen_mat: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Turn per-flow generator words into per-flow node-rank hop arrays."""
    import numpy as np

    flows, max_len = gen_mat.shape
    hops = np.full((flows, max_len), -1, dtype=np.int64)
    cur = sources.astype(np.int64, copy=True)
    for k in range(max_len):
        active = np.flatnonzero(lengths > k)
        if not len(active):
            break
        col = gen_mat[active, k]
        for gi, gen in enumerate(generators):
            sub = active[col == gi]
            if len(sub):
                cur[sub] = codec.apply_generator(cur[sub], gen)
        hops[active, k] = cur[active]
    return hops


def _cayley_routes(
    topology: Any, sources: np.ndarray, targets: np.ndarray
) -> RouteBlock | None:
    """Oracle-backed bulk routes for Cayley topologies (HB, B_n).

    The quotient ``delta = source⁻¹·target`` of every flow is computed in
    rank space with the codec's vectorized group arithmetic; the oracle's
    word tables (per factor on the product fast path) then yield each
    flow's generator word, and applying the word columns in bulk produces
    the hop matrix.  Matches ``DistanceOracle.shortest_path`` row for row.
    """
    import numpy as np

    from repro.fastgraph.codecs import codec_for

    group = getattr(topology, "group", None)
    gens = getattr(topology, "gens", None)
    if group is None or gens is None:
        return None
    codec = codec_for(topology)
    if codec is None or codec.generators is None or not codec.supports_group_ops():
        return None
    src, dst = _validated(codec, sources, targets)
    cayley = getattr(topology, "cayley", None)
    oracle = cayley.oracle if cayley is not None else None
    if oracle is None:
        from repro.cayley.graph import DistanceOracle

        oracle = DistanceOracle(group, gens)
    delta = codec.multiply_block(codec.inverse_block(src), dst)
    split = oracle.factor_split()
    if split is not None:
        left, left_index, right, right_index = split
        lw, ld = left.word_table()
        rw, rd = right.word_table()
        # lift factor-local generator indices to parent positions
        lw = np.where(lw >= 0, np.asarray(left_index, dtype=np.int16)[lw], np.int16(-1))
        rw = np.where(rw >= 0, np.asarray(right_index, dtype=np.int16)[rw], np.int16(-1))
        nr = codec.right.num_nodes
        dl, dr = np.divmod(delta, nr)
        len_l = ld[dl]
        len_r = rd[dr]
        lengths = len_l + len_r
        gen_mat = np.full((len(src), lw.shape[1] + rw.shape[1]), -1, dtype=np.int16)
        gen_mat[:, : lw.shape[1]] = lw[dl]
        right_rows = rw[dr]
        for k in range(rw.shape[1]):
            rows = np.flatnonzero(len_r > k)
            if not len(rows):
                break
            gen_mat[rows, len_l[rows] + k] = right_rows[rows, k]
    else:
        words, dist = oracle.word_table()
        gen_mat = words[delta]
        lengths = dist[delta]
    max_len = int(lengths.max()) if len(lengths) else 0
    gen_mat = gen_mat[:, :max_len]
    hops = _expand_gen_matrix(codec, gens.generators, src, gen_mat, lengths)
    return RouteBlock(
        codec=codec,
        sources=src,
        hops=hops,
        lengths=lengths.astype(np.int64),
        gen_idx=gen_mat,
        gen_names=tuple(gens.names),
    )


def _ecube_leg(
    hops: np.ndarray,
    gen_mat: np.ndarray,
    counts: np.ndarray,
    h: np.ndarray,
    h2: np.ndarray,
    bits: int,
    pack: Callable[[np.ndarray, np.ndarray], np.ndarray],
    rest: np.ndarray,
    gen_base: int,
) -> np.ndarray:
    """Scatter ascending-bit e-cube hops into per-flow rows; returns the
    corrected cube words, advancing ``counts`` in place."""
    import numpy as np

    cur = h.copy()
    for i in range(bits):
        rows = np.flatnonzero(((cur ^ h2) >> i) & 1)
        if not len(rows):
            continue
        cur[rows] ^= 1 << i
        hops[rows, counts[rows]] = pack(cur[rows], rest[rows])
        gen_mat[rows, counts[rows]] = gen_base + i
        counts[rows] += 1
    return cur


def _hyperdebruijn_routes(
    topology: Any, sources: np.ndarray, targets: np.ndarray
) -> RouteBlock | None:
    """E-cube + shift-in oblivious routes for ``HD(m, n)``, vectorized.

    Replays :class:`repro.simulation.protocols.HDObliviousProtocol`
    exactly: ascending-bit e-cube on the cube part, then the de Bruijn
    left-shift walk after skipping the longest suffix/prefix overlap.
    The protocol recomputes the overlap at every hop, but one shift-in
    raises the overlap by exactly one (a longer jump would contradict the
    previous overlap's maximality), so the walk equals the one-shot plan,
    never revisits a word, and never needs the self-loop/loop-erasure
    repairs of the scalar path — the whole leg vectorizes.
    """
    import numpy as np

    from repro.fastgraph.codecs import codec_for

    codec = codec_for(topology)
    if codec is None:
        return None
    m = topology.m
    n = topology.n
    src, dst = _validated(codec, sources, targets)
    nd = 1 << n
    word_mask = nd - 1
    h, d = np.divmod(src, nd)
    h2, d2 = np.divmod(dst, nd)
    # longest k with low k bits of d == high k bits of d2, vectorized
    best = np.zeros(len(src), dtype=np.int64)
    for k in range(n, 0, -1):
        match = (best == 0) & ((d & ((1 << k) - 1)) == (d2 >> (n - k)))
        best[match] = k
    best[d == d2] = n  # no de Bruijn leg at all
    cube_len = np.zeros(len(src), dtype=np.int64)
    delta_h = h ^ h2
    for i in range(m):
        cube_len += (delta_h >> i) & 1
    lengths = cube_len + (n - best)
    max_len = int(lengths.max()) if len(lengths) else 0
    hops = np.full((len(src), max_len), -1, dtype=np.int64)
    gen_mat = np.full((len(src), max_len), -1, dtype=np.int16)
    counts = np.zeros(len(src), dtype=np.int64)
    _ecube_leg(
        hops, gen_mat, counts, h, h2, m,
        lambda hw, dw: hw * nd + dw, d, gen_base=0,
    )
    cur = d.copy()
    for j in range(n):
        rows = np.flatnonzero(best + j < n)
        if not len(rows):
            break
        shift = n - best[rows] - 1 - j
        bit = (d2[rows] >> shift) & 1
        cur[rows] = ((cur[rows] << 1) & word_mask) | bit
        hops[rows, counts[rows]] = h2[rows] * nd + cur[rows]
        gen_mat[rows, counts[rows]] = m
        counts[rows] += 1
    return RouteBlock(
        codec=codec,
        sources=src,
        hops=hops,
        lengths=lengths,
        gen_idx=gen_mat,
        gen_names=tuple(f"h_{i}" for i in range(m)) + ("shift",),
    )


def _hypercube_routes(
    topology: Any, sources: np.ndarray, targets: np.ndarray
) -> RouteBlock | None:
    """Ascending-bit e-cube routes on ``H_m`` — pure bit scatter."""
    import numpy as np

    from repro.fastgraph.codecs import codec_for

    codec = codec_for(topology)
    if codec is None:
        return None
    m = topology.m
    src, dst = _validated(codec, sources, targets)
    delta = src ^ dst
    lengths = np.zeros(len(src), dtype=np.int64)
    for i in range(m):
        lengths += (delta >> i) & 1
    max_len = int(lengths.max()) if len(lengths) else 0
    hops = np.full((len(src), max_len), -1, dtype=np.int64)
    gen_mat = np.full((len(src), max_len), -1, dtype=np.int16)
    counts = np.zeros(len(src), dtype=np.int64)
    _ecube_leg(
        hops, gen_mat, counts, src, dst, m,
        lambda hw, _un: hw, np.zeros_like(src), gen_base=0,
    )
    return RouteBlock(
        codec=codec,
        sources=src,
        hops=hops,
        lengths=lengths,
        gen_idx=gen_mat,
        gen_names=tuple(f"h_{i}" for i in range(m)),
    )


def _generic_routes(
    topology: Any, sources: np.ndarray, targets: np.ndarray
) -> RouteBlock:
    """Per-unique-pair python BFS fallback — any topology, small scale."""
    import numpy as np

    from repro.fastgraph.codecs import EnumerationCodec, codec_for

    codec = codec_for(topology)
    if codec is None:
        codec = EnumerationCodec(topology.nodes())
    src, dst = _validated(codec, sources, targets)
    cache: dict[tuple[int, int], list[int] | None] = {}
    ranked_paths: list[list[int] | None] = []
    for s, t in zip(src.tolist(), dst.tolist(), strict=True):
        key = (s, t)
        if key not in cache:
            path = topology.bfs_shortest_path(codec.unrank(s), codec.unrank(t))
            cache[key] = (
                None if path is None else [codec.rank(v) for v in path[1:]]
            )
        ranked_paths.append(cache[key])
    lengths = np.asarray(
        [-1 if p is None else len(p) for p in ranked_paths], dtype=np.int64
    )
    max_len = int(lengths.max()) if len(lengths) else 0
    hops = np.full((len(src), max(max_len, 0)), -1, dtype=np.int64)
    for i, p in enumerate(ranked_paths):
        if p:
            hops[i, : len(p)] = p
    return RouteBlock(codec=codec, sources=src, hops=hops, lengths=lengths)


_ROUTE_BUILDERS: dict[str, Callable[..., RouteBlock | None]] = {}


def register_route_builder(
    type_name: str | type, builder: Callable[..., RouteBlock | None]
) -> None:
    """Register ``builder(topology, sources, targets)`` for a class (name).

    Mirrors the codec registry: keyed by class name, no topology imports,
    external families can opt in.  A builder may return ``None`` to defer
    to the structural Cayley path / generic fallback.
    """
    name = type_name if isinstance(type_name, str) else type_name.__name__
    _ROUTE_BUILDERS[name] = builder


register_route_builder("HyperDeBruijn", _hyperdebruijn_routes)
register_route_builder("Hypercube", _hypercube_routes)


def routes_block(
    topology: Any, sources: np.ndarray, targets: np.ndarray
) -> RouteBlock:
    """Bulk oblivious routes for ``(sources[i], targets[i])`` rank pairs.

    Dispatch: registered per-family builder, then the structural Cayley
    oracle path, then the generic python fallback.
    """
    for klass in type(topology).__mro__:
        builder = _ROUTE_BUILDERS.get(klass.__name__)
        if builder is not None:
            block = builder(topology, sources, targets)
            if block is not None:
                return block
    block = _cayley_routes(topology, sources, targets)
    if block is not None:
        return block
    return _generic_routes(topology, sources, targets)


# The engine ----------------------------------------------------------------


@dataclass(eq=False)
class FlowResult:
    """Per-flow outcome arrays of one engine run."""

    inject_at: np.ndarray
    delivered_at: np.ndarray  # int64; -1 = not delivered
    drop_code: np.ndarray  # int8 into DROP_REASONS; 0 = not dropped
    drop_at: np.ndarray  # int64; -1 = not dropped
    hops: np.ndarray  # int64 edges attempted (== Packet.hops)

    @property
    def num_flows(self) -> int:
        return len(self.inject_at)

    def stats(self) -> LatencyStats:
        return LatencyStats.from_arrays(
            self.inject_at,
            self.delivered_at,
            self.hops,
            dropped=int((self.drop_code > 0).sum()),
        )

    def drop_counts(self) -> dict[str, int]:
        """Drop totals by reason string, zero-count reasons omitted."""
        import numpy as np

        counts = np.bincount(self.drop_code, minlength=len(DROP_REASONS))
        return {
            DROP_REASONS[c]: int(counts[c])
            for c in range(1, len(DROP_REASONS))
            if counts[c]
        }

    def delivered_curve(self) -> np.ndarray:
        """Deliveries per tick (throughput timeline) via ``np.bincount``."""
        import numpy as np

        done = self.delivered_at[self.delivered_at >= 0]
        if not len(done):
            return np.zeros(0, dtype=np.int64)
        return np.bincount(done)


def _in_sorted(table: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Vectorized membership of ``values`` in a sorted int array."""
    import numpy as np

    if table.size == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.minimum(np.searchsorted(table, values), table.size - 1)
    return table[pos] == values


class FlowEngine:
    """Tick-synchronous vectorized replay of store-and-forward delivery.

    Same construction surface as :class:`NetworkSimulator` (static
    ``faults``/``link_faults``, a dynamic :class:`FaultSchedule`, ``ttl``)
    plus a :class:`LinkConfig`; traffic and routes arrive as bulk arrays.
    Per-flow outcomes land in :meth:`result`; :meth:`stats` aggregates
    them into the same :class:`LatencyStats` the event simulator emits.
    """

    def __init__(
        self,
        topology: Any,
        traffic: TrafficMatrix,
        routes: RouteBlock | None = None,
        *,
        link_config: LinkConfig | None = None,
        faults: Any = (),
        link_faults: Any = (),
        schedule: FaultSchedule | None = None,
        ttl: int | None = None,
    ) -> None:
        import numpy as np

        self.topology = topology
        self.traffic = traffic
        self.routes = (
            routes
            if routes is not None
            else routes_block(topology, traffic.sources, traffic.targets)
        )
        codec = self.routes.codec
        self.codec = codec
        self.ttl = ttl
        self._num_nodes = codec.num_nodes
        flows = traffic.num_flows
        _validated(codec, traffic.sources, traffic.targets)
        if flows and int(traffic.inject_at.min()) < 0:
            raise InvalidParameterError("injection ticks must be >= 0")
        config = link_config if link_config is not None else LinkConfig()
        self._lat_by_gen, self._cap_by_gen = config.resolve(self.routes.gen_names)
        # per-flow state: position (== attempted hops), current node, the
        # node the last hop left from, and the event-order stamp
        self._pos = np.zeros(flows, dtype=np.int64)
        self._cur = traffic.sources.astype(np.int64, copy=True)
        self._came_from = np.full(flows, -1, dtype=np.int64)
        self._stamp = np.arange(flows, dtype=np.int64)
        self._stamp_counter = flows
        self.delivered_at = np.full(flows, -1, dtype=np.int64)
        self.drop_code = np.zeros(flows, dtype=np.int8)
        self.drop_at = np.full(flows, -1, dtype=np.int64)
        # fault state: depth-counted FaultState epochs, vectorized
        self._node_depth = np.zeros(self._num_nodes, dtype=np.int32)
        self._link_depth: dict[int, int] = {}
        self._faulty_links = np.zeros(0, dtype=np.int64)
        self._links_dirty = False
        for v in dict.fromkeys(faults):  # ordered de-duplication
            topology.validate_node(v)
            self._node_depth[codec.rank(v)] += 1
        for u, v in link_faults:
            if not topology.has_edge(u, v):
                raise SimulationError(f"({u!r}, {v!r}) is not an edge")
            self._bump_link(codec.rank(u), codec.rank(v), +1)
        self._events: list[tuple[float, str, str, int]] = []
        self._event_ptr = 0
        if schedule is not None:
            if schedule.topology.name != topology.name:
                raise SimulationError(
                    f"fault schedule belongs to {schedule.topology.name}, "
                    f"not {topology.name}"
                )
            for event in schedule:
                if event.kind == "node":
                    packed = codec.rank(event.target)
                else:
                    ru = codec.rank(event.target[0])
                    rv = codec.rank(event.target[1])
                    packed = min(ru, rv) * self._num_nodes + max(ru, rv)
                self._events.append(
                    (event.time, event.action, event.kind, packed)
                )
        # per-directed-link busy-until ticks, kept as sorted parallel arrays
        self._busy_ids = np.zeros(0, dtype=np.int64)
        self._busy_free = np.zeros(0, dtype=np.int64)
        # arrival buckets: tick -> list of flow-id arrays, plus a tick heap
        self._buckets: dict[int, list[np.ndarray]] = {}
        self._heap: list[int] = []
        if flows:
            order = np.argsort(traffic.inject_at, kind="stable")
            ticks = traffic.inject_at[order]
            cuts = np.flatnonzero(np.diff(ticks)) + 1
            starts = np.concatenate((np.zeros(1, dtype=np.int64), cuts))
            for chunk, tick in zip(
                np.split(order, cuts), ticks[starts], strict=True
            ):
                self._push(int(tick), chunk)
        self.ticks_processed = 0

    # -- fault replay ------------------------------------------------------

    def _bump_link(self, ru: int, rv: int, delta: int) -> None:
        key = min(ru, rv) * self._num_nodes + max(ru, rv)
        depth = self._link_depth.get(key, 0) + delta
        if depth <= 0:
            # repair of a healthy link is a no-op (FaultState semantics)
            if key in self._link_depth:
                del self._link_depth[key]
                self._links_dirty = True
            return
        self._link_depth[key] = depth
        self._links_dirty = True

    def _apply_faults_until(self, tick: int) -> None:
        while self._event_ptr < len(self._events):
            time, action, kind, packed = self._events[self._event_ptr]
            if time > tick:
                break
            self._event_ptr += 1
            delta = 1 if action == "fail" else -1
            if kind == "node":
                depth = int(self._node_depth[packed]) + delta
                self._node_depth[packed] = max(depth, 0)
            elif delta > 0:
                self._link_depth[packed] = self._link_depth.get(packed, 0) + 1
                self._links_dirty = True
            else:
                depth = self._link_depth.get(packed, 0) - 1
                if depth > 0:
                    self._link_depth[packed] = depth
                elif packed in self._link_depth:
                    del self._link_depth[packed]
                self._links_dirty = True

    def _faulty_link_ids(self) -> np.ndarray:
        import numpy as np

        if self._links_dirty:
            self._faulty_links = np.asarray(
                sorted(self._link_depth), dtype=np.int64
            )
            self._links_dirty = False
        return self._faulty_links

    # -- scheduling --------------------------------------------------------

    def _push(self, tick: int, flow_ids: np.ndarray) -> None:
        bucket = self._buckets.get(tick)
        if bucket is None:
            self._buckets[tick] = [flow_ids]
            heapq.heappush(self._heap, tick)
        else:
            bucket.append(flow_ids)

    # -- the tick step -----------------------------------------------------

    def _drop(self, flow_ids: np.ndarray, code: int, tick: int) -> None:
        self.drop_code[flow_ids] = code
        self.drop_at[flow_ids] = tick

    def _step(self, ids: np.ndarray, tick: int) -> None:
        import numpy as np

        n = self._num_nodes
        pos = self._pos[ids]
        cur = self._cur[ids]
        alive = np.ones(len(ids), dtype=bool)
        # 1. link fault at hop completion (the event sim checks at finish)
        if self._link_depth:
            prev = self._came_from[ids]
            lid = np.minimum(prev, cur) * n + np.maximum(prev, cur)
            bad = (pos > 0) & _in_sorted(self._faulty_link_ids(), lid)
            if bad.any():
                self._drop(ids[bad], _DROP_LINK, tick)
                alive &= ~bad
        # 2. node fault at the arrival node
        bad = alive & (self._node_depth[cur] > 0)
        if bad.any():
            self._drop(ids[bad], _DROP_NODE, tick)
            alive &= ~bad
        # 3. delivery
        done = alive & (cur == self.traffic.targets[ids])
        if done.any():
            self.delivered_at[ids[done]] = tick
            alive &= ~done
        # 4. ttl
        if self.ttl is not None:
            bad = alive & (pos >= self.ttl)
            if bad.any():
                self._drop(ids[bad], _DROP_TTL, tick)
                alive &= ~bad
        # 5. route exhausted without reaching the target: unreachable
        bad = alive & (pos >= self.routes.lengths[ids])
        if bad.any():
            self._drop(ids[bad], _DROP_NOROUTE, tick)
            alive &= ~bad
        forwarders = ids[alive]
        if not len(forwarders):
            return
        fpos = pos[alive]
        here = cur[alive]
        nxt = self.routes.hops[forwarders, fpos]
        # stamps in processing order — the event queue's insertion order
        self._stamp[forwarders] = self._stamp_counter + np.arange(
            len(forwarders), dtype=np.int64
        )
        self._stamp_counter += len(forwarders)
        if self.routes.gen_idx is not None:
            gi = self.routes.gen_idx[forwarders, fpos]
        else:
            gi = np.full(len(forwarders), -1, dtype=np.int64)
        lat = self._lat_by_gen[gi]
        cap = self._cap_by_gen[gi]
        # capacity-limited slot assignment, grouped by directed link
        link = here * n + nxt
        order = np.argsort(link, kind="stable")  # stamp order within a link
        link_s = link[order]
        lat_s = lat[order]
        uniq, first, counts = np.unique(
            link_s, return_index=True, return_counts=True
        )
        lat_u = lat_s[first]
        cap_u = cap[order][first]
        base = np.full(len(uniq), tick, dtype=np.int64)
        if self._busy_ids.size:
            hit = _in_sorted(self._busy_ids, uniq)
            pos_b = np.minimum(
                np.searchsorted(self._busy_ids, uniq), self._busy_ids.size - 1
            )
            base = np.maximum(base, np.where(hit, self._busy_free[pos_b], tick))
        offsets = np.arange(len(link_s), dtype=np.int64) - np.repeat(first, counts)
        start = np.repeat(base, counts) + (
            offsets // np.repeat(cap_u, counts)
        ) * lat_s
        finish = start + lat_s
        new_free = base + ((counts + cap_u - 1) // cap_u) * lat_u
        # merge the busy set: entries for links used this tick are replaced,
        # entries already free at or before this tick can never matter again
        if self._busy_ids.size:
            keep = (self._busy_free > tick) & ~_in_sorted(uniq, self._busy_ids)
            merged_ids = np.concatenate((self._busy_ids[keep], uniq))
            merged_free = np.concatenate((self._busy_free[keep], new_free))
            merge_order = np.argsort(merged_ids, kind="stable")
            self._busy_ids = merged_ids[merge_order]
            self._busy_free = merged_free[merge_order]
        else:
            self._busy_ids = uniq
            self._busy_free = new_free
        # advance flow state and schedule the arrivals
        self._came_from[forwarders] = here
        self._cur[forwarders] = nxt
        self._pos[forwarders] = fpos + 1
        moved = forwarders[order]
        fin_order = np.argsort(finish, kind="stable")
        fin_sorted = finish[fin_order]
        moved_sorted = moved[fin_order]
        cuts = np.flatnonzero(np.diff(fin_sorted)) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), cuts))
        for chunk, when in zip(
            np.split(moved_sorted, cuts), fin_sorted[starts], strict=True
        ):
            self._push(int(when), chunk)

    # -- driving -----------------------------------------------------------

    def run(
        self, *, until: int | None = None, max_ticks: int | None = None
    ) -> "FlowEngine":
        """Process arrival ticks in order until the network drains."""
        import numpy as np

        while self._heap:
            tick = self._heap[0]
            if until is not None and tick > until:
                break
            heapq.heappop(self._heap)
            chunks = self._buckets.pop(tick)
            ids = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            self._apply_faults_until(tick)
            ids = ids[np.argsort(self._stamp[ids], kind="stable")]
            self._step(ids, tick)
            self.ticks_processed += 1
            if max_ticks is not None and self.ticks_processed >= max_ticks:
                break
        return self

    def result(self) -> FlowResult:
        return FlowResult(
            inject_at=self.traffic.inject_at,
            delivered_at=self.delivered_at,
            drop_code=self.drop_code,
            drop_at=self.drop_at,
            hops=self._pos,
        )

    def stats(self) -> LatencyStats:
        return self.result().stats()
