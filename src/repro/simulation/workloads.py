"""Rank-based synthetic workload zoo for the flow-level traffic engine.

Every generator here works on **packed integer ranks** (the
:mod:`repro.fastgraph` codec space), so a workload over the 1.4M-node
``HB(6, 11)`` is a couple of int64 arrays — no Hashable node list is ever
materialized.  The legacy label-level generators in
:mod:`repro.simulation.traffic` are thin wrappers that unrank these cores,
and the random cores draw *positions* with :class:`random.Random` exactly
the way the legacy list-based code did, so seeds keep their meaning.

Two structured-permutation helpers need to know how a rank decomposes
into a permutable binary *address* plus fixed auxiliary state (the
butterfly level): that is :class:`AddressView`, derived structurally from
the topology's codec — ``HB(m, n)`` exposes the ``m + n``-bit
``cube ∥ CI`` address with the level preserved, hyper-de Bruijn and the
hypercube expose their full label, the wrapped butterfly its word.

The zoo (:data:`WORKLOAD_FAMILIES` / :func:`build_workload`): ``uniform``,
``permutation`` (seeded swap-fixup derangement), ``bit_reversal``,
``transpose``, ``tornado``, ``hotspot``, ``incast``, and ``bursty``
(on/off modulated arrivals).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterator

from repro.errors import InvalidParameterError

if TYPE_CHECKING:  # numpy stays a lazy import at runtime
    import numpy as np

    from repro.fastgraph.codecs import NodeCodec

__all__ = [
    "TrafficMatrix",
    "AddressView",
    "address_view",
    "uniform_pairs",
    "derangement_pairs",
    "hotspot_pairs",
    "incast_pairs",
    "bit_reversal_pairs",
    "transpose_pairs",
    "tornado_pairs",
    "translation_pairs",
    "paced_arrivals",
    "bursty_arrivals",
    "WORKLOAD_FAMILIES",
    "build_workload",
]


@dataclass(frozen=True, eq=False)
class TrafficMatrix:
    """A batch of flows as parallel int64 rank arrays.

    ``inject_at`` holds integer injection ticks (all zero for a batch
    workload); flow order is the injection order, which the engine and the
    event simulator both use to break same-tick ties, so two simulators fed
    the same matrix agree event for event.
    """

    sources: np.ndarray
    targets: np.ndarray
    inject_at: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.sources) == len(self.targets) == len(self.inject_at)):
            raise InvalidParameterError("traffic arrays must share one length")

    @property
    def num_flows(self) -> int:
        return len(self.sources)

    @classmethod
    def from_ranks(
        cls,
        sources: np.ndarray,
        targets: np.ndarray,
        inject_at: np.ndarray | None = None,
    ) -> "TrafficMatrix":
        import numpy as np

        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        if inject_at is None:
            at = np.zeros(len(src), dtype=np.int64)
        else:
            at = np.asarray(inject_at, dtype=np.int64)
        return cls(sources=src, targets=dst, inject_at=at)

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterator[tuple[Hashable, Hashable]] | list[tuple[Hashable, Hashable]],
        codec: NodeCodec,
    ) -> "TrafficMatrix":
        """Rank a legacy ``[(source, target), ...]`` pair list."""
        import numpy as np

        listed = list(pairs)
        src = np.fromiter(
            (codec.rank(s) for s, _ in listed), dtype=np.int64, count=len(listed)
        )
        dst = np.fromiter(
            (codec.rank(t) for _, t in listed), dtype=np.int64, count=len(listed)
        )
        return cls.from_ranks(src, dst)

    def with_arrivals(self, inject_at: np.ndarray) -> "TrafficMatrix":
        return TrafficMatrix.from_ranks(self.sources, self.targets, inject_at)

    def pairs(self, codec: NodeCodec) -> list[tuple[Hashable, Hashable]]:
        """Unrank to a legacy pair list (event-simulator interop)."""
        return [
            (codec.unrank(int(s)), codec.unrank(int(t)))
            for s, t in zip(self.sources, self.targets, strict=True)
        ]


# Address views -------------------------------------------------------------


@dataclass(frozen=True)
class AddressView:
    """Vectorized view of ranks as ``bits``-wide addresses plus fixed aux.

    ``split`` maps a rank array to ``(address, aux)`` and ``join`` inverts
    it; structured permutations (bit reversal, transpose) permute the
    address while the aux part — e.g. the butterfly level ``PI`` — rides
    along untouched, exactly as the paper's bit-reversal workload keeps
    levels.  ``aux`` is ``None`` when the whole rank is address.
    """

    bits: int
    split: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray | None]]
    join: Callable[[np.ndarray, np.ndarray | None], np.ndarray]


def _int_range_view(codec: Any) -> AddressView | None:
    n = codec.num_nodes
    if codec.offset != 0 or n <= 0 or n & (n - 1):
        return None
    return AddressView(
        bits=n.bit_length() - 1,
        split=lambda idx: (idx, None),
        join=lambda addr, aux: addr,
    )


def _butterfly_view(codec: Any) -> AddressView:
    n = codec.n
    word_mask = (1 << n) - 1
    return AddressView(
        bits=n,
        split=lambda idx: (idx & word_mask, idx >> n),
        join=lambda addr, aux: (aux << n) | addr,
    )


def _wrapped_butterfly_view(codec: Any) -> AddressView:
    n = codec.n

    def split(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        import numpy as np

        word, level = np.divmod(idx, n)
        return word, level

    return AddressView(
        bits=n, split=split, join=lambda addr, aux: addr * n + aux
    )


def _product_view(codec: Any) -> AddressView | None:
    left = _codec_view(codec.left)
    right = _codec_view(codec.right)
    if left is None or right is None:
        return None
    # composition needs the full left rank to be address (its aux would be
    # lost) and the right address to occupy a clean bit field
    if codec.left.num_nodes != 1 << left.bits:
        return None
    import numpy as np

    if left.split(np.zeros(1, dtype=np.int64))[1] is not None:
        return None
    rbits = right.bits
    nr = codec.right.num_nodes

    def split(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        import numpy as np

        a, b = np.divmod(idx, nr)
        raddr, raux = right.split(b)
        return (left.split(a)[0] << rbits) | raddr, raux

    def join(addr: np.ndarray, aux: np.ndarray | None) -> np.ndarray:
        rmask = (1 << rbits) - 1
        a = left.join(addr >> rbits, None)
        b = right.join(addr & rmask, aux)
        return a * nr + b

    return AddressView(bits=left.bits + rbits, split=split, join=join)


def _codec_view(codec: Any) -> AddressView | None:
    from repro.fastgraph.codecs import (
        ButterflyElementCodec,
        IntRangeCodec,
        ProductCodec,
        WrappedButterflyCodec,
    )

    if isinstance(codec, ButterflyElementCodec):
        return _butterfly_view(codec)
    if isinstance(codec, WrappedButterflyCodec):
        return _wrapped_butterfly_view(codec)
    if isinstance(codec, ProductCodec):
        return _product_view(codec)
    if isinstance(codec, IntRangeCodec):
        return _int_range_view(codec)
    return None


def address_view(topology: Any) -> AddressView | None:
    """The binary-address view of ``topology``'s rank space, or ``None``."""
    from repro.fastgraph.codecs import codec_for

    codec = codec_for(topology)
    if codec is None:
        return None
    return _codec_view(codec)


# Random pair cores ---------------------------------------------------------


def uniform_pairs(
    num_nodes: int, count: int, *, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` independent ``source != target`` rank pairs.

    Draws positions with :meth:`random.Random.sample` over ``range(n)`` —
    position-for-position the same draws the legacy list-based generator
    made, so ranked output unranks to the legacy output for every seed.
    """
    import numpy as np

    if count < 0:
        raise InvalidParameterError("count must be >= 0")
    if num_nodes < 2:
        raise InvalidParameterError("need at least two nodes")
    rng = random.Random(seed)
    population = range(num_nodes)
    sources = np.empty(count, dtype=np.int64)
    targets = np.empty(count, dtype=np.int64)
    for i in range(count):
        s, t = rng.sample(population, 2)
        sources[i] = s
        targets[i] = t
    return sources, targets


def derangement_pairs(
    num_nodes: int, *, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """A seeded fixed-point-free permutation in O(n) worst case.

    One Fisher–Yates shuffle, then a deterministic fixup: the fixed points
    are cyclically rotated among themselves (two or more), or swapped with
    the successor position (exactly one — bijectivity guarantees the swap
    partner's value differs from the lone fixed point, so both positions
    end up displaced).  Unlike resampling until fixed-point-free, this
    terminates after one pass; the price is a slight distribution skew
    away from uniform-over-derangements, irrelevant for load benchmarks.
    """
    import numpy as np

    if num_nodes < 2:
        raise InvalidParameterError("need at least two nodes")
    rng = random.Random(seed)
    perm = list(range(num_nodes))
    rng.shuffle(perm)
    fixed = [i for i in range(num_nodes) if perm[i] == i]
    if len(fixed) >= 2:
        for k, i in enumerate(fixed):
            perm[i] = fixed[(k + 1) % len(fixed)]
    elif len(fixed) == 1:
        i = fixed[0]
        j = (i + 1) % num_nodes
        perm[i], perm[j] = perm[j], perm[i]
    sources = np.arange(num_nodes, dtype=np.int64)
    return sources, np.asarray(perm, dtype=np.int64)


def hotspot_pairs(
    num_nodes: int,
    count: int,
    *,
    hotspot: int = 0,
    hot_fraction: float = 0.5,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform traffic with a fraction redirected at one hot rank.

    Mirrors the legacy generator draw for draw (``choice`` picks positions,
    then one ``random()`` gate per flow), so ranked output unranks to the
    legacy output for every seed.
    """
    import numpy as np

    if not 0.0 <= hot_fraction <= 1.0:
        raise InvalidParameterError("hot_fraction must be in [0, 1]")
    if not 0 <= hotspot < num_nodes:
        raise InvalidParameterError("hotspot rank out of range")
    if count < 0:
        raise InvalidParameterError("count must be >= 0")
    if num_nodes < 2:
        raise InvalidParameterError("need at least two nodes")
    rng = random.Random(seed)
    population = range(num_nodes)
    sources = np.empty(count, dtype=np.int64)
    targets = np.empty(count, dtype=np.int64)
    for i in range(count):
        source = rng.choice(population)
        if rng.random() < hot_fraction and source != hotspot:
            target = hotspot
        else:
            target = rng.choice(population)
            while target == source:
                target = rng.choice(population)
        sources[i] = source
        targets[i] = target
    return sources, targets


def incast_pairs(
    num_nodes: int,
    count: int,
    *,
    sinks: int = 1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Many-to-few: sources uniform, targets cycle over ``sinks`` hot ranks.

    The classic fan-in stressor (all-to-one when ``sinks == 1``): sink
    ranks are a seeded sample, and flow ``i`` targets sink ``i mod sinks``
    from a uniformly drawn non-sink source.
    """
    import numpy as np

    if count < 0:
        raise InvalidParameterError("count must be >= 0")
    if not 1 <= sinks < num_nodes:
        raise InvalidParameterError("need 1 <= sinks < num_nodes")
    rng = random.Random(seed)
    sink_ranks = rng.sample(range(num_nodes), sinks)
    sources = np.empty(count, dtype=np.int64)
    targets = np.empty(count, dtype=np.int64)
    for i in range(count):
        sink = sink_ranks[i % sinks]
        source = rng.randrange(num_nodes)
        while source == sink:
            source = rng.randrange(num_nodes)
        sources[i] = source
        targets[i] = sink
    return sources, targets


# Structured permutations ---------------------------------------------------


def _require_view(topology: Any) -> AddressView:
    view = address_view(topology)
    if view is None:
        raise InvalidParameterError(
            f"{type(topology).__name__} has no binary address view; "
            "structured permutations need a codec-backed power-of-two family"
        )
    return view


def bit_reversal_pairs(topology: Any) -> tuple[np.ndarray, np.ndarray]:
    """Bit-reversal permutation on the address bits (fixed points dropped).

    For ``HB(m, n)`` this reverses the ``m + n``-bit ``cube ∥ CI`` address
    with levels preserved — the canonical worst case for level-structured
    networks, identical pair set to the legacy label-level generator.
    """
    import numpy as np

    view = _require_view(topology)
    from repro.fastgraph.codecs import codec_for

    codec = codec_for(topology)
    ranks = np.arange(codec.num_nodes, dtype=np.int64)
    addr, aux = view.split(ranks)
    flipped = np.zeros_like(addr)
    for i in range(view.bits):
        flipped |= ((addr >> i) & 1) << (view.bits - 1 - i)
    targets = view.join(flipped, aux)
    moved = targets != ranks
    return ranks[moved], targets[moved]


def transpose_pairs(topology: Any) -> tuple[np.ndarray, np.ndarray]:
    """Transpose permutation: swap address halves (fixed points dropped).

    Implemented as a rotation by ``bits // 2``, which coincides with the
    classic matrix-transpose permutation for even address widths and
    generalizes it for odd ones.
    """
    import numpy as np

    view = _require_view(topology)
    from repro.fastgraph.codecs import codec_for

    codec = codec_for(topology)
    half = view.bits // 2
    if half == 0:
        raise InvalidParameterError("transpose needs an address of >= 2 bits")
    ranks = np.arange(codec.num_nodes, dtype=np.int64)
    addr, aux = view.split(ranks)
    full_mask = (1 << view.bits) - 1
    rotated = ((addr >> half) | (addr << (view.bits - half))) & full_mask
    targets = view.join(rotated, aux)
    moved = targets != ranks
    return ranks[moved], targets[moved]


def tornado_pairs(num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """Tornado traffic: rank ``r`` sends to ``(r + N/2) mod N``.

    The rank-arithmetic generalization of ring tornado traffic — defined
    identically on every family, which keeps cross-network load curves
    comparable.
    """
    import numpy as np

    if num_nodes < 2:
        raise InvalidParameterError("need at least two nodes")
    ranks = np.arange(num_nodes, dtype=np.int64)
    return ranks, (ranks + num_nodes // 2) % num_nodes


def translation_pairs(
    topology: Any, delta_rank: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Cayley translation: every rank sends to its right-translate ``v·δ``.

    Needs a codec with vectorized group arithmetic.  ``δ`` defaults to the
    legacy "half-way" element (antipodal cube word, half butterfly
    rotation) on hyper-butterflies; elsewhere it must be given explicitly.
    """
    import numpy as np

    from repro.fastgraph.codecs import codec_for

    codec = codec_for(topology)
    if codec is None or not codec.supports_group_ops():
        raise InvalidParameterError(
            f"{type(topology).__name__} has no vectorized group arithmetic"
        )
    if delta_rank is None:
        m = getattr(topology, "m", None)
        n = getattr(topology, "n", None)
        if m is None or n is None:
            raise InvalidParameterError(
                "delta_rank is required outside hyper-butterflies"
            )
        delta_rank = codec.rank(((1 << m) - 1, (n // 2, 0)))
    if not 0 <= delta_rank < codec.num_nodes:
        raise InvalidParameterError("delta_rank out of range")
    if delta_rank == 0:
        # identity ranks to 0 in every packed Cayley codec
        raise InvalidParameterError("translation by the identity is a no-op")
    ranks = np.arange(codec.num_nodes, dtype=np.int64)
    deltas = np.full(codec.num_nodes, delta_rank, dtype=np.int64)
    return ranks, codec.multiply_block(ranks, deltas)


# Arrival processes ---------------------------------------------------------


def paced_arrivals(count: int, *, per_tick: int) -> np.ndarray:
    """Deterministic constant-rate arrivals: ``per_tick`` flows per tick."""
    import numpy as np

    if per_tick < 1:
        raise InvalidParameterError("per_tick must be >= 1")
    if count < 0:
        raise InvalidParameterError("count must be >= 0")
    return np.arange(count, dtype=np.int64) // per_tick


def bursty_arrivals(
    count: int,
    *,
    per_tick: int,
    on_mean: float = 8.0,
    off_mean: float = 8.0,
    seed: int = 0,
) -> np.ndarray:
    """On/off modulated arrivals: geometric burst and gap lengths.

    During a burst, ``per_tick`` flows arrive per tick; bursts and gaps
    end each tick with probability ``1/on_mean`` and ``1/off_mean``
    (geometric sojourns — the discrete two-state Markov-modulated process
    standard in interconnect studies).  Seeded and deterministic.
    """
    import numpy as np

    if per_tick < 1:
        raise InvalidParameterError("per_tick must be >= 1")
    if on_mean < 1.0 or off_mean < 1.0:
        raise InvalidParameterError("on_mean and off_mean must be >= 1")
    if count < 0:
        raise InvalidParameterError("count must be >= 0")
    rng = random.Random(seed)
    out = np.empty(count, dtype=np.int64)
    emitted = 0
    tick = 0
    burning = True  # start inside a burst so tick 0 carries traffic
    while emitted < count:
        if burning:
            batch = min(per_tick, count - emitted)
            out[emitted : emitted + batch] = tick
            emitted += batch
            if rng.random() < 1.0 / on_mean:
                burning = False
        elif rng.random() < 1.0 / off_mean:
            burning = True
            continue  # the first on-tick emits immediately
        tick += 1
    return out


# The zoo -------------------------------------------------------------------


def _tile_pairs(
    src: np.ndarray, dst: np.ndarray, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Repeat a fixed pattern in whole waves until ``count`` flows."""
    import numpy as np

    if len(src) == 0:
        raise InvalidParameterError("pattern has no flows to tile")
    waves = -(-count // len(src))
    return (
        np.tile(src, waves)[:count],
        np.tile(dst, waves)[:count],
    )


def _family_uniform(topology: Any, num_nodes: int, count: int, seed: int) -> tuple:
    return uniform_pairs(num_nodes, count, seed=seed)


def _family_permutation(topology: Any, num_nodes: int, count: int, seed: int) -> tuple:
    import numpy as np

    waves = -(-count // num_nodes)
    srcs = []
    dsts = []
    for w in range(waves):
        s, t = derangement_pairs(num_nodes, seed=seed + w)
        srcs.append(s)
        dsts.append(t)
    return np.concatenate(srcs)[:count], np.concatenate(dsts)[:count]


def _family_bit_reversal(topology: Any, num_nodes: int, count: int, seed: int) -> tuple:
    return _tile_pairs(*bit_reversal_pairs(topology), count)


def _family_transpose(topology: Any, num_nodes: int, count: int, seed: int) -> tuple:
    return _tile_pairs(*transpose_pairs(topology), count)


def _family_tornado(topology: Any, num_nodes: int, count: int, seed: int) -> tuple:
    return _tile_pairs(*tornado_pairs(num_nodes), count)


def _family_hotspot(topology: Any, num_nodes: int, count: int, seed: int) -> tuple:
    return hotspot_pairs(num_nodes, count, seed=seed)


def _family_incast(topology: Any, num_nodes: int, count: int, seed: int) -> tuple:
    sinks = max(1, min(num_nodes - 1, num_nodes // 64))
    return incast_pairs(num_nodes, count, sinks=sinks, seed=seed)


def _family_bursty(topology: Any, num_nodes: int, count: int, seed: int) -> tuple:
    return uniform_pairs(num_nodes, count, seed=seed)


#: family name -> pair builder ``(topology, num_nodes, count, seed) -> (src, dst)``
WORKLOAD_FAMILIES: dict[str, Callable[[Any, int, int, int], tuple]] = {
    "uniform": _family_uniform,
    "permutation": _family_permutation,
    "bit_reversal": _family_bit_reversal,
    "transpose": _family_transpose,
    "tornado": _family_tornado,
    "hotspot": _family_hotspot,
    "incast": _family_incast,
    "bursty": _family_bursty,
}


def build_workload(
    topology: Any,
    family: str,
    *,
    count: int,
    seed: int = 0,
    per_tick: int | None = None,
) -> TrafficMatrix:
    """Build ``count`` flows of a named family as a :class:`TrafficMatrix`.

    With ``per_tick`` set, arrivals are paced at that many flows per tick
    (the ``bursty`` family modulates the same rate with its on/off
    process); without it, everything is injected at tick 0.
    """
    from repro.fastgraph.codecs import codec_for

    builder = WORKLOAD_FAMILIES.get(family)
    if builder is None:
        known = ", ".join(sorted(WORKLOAD_FAMILIES))
        raise InvalidParameterError(f"unknown family {family!r} (known: {known})")
    codec = codec_for(topology)
    if codec is None:
        raise InvalidParameterError(
            f"{type(topology).__name__} has no codec; rank workloads need one"
        )
    src, dst = builder(topology, codec.num_nodes, count, seed)
    matrix = TrafficMatrix.from_ranks(src, dst)
    if per_tick is not None:
        if family == "bursty":
            arrivals = bursty_arrivals(
                matrix.num_flows, per_tick=per_tick, seed=seed
            )
        else:
            arrivals = paced_arrivals(matrix.num_flows, per_tick=per_tick)
        matrix = matrix.with_arrivals(arrivals)
    return matrix
