"""Low-level bit-vector helpers shared across the library.

Words are plain Python ints interpreted as little-endian bit vectors: bit
``i`` of word ``w`` is ``(w >> i) & 1``.  All topology labels in this
library (hypercube words, butterfly complementation patterns) use this
convention, which is stated once in DESIGN.md and enforced here.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import InvalidParameterError

__all__ = [
    "bit",
    "flip",
    "popcount",
    "mask",
    "rotate_left",
    "rotate_right",
    "differing_bits",
    "set_bits",
    "word_to_bits",
    "bits_to_word",
    "gray_code",
    "gray_cycle",
    "format_word",
]


def bit(word: int, i: int) -> int:
    """Return bit ``i`` of ``word`` (0 or 1)."""
    return (word >> i) & 1


def flip(word: int, i: int) -> int:
    """Return ``word`` with bit ``i`` flipped."""
    return word ^ (1 << i)


def popcount(word: int) -> int:
    """Number of set bits (Hamming weight) of ``word``."""
    return word.bit_count()


def mask(width: int) -> int:
    """Bit mask with the low ``width`` bits set."""
    return (1 << width) - 1


def rotate_left(word: int, k: int, width: int) -> int:
    """Cyclically rotate the low ``width`` bits of ``word`` left by ``k``.

    "Left" moves each bit towards higher indices: bit ``j`` of the result is
    bit ``(j - k) mod width`` of the input.  This matches the group action
    ``rot(c, k)`` used by the butterfly group in DESIGN.md.
    """
    if width <= 0:
        return 0
    k %= width
    m = mask(width)
    word &= m
    return ((word << k) | (word >> (width - k))) & m


def rotate_right(word: int, k: int, width: int) -> int:
    """Inverse of :func:`rotate_left`."""
    return rotate_left(word, -k, width)


def differing_bits(a: int, b: int) -> list[int]:
    """Sorted list of bit positions where ``a`` and ``b`` differ."""
    return set_bits(a ^ b)


def set_bits(word: int) -> list[int]:
    """Sorted list of set-bit positions of ``word``."""
    out = []
    i = 0
    while word:
        if word & 1:
            out.append(i)
        word >>= 1
        i += 1
    return out


def word_to_bits(word: int, width: int) -> tuple[int, ...]:
    """Expand ``word`` to a tuple of ``width`` bits, index 0 first."""
    return tuple((word >> i) & 1 for i in range(width))


def bits_to_word(bits: Iterable[int]) -> int:
    """Inverse of :func:`word_to_bits` (accepts any iterable of 0/1)."""
    w = 0
    for i, b in enumerate(bits):
        if b not in (0, 1):
            raise InvalidParameterError(f"bit {i} is {b!r}, expected 0 or 1")
        w |= b << i
    return w


def gray_code(i: int) -> int:
    """The ``i``-th binary reflected Gray code."""
    return i ^ (i >> 1)


def gray_cycle(width: int) -> Iterator[int]:
    """Yield the full Gray-code Hamiltonian cycle of the ``width``-cube.

    Consecutive words (cyclically, including last back to first) differ in
    exactly one bit, so the sequence traces a Hamiltonian cycle of
    ``H_width`` for ``width >= 2``.
    """
    for i in range(1 << width):
        yield gray_code(i)


def format_word(word: int, width: int) -> str:
    """Render ``word`` as a bit string, most significant bit first.

    The paper writes hypercube labels ``x_{m-1} ... x_0``; this helper
    produces exactly that textual ordering.
    """
    return format(word & mask(width), f"0{width}b") if width > 0 else ""
