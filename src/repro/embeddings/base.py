"""Embedding records and verification.

An :class:`Embedding` witnesses that a guest topology is a subgraph of a
host topology: an injective vertex map under which every guest edge is a
host edge (dilation 1 — the only kind Section 4 of the paper claims).
``verify`` is deliberately exhaustive; every constructive embedding in this
package is checked by it in the test suite, so the constructions cannot
silently drift from the theorems they implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from repro.errors import EmbeddingError
from repro.topologies.base import Topology

__all__ = ["Embedding", "verify_cycle_embedding"]


@dataclass
class Embedding:
    """A dilation-1 (subgraph) embedding ``guest → host``."""

    guest: Topology
    host: Topology
    mapping: Mapping[Hashable, Hashable]

    def image(self) -> set:
        return set(self.mapping.values())

    @property
    def dilation(self) -> int:
        """Always 1 for subgraph embeddings (kept for API symmetry)."""
        return 1

    @property
    def expansion(self) -> float:
        """Host size over guest size — the paper's scalability measure."""
        return self.host.num_nodes / self.guest.num_nodes

    def verify(self) -> None:
        """Raise :class:`EmbeddingError` unless this is a valid subgraph
        embedding: total, injective, edge-preserving."""
        mapped = {}
        for g in self.guest.nodes():
            if g not in self.mapping:
                raise EmbeddingError(f"guest node {g!r} is unmapped")
            h = self.mapping[g]
            self.host.validate_node(h)
            if h in mapped:
                raise EmbeddingError(
                    f"host node {h!r} is the image of both {mapped[h]!r} and {g!r}"
                )
            mapped[h] = g
        for a, b in self.guest.edges():
            ha, hb = self.mapping[a], self.mapping[b]
            if not self.host.has_edge(ha, hb):
                raise EmbeddingError(
                    f"guest edge {a!r}-{b!r} maps to non-edge {ha!r}-{hb!r}"
                )

    def __repr__(self) -> str:
        return f"<Embedding {self.guest.name} into {self.host.name}>"


def verify_cycle_embedding(
    host: Topology, cycle: Sequence[Hashable], *, expected_length: int | None = None
) -> None:
    """Raise :class:`EmbeddingError` unless ``cycle`` is a simple cycle in
    ``host`` (listed without repeating the closing vertex)."""
    k = len(cycle)
    if expected_length is not None and k != expected_length:
        raise EmbeddingError(f"cycle has length {k}, expected {expected_length}")
    if k < 3:
        raise EmbeddingError(f"a cycle needs at least 3 vertices, got {k}")
    if len(set(cycle)) != k:
        raise EmbeddingError("cycle repeats a vertex")
    for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]], strict=True):
        host.validate_node(a)
        if not host.has_edge(a, b):
            raise EmbeddingError(f"cycle step {a!r}-{b!r} is not a host edge")
