"""Mesh-of-trees embedding (Lemma 4 + Theorem 4).

Theorem 4: ``MT(2^p, 2^q) ⊆ HB(m, n)`` for ``1 <= p <= m-2`` and
``1 <= q <= n``.  The proof route, implemented literally:

* Lemma 4: ``MT(2^p, 2^q) ⊆ T(p+1) × T(q+1)`` — map grid leaf ``(i, j)`` to
  ``(leaf_i, leaf_j)``, row-tree internals to ``(leaf_i, internal)`` and
  column-tree internals to ``(internal, leaf_j)``; row- and column-tree
  images are disjoint because their first coordinates are leaves versus
  internals of ``T(p+1)``.
* ``T(p+1) ⊆ H_m`` (truncation of the Figure 1 hypercube tree row;
  ``p+1 <= m-1``) and ``T(q+1) ⊆ B_n`` (Lemma 3 truncated; ``q+1 <= n+1``).
* the product of subgraph embeddings is a subgraph embedding of the
  product graph ``H_m × B_n = HB(m, n)``.
"""

from __future__ import annotations

from repro.core.hyperbutterfly import HyperButterfly
from repro.embeddings.base import Embedding
from repro.embeddings.trees import (
    _truncate_tree_mapping,
    butterfly_tree_embedding,
    hypercube_tree_embedding,
)
from repro.errors import EmbeddingError
from repro.topologies.mesh_of_trees import MeshOfTrees

__all__ = ["hb_mesh_of_trees_embedding"]


def hb_mesh_of_trees_embedding(hb: HyperButterfly, p: int, q: int) -> Embedding:
    """Embed ``MT(2^p, 2^q)`` into ``HB(m, n)`` (Theorem 4)."""
    m, n = hb.m, hb.n
    if not 1 <= p <= m - 2:
        raise EmbeddingError(f"Theorem 4 requires 1 <= p <= m-2 = {m - 2}, got p={p}")
    if not 1 <= q <= n:
        raise EmbeddingError(f"Theorem 4 requires 1 <= q <= n = {n}, got q={q}")

    # T(p+1) in H_m: truncate the T(m-1) embedding (p+1 <= m-1 levels)
    cube_full = hypercube_tree_embedding(m)
    cube_map = _truncate_tree_mapping(cube_full.mapping, p + 1)
    # T(q+1) in B_n: truncate the Lemma 3 embedding (q+1 <= n+1 levels)
    fly_full = butterfly_tree_embedding(n)
    fly_map = _truncate_tree_mapping(fly_full.mapping, q + 1)

    rows, cols = 1 << p, 1 << q
    guest = MeshOfTrees(rows, cols)

    def cube_leaf(i: int) -> int:
        return cube_map[(1 << p) + i]

    def fly_leaf(j: int) -> tuple[int, int]:
        return fly_map[(1 << q) + j]

    mapping: dict[tuple, tuple] = {}
    for i in range(rows):
        for j in range(cols):
            mapping[("leaf", i, j)] = (cube_leaf(i), fly_leaf(j))
    for i in range(rows):
        for v in range(1, cols):
            mapping[("row", i, v)] = (cube_leaf(i), fly_map[v])
    for j in range(cols):
        for v in range(1, rows):
            mapping[("col", j, v)] = (cube_map[v], fly_leaf(j))
    return Embedding(guest=guest, host=hb, mapping=mapping)
