"""Complete-binary-tree embeddings (Lemma 3 and the Figure 1 tree row).

* :func:`butterfly_tree_embedding` — ``T(n+1) ⊆ B_n`` (Lemma 3),
  fully constructive: the natural level-descending tree (straight/cross
  children) with a one-node patch where the leftmost depth-``n`` leaf would
  wrap onto the root.
* :func:`hypercube_tree_embedding` — ``T(m-1) ⊆ H_m`` rooted at word 0.
  The paper states the Figure 1 row without construction; we use a cached
  deterministic backtracking search (instances are tiny: ``T(m-1)`` has
  ``2^{m-1}-1`` nodes inside ``2^m``), verified on every use.
* :func:`hb_tree_embedding` — ``T(m+n-1) ⊆ HB(m, n)``: Lemma 3's tree in
  the cube-word-0 butterfly copy, then each butterfly leaf grows a
  ``T(m-1)`` inside its own (disjoint!) hypercube copy — the composition
  that yields exactly the paper's ``T(m+n-1)``.
"""

from __future__ import annotations

from repro.core.hyperbutterfly import HyperButterfly
from repro.embeddings.base import Embedding
from repro.errors import EmbeddingError
from repro.topologies.butterfly_cayley import CayleyButterfly, classic_to_cayley
from repro.topologies.hypercube import Hypercube
from repro.topologies.tree import CompleteBinaryTree

__all__ = [
    "butterfly_tree_embedding",
    "hypercube_tree_embedding",
    "hb_tree_embedding",
]


# --------------------------------------------------------------------------
# Lemma 3: T(n+1) in B_n
# --------------------------------------------------------------------------


def butterfly_tree_embedding(n: int) -> Embedding:
    """``T(n+1)`` as a subgraph of ``B_n`` (Lemma 3), constructive.

    Root at classic node ``(0^n, 0)``.  A node at tree depth ``d < n`` sits
    at level ``d`` with word bits above ``d`` all zero; its left child is
    the forward-straight neighbor and its right child the forward-cross
    neighbor (flipping bit ``d``).  Depth-``n`` leaves wrap to level 0 and
    realise all ``2^n`` words — except that the all-straight leaf would *be*
    the root, so that one leaf is patched to the backward-cross neighbor
    ``(e_{n-2}, n-2)`` of its parent, which no other tree node occupies.
    """
    if n < 3:
        raise EmbeddingError(f"Lemma 3 needs n >= 3, got {n}")
    guest = CompleteBinaryTree(n + 1)
    host = CayleyButterfly(n)
    mapping_classic: dict[int, tuple[int, int]] = {1: (0, 0)}
    for v in range(2, 1 << (n + 1)):
        parent_word, parent_level = mapping_classic[v // 2]
        depth = v.bit_length() - 1
        is_right = v & 1
        if depth == n and v == (1 << n):
            # the patched leaf: backward-cross neighbor of (0^n, n-1)
            mapping_classic[v] = (1 << (n - 2), n - 2)
            continue
        up = (parent_level + 1) % n
        word = parent_word ^ (1 << parent_level) if is_right else parent_word
        mapping_classic[v] = (word, up)
    mapping = {v: classic_to_cayley(c) for v, c in mapping_classic.items()}
    return Embedding(guest=guest, host=host, mapping=mapping)


# --------------------------------------------------------------------------
# T(m-1) in H_m (Figure 1 hypercube row), search-based with cache
# --------------------------------------------------------------------------

_CUBE_TREE_CACHE: dict[int, dict[int, int] | None] = {}


def _search_cube_tree(m: int, k: int) -> dict[int, int] | None:
    """Backtracking search for ``T(k) ⊆ H_m`` rooted at word 0.

    Assigns heap nodes in DFS order; each node takes an unused neighbor of
    its parent's image.  Deterministic (neighbor order fixed), so the cached
    embedding is reproducible.
    """
    cube = Hypercube(m)
    order = sorted(range(1, 1 << k))  # heap order = BFS order; DFS also fine
    mapping: dict[int, int] = {1: 0}
    used = {0}

    def assign(idx: int) -> bool:
        if idx == len(order):
            return True
        v = order[idx]
        if v == 1:
            return assign(idx + 1)
        parent_host = mapping[v // 2]
        for candidate in cube.neighbors(parent_host):
            if candidate in used:
                continue
            mapping[v] = candidate
            used.add(candidate)
            if assign(idx + 1):
                return True
            used.discard(candidate)
            del mapping[v]
        return False

    return mapping if assign(0) else None


def hypercube_tree_embedding(m: int, *, height: int | None = None) -> Embedding:
    """``T(height) ⊆ H_m`` rooted at word 0 (default ``height = m - 1``).

    Heights above ``m - 1`` are impossible for ``m >= 2`` (``T(m)`` is a
    classical non-subgraph of ``H_m``); the paper's Figure 1 row uses
    exactly ``m - 1``.
    """
    k = m - 1 if height is None else height
    if k < 1:
        raise EmbeddingError(f"tree height must be >= 1, got {k}")
    if (1 << k) - 1 > (1 << m):
        raise EmbeddingError(f"T({k}) has more nodes than H_{m}")
    cache_key = (m, k)
    cached = _CUBE_TREE_CACHE.get(cache_key)
    if cached is None and cache_key not in _CUBE_TREE_CACHE:
        cached = _search_cube_tree(m, k)
        _CUBE_TREE_CACHE[cache_key] = cached
    if cached is None:
        raise EmbeddingError(f"no embedding of T({k}) into H_{m} found")
    return Embedding(
        guest=CompleteBinaryTree(k), host=Hypercube(m), mapping=dict(cached)
    )


# --------------------------------------------------------------------------
# T(m+n-1) in HB(m, n) (Figure 1 hyper-butterfly row)
# --------------------------------------------------------------------------


def _truncate_tree_mapping(mapping: dict[int, object], levels: int) -> dict[int, object]:
    """Restrict a complete-binary-tree mapping to its top ``levels`` levels."""
    return {v: host for v, host in mapping.items() if v < (1 << levels)}


def hb_tree_embedding(hb: HyperButterfly) -> Embedding:
    """``T(m+n-1) ⊆ HB(m, n)`` — the paper's Figure 1 tree row.

    Composition: Lemma 3 places ``T(n+1)`` in the butterfly copy of cube
    word 0; the ``2^n`` butterfly leaves lie in pairwise distinct butterfly
    labels, so their hypercube copies ``(H_m, b_leaf)`` are disjoint
    (Remark 5) and each leaf can root a ``T(m-1)`` inside its own copy.
    Heights compose as ``(n+1) + (m-1) - 1 = m + n - 1``.  For ``m <= 1``
    the Lemma 3 tree truncated to ``m+n-1`` levels already suffices.
    """
    m, n = hb.m, hb.n
    total_levels = m + n - 1
    fly_tree = butterfly_tree_embedding(n)

    if m <= 1:
        mapping = {
            v: (0, b)
            for v, b in _truncate_tree_mapping(fly_tree.mapping, total_levels).items()
        }
        return Embedding(
            guest=CompleteBinaryTree(total_levels), host=hb, mapping=mapping
        )

    cube_tree = hypercube_tree_embedding(m)  # T(m-1) rooted at word 0
    mapping: dict[int, tuple] = {}
    for v, b in fly_tree.mapping.items():
        mapping[v] = (0, b)

    # each butterfly leaf v (depth n, heap 2^n .. 2^{n+1}-1) roots a T(m-1)
    # inside the copy (H_m, b_leaf); guest heap indices of that subtree are
    # v * 2^d + offset for subtree heap w at depth d.
    for leaf in range(1 << n, 1 << (n + 1)):
        b_leaf = fly_tree.mapping[leaf]
        for w, host_word in cube_tree.mapping.items():
            if w == 1:
                continue  # subtree root is the leaf itself (host word 0)
            depth = w.bit_length() - 1
            offset = w - (1 << depth)
            guest_index = (leaf << depth) + offset
            mapping[guest_index] = (host_word, b_leaf)
    return Embedding(guest=CompleteBinaryTree(total_levels), host=hb, mapping=mapping)
