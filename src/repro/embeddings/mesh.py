"""Wrap-around mesh (torus) embeddings in ``HB(m, n)`` (Figure 1 row,
Lemma 1 setup).

``M(n1, n2) = C(n1) × C(n2)`` embeds into ``HB = H_m × B_n`` as the product
of a hypercube cycle and a butterfly cycle — the observation the paper uses
right before Lemma 2.
"""

from __future__ import annotations

from repro.core.hyperbutterfly import HyperButterfly
from repro.embeddings.base import Embedding
from repro.embeddings.cycles import butterfly_cycle, hypercube_cycle
from repro.errors import EmbeddingError
from repro.topologies.mesh import Torus

__all__ = ["hb_torus_embedding"]


def hb_torus_embedding(hb: HyperButterfly, n1: int, n2: int) -> Embedding:
    """Embed the torus ``M(n1, n2)`` into ``HB(m, n)``.

    ``n1`` must be an even hypercube-cycle length (``4 <= n1 <= 2^m``);
    ``n2`` must be a constructible butterfly-cycle length (see
    :func:`repro.embeddings.cycles.butterfly_cycle_lengths`).  The embedding
    maps torus node ``(i, j)`` to ``(cube_cycle[i], fly_cycle[j])``.
    """
    cube_cycle = hypercube_cycle(hb.m, n1)  # raises for invalid n1
    fly_cycle = butterfly_cycle(hb.n, n2)  # raises for unreachable n2
    if len(fly_cycle) < 3:
        raise EmbeddingError("butterfly cycle too short for a torus side")
    guest = Torus(n1, n2)
    mapping = {
        (i, j): (cube_cycle[i], fly_cycle[j])
        for i in range(n1)
        for j in range(n2)
    }
    return Embedding(guest=guest, host=hb, mapping=mapping)
