"""Cycle embeddings (Remark 9, Lemma 1, Lemma 2).

Three layers, mirroring the paper's argument:

1. **Factor cycles.**  ``hypercube_cycle(m, k)`` constructs a ``k``-cycle in
   ``H_m`` for every even ``4 ≤ k ≤ 2^m`` (two Gray-code rows).
   ``butterfly_cycle(n, L)`` constructs cycles in ``B_n`` by *hook
   expansion*: starting from the straight ``n``-cycle of word 0, a straight
   edge can be replaced by a +2 short hook or a +n full lap into a fresh
   word (see :class:`_CycleBuilder`).  Lapping every word along the
   binomial spanning tree of the word hypercube yields a fully constructive
   Hamiltonian cycle; mixing laps and short hooks realises the paper's
   ``kn + 2k'`` family — every even length in ``[4, n·2^n]``.

2. **Torus cycles** (Lemma 1).  ``torus_cycle(n1, n2, k)`` builds every even
   ``4 ≤ k ≤ n1·n2`` inside the wrap-around mesh when a side is even, via a
   two-row base plus comb teeth, with a boustrophedon special case for the
   Hamiltonian length.

3. **Hyper-butterfly cycles** (Lemma 2).  ``hb_even_cycle(hb, k)`` picks a
   hypercube cycle ``C(n1)`` and a butterfly cycle ``C(n2)`` with
   ``n1·n2 ≥ k``, embeds the torus ``C(n1) × C(n2)`` into
   ``H_m × B_n = HB``, and places the Lemma 1 cycle inside it (with a prism
   construction when ``n1 = 2`` and direct butterfly cycles when ``m = 0``).

Reproduction note: Lemma 2's full range ``4 ≤ k ≤ n·2^{m+n}`` needs a
Hamiltonian cycle of ``B_n``, which the paper inherits from [7] without
proof.  We supply an explicit construction (binomial-tree lap expansion,
:func:`butterfly_hamiltonian_cycle`), making the whole range constructive
for every ``n``; :func:`hb_even_cycle_max_length` reports the range.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro._bits import gray_code, set_bits
from repro.errors import EmbeddingError, InvalidParameterError
from repro.topologies.butterfly_cayley import classic_to_cayley

if TYPE_CHECKING:
    from repro.core.hyperbutterfly import HyperButterfly

__all__ = [
    "hypercube_cycle",
    "butterfly_cycle",
    "butterfly_cycle_lengths",
    "butterfly_hamiltonian_cycle",
    "torus_cycle",
    "hb_even_cycle",
    "hb_even_cycle_max_length",
]


# --------------------------------------------------------------------------
# Hypercube cycles (Remark 9, first half)
# --------------------------------------------------------------------------


def hypercube_cycle(m: int, k: int) -> list[int]:
    """A ``k``-cycle in ``H_m`` as a word list, for even ``4 <= k <= 2^m``.

    Construction: a Gray-code path of ``k/2`` words in ``H_{m-1}`` (low
    bits), traversed forward in the bottom row and backward in the top row
    (high bit set); the two rung edges close the cycle.
    """
    if k % 2 or not 4 <= k <= (1 << m):
        raise EmbeddingError(
            f"H_{m} contains k-cycles exactly for even 4 <= k <= {1 << m}; got {k}"
        )
    half = k // 2
    top = 1 << (m - 1)
    row = [gray_code(i) for i in range(half)]
    return row + [w | top for w in reversed(row)]


# --------------------------------------------------------------------------
# Butterfly cycles (Remark 9, second half; [7])
# --------------------------------------------------------------------------


class _CycleBuilder:
    """Grows a ``B_n`` cycle by *hook expansion* (classic coordinates).

    Start from the straight ``n``-cycle of word 0.  Two expansion moves,
    both replacing a straight edge ``(w, ℓ)–(w, ℓ+1)`` currently on the
    cycle (write ``w' = w ⊕ e_ℓ`` for the hook word):

    * **short hook** (+2): detour through ``(w', ℓ+1)`` and ``(w', ℓ)`` —
      the cross/straight/cross triangle — usable when both nodes are free;
    * **full lap** (+n): cross into ``(w', ℓ+1)``, run straight all the way
      around ``w'`` to ``(w', ℓ)``, cross back to ``(w, ℓ+1)`` — covers
      *every* node of ``w'``, usable when the whole word is free.

    Lapping words along the binomial spanning tree of the word hypercube
    (parent = clear the lowest set bit; the entry position of ``x`` is
    ``low(x)``, strictly above the positions of all its children, so the
    needed straight edge is always still present) visits every word —
    a fully constructive **Hamiltonian cycle** of ``B_n`` for every ``n``,
    a construction the paper only cites ([7]) without giving.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.cycle: list[tuple[int, int]] = [(0, level) for level in range(n)]
        self.used: set[tuple[int, int]] = set(self.cycle)
        self.used_words: set[int] = {0}

    def __len__(self) -> int:
        return len(self.cycle)

    def _find_straight_edge(
        self, predicate: Callable[[int, int], bool]
    ) -> tuple[int, int, int] | None:
        """First cycle index with a straight edge whose hook satisfies
        ``predicate(hook_word)``; returns ``(index, word, position)``."""
        n = self.n
        for idx, a in enumerate(self.cycle):
            b = self.cycle[(idx + 1) % len(self.cycle)]
            if a[0] != b[0]:
                continue
            la, lb = a[1], b[1]
            pos = n - 1 if {la, lb} == {0, n - 1} else min(la, lb)
            hook_word = a[0] ^ (1 << pos)
            if predicate(hook_word, pos):
                return idx, a[0], pos
        return None

    def _insert(self, idx: int, nodes: list[tuple[int, int]]) -> None:
        self.cycle[idx + 1 : idx + 1] = nodes
        self.used.update(nodes)

    def short_hook(self) -> bool:
        """Apply one +2 short hook; ``False`` if no straight edge admits one."""
        n = self.n

        def ok(word: int, pos: int) -> bool:
            return (word, (pos + 1) % n) not in self.used and (
                word,
                pos,
            ) not in self.used

        found = self._find_straight_edge(ok)
        if found is None:
            return False
        idx, w, pos = found
        up = (pos + 1) % n
        hook_word = w ^ (1 << pos)
        a_level = self.cycle[idx][1]
        pair = [(hook_word, up), (hook_word, pos)]
        if a_level != pos:  # edge traversed downward: reverse the hook
            pair.reverse()
        self._insert(idx, pair)
        return True

    def lap(self, target_word: int | None = None) -> bool:
        """Apply one +n full lap into a completely fresh word."""
        n = self.n

        def ok(word: int, pos: int) -> bool:
            if word in self.used_words:
                return False
            return target_word is None or word == target_word

        found = self._find_straight_edge(ok)
        if found is None:
            return False
        idx, w, pos = found
        hook_word = w ^ (1 << pos)
        a_level = self.cycle[idx][1]
        # lap path from (hook, pos+1) straight around to (hook, pos)
        lap_nodes = [(hook_word, (pos + 1 + t) % n) for t in range(n)]
        if a_level != pos:  # edge traversed downward: reverse the lap
            lap_nodes.reverse()
        self._insert(idx, lap_nodes)
        self.used_words.add(hook_word)
        return True


def butterfly_hamiltonian_cycle(n: int) -> list[tuple[int, int]]:
    """A Hamiltonian cycle of ``B_n``, Cayley ``(PI, CI)`` coordinates.

    Constructive for every ``n >= 3``: lap every nonzero word in binomial-
    spanning-tree order (see :class:`_CycleBuilder`).  ``O(n·2^n)`` output
    size dominates the cost.
    """
    if n < 3:
        raise InvalidParameterError(f"butterfly order must be >= 3, got {n}")
    builder = _CycleBuilder(n)
    words = sorted(range(1, 1 << n), key=lambda x: (x.bit_count(), x))
    for word in words:
        if not builder.lap(target_word=word):
            raise EmbeddingError(
                f"binomial lap order failed at word {word:b} (internal bug)"
            )
    assert len(builder) == n << n
    return [classic_to_cayley(v) for v in builder.cycle]


def _four_cycle_classic(n: int) -> list[tuple[int, int]]:
    """The 4-cycle alternating straight and cross edges at position 0:
    ``(0,0) –s– (0,1) –x– (e_0,0) –s– (e_0,1) –x– (0,0)``."""
    return [(0, 0), (0, 1), (1, 0), (1, 1)]


def _butterfly_cycle_classic(n: int, length: int) -> list[tuple[int, int]] | None:
    """Core constructor; returns classic coordinates or ``None``.

    Decomposes ``length = k·n + 2s`` (``k`` lapped words, ``s`` short
    hooks) and expands greedily; special cases for the straight ``n``-cycle
    and the 4-cycle.  Together these realise every even length in
    ``[4, n·2^n]`` (and, for odd ``n``, many odd lengths as well) — the
    ``kn + 2k'`` family of [7] plus its Hamiltonian endpoint.
    """
    if length < 3 or length > n << n:
        return None
    if length == n:
        return [(0, level) for level in range(n)]
    if length == 4:
        return _four_cycle_classic(n)
    words_sorted = sorted(range(1, 1 << n), key=lambda x: (x.bit_count(), x))
    for k in range(min(1 << n, length // n), 0, -1):
        rest = length - k * n
        if rest < 0 or rest % 2:
            continue
        s = rest // 2
        builder = _CycleBuilder(n)
        ok = True
        for word in words_sorted[: k - 1]:  # word 0 is the base
            if not builder.lap(target_word=word):
                ok = False
                break
        if not ok:
            continue
        while s and builder.short_hook():
            s -= 1
        if s == 0:
            return builder.cycle
    return None


def butterfly_cycle(n: int, length: int) -> list[tuple[int, int]]:
    """A simple cycle of the given ``length`` in ``B_n``, Cayley coords.

    Raises :class:`EmbeddingError` if this constructor cannot realise the
    length (see module docstring for the reachable family).
    """
    classic = _butterfly_cycle_classic(n, length)
    if classic is None:
        raise EmbeddingError(
            f"no constructive {length}-cycle in B_{n} "
            f"(reachable lengths: butterfly_cycle_lengths({n}))"
        )
    return [classic_to_cayley(v) for v in classic]


def butterfly_cycle_lengths(n: int, *, limit: int | None = None) -> list[int]:
    """All lengths ``butterfly_cycle(n, ·)`` can realise, by direct probing."""
    top = n << n
    if limit is not None:
        top = min(top, limit)
    out = []
    for length in range(3, top + 1):
        if _butterfly_cycle_classic(n, length) is not None:
            out.append(length)
    return out


# --------------------------------------------------------------------------
# Torus cycles (Lemma 1)
# --------------------------------------------------------------------------


def _torus_hamiltonian(n1: int, n2: int) -> list[tuple[int, int]]:
    """Boustrophedon Hamiltonian cycle of the ``n1 × n2`` torus, needing one
    even side (the only case Lemma 2 uses: hypercube cycles are even)."""
    if n2 % 2 == 0:
        cycle = []
        for j in range(n2):
            rows = range(n1) if j % 2 == 0 else range(n1 - 1, -1, -1)
            cycle.extend((i, j) for i in rows)
        return cycle
    if n1 % 2 == 0:
        return [(i, j) for (j, i) in _torus_hamiltonian(n2, n1)]
    raise EmbeddingError("torus Hamiltonian cycle requires one even side")


def torus_cycle(n1: int, n2: int, k: int) -> list[tuple[int, int]]:
    """An even ``k``-cycle in the ``n1 × n2`` wrap-around mesh (Lemma 1).

    Requires even ``k`` with ``4 <= k <= n1·n2`` and (for ``k > 2·n2``)
    an even ``n2`` or full-size boustrophedon fit; the HB layer always
    calls it with an even ``n2``.  Rows/columns are ``(i, j)`` pairs,
    ``0 <= i < n1``, ``0 <= j < n2``.
    """
    if k % 2 or k < 4 or k > n1 * n2:
        raise EmbeddingError(
            f"torus M({n1},{n2}) even cycles need 4 <= k <= {n1 * n2}, got {k}"
        )
    if k <= 2 * n2:
        t = k // 2
        return [(0, j) for j in range(t)] + [(1, j) for j in range(t - 1, -1, -1)]
    if k == n1 * n2:
        return _torus_hamiltonian(n1, n2)
    if n2 % 2:
        raise EmbeddingError(
            "comb construction needs an even number of columns for k > 2·n2"
        )
    # two-row base over all n2 columns plus comb teeth of tailored depth
    extra = (k - 2 * n2) // 2  # total extra depth over all teeth
    teeth = n2 // 2
    max_depth = n1 - 2
    if extra > teeth * max_depth:
        raise EmbeddingError(f"k={k} exceeds comb capacity of M({n1},{n2})")
    depths = [0] * teeth
    for t in range(teeth):
        grab = min(max_depth, extra)
        depths[t] = grab
        extra -= grab
        if extra == 0:
            break
    # top row rightwards; return along row 1 leftwards, dipping into each
    # comb tooth (down the right edge, across the bottom, up the left edge)
    cycle: list[tuple[int, int]] = [(0, j) for j in range(n2)]
    for j in range(n2 - 1, -1, -1):
        tooth = j // 2
        d = depths[tooth]
        if j % 2 == 1:  # right edge: walk down then across at the bottom
            cycle.extend((1 + r, j) for r in range(0, d + 1))
        else:  # left edge: arrive at the bottom, walk back up
            cycle.extend((1 + d - r, j) for r in range(0, d + 1))
    return cycle


# --------------------------------------------------------------------------
# Hyper-butterfly cycles (Lemma 2)
# --------------------------------------------------------------------------


def _lift_torus_cycle(
    cube_cycle: list[int],
    fly_cycle: list[tuple[int, int]],
    torus_nodes: list[tuple[int, int]],
) -> list:
    """Map torus coordinates ``(i, j)`` to HB nodes via the two cycles."""
    return [(cube_cycle[i], fly_cycle[j]) for (i, j) in torus_nodes]


def _best_even_butterfly_length(n: int, *, at_least: int = 0) -> int | None:
    """Largest even constructible cycle length in ``B_n`` (≥ ``at_least``).

    Since the Hamiltonian construction exists for every ``n`` this is
    simply ``n·2^n`` (always even); kept as a function so the HB layer
    stays correct if the catalog is ever restricted."""
    full = n << n
    best = None
    for length in range(full, max(4, at_least) - 1, -2):
        if _butterfly_cycle_classic(n, length) is not None:
            best = length
            break
    return best


def hb_even_cycle_max_length(hb: HyperButterfly) -> int:
    """The largest even cycle length :func:`hb_even_cycle` can construct.

    Equals the paper's full ``n·2^{m+n}`` (Lemma 2) for every ``(m, n)``,
    thanks to the constructive butterfly Hamiltonian cycle.
    """
    best_fly = _best_even_butterfly_length(hb.n)
    if best_fly is None:
        raise EmbeddingError(f"no even butterfly cycle found for n={hb.n}")
    if hb.m == 0:
        return best_fly
    return (1 << hb.m) * best_fly


def hb_even_cycle(hb: HyperButterfly, k: int) -> list:
    """An even ``k``-cycle in ``HB(m, n)`` (Lemma 2), as an HB node list.

    Strategy: pick an even butterfly cycle length ``n2`` and a hypercube
    cycle length ``n1`` (even, or the prism ``n1 = 2``) with ``n1·n2 >= k``,
    then run Lemma 1's construction inside the product torus.
    """
    if k % 2 or k < 4:
        raise EmbeddingError(f"HB even-cycle lengths must be even and >= 4, got {k}")
    m, n = hb.m, hb.n
    if m == 0:
        fly = butterfly_cycle(n, k)
        return [(0, b) for b in fly]

    # choose n2: smallest even constructible butterfly length with
    # 2^m * n2 >= k, preferring small tori; fall back to the largest.
    full_fly = n << n
    n2 = None
    needed = (k + (1 << m) - 1) >> m
    for candidate in range(max(4, needed + (needed % 2)), full_fly + 1, 2):
        if _butterfly_cycle_classic(n, candidate) is not None:
            n2 = candidate
            break
    if n2 is None:
        n2 = _best_even_butterfly_length(n, at_least=4)
    if n2 is None or (1 << m) * n2 < k:
        raise EmbeddingError(
            f"k={k} exceeds constructible range {hb_even_cycle_max_length(hb)}"
        )
    fly_cycle = butterfly_cycle(n, n2)

    # choose n1: smallest usable row count with n1 * n2 >= k
    n1 = max(2, -(-k // n2))
    if n1 % 2:
        n1 += 1
    n1 = min(n1, 1 << m)
    if n1 * n2 < k:
        raise EmbeddingError(f"k={k} exceeds torus capacity {n1 * n2}")

    if n1 == 2:
        # prism over the butterfly cycle: k = 2t, t <= n2
        t = k // 2
        cube0, cube1 = 0, 1
        top = [(cube0, fly_cycle[j]) for j in range(t)]
        bottom = [(cube1, fly_cycle[j]) for j in range(t - 1, -1, -1)]
        return top + bottom

    cube_cycle = hypercube_cycle(m, n1)
    torus_nodes = torus_cycle(n1, n2, k)
    return _lift_torus_cycle(cube_cycle, fly_cycle, torus_nodes)
