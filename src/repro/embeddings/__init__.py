"""Guest-graph embeddings of Section 4 (Lemmas 1–4, Theorem 4, Figure 1).

All embeddings here are *subgraph* embeddings (dilation 1): an injective
map from guest vertices to host vertices sending guest edges to host edges.

* :mod:`repro.embeddings.base` — embedding record + verification.
* :mod:`repro.embeddings.cycles` — cycles in ``H_m``, ``B_n``, tori and
  ``HB(m, n)`` (Remark 9, Lemma 1, Lemma 2).
* :mod:`repro.embeddings.mesh` — wrap-around meshes / tori in ``HB``.
* :mod:`repro.embeddings.trees` — complete binary trees: ``T(n+1) ⊆ B_n``
  (Lemma 3), ``T(m-1) ⊆ H_m``, ``T(m+n-1) ⊆ HB(m,n)`` (Figure 1).
* :mod:`repro.embeddings.mesh_of_trees` — ``MT(2^p, 2^q) ⊆ HB`` (Theorem 4
  via Lemma 4).
"""

from repro.embeddings.base import Embedding, verify_cycle_embedding
from repro.embeddings.cycles import (
    hypercube_cycle,
    butterfly_cycle,
    butterfly_cycle_lengths,
    torus_cycle,
    hb_even_cycle,
    hb_even_cycle_max_length,
)
from repro.embeddings.mesh import hb_torus_embedding
from repro.embeddings.trees import (
    butterfly_tree_embedding,
    hypercube_tree_embedding,
    hb_tree_embedding,
)
from repro.embeddings.mesh_of_trees import hb_mesh_of_trees_embedding

__all__ = [
    "Embedding",
    "verify_cycle_embedding",
    "hypercube_cycle",
    "butterfly_cycle",
    "butterfly_cycle_lengths",
    "torus_cycle",
    "hb_even_cycle",
    "hb_even_cycle_max_length",
    "hb_torus_embedding",
    "butterfly_tree_embedding",
    "hypercube_tree_embedding",
    "hb_tree_embedding",
    "hb_mesh_of_trees_embedding",
]
