"""Topology-facing fast backend: codec + CSR + kernels, memoized per instance.

:func:`get_fastgraph` is the single integration point the rest of the
library uses: it returns a :class:`FastGraph` when the topology's family
has a registered codec (and numpy is importable), else ``None`` — callers
keep their pure-Python label-walking fallback for arbitrary topologies.

Set ``REPRO_FASTGRAPH=0`` to disable the backend globally (every consumer
then exercises its fallback path; the property tests use the same switch
indirectly by calling the ``_python`` implementations directly).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator

from repro.errors import DisconnectedError, InvalidLabelError

if TYPE_CHECKING:  # runtime imports stay lazy (numpy optional, cycle-free)
    import numpy as np

    from repro.fastgraph.codecs import NodeCodec
    from repro.fastgraph.csr import CSRAdjacency
    from repro.topologies.base import Topology

__all__ = ["FastGraph", "get_fastgraph"]

_ATTR = "_fastgraph_backend"
_ENUM_ATTR = "_fastgraph_backend_enum"


def _numpy_ok() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def enabled() -> bool:
    """Whether the fast backend is globally enabled."""
    return os.environ.get("REPRO_FASTGRAPH", "1") != "0" and _numpy_ok()


class FastGraph:
    """Dense-integer view of one topology instance.

    The CSR adjacency is built lazily on first use and memoized on this
    object (which is itself memoized on the topology instance).
    """

    def __init__(self, topology: Topology, codec: NodeCodec) -> None:
        self.topology = topology
        self.codec = codec
        self._csr: CSRAdjacency | None = None

    @property
    def csr(self) -> CSRAdjacency:
        if self._csr is None:
            from repro.fastgraph.csr import build_csr

            self._csr = build_csr(self.topology, self.codec)
        return self._csr

    # -- label plumbing ----------------------------------------------------

    def rank(self, label: Hashable) -> int:
        return self.codec.rank(label)

    def unrank(self, idx: int) -> Hashable:
        return self.codec.unrank(idx)

    def _forbidden_mask(
        self, blocked: Iterable[Hashable] | None
    ) -> np.ndarray | None:
        if not blocked:
            return None
        import numpy as np

        mask = np.zeros(self.codec.num_nodes, dtype=bool)
        has_node = self.topology.has_node
        for label in blocked:
            if has_node(label):
                mask[self.codec.rank(label)] = True
        return mask

    # -- BFS services ------------------------------------------------------

    def distances_array(
        self, source: Hashable, *, blocked: Iterable[Hashable] | None = None
    ) -> np.ndarray:
        """``int32`` distance array indexed by rank (-1 = unreached)."""
        from repro.fastgraph.kernels import bfs_levels

        dist, _ = bfs_levels(
            self.csr, self.rank(source), forbidden=self._forbidden_mask(blocked)
        )
        return dist

    def bfs_distances(
        self, source: Hashable, blocked: Iterable[Hashable] | None = None
    ) -> dict[Hashable, int]:
        """Distance dict keyed by label — drop-in for the pure-Python BFS."""
        dist = self.distances_array(source, blocked=blocked)
        import numpy as np

        unrank = self.codec.unrank
        reached = np.nonzero(dist >= 0)[0]
        return {unrank(int(i)): int(dist[i]) for i in reached}

    def eccentricity(self, source: Hashable) -> int:
        """Max BFS distance without materialising a label dict."""
        dist = self.distances_array(source)
        if int((dist < 0).sum()):
            raise DisconnectedError(
                f"{self.topology.name} is not connected from {source!r}"
            )
        return int(dist.max())

    def shortest_path(
        self,
        source: Hashable,
        target: Hashable,
        *,
        blocked: Iterable[Hashable] | None = None,
    ) -> list[Hashable] | None:
        """A shortest label path, or ``None`` when unreachable."""
        from repro.fastgraph.kernels import bfs_levels, path_from_parents

        src, dst = self.rank(source), self.rank(target)
        dist, parents = bfs_levels(
            self.csr,
            src,
            forbidden=self._forbidden_mask(blocked),
            want_parents=True,
            target=dst,
        )
        if dist[dst] < 0:
            return None
        return [self.unrank(i) for i in path_from_parents(parents, src, dst)]

    # -- adjacency services ------------------------------------------------

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        if not (self.topology.has_node(u) and self.topology.has_node(v)):
            return False
        row = self.csr.neighbors_of(self.rank(u))
        return bool((row == self.rank(v)).any())

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Each undirected edge once, without a ``seen`` set of all nodes."""
        csr = self.csr
        unrank = self.codec.unrank
        indptr, indices = csr.indptr, csr.indices
        for i in range(csr.num_nodes):
            u = unrank(i)
            for j in indices[indptr[i] : indptr[i + 1]]:
                if j > i:
                    yield (u, unrank(int(j)))


def get_fastgraph(
    topology: Topology, *, allow_enumeration: bool = False
) -> FastGraph | None:
    """The memoized :class:`FastGraph` for ``topology``, or ``None``.

    With ``allow_enumeration=True`` an
    :class:`~repro.fastgraph.codecs.EnumerationCodec` over the node
    iterator is used when no codec is registered — O(V) setup, intended
    for whole-graph algorithms (batched diameters/histograms), never for
    per-call BFS routing.
    """
    if not enabled():
        return None
    cached = topology.__dict__.get(_ATTR)
    if cached is None and _ATTR not in topology.__dict__:
        from repro.fastgraph.codecs import codec_for

        codec = codec_for(topology)
        cached = FastGraph(topology, codec) if codec is not None else None
        try:
            setattr(topology, _ATTR, cached)
        except (AttributeError, TypeError):
            pass  # slots/frozen instances: recompute next call
    if cached is not None or not allow_enumeration:
        return cached

    enum_cached = topology.__dict__.get(_ENUM_ATTR)
    if enum_cached is None:
        from repro.fastgraph.codecs import EnumerationCodec

        enum_cached = FastGraph(topology, EnumerationCodec(topology.nodes()))
        try:
            setattr(topology, _ENUM_ATTR, enum_cached)
        except (AttributeError, TypeError):
            pass
    return enum_cached
