"""Topology-facing fast backend: codec + CSR/implicit kernels, memoized.

:func:`get_fastgraph` is the single integration point the rest of the
library uses: it returns a :class:`FastGraph` when the topology's family
has a registered codec (and numpy is importable), else ``None`` — callers
keep their pure-Python label-walking fallback for arbitrary topologies.

A :class:`FastGraph` now carries **two** array substrates and picks per
call:

* ``csr`` — materialized ``O(edges)`` adjacency; fastest per BFS once
  built, required for the batched boolean multi-source kernels.
* ``implicit`` — no adjacency at all; each frontier is expanded directly
  from the packed integer ranks via the codec's ``neighbors_block``
  (:mod:`repro.fastgraph.implicit`), so memory is ``O(frontier)`` and
  instances far past CSR's reach (HB(10,12), 49M nodes) stay exact.

``backend=None``/``"auto"`` prefers the CSR once one exists, otherwise
switches to implicit when the codec supports it and the instance exceeds
:func:`implicit_threshold` nodes (per-edge probes such as ``has_edge``
prefer implicit whenever no CSR is built — a probe should never trigger
an ``O(edges)`` build).  ``backend="csr"``/``"implicit"`` force a
substrate; forcing ``implicit`` on a codec without vectorized adjacency
raises :class:`~repro.errors.InvalidParameterError`.

Set ``REPRO_FASTGRAPH=0`` to disable the backend globally (every consumer
then exercises its fallback path; the property tests use the same switch
indirectly by calling the ``_python`` implementations directly).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator

from repro.errors import DisconnectedError, InvalidParameterError

if TYPE_CHECKING:  # runtime imports stay lazy (numpy optional, cycle-free)
    import numpy as np

    from repro.fastgraph.codecs import NodeCodec
    from repro.fastgraph.csr import CSRAdjacency
    from repro.topologies.base import Topology

__all__ = ["FastGraph", "get_fastgraph", "implicit_threshold"]

_ATTR = "_fastgraph_backend"
_ENUM_ATTR = "_fastgraph_backend_enum"

#: below this many nodes, "auto" builds the CSR (batched kernels, faster
#: repeat BFS); at or above it, implicit expansion avoids the O(edges) build
_THRESHOLD_ENV = "REPRO_IMPLICIT_THRESHOLD"
_DEFAULT_THRESHOLD = 1 << 22


def _numpy_ok() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def enabled() -> bool:
    """Whether the fast backend is globally enabled."""
    return os.environ.get("REPRO_FASTGRAPH", "1") != "0" and _numpy_ok()


def implicit_threshold() -> int:
    """Node count at which ``"auto"`` prefers implicit over building a CSR
    (``REPRO_IMPLICIT_THRESHOLD`` overrides, default 2^22)."""
    try:
        return int(os.environ.get(_THRESHOLD_ENV, _DEFAULT_THRESHOLD))
    except ValueError:
        return _DEFAULT_THRESHOLD


class FastGraph:
    """Dense-integer view of one topology instance.

    The CSR adjacency is built lazily on first use and memoized on this
    object (which is itself memoized on the topology instance); the
    implicit substrate has nothing to build.
    """

    def __init__(self, topology: Topology, codec: NodeCodec) -> None:
        self.topology = topology
        self.codec = codec
        self._csr: CSRAdjacency | None = None

    @property
    def csr(self) -> CSRAdjacency:
        if self._csr is None:
            from repro.fastgraph.csr import build_csr

            self._csr = build_csr(self.topology, self.codec)
        return self._csr

    # -- backend selection -------------------------------------------------

    def supports_implicit(self) -> bool:
        """Whether the codec can expand frontiers without a CSR."""
        return self.codec.supports_implicit()

    def select_backend(
        self, backend: str | None = None, *, probe: bool = False
    ) -> str:
        """Resolve ``backend`` to ``"csr"`` or ``"implicit"``.

        ``None``/``"auto"``: reuse a built CSR; otherwise go implicit past
        :func:`implicit_threshold` nodes (or, with ``probe=True`` — per-edge
        work, not a BFS — whenever the codec supports it, since a probe
        never amortizes an ``O(edges)`` build).
        """
        if backend in (None, "auto"):
            if self._csr is not None or not self.codec.supports_implicit():
                return "csr"
            if probe or self.codec.num_nodes >= implicit_threshold():
                return "implicit"
            return "csr"
        if backend == "csr":
            return "csr"
        if backend == "implicit":
            if not self.codec.supports_implicit():
                raise InvalidParameterError(
                    f"{self.topology.name}: codec {type(self.codec).__name__} "
                    "has no vectorized implicit adjacency; use backend='csr'"
                )
            return "implicit"
        raise InvalidParameterError(
            f"unknown fastgraph backend {backend!r} "
            "(expected 'auto', 'csr' or 'implicit')"
        )

    # -- label plumbing ----------------------------------------------------

    def rank(self, label: Hashable) -> int:
        return self.codec.rank(label)

    def unrank(self, idx: int) -> Hashable:
        return self.codec.unrank(idx)

    def _forbidden_mask(
        self, blocked: Iterable[Hashable] | None
    ) -> np.ndarray | None:
        if not blocked:
            return None
        import numpy as np

        mask = np.zeros(self.codec.num_nodes, dtype=bool)
        has_node = self.topology.has_node
        for label in blocked:
            if has_node(label):
                mask[self.codec.rank(label)] = True
        return mask

    def _blocked_ranks(
        self, blocked: Iterable[Hashable] | None
    ) -> np.ndarray | None:
        """Blocked labels as a rank array — ``O(len(blocked))``, never
        ``O(num_nodes)`` (the implicit substrate's memory contract)."""
        if not blocked:
            return None
        import numpy as np

        has_node = self.topology.has_node
        ranks = [self.codec.rank(v) for v in blocked if has_node(v)]
        return np.array(sorted(ranks), dtype=np.int64) if ranks else None

    # -- BFS services ------------------------------------------------------

    def distances_array(
        self,
        source: Hashable,
        *,
        blocked: Iterable[Hashable] | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """``int32`` distance array indexed by rank (-1 = unreached)."""
        if self.select_backend(backend) == "implicit":
            from repro.fastgraph.implicit import implicit_bfs_levels

            dist, _, _ = implicit_bfs_levels(
                self.codec, self.rank(source), forbidden=self._blocked_ranks(blocked)
            )
            return dist
        from repro.fastgraph.kernels import bfs_levels

        dist, _ = bfs_levels(
            self.csr, self.rank(source), forbidden=self._forbidden_mask(blocked)
        )
        return dist

    def bfs_distances(
        self,
        source: Hashable,
        blocked: Iterable[Hashable] | None = None,
        *,
        backend: str | None = None,
    ) -> dict[Hashable, int]:
        """Distance dict keyed by label — drop-in for the pure-Python BFS."""
        dist = self.distances_array(source, blocked=blocked, backend=backend)
        import numpy as np

        unrank = self.codec.unrank
        reached = np.nonzero(dist >= 0)[0]
        return {unrank(int(i)): int(dist[i]) for i in reached}

    def eccentricity(
        self, source: Hashable, *, backend: str | None = None
    ) -> int:
        """Max BFS distance without materialising a label dict.

        On the implicit substrate this runs in ``O(num_nodes / 8)`` memory
        — the per-source exact question that motivates the backend."""
        if self.select_backend(backend) == "implicit":
            from repro.fastgraph.implicit import implicit_source_stats

            ecc, _, reached = implicit_source_stats(self.codec, self.rank(source))
            if reached != self.codec.num_nodes:
                raise DisconnectedError(
                    f"{self.topology.name} is not connected from {source!r}"
                )
            return ecc
        dist = self.distances_array(source, backend="csr")
        if int((dist < 0).sum()):
            raise DisconnectedError(
                f"{self.topology.name} is not connected from {source!r}"
            )
        return int(dist.max())

    def masked_source_stats(
        self,
        source: Hashable,
        *,
        blocked: Iterable[Hashable] | None = None,
        backend: str | None = None,
    ) -> tuple[int, int]:
        """``(eccentricity, reached)`` of one fault-masked BFS.

        The workhorse of structure-fault diameter sweeps: the max distance
        among *reached survivors* and how many survivors were reached
        (source included), without materialising a label dict.  Blocked
        nodes are never counted.  On the implicit substrate this runs in
        ``O(num_nodes / 8)`` memory, keeping ``HB(9,11)``-class masked
        eccentricities in reach.
        """
        if self.select_backend(backend) == "implicit":
            from repro.fastgraph.implicit import implicit_source_stats

            ecc, _, reached = implicit_source_stats(
                self.codec,
                self.rank(source),
                forbidden=self._blocked_ranks(blocked),
            )
            return ecc, reached
        dist = self.distances_array(source, blocked=blocked, backend="csr")
        return int(dist.max()), int((dist >= 0).sum())

    def reachable_count(
        self,
        source: Hashable,
        *,
        blocked: Iterable[Hashable] | None = None,
        backend: str | None = None,
    ) -> int:
        """How many non-blocked nodes one masked BFS reaches (source
        included) — the survivability primitive behind
        :func:`~repro.faults.connectivity.connected_under_faults`."""
        return self.masked_source_stats(source, blocked=blocked, backend=backend)[1]

    def source_histogram(
        self, source: Hashable, *, backend: str | None = None
    ) -> dict[int, int]:
        """``{distance: node count}`` from one source (0 included)."""
        if self.select_backend(backend) == "implicit":
            from repro.fastgraph.implicit import implicit_source_stats

            _, depth_counts, _ = implicit_source_stats(self.codec, self.rank(source))
            return {0: 1, **depth_counts}
        import numpy as np

        dist = self.distances_array(source, backend="csr")
        return {
            d: int(c) for d, c in enumerate(np.bincount(dist[dist >= 0])) if c
        }

    def shortest_path(
        self,
        source: Hashable,
        target: Hashable,
        *,
        blocked: Iterable[Hashable] | None = None,
        backend: str | None = None,
    ) -> list[Hashable] | None:
        """A shortest label path, or ``None`` when unreachable."""
        from repro.fastgraph.kernels import path_from_parents

        src, dst = self.rank(source), self.rank(target)
        if self.select_backend(backend) == "implicit":
            from repro.fastgraph.implicit import implicit_bfs_levels

            dist, parents, _ = implicit_bfs_levels(
                self.codec,
                src,
                forbidden=self._blocked_ranks(blocked),
                want_parents=True,
                target=dst,
            )
        else:
            from repro.fastgraph.kernels import bfs_levels

            dist, parents = bfs_levels(
                self.csr,
                src,
                forbidden=self._forbidden_mask(blocked),
                want_parents=True,
                target=dst,
            )
        if dist[dst] < 0:
            return None
        assert parents is not None
        return [self.unrank(i) for i in path_from_parents(parents, src, dst)]

    # -- adjacency services ------------------------------------------------

    def has_edge(
        self, u: Hashable, v: Hashable, *, backend: str | None = None
    ) -> bool:
        if not (self.topology.has_node(u) and self.topology.has_node(v)):
            return False
        if self.select_backend(backend, probe=True) == "implicit":
            import numpy as np

            row = self.codec.neighbors_block(
                np.array([self.rank(u)], dtype=np.int64)
            )[0]
            return bool((row == self.rank(v)).any())
        row = self.csr.neighbors_of(self.rank(u))
        return bool((row == self.rank(v)).any())

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Each undirected edge once, without a ``seen`` set of all nodes."""
        csr = self.csr
        unrank = self.codec.unrank
        indptr, indices = csr.indptr, csr.indices
        for i in range(csr.num_nodes):
            u = unrank(i)
            for j in indices[indptr[i] : indptr[i + 1]]:
                if j > i:
                    yield (u, unrank(int(j)))


def get_fastgraph(
    topology: Topology, *, allow_enumeration: bool = False
) -> FastGraph | None:
    """The memoized :class:`FastGraph` for ``topology``, or ``None``.

    With ``allow_enumeration=True`` an
    :class:`~repro.fastgraph.codecs.EnumerationCodec` over the node
    iterator is used when no codec is registered — O(V) setup, intended
    for whole-graph algorithms (batched diameters/histograms), never for
    per-call BFS routing.
    """
    if not enabled():
        return None
    cached = topology.__dict__.get(_ATTR)
    if cached is None and _ATTR not in topology.__dict__:
        from repro.fastgraph.codecs import codec_for

        codec = codec_for(topology)
        cached = FastGraph(topology, codec) if codec is not None else None
        try:
            setattr(topology, _ATTR, cached)
        except (AttributeError, TypeError):
            pass  # slots/frozen instances: recompute next call
    if cached is not None or not allow_enumeration:
        return cached

    enum_cached = topology.__dict__.get(_ENUM_ATTR)
    if enum_cached is None:
        from repro.fastgraph.codecs import EnumerationCodec

        enum_cached = FastGraph(topology, EnumerationCodec(topology.nodes()))
        try:
            setattr(topology, _ENUM_ATTR, enum_cached)
        except (AttributeError, TypeError):
            pass
    return enum_cached
