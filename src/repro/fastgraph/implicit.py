"""CSR-free BFS kernels over implicit (computed) adjacency.

The CSR kernels in :mod:`repro.fastgraph.kernels` are fast but pay
``O(edges)`` memory before the first frontier expands — ~3 GB of indices
(plus build intermediates) for ``HB(10,12)``'s 49M nodes.  For the
bit-arithmetic families in this repo the neighbor function is pure
XOR/shift on packed integer ranks, so adjacency can be *computed on the
fly* instead: each BFS level gathers the neighbor block of the current
frontier via :meth:`~repro.fastgraph.codecs.NodeCodec.neighbors_block`
and discards it again.  Peak memory is

* one packed :class:`Bitset` of visited nodes — ``num_nodes / 8`` bytes,
* the frontier rank array and a bounded ``slice × degree`` gather buffer
  (the frontier is expanded in slices of :func:`default_slice_nodes`
  ranks), and
* the ``int32`` distance array *only when the caller asks for distances*
  (:func:`implicit_bfs_levels`); the sweep statistics kernels
  (:func:`implicit_source_stats`, :func:`implicit_sweep_chunk`) never
  allocate per-node output and run in ``O(num_nodes / 8)`` memory.

Bit-identity contract: for any codec whose ``neighbors_block`` rows list
valid entries in CSR row order (all built-in codecs), every kernel here
returns exactly what the CSR kernels return — distances, parent choice
(first occurrence in the frontier-major flattened neighbor order, with
the frontier kept in ascending rank order), reaching-generator indices,
and depth histograms.  ``tests/fastgraph/test_implicit.py`` pins this
across the family grid, including fault-masked subsets.

When :mod:`numba` is importable (the optional ``repro[speed]`` extra) a
jitted fused test-and-set kernel replaces the numpy
test/unique/mark sequence — auto-detected at import, disabled with
``REPRO_IMPLICIT_NUMBA=0``, and bit-identical to the numpy path by
construction (both resolve duplicate candidates to their first
occurrence and sort each new frontier).
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.errors import InvalidParameterError
from repro.fastgraph.codecs import NodeCodec

__all__ = [
    "HAVE_NUMBA",
    "numba_enabled",
    "default_slice_nodes",
    "Bitset",
    "implicit_bfs_levels",
    "implicit_source_stats",
    "implicit_sweep_chunk",
]

#: whether the optional jit is importable — the numpy path is the reference
HAVE_NUMBA = False
try:
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - exercised on numba-less installs
    pass

#: env switch to force the numpy path even when numba is importable
_NUMBA_ENV = "REPRO_IMPLICIT_NUMBA"
#: env override for the frontier gather slice (ranks per gather)
_SLICE_ENV = "REPRO_IMPLICIT_SLICE"
_DEFAULT_SLICE = 1 << 20


def numba_enabled() -> bool:
    """Whether the jitted fused kernel is active for this process."""
    return HAVE_NUMBA and os.environ.get(_NUMBA_ENV, "1") != "0"


def default_slice_nodes() -> int:
    """Frontier ranks expanded per gather — bounds the ``slice × degree``
    scratch buffer (``REPRO_IMPLICIT_SLICE`` overrides, default 2^20)."""
    try:
        value = int(os.environ.get(_SLICE_ENV, _DEFAULT_SLICE))
    except ValueError:
        return _DEFAULT_SLICE
    return value if value >= 1 else _DEFAULT_SLICE


if HAVE_NUMBA:

    @_njit(cache=True)
    def _mark_fresh_numba(
        words: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:  # pragma: no cover - requires the [speed] extra
        """Fused visited test-and-set: mask of first-occurrence fresh ranks."""
        out = np.zeros(candidates.shape[0], dtype=np.bool_)
        one = np.uint64(1)
        for i in range(candidates.shape[0]):
            v = candidates[i]
            word = v >> 6
            bit = one << np.uint64(v & 63)
            if not (words[word] & bit):
                words[word] |= bit
                out[i] = True
        return out


class Bitset:
    """Packed visited set — one bit per node in ``uint64`` words."""

    def __init__(self, num_bits: int) -> None:
        if num_bits < 0:
            raise InvalidParameterError(f"bitset size must be >= 0, got {num_bits}")
        self.num_bits = num_bits
        self.words = np.zeros((num_bits + 63) >> 6, dtype=np.uint64)

    def test(self, idx: np.ndarray) -> np.ndarray:
        """Boolean mask over ``idx``: which bits are already set."""
        shifts = (idx & 63).astype(np.uint64)
        return (self.words[idx >> 6] >> shifts) & np.uint64(1) != 0

    def set_bits(self, idx: np.ndarray) -> None:
        """Set the bits of ``idx`` (duplicates allowed)."""
        bits = np.uint64(1) << (idx & 63).astype(np.uint64)
        np.bitwise_or.at(self.words, idx >> 6, bits)

    def count(self) -> int:
        """Number of set bits."""
        # dtype pinned: a bare .sum() accumulates in the platform integer
        return int(np.unpackbits(self.words.view(np.uint8)).sum(dtype=np.int64))


def _fresh_in_slice(
    bitset: Bitset, flat: np.ndarray, *, use_numba: bool
) -> tuple[np.ndarray, np.ndarray]:
    """``(news, keep_index)`` of one flattened neighbor slice.

    ``news`` are the ranks newly marked visited; ``keep_index`` indexes
    their first occurrence back into ``flat`` (for parent/generator
    attribution).  Duplicate candidates always resolve to their first
    occurrence, so the numba and numpy routes agree exactly.
    """
    if use_numba:
        mask = _mark_fresh_numba(bitset.words, flat)
        keep = np.nonzero(mask)[0]
        return flat[keep], keep
    unseen = np.nonzero(~bitset.test(flat))[0]
    candidates = flat[unseen]
    uniq, first = np.unique(candidates, return_index=True)
    bitset.set_bits(uniq)
    return uniq, unseen[first]


def _expand_level(
    codec: NodeCodec,
    frontier: np.ndarray,
    bitset: Bitset,
    *,
    slice_nodes: int,
    want_origins: bool,
    use_numba: bool,
    on_fresh: Callable[[np.ndarray, np.ndarray | None, np.ndarray | None], None],
) -> tuple[np.ndarray, int]:
    """Expand one BFS level slice by slice; returns ``(next frontier, newly)``.

    ``on_fresh(news, origins, columns)`` is invoked per slice with the
    newly visited ranks, the frontier ranks they were reached from, and
    the neighbor-block column (generator index) used — the latter two are
    ``None`` unless ``want_origins``.  The next frontier is the ascending
    sort of all news, which keeps the flattened gather order of the *next*
    level identical to the CSR kernel's ``np.unique`` frontier.
    """
    parts: list[np.ndarray] = []
    newly = 0
    for lo in range(0, len(frontier), slice_nodes):
        part = frontier[lo : lo + slice_nodes]
        block = codec.neighbors_block(part)
        width = block.shape[1]
        if width == 0:
            continue
        flat = block.ravel()
        valid: np.ndarray | None = None
        if bool((flat < 0).any()):
            valid = np.nonzero(flat >= 0)[0]
            flat = flat[valid]
        news, keep = _fresh_in_slice(bitset, flat, use_numba=use_numba)
        if news.size == 0:
            continue
        newly += int(news.size)
        parts.append(news)
        if want_origins:
            if valid is not None:
                keep = valid[keep]
            origins = part[keep // width]
            columns = keep % width
            on_fresh(news, origins, columns)
        else:
            on_fresh(news, None, None)
    if not parts:
        return np.zeros(0, dtype=np.int64), 0
    if len(parts) == 1 and not use_numba:
        return parts[0], newly  # already sorted by np.unique
    merged = np.concatenate(parts) if len(parts) > 1 else parts[0]
    return np.sort(merged), newly


def _seed_bitset(
    codec: NodeCodec, source: int, forbidden: np.ndarray | None
) -> Bitset:
    bitset = Bitset(codec.num_nodes)
    if forbidden is not None and len(forbidden):
        bitset.set_bits(np.asarray(forbidden, dtype=np.int64))
    bitset.set_bits(np.array([source], dtype=np.int64))
    return bitset


def implicit_bfs_levels(
    codec: NodeCodec,
    source: int,
    *,
    forbidden: np.ndarray | None = None,
    want_parents: bool = False,
    want_via: bool = False,
    target: int | None = None,
    slice_nodes: int | None = None,
) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
    """Single-source BFS → ``(dist, parents, via)`` without any CSR.

    Mirrors :func:`repro.fastgraph.kernels.bfs_levels` bit for bit:
    ``dist`` is ``int32`` with ``-1`` unreached, ``forbidden`` ranks are
    never entered, ``target`` stops the sweep once its level is complete,
    and ``parents`` (when requested) picks the first occurrence in the
    frontier-major neighbor order.  ``via`` (when requested) additionally
    records the neighbor-block *column* — for generator codecs, the index
    of the generator whose edge reached each node (``-1`` at the source
    and unreached nodes), which is what the identity-rooted
    :class:`~repro.cayley.graph.DistanceOracle` stores.
    """
    dist = np.full(codec.num_nodes, -1, dtype=np.int32)
    parents = np.full(codec.num_nodes, -1, dtype=np.int64) if want_parents else None
    via = np.full(codec.num_nodes, -1, dtype=np.int64) if want_via else None
    bitset = _seed_bitset(codec, source, forbidden)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    slice_nodes = slice_nodes or default_slice_nodes()
    use_numba = numba_enabled()
    def on_fresh(
        news: np.ndarray,
        origins: np.ndarray | None,
        columns: np.ndarray | None,
    ) -> None:
        # called synchronously inside _expand_level, so it reads the
        # current level's ``depth`` from the enclosing scope
        dist[news] = depth
        if parents is not None and origins is not None:
            parents[news] = origins
        if via is not None and columns is not None:
            via[news] = columns

    while frontier.size:
        if target is not None and dist[target] >= 0:
            break
        depth += 1
        frontier, _ = _expand_level(
            codec,
            frontier,
            bitset,
            slice_nodes=slice_nodes,
            want_origins=want_parents or want_via,
            use_numba=use_numba,
            on_fresh=on_fresh,
        )
    return dist, parents, via


def implicit_source_stats(
    codec: NodeCodec,
    source: int,
    *,
    forbidden: np.ndarray | None = None,
    slice_nodes: int | None = None,
) -> tuple[int, dict[int, int], int]:
    """One exact BFS reduced on the fly — ``O(num_nodes / 8)`` memory.

    Returns ``(eccentricity, depth_counts, reached)``: the max depth, the
    ``{depth >= 1: newly-visited count}`` histogram, and the number of
    nodes reached (source included) — enough for per-source eccentricity,
    single-source distance histograms, and connectivity checks, without a
    per-node output array.
    """
    bitset = _seed_bitset(codec, source, forbidden)
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    reached = 1
    depth_counts: dict[int, int] = {}
    slice_nodes = slice_nodes or default_slice_nodes()
    use_numba = numba_enabled()

    def on_fresh(
        news: np.ndarray,
        origins: np.ndarray | None,
        columns: np.ndarray | None,
    ) -> None:
        pass  # counts are taken from _expand_level's newly total

    while frontier.size:
        depth += 1
        frontier, newly = _expand_level(
            codec,
            frontier,
            bitset,
            slice_nodes=slice_nodes,
            want_origins=False,
            use_numba=use_numba,
            on_fresh=on_fresh,
        )
        if newly:
            depth_counts[depth] = newly
            reached += newly
    return max(depth_counts) if depth_counts else 0, depth_counts, reached


def implicit_sweep_chunk(
    codec: NodeCodec,
    chunk: np.ndarray,
    *,
    forbidden: np.ndarray | None = None,
    slice_nodes: int | None = None,
) -> tuple[np.ndarray, dict[int, int], bool]:
    """Per-source BFS over the ``chunk`` source ranks, reduced like
    :func:`repro.fastgraph.kernels.sweep_chunk`.

    Returns ``(eccentricities, depth_counts, all_visited)`` with the same
    contract as the CSR chunk kernel, so
    :mod:`repro.fastgraph.parallel` reduces both payload kinds through
    one code path and the results are bit-identical for any job count.
    Unlike the CSR kernel there is no batched matrix product — each
    source costs one full implicit BFS — but there is also no ``O(edges)``
    adjacency to build or ship to workers.
    """
    eccentricities = np.zeros(len(chunk), dtype=np.int64)
    depth_counts: dict[int, int] = {}
    all_visited = True
    total = codec.num_nodes - (len(forbidden) if forbidden is not None else 0)
    for i, source in enumerate(chunk):
        ecc, counts, reached = implicit_source_stats(
            codec, int(source), forbidden=forbidden, slice_nodes=slice_nodes
        )
        eccentricities[i] = ecc
        for depth, newly in counts.items():
            depth_counts[depth] = depth_counts.get(depth, 0) + newly
        all_visited = all_visited and reached == total
    return eccentricities, depth_counts, all_visited
