"""Dense integer-index fast graph backend (codecs + CSR + array BFS).

See :mod:`repro.fastgraph.codecs` for the node ↔ dense-int codecs and the
registry, :mod:`repro.fastgraph.csr` for CSR adjacency construction and
the disk cache, :mod:`repro.fastgraph.kernels` for the vectorized BFS
kernels, :mod:`repro.fastgraph.implicit` for the CSR-free kernels that
expand frontiers straight from packed ranks, :mod:`repro.fastgraph.parallel`
for the process-pool all-sources sweep (either substrate), and
:mod:`repro.fastgraph.backend` for the per-topology integration point
(:func:`get_fastgraph`).

Only the numpy-optional modules are re-exported here; the numpy-eager
ones (``csr``, ``kernels``, ``implicit``, ``parallel``) are imported
lazily by their consumers so ``import repro.fastgraph`` works without
numpy.

The "Fast backend" section of ``docs/architecture.md`` documents when the
backend engages and when pure-Python label BFS remains in charge.
"""

from repro.fastgraph.backend import FastGraph, get_fastgraph
from repro.fastgraph.codecs import (
    NodeCodec,
    codec_for,
    codec_for_group,
    register_codec,
)
__all__ = [
    "FastGraph",
    "get_fastgraph",
    "NodeCodec",
    "codec_for",
    "codec_for_group",
    "register_codec",
]
