"""Bijective node ↔ dense-integer codecs for the fast graph backend.

A :class:`NodeCodec` maps every vertex label of a topology family onto the
dense integer range ``0 .. num_nodes - 1`` (``rank``) and back (``unrank``).
Once labels are dense integers, adjacency becomes a CSR array pair
(:mod:`repro.fastgraph.csr`) and BFS becomes numpy array arithmetic
(:mod:`repro.fastgraph.kernels`) instead of dict-of-tuples walking.

Packings (all mixed-radix / bit-packed, so rank and unrank are O(1)):

* hypercube ``H_m`` — labels already are dense ints: identity.
* butterfly group element ``(PI, CI)`` — ``idx = PI << n | CI`` (dense
  because ``PI < n`` and ``CI < 2^n``).
* hyper-butterfly ``(h, (PI, CI))`` — product packing
  ``idx = h * (n·2^n) + (PI << n | CI)``, the ``(h << n | CI) * n + PI``
  family of packings with the butterfly part kept contiguous so the
  butterfly generators act on aligned bit fields.
* generic products — ``idx = rank_left * num_right + rank_right``.

Cayley-backed codecs additionally implement :meth:`NodeCodec.apply_generator`
— the **vectorized** right-multiplication of a whole array of ranked nodes
by one group generator — from which a complete neighbor table (and hence a
CSR) is built in a handful of numpy operations, with no per-node Python.

The registry (:func:`register_codec` / :func:`codec_for`) is keyed by
topology class name and reads only public attributes, so registering a
codec never imports topology modules (no import cycles) and any external
:class:`~repro.topologies.base.Topology` subclass can opt in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

from repro.errors import InvalidLabelError

if TYPE_CHECKING:  # numpy stays a lazy import at runtime
    import numpy as np

__all__ = [
    "NodeCodec",
    "IntRangeCodec",
    "HypercubeCodec",
    "ButterflyElementCodec",
    "ProductCodec",
    "PairRadixCodec",
    "WrappedButterflyCodec",
    "DeBruijnCodec",
    "CycleCodec",
    "TorusCodec",
    "EnumerationCodec",
    "register_codec",
    "registered_codec_families",
    "codec_for",
    "codec_for_group",
]


class NodeCodec:
    """Bijection between a family's vertex labels and ``0 .. num_nodes-1``."""

    #: number of vertices — ranks are exactly ``range(num_nodes)``
    num_nodes: int = 0

    #: stable identity string for disk-level CSR caching, or ``None`` when
    #: the codec is instance-bound (e.g. enumeration codecs)
    cache_key: str | None = None

    def rank(self, label: Hashable) -> int:
        raise NotImplementedError

    def unrank(self, idx: int) -> Hashable:
        raise NotImplementedError

    # Optional vectorized services ----------------------------------------

    #: generator labels (Cayley families) used to build the neighbor table
    generators: tuple[Any, ...] | None = None

    def apply_generator(self, idx: np.ndarray, gen: Any) -> np.ndarray:
        """Vectorized right-multiplication of ranked nodes by ``gen``.

        ``idx`` is a numpy integer array; returns the ranked images.  Only
        Cayley-element codecs implement this.
        """
        raise NotImplementedError

    def neighbor_table(self) -> np.ndarray | None:
        """``(num_nodes, degree)`` int array of ranked neighbors, or ``None``.

        Column ``i`` of a Cayley codec's table is generator ``i`` applied to
        every vertex — the column order matches ``self.generators`` so BFS
        parent columns double as generator indices for the oracle.
        """
        if self.generators is None:
            return None
        import numpy as np

        if not self.generators:
            return np.zeros((self.num_nodes, 0), dtype=np.int64)
        idx = np.arange(self.num_nodes, dtype=np.int64)
        return np.column_stack([self.apply_generator(idx, s) for s in self.generators])

    # Vectorized group arithmetic ------------------------------------------

    def supports_group_ops(self) -> bool:
        """Whether :meth:`inverse_block` / :meth:`multiply_block` work.

        True for Cayley-element codecs whose ranks *are* group elements
        under a packed encoding, so whole arrays of elements can be
        inverted and composed without unranking.  The flow-level traffic
        engine uses this to turn ``(source, target)`` rank arrays into
        quotient elements ``source⁻¹·target`` for bulk route synthesis.
        """
        return False

    def inverse_block(self, idx: np.ndarray) -> np.ndarray:
        """Vectorized group inverse of ranked elements."""
        raise NotImplementedError

    def multiply_block(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized group product ``a · b`` of ranked element arrays."""
        raise NotImplementedError

    # Implicit adjacency ---------------------------------------------------

    def supports_implicit(self) -> bool:
        """Whether :meth:`neighbors_block` works on arbitrary rank arrays.

        True for Cayley-element codecs (the default implementation applies
        every generator) and for codecs that override
        :meth:`neighbors_block` with direct bit arithmetic.  Codecs that can
        only enumerate (:class:`EnumerationCodec`, boundary meshes) return
        ``False`` and stay CSR-only.
        """
        return self.generators is not None

    def neighbors_block(self, idx: np.ndarray) -> np.ndarray:
        """``(len(idx), width)`` int64 array of ranked neighbors of ``idx``.

        The implicit-adjacency contract behind :mod:`repro.fastgraph.implicit`:
        adjacency is computed on the fly from the packed integer ranks, so a
        BFS frontier costs ``O(frontier · degree)`` memory instead of the
        ``O(edges)`` a CSR build needs.  Entries ``< 0`` are padding (used by
        irregular families such as de Bruijn); the valid entries of each row
        appear in exactly the order the CSR adjacency row lists them, so BFS
        parent tie-breaking is bit-identical across backends.
        """
        if self.generators is None:
            raise NotImplementedError
        import numpy as np

        if not self.generators:
            return np.zeros((len(idx), 0), dtype=np.int64)
        return np.column_stack([self.apply_generator(idx, s) for s in self.generators])


class IntRangeCodec(NodeCodec):
    """Identity codec for families whose labels already are dense ints."""

    def __init__(
        self, num_nodes: int, *, offset: int = 0, cache_key: str | None = None
    ) -> None:
        self.num_nodes = num_nodes
        self.offset = offset
        self.cache_key = cache_key

    def rank(self, label: int) -> int:
        return label - self.offset

    def unrank(self, idx: int) -> int:
        return idx + self.offset


class HypercubeCodec(IntRangeCodec):
    """``H_m`` / ``(Z_2)^m`` — int labels, generators act by XOR."""

    def __init__(self, m: int, generators: Iterable[int] | None = None) -> None:
        super().__init__(1 << m, cache_key=f"hypercube:{m}")
        self.m = m
        self.generators = (
            tuple(generators) if generators is not None else tuple(1 << i for i in range(m))
        )

    def apply_generator(self, idx: np.ndarray, gen: int) -> np.ndarray:
        return idx ^ gen

    def supports_group_ops(self) -> bool:
        return True

    def inverse_block(self, idx: np.ndarray) -> np.ndarray:
        # every element of (Z_2)^m is an involution
        return idx

    def multiply_block(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a ^ b


class ButterflyElementCodec(NodeCodec):
    """Butterfly group ``Z_n ⋉ (Z_2)^n`` elements ``(x, c)`` → ``x << n | c``."""

    def __init__(
        self, n: int, generators: Iterable[tuple[int, int]] | None = None
    ) -> None:
        self.n = n
        self.num_nodes = n << n
        self.cache_key = f"butterfly:{n}"
        if generators is None:
            # the paper's g, f, g^-1, f^-1 in ButterflyGroup's order
            generators = [(1, 0), (1, 1), (n - 1, 0), (n - 1, 1 << (n - 1))]
        self.generators = tuple(generators)

    def rank(self, label: tuple[int, int]) -> int:
        x, c = label
        return (x << self.n) | c

    def unrank(self, idx: int) -> tuple[int, int]:
        return (idx >> self.n, idx & ((1 << self.n) - 1))

    def apply_generator(self, idx: np.ndarray, gen: tuple[int, int]) -> np.ndarray:
        # (x, c) · (dx, dc) = ((x + dx) mod n, c ^ rot_left(dc, x))
        n = self.n
        word_mask = (1 << n) - 1
        dx, dc = gen
        x = idx >> n
        c = idx & word_mask
        x2 = (x + dx) % n
        rotated = ((dc << x) | (dc >> (n - x))) & word_mask
        return (x2 << n) | (c ^ rotated)

    def supports_group_ops(self) -> bool:
        return True

    def inverse_block(self, idx: np.ndarray) -> np.ndarray:
        # (x, c)^-1 = (-x mod n, rot_right(c, x)) — mirrors
        # ButterflyGroup.inverse with the rotation done on packed words
        # (x = 0 degenerates to the identity rotation, as in
        # apply_generator, because c >> 0 | c << n masks back to c).
        n = self.n
        word_mask = (1 << n) - 1
        x = idx >> n
        c = idx & word_mask
        rot = ((c >> x) | (c << (n - x))) & word_mask
        return (((n - x) % n) << n) | rot

    def multiply_block(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # (x, c)·(dx, dc) = ((x + dx) mod n, c ^ rot_left(dc, x)) with the
        # per-element rotation amount taken from the left operand.
        n = self.n
        word_mask = (1 << n) - 1
        x = a >> n
        c = a & word_mask
        dx = b >> n
        dc = b & word_mask
        rot = ((dc << x) | (dc >> (n - x))) & word_mask
        return (((x + dx) % n) << n) | (c ^ rot)


class ProductCodec(NodeCodec):
    """Pair labels ``(a, b)`` → ``rank_left(a) * num_right + rank_right(b)``.

    Used for direct-product groups (hyper-butterfly: hypercube × butterfly,
    with per-factor generator application) and for Cartesian-product
    topologies (neighbor table = left moves ⊕ right moves when both factor
    tables exist).
    """

    def __init__(
        self,
        left: NodeCodec,
        right: NodeCodec,
        *,
        generators: Iterable[tuple] | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self.num_nodes = left.num_nodes * right.num_nodes
        if left.cache_key and right.cache_key:
            self.cache_key = f"product:({left.cache_key})x({right.cache_key})"
        self.generators = tuple(generators) if generators is not None else None

    def rank(self, label: tuple) -> int:
        a, b = label
        return self.left.rank(a) * self.right.num_nodes + self.right.rank(b)

    def unrank(self, idx: int) -> tuple:
        a, b = divmod(idx, self.right.num_nodes)
        return (self.left.unrank(a), self.right.unrank(b))

    def apply_generator(self, idx: np.ndarray, gen: tuple) -> np.ndarray:
        ga, gb = gen
        nr = self.right.num_nodes
        a = idx // nr
        b = idx % nr
        return self.left.apply_generator(a, ga) * nr + self.right.apply_generator(b, gb)

    def supports_group_ops(self) -> bool:
        # componentwise = the direct-product group law, valid whenever both
        # factor codecs rank group elements (hyper-butterfly: cube × fly)
        return self.left.supports_group_ops() and self.right.supports_group_ops()

    def inverse_block(self, idx: np.ndarray) -> np.ndarray:
        import numpy as np

        nr = self.right.num_nodes
        a, b = np.divmod(idx, nr)
        return self.left.inverse_block(a) * nr + self.right.inverse_block(b)

    def multiply_block(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        import numpy as np

        nr = self.right.num_nodes
        al, ar = np.divmod(a, nr)
        bl, br = np.divmod(b, nr)
        return self.left.multiply_block(al, bl) * nr + self.right.multiply_block(ar, br)

    def neighbor_table(self) -> np.ndarray | None:
        if self.generators is not None:
            return super().neighbor_table()
        # Cartesian product: (u, x) ~ (u', x) for u~u' plus (u, x') for x~x'
        lt = self.left.neighbor_table()
        rt = self.right.neighbor_table()
        if lt is None or rt is None:
            return None
        import numpy as np

        nl, nr = self.left.num_nodes, self.right.num_nodes
        a = np.repeat(np.arange(nl, dtype=np.int64), nr)
        b = np.tile(np.arange(nr, dtype=np.int64), nl)
        left_moves = lt[a] * nr + b[:, None]
        right_moves = a[:, None] * nr + rt[b]
        return np.concatenate([left_moves, right_moves], axis=1)

    def supports_implicit(self) -> bool:
        if self.generators is not None:
            return True
        return self.left.supports_implicit() and self.right.supports_implicit()

    def neighbors_block(self, idx: np.ndarray) -> np.ndarray:
        if self.generators is not None:
            return super().neighbors_block(idx)
        # Cartesian combination — left-factor moves first, then right-factor
        # moves, matching both CartesianProduct.neighbors and neighbor_table.
        import numpy as np

        nr = self.right.num_nodes
        a, b = np.divmod(idx, nr)
        lb = self.left.neighbors_block(a)
        rb = self.right.neighbors_block(b)
        left_moves = np.where(lb >= 0, lb * nr + b[:, None], np.int64(-1))
        right_moves = np.where(rb >= 0, a[:, None] * nr + rb, np.int64(-1))
        return np.concatenate([left_moves, right_moves], axis=1)


class PairRadixCodec(NodeCodec):
    """Plain mixed-radix pair labels ``(a, b)`` with ``0 <= b < radix``."""

    def __init__(
        self, num_left: int, radix: int, *, cache_key: str | None = None
    ) -> None:
        self.radix = radix
        self.num_nodes = num_left * radix
        self.cache_key = cache_key

    def rank(self, label: tuple[int, int]) -> int:
        a, b = label
        return a * self.radix + b

    def unrank(self, idx: int) -> tuple[int, int]:
        return divmod(idx, self.radix)


class WrappedButterflyCodec(PairRadixCodec):
    """Classic ``⟨word, level⟩`` butterfly ``B_n`` — ``idx = word * n + level``."""

    def __init__(self, n: int) -> None:
        super().__init__(1 << n, n, cache_key=f"wrapped-butterfly:{n}")
        self.n = n

    def neighbor_table(self) -> np.ndarray:
        import numpy as np

        return self.neighbors_block(np.arange(self.num_nodes, dtype=np.int64))

    def supports_implicit(self) -> bool:
        return True

    def neighbors_block(self, idx: np.ndarray) -> np.ndarray:
        import numpy as np

        n = self.n
        w, level = np.divmod(idx, n)
        up = (level + 1) % n
        down = (level - 1) % n
        return np.column_stack(
            [
                w * n + up,
                (w ^ (1 << level)) * n + up,
                w * n + down,
                (w ^ (1 << down)) * n + down,
            ]
        )


class DeBruijnCodec(IntRangeCodec):
    """Undirected simple binary de Bruijn ``D_n`` — int labels, padded rows.

    The simple undirected de Bruijn graph is *irregular* (self-loops and
    shift-pair merges drop edges at ``0…0``/``1…1`` and alternating words),
    so implicit rows are padded with ``-1`` where a candidate duplicates
    the vertex itself or an earlier candidate — reproducing exactly the
    ``seen``-set dedup order of :meth:`repro.topologies.debruijn.DeBruijn.neighbors`.
    """

    def __init__(self, n: int) -> None:
        super().__init__(1 << n, cache_key=f"debruijn:{n}")
        self.n = n

    def supports_implicit(self) -> bool:
        return True

    def neighbors_block(self, idx: np.ndarray) -> np.ndarray:
        import numpy as np

        word_mask = (1 << self.n) - 1
        # candidate order mirrors DeBruijn.neighbors: shift-left b=0,1 then
        # shift-right b=0,1, each kept only if new w.r.t. v and predecessors
        c0 = (idx << 1) & word_mask
        c1 = c0 | 1
        c2 = idx >> 1
        c3 = c2 | (1 << (self.n - 1))
        pad = np.int64(-1)
        return np.column_stack(
            [
                np.where(c0 != idx, c0, pad),
                np.where(c1 != idx, c1, pad),
                np.where((c2 != idx) & (c2 != c0) & (c2 != c1), c2, pad),
                np.where(
                    (c3 != idx) & (c3 != c0) & (c3 != c1) & (c3 != c2), c3, pad
                ),
            ]
        )


class CycleCodec(IntRangeCodec):
    """Cycle ``C_k`` — int labels, successor/predecessor adjacency."""

    def __init__(self, k: int) -> None:
        super().__init__(k, cache_key=f"cycle:{k}")
        self.k = k

    def neighbor_table(self) -> np.ndarray:
        import numpy as np

        return self.neighbors_block(np.arange(self.k, dtype=np.int64))

    def supports_implicit(self) -> bool:
        return True

    def neighbors_block(self, idx: np.ndarray) -> np.ndarray:
        import numpy as np

        return np.column_stack([(idx + 1) % self.k, (idx - 1) % self.k])


class TorusCodec(PairRadixCodec):
    """2-D torus ``(n1, n2)`` — pair labels, four wrap-around moves."""

    def __init__(self, n1: int, n2: int) -> None:
        super().__init__(n1, n2, cache_key=f"torus:{n1},{n2}")
        self.n1 = n1
        self.n2 = n2

    def neighbor_table(self) -> np.ndarray:
        import numpy as np

        return self.neighbors_block(np.arange(self.num_nodes, dtype=np.int64))

    def supports_implicit(self) -> bool:
        return True

    def neighbors_block(self, idx: np.ndarray) -> np.ndarray:
        import numpy as np

        i, j = np.divmod(idx, self.n2)
        return np.column_stack(
            [
                ((i + 1) % self.n1) * self.n2 + j,
                ((i - 1) % self.n1) * self.n2 + j,
                i * self.n2 + (j + 1) % self.n2,
                i * self.n2 + (j - 1) % self.n2,
            ]
        )


class EnumerationCodec(NodeCodec):
    """Universal fallback: rank by enumeration order of ``topology.nodes()``.

    O(V) memory and no vectorized adjacency — used only where an algorithm
    explicitly asks for an array substrate on an unregistered family (for
    example the batched all-eccentricity diameter of irregular graphs).
    """

    def __init__(self, labels: Iterable[Hashable]) -> None:
        self._labels = list(labels)
        self._index = {v: i for i, v in enumerate(self._labels)}
        self.num_nodes = len(self._labels)
        self.cache_key = None

    def rank(self, label: Hashable) -> int:
        try:
            return self._index[label]
        except KeyError:
            raise InvalidLabelError(f"{label!r} is not a known node") from None

    def unrank(self, idx: int) -> Hashable:
        return self._labels[idx]


# Registry ----------------------------------------------------------------

_REGISTRY: dict[str, Callable[[Any], NodeCodec | None]] = {}


def register_codec(type_name: str | type, factory: Callable[[Any], NodeCodec | None]) -> None:
    """Register ``factory(topology) -> NodeCodec | None`` for a class (name).

    Keyed by class *name* so registration requires no imports of topology
    modules; external subclasses opt in with
    ``register_codec(MyTopology, my_factory)``.
    """
    name = type_name if isinstance(type_name, str) else type_name.__name__
    _REGISTRY[name] = factory


def registered_codec_families() -> tuple[str, ...]:
    """The registered topology class names, sorted — the verification layer
    (``hyperbutterfly prove``, HB806) joins this against the invariant-spec
    registry of :mod:`repro.topologies.invariants`."""
    return tuple(sorted(_REGISTRY))


def codec_for(topology: Any) -> NodeCodec | None:
    """The registered codec for ``topology``, or ``None`` (use fallbacks)."""
    for klass in type(topology).__mro__:
        factory = _REGISTRY.get(klass.__name__)
        if factory is not None:
            return factory(topology)
    return None


def codec_for_group(group: Any) -> NodeCodec | None:
    """A codec over *group elements* for the standard groups, else ``None``."""
    name = type(group).__name__
    if name == "HypercubeGroup":
        return HypercubeCodec(group.m)
    if name == "ButterflyGroup":
        return ButterflyElementCodec(group.n)
    if name == "DirectProductGroup":
        left = codec_for_group(group.left)
        right = codec_for_group(group.right)
        if left is None or right is None:
            return None
        return ProductCodec(left, right)
    return None


# Built-in families --------------------------------------------------------


def _hypercube_factory(t: Any) -> NodeCodec:
    return HypercubeCodec(t.m)


def _cayley_butterfly_factory(t: Any) -> NodeCodec:
    return ButterflyElementCodec(t.n, generators=t.gens.generators)


def _wrapped_butterfly_factory(t: Any) -> NodeCodec:
    return WrappedButterflyCodec(t.n)


def _hyper_butterfly_factory(t: Any) -> NodeCodec:
    codec = ProductCodec(
        HypercubeCodec(t.m),
        ButterflyElementCodec(t.n),
        generators=t.gens.generators,
    )
    codec.cache_key = f"hyperbutterfly:{t.m},{t.n}"
    return codec


def _debruijn_factory(t: Any) -> NodeCodec:
    return DeBruijnCodec(t.n)


def _cycle_factory(t: Any) -> NodeCodec:
    return CycleCodec(t.k)


def _torus_factory(t: Any) -> NodeCodec:
    return TorusCodec(t.n1, t.n2)


def _mesh_factory(t: Any) -> NodeCodec:
    # open mesh: boundary irregularity → rank only, generic CSR build
    return PairRadixCodec(t.n1, t.n2, cache_key=f"mesh:{t.n1},{t.n2}")


def _tree_factory(t: Any) -> NodeCodec:
    return IntRangeCodec(t.num_nodes, offset=1, cache_key=f"tree:{t.k}")


def _product_factory(t: Any) -> NodeCodec | None:
    left = codec_for(t.left)
    right = codec_for(t.right)
    if left is None or right is None:
        return None
    return ProductCodec(left, right)


register_codec("Hypercube", _hypercube_factory)
register_codec("CayleyButterfly", _cayley_butterfly_factory)
register_codec("WrappedButterfly", _wrapped_butterfly_factory)
register_codec("HyperButterfly", _hyper_butterfly_factory)
register_codec("DeBruijn", _debruijn_factory)
register_codec("Cycle", _cycle_factory)
register_codec("Torus", _torus_factory)
register_codec("Mesh", _mesh_factory)
register_codec("CompleteBinaryTree", _tree_factory)
register_codec("CartesianProduct", _product_factory)
