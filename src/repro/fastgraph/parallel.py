"""Process-pool all-sources BFS sweeps over a shared CSR adjacency.

The batched boolean BFS kernel (:func:`repro.fastgraph.kernels.sweep_chunk`)
is embarrassingly parallel across source chunks, but a single Python
process keeps scipy's sparse products on one core.  This module spreads
the chunks over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* the CSR arrays are pickled **once per worker** (pool ``initializer``),
  not once per chunk — workers rebuild the scipy adjacency lazily on
  their first chunk and reuse it;
* chunk boundaries are a pure function of ``(num_nodes, batch)`` and the
  reduction (``max`` over eccentricities via order-preserving
  concatenation, integer ``+`` over histogram counts) is associative and
  order-preserved by ``executor.map`` — the result is **bit-identical**
  for any ``jobs`` value, including the in-process ``jobs=1`` path, which
  runs the very same chunk kernel without a pool;
* consumers (``exact_diameter``/``distance_profile``/the metrics CLI's
  ``--jobs``) get both reductions from one sweep in a
  :class:`SweepResult`.

Determinism for any job count is pinned by
``tests/fastgraph/test_parallel.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import DisconnectedError, InvalidParameterError
from repro.fastgraph.csr import CSRAdjacency
from repro.fastgraph.kernels import sweep_chunk

__all__ = ["SweepResult", "parallel_sweep", "source_chunks"]

#: per-worker state, populated by the pool initializer (fork or spawn safe)
_state: dict[str, Any] = {}


@dataclass(frozen=True)
class SweepResult:
    """Both reductions of one all-sources BFS sweep."""

    eccentricities: np.ndarray  # int64, one per node rank
    histogram: dict[int, int]  # distance -> ordered-pair count (incl. 0)

    def diameter(self) -> int:
        return int(self.eccentricities.max())


def source_chunks(total: int, batch: int) -> list[tuple[int, int]]:
    """Chunk bounds ``[lo, hi)`` covering ``range(total)`` in ``batch`` steps.

    A pure function of its arguments so serial and pooled sweeps cut the
    source space identically.
    """
    return [(lo, min(lo + batch, total)) for lo in range(0, total, batch)]


def _init_worker(
    indptr: np.ndarray, indices: np.ndarray, uniform_degree: int | None
) -> None:
    """Rebuild the CSR once per worker; the scipy matrix is built lazily."""
    _state["csr"] = CSRAdjacency(
        indptr=indptr, indices=indices, uniform_degree=uniform_degree
    )
    _state["adjacency"] = None


def _run_chunk(bounds: tuple[int, int]) -> tuple[np.ndarray, dict[int, int], bool]:
    """Worker body: sweep one chunk against the worker-cached adjacency."""
    csr: CSRAdjacency = _state["csr"]
    if _state["adjacency"] is None:
        _state["adjacency"] = csr.to_scipy()
    lo, hi = bounds
    chunk = np.arange(lo, hi, dtype=np.int64)
    return sweep_chunk(_state["adjacency"], csr.num_nodes, chunk)


def parallel_sweep(
    csr: CSRAdjacency,
    *,
    jobs: int = 1,
    batch: int = 128,
    check_connected: bool = True,
    name: str = "graph",
) -> SweepResult:
    """All-sources eccentricities + distance histogram, ``jobs`` processes.

    ``jobs=1`` runs the chunk loop in-process (no pool, no pickling) and
    is the reference the pooled paths must match bit-for-bit.
    """
    if jobs < 1:
        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    if batch < 1:
        raise InvalidParameterError(f"batch must be >= 1, got {batch}")
    total = csr.num_nodes
    bounds = source_chunks(total, batch)
    if jobs == 1 or len(bounds) <= 1:
        adjacency = csr.to_scipy()
        results = [
            sweep_chunk(adjacency, total, np.arange(lo, hi, dtype=np.int64))
            for lo, hi in bounds
        ]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(jobs, len(bounds)),
            initializer=_init_worker,
            initargs=(csr.indptr, csr.indices, csr.uniform_degree),
        ) as pool:
            # map preserves submission order -> deterministic reduction
            results = list(pool.map(_run_chunk, bounds))
    eccentricities = (
        np.concatenate([ecc for ecc, _, _ in results])
        if results
        else np.zeros(0, dtype=np.int64)
    )
    counts: dict[int, int] = {0: total}
    all_visited = True
    for _, depth_counts, visited in results:
        all_visited = all_visited and visited
        for depth, newly in depth_counts.items():
            counts[depth] = counts.get(depth, 0) + newly
    if check_connected and not all_visited:
        raise DisconnectedError(f"{name} is disconnected")
    return SweepResult(
        eccentricities=eccentricities, histogram=dict(sorted(counts.items()))
    )
