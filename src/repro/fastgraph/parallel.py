"""Process-pool multi-source BFS sweeps over a shared adjacency payload.

The chunked sweep is embarrassingly parallel across source chunks, but a
single Python process keeps the kernels on one core.  This module spreads
the chunks over a :class:`~concurrent.futures.ProcessPoolExecutor` and is
**payload-aware** — the first argument picks the worker substrate:

* a :class:`~repro.fastgraph.csr.CSRAdjacency` ships its ``(indptr,
  indices)`` arrays **once per worker** (pool ``initializer``, not once
  per chunk); workers rebuild the scipy adjacency lazily and run the
  batched boolean kernel (:func:`repro.fastgraph.kernels.sweep_chunk`);
* a :class:`~repro.fastgraph.codecs.NodeCodec` with implicit adjacency
  ships only the codec itself — a few integers, the whole "spec" of the
  family — and workers expand frontiers CSR-free
  (:func:`repro.fastgraph.implicit.implicit_sweep_chunk`).  Nothing
  ``O(edges)`` ever crosses a process boundary, which is what lets
  multi-source sweeps run at scales where no CSR fits.

Chunk boundaries are a pure function of ``(num_sources, batch)`` and the
reduction (``max`` over eccentricities via order-preserving concatenation,
integer ``+`` over histogram counts) is associative and order-preserved by
``executor.map`` — the result is **bit-identical** for any ``jobs`` value
*and* for either payload kind, including the in-process ``jobs=1`` path,
which runs the very same chunk kernels without a pool.

The pool pins an explicit multiprocessing start method (``spawn`` unless
overridden via ``start_method=`` or ``$REPRO_POOL_START_METHOD``) instead
of inheriting the platform default: fork and spawn workers see different
module state, and a sweep must not change meaning between Linux and
macOS.  Workers carry no state besides what the initializer ships, so
fork and spawn are bit-identical — also pinned by the tests.

Determinism for any job count, both payloads, and both start methods is
pinned by ``tests/fastgraph/test_parallel.py``.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Union

import numpy as np

from repro.errors import DisconnectedError, InvalidParameterError
from repro.fastgraph.codecs import NodeCodec
from repro.fastgraph.csr import CSRAdjacency
from repro.fastgraph.guard import install_errstate_from_env
from repro.fastgraph.kernels import sweep_chunk

__all__ = ["SweepResult", "parallel_sweep", "source_chunks", "resolve_start_method"]

#: start-method override honoured when ``start_method=None`` is passed
START_METHOD_ENV = "REPRO_POOL_START_METHOD"

#: a sweep substrate: materialized CSR arrays, or a tiny picklable codec
SweepPayload = Union[CSRAdjacency, NodeCodec]

#: per-worker state, populated by the pool initializer (fork or spawn safe)
_state: dict[str, Any] = {}


@dataclass(frozen=True)
class SweepResult:
    """Both reductions of one multi-source BFS sweep."""

    eccentricities: np.ndarray  # int64, one per source
    histogram: dict[int, int]  # distance -> ordered-pair count (incl. 0)

    def diameter(self) -> int:
        return int(self.eccentricities.max())


def source_chunks(total: int, batch: int) -> list[tuple[int, int]]:
    """Chunk bounds ``[lo, hi)`` covering ``range(total)`` in ``batch`` steps.

    A pure function of its arguments so serial and pooled sweeps cut the
    source space identically.
    """
    return [(lo, min(lo + batch, total)) for lo in range(0, total, batch)]


def resolve_start_method(start_method: str | None = None) -> str:
    """The pool start method: explicit arg, else env override, else spawn.

    ``spawn`` is the deliberate default — it behaves identically on every
    platform and inherits no live parent state, so a sweep cannot change
    meaning between Linux (fork default) and macOS/Windows (spawn).
    """
    return start_method or os.environ.get(START_METHOD_ENV) or "spawn"


def _init_worker_csr(
    indptr: np.ndarray, indices: np.ndarray, uniform_degree: int | None
) -> None:
    """Rebuild the CSR once per worker; the scipy matrix is built lazily."""
    install_errstate_from_env()  # sanitizer trap survives spawn
    _state["csr"] = CSRAdjacency(
        indptr=indptr, indices=indices, uniform_degree=uniform_degree
    )
    _state["adjacency"] = None
    _state["codec"] = None


def _init_worker_implicit(codec: NodeCodec) -> None:
    """Store the codec spec — the only state an implicit worker needs."""
    install_errstate_from_env()  # sanitizer trap survives spawn
    _state["codec"] = codec
    _state["csr"] = None


def _run_chunk(bounds: tuple[int, int]) -> tuple[np.ndarray, dict[int, int], bool]:
    """Worker body: sweep one chunk against the worker-cached substrate."""
    lo, hi = bounds
    chunk = np.arange(lo, hi, dtype=np.int64)
    codec: NodeCodec | None = _state.get("codec")
    if codec is not None:
        from repro.fastgraph.implicit import implicit_sweep_chunk

        return implicit_sweep_chunk(codec, chunk)
    csr: CSRAdjacency = _state["csr"]
    if _state["adjacency"] is None:
        # per-worker lazy cache: the scipy build is deterministic and the
        # mutation never leaves the child, so chunk results are unaffected
        _state["adjacency"] = csr.to_scipy()  # reprolint: disable=HB702 -- worker-local memoization of a pure function of initializer state
    return sweep_chunk(_state["adjacency"], csr.num_nodes, chunk)


def _run_chunks_inline(
    payload: SweepPayload, bounds: list[tuple[int, int]]
) -> list[tuple[np.ndarray, dict[int, int], bool]]:
    """The ``jobs=1`` reference path — same chunk kernels, no pool."""
    if isinstance(payload, NodeCodec):
        from repro.fastgraph.implicit import implicit_sweep_chunk

        return [
            implicit_sweep_chunk(payload, np.arange(lo, hi, dtype=np.int64))
            for lo, hi in bounds
        ]
    adjacency = payload.to_scipy()
    return [
        sweep_chunk(adjacency, payload.num_nodes, np.arange(lo, hi, dtype=np.int64))
        for lo, hi in bounds
    ]


def parallel_sweep(
    payload: SweepPayload,
    *,
    jobs: int = 1,
    batch: int = 128,
    check_connected: bool = True,
    name: str = "graph",
    start_method: str | None = None,
) -> SweepResult:
    """All-sources eccentricities + distance histogram, ``jobs`` processes.

    ``payload`` selects the substrate (CSR arrays or an implicit codec —
    see the module docstring); ``jobs=1`` runs the chunk loop in-process
    (no pool, no pickling) and is the reference the pooled paths must
    match bit-for-bit.  ``start_method`` pins the pool's multiprocessing
    context (default: :func:`resolve_start_method` — spawn unless
    ``$REPRO_POOL_START_METHOD`` overrides it).
    """
    if jobs < 1:
        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    if batch < 1:
        raise InvalidParameterError(f"batch must be >= 1, got {batch}")
    if isinstance(payload, NodeCodec) and not payload.supports_implicit():
        raise InvalidParameterError(
            f"codec {type(payload).__name__} has no implicit adjacency; "
            "pass its CSRAdjacency instead"
        )
    total = payload.num_nodes
    bounds = source_chunks(total, batch)
    if jobs == 1 or len(bounds) <= 1:
        results = _run_chunks_inline(payload, bounds)
    else:
        from concurrent.futures import ProcessPoolExecutor

        if isinstance(payload, NodeCodec):
            initializer: Any = _init_worker_implicit
            initargs: tuple[Any, ...] = (payload,)
        else:
            initializer = _init_worker_csr
            initargs = (payload.indptr, payload.indices, payload.uniform_degree)
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(bounds)),
            mp_context=multiprocessing.get_context(resolve_start_method(start_method)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            # map preserves submission order -> deterministic reduction
            results = list(pool.map(_run_chunk, bounds))
    eccentricities = (
        np.concatenate([ecc for ecc, _, _ in results])
        if results
        else np.zeros(0, dtype=np.int64)
    )
    counts: dict[int, int] = {0: total}
    all_visited = True
    for _, depth_counts, visited in results:
        all_visited = all_visited and visited
        for depth, newly in depth_counts.items():
            counts[depth] = counts.get(depth, 0) + newly
    if check_connected and not all_visited:
        raise DisconnectedError(f"{name} is disconnected")
    return SweepResult(
        eccentricities=eccentricities, histogram=dict(sorted(counts.items()))
    )
