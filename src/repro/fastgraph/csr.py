"""CSR adjacency construction for codec-backed topologies.

A :class:`CSRAdjacency` is the classic ``(indptr, indices)`` pair over the
codec's dense integer ranks.  Construction takes one of two routes:

* **vectorized** — the codec supplies a ``(num_nodes, degree)`` neighbor
  table built from pure numpy bit arithmetic (Cayley families, wrapped
  butterfly, cycles, tori, products of those).  Cost: a few array ops.
* **generic** — one Python pass over ``topology.neighbors`` per node for
  families with no vectorized adjacency (de Bruijn irregularity, meshes
  with boundaries, enumeration codecs).  This path may additionally be
  cached to disk so repeated processes skip the pass.

Disk cache: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/``, one ``.npz`` per
``(codec.cache_key, repro.__version__)`` — bumping the package version
invalidates every cached CSR.  Only generic builds of reasonably large
instances are cached (vectorized builds are cheaper than the disk
round-trip).  All cache I/O is best-effort: failures fall back to an
in-memory build.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.fastgraph.codecs import NodeCodec

if TYPE_CHECKING:  # runtime import would cycle through topologies.base
    from repro.topologies.base import Topology

__all__ = ["CSRAdjacency", "build_csr", "cache_dir", "cache_path"]

#: generic builds below this many nodes are not worth a disk round-trip
_CACHE_MIN_NODES = 4096


@dataclass
class CSRAdjacency:
    """Compressed sparse row adjacency over dense node ranks."""

    indptr: np.ndarray  # int64, shape (num_nodes + 1,)
    indices: np.ndarray  # int32, shape (num_arcs,)
    uniform_degree: int | None = None

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_arcs(self) -> int:
        return len(self.indices)

    def neighbors_of(self, idx: int) -> np.ndarray:
        return self.indices[self.indptr[idx] : self.indptr[idx + 1]]

    def table(self) -> np.ndarray | None:
        """``(num_nodes, degree)`` view when the graph is regular."""
        if self.uniform_degree is None:
            return None
        return self.indices.reshape(self.num_nodes, self.uniform_degree)

    def to_scipy(self) -> Any:
        """The adjacency as a ``scipy.sparse.csr_matrix`` of uint8 ones
        (``Any``: scipy is an optional dependency imported lazily)."""
        from scipy import sparse

        n = self.num_nodes
        return sparse.csr_matrix(
            (np.ones(self.num_arcs, dtype=np.uint8), self.indices, self.indptr),
            shape=(n, n),
        )


def cache_dir() -> str:
    return os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro")
    )


def cache_path(codec: NodeCodec) -> str | None:
    """Cache file for this codec's CSR, or ``None`` when uncacheable."""
    if codec.cache_key is None:
        return None
    from repro import __version__

    digest = hashlib.sha1(
        f"{codec.cache_key}|v{__version__}".encode()
    ).hexdigest()[:16]
    return os.path.join(cache_dir(), f"csr-{digest}.npz")


def _load_cached(path: str) -> CSRAdjacency | None:
    try:
        with np.load(path) as data:
            degree = int(data["uniform_degree"])
            return CSRAdjacency(
                indptr=data["indptr"],
                indices=data["indices"],
                uniform_degree=degree if degree >= 0 else None,
            )
    except (OSError, KeyError, ValueError):
        return None


def _store_cached(path: str, csr: CSRAdjacency) -> None:
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        np.savez(
            path,
            indptr=csr.indptr,
            indices=csr.indices,
            uniform_degree=np.int64(
                csr.uniform_degree if csr.uniform_degree is not None else -1
            ),
        )
    except OSError:
        pass  # read-only cache dir etc. — the in-memory CSR is still good


def build_csr(
    topology: Topology, codec: NodeCodec, *, use_disk_cache: bool = True
) -> CSRAdjacency:
    """Build (or load) the CSR adjacency of ``topology`` under ``codec``."""
    table = codec.neighbor_table()
    if table is not None:
        n, degree = table.shape
        return CSRAdjacency(
            indptr=np.arange(n + 1, dtype=np.int64) * degree,
            indices=np.ascontiguousarray(table.ravel(), dtype=np.int32),
            uniform_degree=degree,
        )

    path = cache_path(codec) if use_disk_cache else None
    cacheable = path is not None and codec.num_nodes >= _CACHE_MIN_NODES
    if cacheable and os.path.exists(path):
        cached = _load_cached(path)
        if cached is not None and cached.num_nodes == codec.num_nodes:
            return cached

    # generic one-pass build over the implicit adjacency
    n = codec.num_nodes
    indptr = np.zeros(n + 1, dtype=np.int64)
    chunks: list[list[int]] = []
    rank = codec.rank
    unrank = codec.unrank
    neighbors = topology.neighbors
    for i in range(n):
        ranked = [rank(w) for w in neighbors(unrank(i))]
        chunks.append(ranked)
        indptr[i + 1] = indptr[i] + len(ranked)
    indices = np.fromiter(
        (j for chunk in chunks for j in chunk), dtype=np.int32, count=int(indptr[-1])
    )
    degrees = np.diff(indptr)
    uniform = int(degrees[0]) if n and bool((degrees == degrees[0]).all()) else None
    csr = CSRAdjacency(indptr=indptr, indices=indices, uniform_degree=uniform)
    if cacheable:
        _store_cached(path, csr)
    return csr
