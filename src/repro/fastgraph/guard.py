"""Opt-in numpy error-state guard, env-propagated to worker processes.

The overflow sanitizer (``hyperbutterfly sanitize --mode overflow``)
re-runs stock kernel targets with numpy configured to *raise* on
overflow/invalid instead of printing a warning once.  The trap must also
reach pool workers — and under the spawn start method a child shares
nothing with the parent, so an in-process ``np.seterr`` call would never
arrive.  The guard is therefore an environment-variable protocol: the
sanitizer exports :data:`ERRSTATE_ENV` and every worker initializer calls
:func:`install_errstate_from_env`.

This lives in ``fastgraph`` (not ``devtools``) so the layer-3 worker
initializers can import it without reaching up the layer stack.
"""

from __future__ import annotations

import os

from repro.errors import InvalidParameterError

__all__ = ["ERRSTATE_ENV", "install_errstate_from_env"]

#: comma-separated ``key=action`` pairs for numpy.seterr, e.g.
#: ``over=raise,invalid=raise``
ERRSTATE_ENV = "REPRO_NUMPY_ERRSTATE"


def install_errstate_from_env() -> bool:
    """Apply the :data:`ERRSTATE_ENV` spec to this process, if set.

    Returns whether a spec was applied.  Malformed entries raise loudly
    (:class:`~repro.errors.InvalidParameterError` from this parser,
    ``TypeError`` from ``np.seterr`` itself) — a sanitizer run must never
    proceed silently without its trap.
    """
    spec = os.environ.get(ERRSTATE_ENV, "").strip()
    if not spec:
        return False
    import numpy as np

    kwargs: dict[str, str] = {}
    for part in spec.split(","):
        key, _, action = part.strip().partition("=")
        if not key or not action:
            raise InvalidParameterError(
                f"malformed {ERRSTATE_ENV} entry {part!r}"
            )
        kwargs[key] = action
    np.seterr(**kwargs)
    return True
