"""Array-backed BFS kernels over :class:`~repro.fastgraph.csr.CSRAdjacency`.

Three kernels cover every BFS the library runs:

* :func:`bfs_levels` — single-source level/parent arrays using frontier
  arrays instead of a dict+deque; supports blocked-node masks and early
  exit at a target.  One numpy pass per BFS level.
* :func:`batched_eccentricities` — multi-source boolean BFS, ``batch``
  sources at a time, as sparse-matrix × dense-boolean products (the
  generalisation of the one-off ``_batched_bfs_diameter`` that used to
  live in :mod:`repro.analysis.metrics`).
* :func:`distance_histogram` — the same sweep accumulating per-depth
  newly-visited counts, i.e. the all-ordered-pairs distance histogram.

Both sweeps share :func:`sweep_chunk`, the one-chunk inner kernel that
:mod:`repro.fastgraph.parallel` also runs inside pool workers — serial
and pooled sweeps reduce the same per-chunk results, so they are
bit-identical for any job count.

All distances are ``int32`` with ``-1`` meaning unreached.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import DisconnectedError
from repro.fastgraph.csr import CSRAdjacency

__all__ = [
    "bfs_levels",
    "path_from_parents",
    "sweep_chunk",
    "batched_eccentricities",
    "distance_histogram",
]


def bfs_levels(
    csr: CSRAdjacency,
    source: int,
    *,
    forbidden: np.ndarray | None = None,
    want_parents: bool = False,
    target: int | None = None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Single-source BFS → ``(dist, parents)`` arrays.

    ``forbidden`` is a boolean mask of blocked nodes (never entered, left at
    distance ``-1``).  With ``target`` the sweep stops as soon as the target
    level is complete.  ``parents`` (when requested) holds the rank of the
    BFS-tree parent, ``-1`` for the source and unreached nodes.
    """
    n = csr.num_nodes
    dist = np.full(n, -1, dtype=np.int32)
    parents = np.full(n, -1, dtype=np.int64) if want_parents else None
    visited = forbidden.copy() if forbidden is not None else np.zeros(n, dtype=bool)
    visited[source] = True
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    table = csr.table()
    depth = 0
    while frontier.size:
        if target is not None and dist[target] >= 0:
            break
        depth += 1
        if table is not None:
            nbrs = table[frontier].ravel()
            origins = np.repeat(frontier, csr.uniform_degree)
        else:
            starts = csr.indptr[frontier]
            counts = csr.indptr[frontier + 1] - starts
            total = int(counts.sum())
            offsets = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            )
            nbrs = csr.indices[offsets + np.arange(total)]
            origins = np.repeat(frontier, counts)
        fresh = ~visited[nbrs]
        nbrs = nbrs[fresh]
        if nbrs.size == 0:
            break
        # dedupe while retaining one parent per node (first occurrence)
        uniq, first = np.unique(nbrs, return_index=True)
        dist[uniq] = depth
        if parents is not None:
            parents[uniq] = origins[fresh][first]
        visited[uniq] = True
        frontier = uniq
    return dist, parents


def path_from_parents(parents: np.ndarray, source: int, target: int) -> list[int]:
    """The rank path ``source → target`` along a BFS parent array."""
    path = [target]
    while path[-1] != source:
        path.append(int(parents[path[-1]]))
    path.reverse()
    return path


def sweep_chunk(
    adjacency: Any, total: int, chunk: np.ndarray
) -> tuple[np.ndarray, dict[int, int], bool]:
    """One batched boolean BFS from the ``chunk`` source ranks.

    The shared inner kernel of every all-sources sweep — serial
    (:func:`batched_eccentricities`, :func:`distance_histogram`) and
    process-pooled (:mod:`repro.fastgraph.parallel`) — so the pooled
    reduction is bit-identical to the serial loop by construction.

    Returns ``(eccentricities, depth_counts, all_visited)``:
    per-source eccentricities (``int64``, aligned with ``chunk``),
    ``{depth >= 1: newly-visited count}`` summed over the chunk's sources,
    and whether every BFS in the chunk reached the whole graph.
    """
    width = len(chunk)
    visited = np.zeros((total, width), dtype=bool)
    visited[chunk, np.arange(width)] = True
    frontier = visited.copy()
    depth = 0
    ecc = np.zeros(width, dtype=np.int64)
    depth_counts: dict[int, int] = {}
    while frontier.any():
        # int32, not uint8: @ accumulates in the operand dtype, and a node
        # whose frontier in-degree is a multiple of 256 would wrap to 0
        # and read as unreached (HB605)
        reached = (adjacency @ frontier.astype(np.int32)) > 0
        frontier = reached & ~visited
        visited |= frontier
        depth += 1
        newly = int(frontier.sum())
        if newly:
            depth_counts[depth] = newly
            ecc[frontier.any(axis=0)] = depth
    return ecc, depth_counts, bool(visited.all())


def batched_eccentricities(
    csr: CSRAdjacency,
    *,
    sources: np.ndarray | None = None,
    batch: int = 128,
    check_connected: bool = True,
    name: str = "graph",
) -> np.ndarray:
    """Eccentricity of each source (default: all) via batched boolean BFS.

    Runs BFS from ``batch`` sources at a time as sparse × dense-boolean
    products — roughly two orders of magnitude faster than per-source
    Python BFS at the 16k-node Figure 2 scale, and exact.
    """
    adjacency = csr.to_scipy()
    total = csr.num_nodes
    if sources is None:
        sources = np.arange(total, dtype=np.int64)
    eccentricities = np.empty(len(sources), dtype=np.int64)
    for start in range(0, len(sources), batch):
        chunk = sources[start : start + batch]
        ecc, _, all_visited = sweep_chunk(adjacency, total, chunk)
        if check_connected and not all_visited:
            raise DisconnectedError(f"{name} is disconnected")
        eccentricities[start : start + len(chunk)] = ecc
    return eccentricities


def distance_histogram(csr: CSRAdjacency, *, batch: int = 128) -> dict[int, int]:
    """``{distance: ordered-pair count}`` over all reachable ordered pairs.

    Includes the ``distance == 0`` diagonal, mirroring the aggregation of
    per-source BFS dictionaries it replaces.
    """
    adjacency = csr.to_scipy()
    total = csr.num_nodes
    counts: dict[int, int] = {0: total}
    for start in range(0, total, batch):
        chunk = np.arange(start, min(start + batch, total), dtype=np.int64)
        _, depth_counts, _ = sweep_chunk(adjacency, total, chunk)
        for depth, newly in depth_counts.items():
            counts[depth] = counts.get(depth, 0) + newly
    return dict(sorted(counts.items()))
