"""Dynamic fault injection: seeded, deterministic fail/repair schedules.

The paper's fault-tolerance results (Theorem 5, Corollary 1, Remark 10)
are *existential* statements about static fault sets.  This module supplies
the chaos half of the dynamic story: a :class:`FaultSchedule` is a frozen,
time-ordered list of :class:`FaultEvent` fail/repair events over **both
nodes and links**, generated from a Poisson arrival process with a seed —
the same seed always reproduces the same schedule bit for bit, which the
campaign determinism tests rely on.

Three fault modes:

* ``"permanent"``  — a failed component never repairs;
* ``"transient"``  — each failure heals after an exponential repair time
  (mean ``repair_time``);
* ``"intermittent"`` — a component flaps: fail/repair cycles (exponential
  down- and up-times) repeat until the horizon.

Overlapping failures of the same component are tracked with a depth
counter in :class:`FaultState`, so a repair belonging to an earlier,
shorter outage never heals a longer overlapping one early.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Literal

from repro.errors import InvalidParameterError
from repro.faults.model import canonical_link
from repro.topologies.base import Topology

__all__ = ["FaultEvent", "FaultSchedule", "FaultState"]

FaultMode = Literal["permanent", "transient", "intermittent"]
FaultKind = Literal["node", "link"]


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped state change of one component."""

    time: float
    action: Literal["fail", "repair"]
    kind: FaultKind
    target: Hashable  # a node label, or a canonical (u, v) link tuple

    def to_jsonable(self) -> dict:
        return {
            "time": self.time,
            "action": self.action,
            "kind": self.kind,
            "target": repr(self.target),
        }


class FaultState:
    """Mutable replay state: which components are down right now.

    Failure depth is counted per component so overlapping fail/repair
    intervals compose correctly (a component is healthy again only when
    every outstanding failure has been repaired).
    """

    def __init__(self) -> None:
        self._node_depth: dict[Hashable, int] = {}
        self._link_depth: dict[tuple, int] = {}

    @property
    def faulty_nodes(self) -> frozenset:
        return frozenset(self._node_depth)

    @property
    def faulty_links(self) -> frozenset:
        return frozenset(self._link_depth)

    def node_faulty(self, v: Hashable) -> bool:
        return v in self._node_depth

    def link_faulty(self, u: Hashable, v: Hashable) -> bool:
        return canonical_link(u, v) in self._link_depth

    def apply(self, event: FaultEvent) -> bool:
        """Apply one event; returns whether visible health flipped."""
        depths = self._node_depth if event.kind == "node" else self._link_depth
        target = event.target
        if event.action == "fail":
            depths[target] = depths.get(target, 0) + 1
            return depths[target] == 1
        # repair of an already-healthy component is a no-op (can happen
        # when a schedule is truncated by a horizon)
        depth = depths.get(target, 0)
        if depth == 0:
            return False
        if depth == 1:
            del depths[target]
            return True
        depths[target] = depth - 1
        return False


class FaultSchedule:
    """An immutable, time-sorted sequence of fault events.

    Construct directly from events, or sample one with :meth:`generate`.
    Ties in time preserve generation order (stable sort), so replay is
    fully deterministic.
    """

    def __init__(self, topology: Topology, events: Iterable[FaultEvent] = ()) -> None:
        self.topology = topology
        ordered = sorted(events, key=lambda e: e.time)
        for e in ordered:
            if e.action not in ("fail", "repair"):
                raise InvalidParameterError(f"unknown action {e.action!r}")
            if e.kind == "node":
                topology.validate_node(e.target)
            elif e.kind == "link":
                u, v = e.target
                if not topology.has_edge(u, v):
                    raise InvalidParameterError(
                        f"({u!r}, {v!r}) is not an edge of {topology.name}"
                    )
            else:
                raise InvalidParameterError(f"unknown fault kind {e.kind!r}")
        self._events = tuple(ordered)

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """The union of two schedules on the same topology (by name).

        Re-sorting is stable with ``self``'s events first, so replay stays
        deterministic.  The main use is overlaying a cascade trace
        (:meth:`repro.faults.structures.CascadeTrace.to_schedule`) on a
        background Poisson schedule.
        """
        if other.topology.name != self.topology.name:
            raise InvalidParameterError(
                f"cannot merge schedules of {self.topology.name} "
                f"and {other.topology.name}"
            )
        return FaultSchedule(self.topology, self._events + other._events)

    def state_at(self, time: float) -> FaultState:
        """The fault state after replaying every event with ``time <= t``."""
        state = FaultState()
        for event in self._events:
            if event.time > time:
                break
            state.apply(event)
        return state

    def to_jsonable(self) -> list[dict]:
        return [e.to_jsonable() for e in self._events]

    def __repr__(self) -> str:
        return (
            f"FaultSchedule({self.topology.name}, {len(self._events)} events)"
        )

    # -- generation ----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        topology: Topology,
        *,
        rate: float,
        horizon: float,
        seed: int = 0,
        mode: FaultMode = "transient",
        kinds: tuple[FaultKind, ...] = ("node",),
        repair_time: float = 5.0,
        uptime: float | None = None,
        exclude_nodes: Iterable[Hashable] = (),
    ) -> "FaultSchedule":
        """Sample a schedule: Poisson fault arrivals over ``[0, horizon)``.

        ``rate`` is the expected number of fault arrivals per time unit
        (across the whole network).  Each arrival downs one uniformly
        random component among ``kinds``; ``exclude_nodes`` shields chosen
        nodes (e.g. traffic endpoints) from node faults.  Repair and
        (for ``"intermittent"``) up-times are exponential with means
        ``repair_time`` and ``uptime`` (default ``2 * repair_time``).
        """
        if rate < 0:
            raise InvalidParameterError(f"fault rate must be >= 0, got {rate}")
        if horizon <= 0:
            raise InvalidParameterError(f"horizon must be > 0, got {horizon}")
        if repair_time <= 0:
            raise InvalidParameterError(
                f"repair_time must be > 0, got {repair_time}"
            )
        if mode not in ("permanent", "transient", "intermittent"):
            raise InvalidParameterError(f"unknown fault mode {mode!r}")
        for kind in kinds:
            if kind not in ("node", "link"):
                raise InvalidParameterError(f"unknown fault kind {kind!r}")
        if not kinds:
            raise InvalidParameterError("kinds must not be empty")
        rng = random.Random(seed)
        up_mean = uptime if uptime is not None else 2.0 * repair_time
        shielded = set(exclude_nodes)
        node_pool = [v for v in topology.nodes() if v not in shielded]
        link_pool = (
            [canonical_link(u, v) for u, v in topology.edges()]
            if "link" in kinds
            else []
        )
        if "node" in kinds and not node_pool:
            raise InvalidParameterError("every node is excluded from faults")

        events: list[FaultEvent] = []
        t = 0.0
        while rate > 0:
            t += rng.expovariate(rate)
            if t >= horizon:
                break
            kind = kinds[rng.randrange(len(kinds))] if len(kinds) > 1 else kinds[0]
            if kind == "node":
                target: Hashable = node_pool[rng.randrange(len(node_pool))]
            else:
                target = link_pool[rng.randrange(len(link_pool))]
            events.append(FaultEvent(t, "fail", kind, target))
            if mode == "permanent":
                continue
            down = rng.expovariate(1.0 / repair_time)
            if mode == "transient":
                events.append(FaultEvent(t + down, "repair", kind, target))
                continue
            # intermittent: flap until the horizon; the final repair is
            # always emitted so every transient outage eventually heals
            cursor = t
            while cursor < horizon:
                events.append(FaultEvent(cursor + down, "repair", kind, target))
                cursor += down + rng.expovariate(1.0 / up_mean)
                if cursor >= horizon:
                    break
                events.append(FaultEvent(cursor, "fail", kind, target))
                down = rng.expovariate(1.0 / repair_time)
        return cls(topology, events)
