"""Fault-sweep experiment driver (experiment E6, Remark 10).

Sweeps the number of random node faults from 0 up past the guaranteed
tolerance and measures, per fault count over many trials:

* the fraction of (sampled) node pairs that remain connected;
* the success rate and path-length overhead of the paper's
  disjoint-path fault routing versus adaptive BFS rerouting.

The paper's claim has a sharp shape: for fewer than ``m + 4`` faults the
connected fraction is exactly 1.0 (Corollary 1); beyond it, disconnection
becomes possible but stays rare (random faults rarely isolate a node).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.fault_routing import FaultTolerantRouter
from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import DisconnectedError, RoutingError
from repro.faults.model import random_node_faults

__all__ = ["FaultSweepResult", "fault_sweep"]


@dataclass
class FaultSweepResult:
    """Aggregated outcome of one fault count in the sweep."""

    faults: int
    trials: int
    pairs_per_trial: int
    connected_pairs: int = 0
    total_pairs: int = 0
    disjoint_success: int = 0
    disjoint_total_length: int = 0
    adaptive_total_length: int = 0

    @property
    def connected_fraction(self) -> float:
        return self.connected_pairs / self.total_pairs if self.total_pairs else 1.0

    @property
    def disjoint_success_rate(self) -> float:
        return self.disjoint_success / self.total_pairs if self.total_pairs else 1.0

    @property
    def mean_overhead(self) -> float:
        """Mean length ratio disjoint-routing / adaptive over successes."""
        if not self.adaptive_total_length:
            return 1.0
        return self.disjoint_total_length / self.adaptive_total_length


def fault_sweep(
    hb: HyperButterfly,
    fault_counts: Sequence[int],
    *,
    trials: int = 5,
    pairs_per_trial: int = 10,
    seed: int = 0,
) -> list[FaultSweepResult]:
    """Run the E6 sweep; one :class:`FaultSweepResult` per fault count."""
    rng = random.Random(seed)
    router = FaultTolerantRouter(hb)
    # The adaptive strategy BFS runs on the fastgraph CSR backend (blocked
    # fault masks), so the per-pair cost is array sweeps, not label walks.
    all_nodes = list(hb.nodes())
    results = []
    for count in fault_counts:
        res = FaultSweepResult(
            faults=count, trials=trials, pairs_per_trial=pairs_per_trial
        )
        for _ in range(trials):
            faults = random_node_faults(hb, count, rng=rng)
            for _ in range(pairs_per_trial):
                # rejection-sample a healthy pair: avoids rebuilding an
                # O(V) healthy-node list per trial (faults << V always)
                while True:
                    u, v = rng.sample(all_nodes, 2)
                    if u not in faults and v not in faults:
                        break
                res.total_pairs += 1
                adaptive = None
                try:
                    adaptive = router.route(u, v, faults, strategy="adaptive")
                    res.connected_pairs += 1
                except DisconnectedError:
                    pass
                try:
                    path = router.route(u, v, faults, strategy="disjoint")
                    res.disjoint_success += 1
                    if adaptive is not None:
                        res.disjoint_total_length += len(path) - 1
                        res.adaptive_total_length += len(adaptive) - 1
                except (DisconnectedError, RoutingError):
                    pass
        results.append(res)
    return results
