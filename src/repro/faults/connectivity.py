"""Exact connectivity computations backing Corollary 1's claims.

``vertex_connectivity`` computes the exact vertex connectivity of any
(small enough to materialise) topology via networkx's flow-based algorithm;
``connectivity_certificate`` produces the two-sided certificate used by the
Figure 1/2 harness — degree upper bound plus a Menger lower bound witnessed
by explicit disjoint-path families over sampled pairs — so the tables can
report fault tolerance for instances too large for the full flow
computation, flagged as certified-exact or witnessed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx

from repro.errors import InvalidParameterError
from repro.faults.model import FaultSet
from repro.routing.flows import vertex_disjoint_paths
from repro.topologies.base import Topology

__all__ = [
    "vertex_connectivity",
    "is_maximally_fault_tolerant",
    "connectivity_certificate",
    "connected_under_faults",
]


def vertex_connectivity(topology: Topology) -> int:
    """Exact vertex connectivity (materialises the graph; use on small
    instances — the Figure 2 harness switches to certificates beyond that)."""
    graph = topology.to_networkx()
    return nx.node_connectivity(graph)


def is_maximally_fault_tolerant(topology: Topology) -> bool:
    """Whether connectivity equals minimum degree (paper Section 5)."""
    return vertex_connectivity(topology) == topology.degree_stats()[0]


@dataclass(frozen=True)
class ConnectivityCertificate:
    """Two-sided evidence about a topology's vertex connectivity.

    ``upper`` is the minimum degree (always a valid upper bound);
    ``lower_witnessed`` is the smallest disjoint-path family size observed
    over the sampled pairs — a true lower bound on the connectivity of the
    *sampled pairs*, and equal to connectivity when it meets ``upper``.
    """

    upper: int
    lower_witnessed: int
    pairs_sampled: int

    @property
    def tight(self) -> bool:
        return self.upper == self.lower_witnessed


def connectivity_certificate(
    topology: Topology,
    *,
    pairs: int = 16,
    rng: random.Random | None = None,
) -> ConnectivityCertificate:
    """Degree upper bound + sampled Menger lower bound (see class doc)."""
    if pairs < 1:
        raise InvalidParameterError("pairs must be >= 1")
    rng = rng or random.Random(0)
    graph = topology.to_networkx()
    min_degree = min(d for _, d in graph.degree())
    nodes = list(graph.nodes())
    lower = min_degree
    for _ in range(pairs):
        u, v = rng.sample(nodes, 2)
        family = vertex_disjoint_paths(graph, u, v)
        lower = min(lower, len(family))
    return ConnectivityCertificate(
        upper=min_degree, lower_witnessed=lower, pairs_sampled=pairs
    )


def connected_under_faults(
    topology: Topology,
    faults: FaultSet | Iterable[Hashable],
    *,
    backend: str | None = None,
) -> bool:
    """Whether the topology minus the faulty nodes remains connected.

    One fault-masked BFS from any survivor, counted — never materialising
    a distance dict.  With a fastgraph codec the count comes from
    :meth:`~repro.fastgraph.backend.FastGraph.reachable_count` (CSR or
    implicit per ``backend``), so survivability queries stay in reach past
    CSR-comfortable sizes; the pure-python fallback walks labels and is
    pinned bit-identical to the fast substrates by the backend-equality
    tests.
    """
    fault_nodes = faults.nodes if isinstance(faults, FaultSet) else frozenset(faults)
    start = next((v for v in topology.nodes() if v not in fault_nodes), None)
    if start is None:
        return True  # the empty graph is vacuously connected
    survivors = topology.num_nodes - len(fault_nodes)
    if backend != "python":
        from repro.fastgraph.backend import get_fastgraph

        fast = get_fastgraph(topology)
        if fast is not None:
            reached = fast.reachable_count(
                start, blocked=fault_nodes, backend=backend
            )
            return reached == survivors
        if backend in ("csr", "implicit"):
            raise InvalidParameterError(
                f"{topology.name} has no fastgraph codec; backend={backend!r} "
                "is unavailable (use backend='python')"
            )
    reached_map = topology.bfs_distances(start, blocked=fault_nodes, backend="python")
    return len(reached_map) == survivors
