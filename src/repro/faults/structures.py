"""Structure faults: correlated failure regions lowered to point masks.

PR 2's campaigns inject *independent point* faults, but real deployments
lose correlated structures — a dead router card takes its whole
neighborhood, a rack takes a subcube, a backplane takes a butterfly ring.
*Structure fault diameter of hypercubes* (arXiv 2412.09885) formalises
this regime; this module brings it to every family in the repo.

A :class:`StructureFault` is a failed *center* plus the dependent nodes
that die with it, generated deterministically (no RNG inside a builder —
randomness lives only in placement sampling, which is seeded):

* ``star``    — the closed ball of a given radius around the center
  (radius 1 is the classic failed-router-card model: the center plus its
  closed neighborhood);
* ``path``    — a greedy label-ordered path of failed nodes (a cable run);
* ``subcube`` — a sub-hypercube embedded in the hypercube coordinate of
  ``HB``/``HD``/``H_m`` labels (a rack);
* ``ring``    — the ``⟨g⟩``-coset of the butterfly factor of ``HB``: the
  whole level-ring sharing the anchor's cube word and butterfly word (an
  optical backplane).

Every structure **lowers** to the existing point-fault masks —
:meth:`StructureFault.as_fault_set` / :meth:`as_link_fault_set` — so all
downstream consumers (fault-masked fastgraph BFS on the CSR *and*
implicit substrates, :class:`~repro.core.resilient.ResilientRouter`,
:class:`~repro.simulation.network.NetworkSimulator`,
:func:`~repro.faults.connectivity.connected_under_faults`) work unchanged.

On top of the abstraction:

* :func:`structure_fault_diameter` — max masked eccentricity over
  survivors for a placement.  ``source_sample=None`` examines every
  survivor source (exact); an integer samples that many seeded sources
  plus the (sorted, capped) structure boundary — the implicit backend
  keeps ``HB(9,11)``-class instances in reach because each masked BFS is
  ``O(num_nodes / 8)`` memory.
* :func:`run_cascade` — a seeded cascading-failure engine: per epoch,
  every healthy boundary node of the failed region independently ignites
  a new structure with probability ``spread``; the trace lowers to a
  :class:`~repro.faults.dynamic.FaultSchedule` the simulator replays
  unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from repro.errors import InvalidParameterError
from repro.fastgraph.backend import get_fastgraph
from repro.faults.dynamic import FaultEvent, FaultSchedule
from repro.faults.model import FaultSet, LinkFaultSet, canonical_link, sample_nodes
from repro.topologies.base import Topology
from repro.topologies.butterfly_cayley import CayleyButterfly
from repro.topologies.hypercube import Hypercube

__all__ = [
    "StructureFault",
    "star_structure",
    "path_structure",
    "subcube_structure",
    "ring_structure",
    "build_structure",
    "structure_kinds",
    "random_structures",
    "union_fault_set",
    "union_link_fault_set",
    "StructureDiameterResult",
    "structure_fault_diameter",
    "CascadeConfig",
    "CascadeTrace",
    "run_cascade",
]


class StructureFault:
    """One correlated failure region: a center plus its dependent nodes.

    ``nodes`` is a deduplicated tuple in deterministic generation order
    (the center always first), so lowering, JSON emission, and cascade
    replay are independent of ``PYTHONHASHSEED``.
    """

    def __init__(
        self,
        topology: Topology,
        kind: str,
        center: Hashable,
        nodes: Iterable[Hashable],
    ) -> None:
        self.topology = topology
        self.kind = kind
        self.center = center
        ordered: list[Hashable] = []
        seen: set[Hashable] = set()
        for v in nodes:
            topology.validate_node(v)
            if v not in seen:
                seen.add(v)
                ordered.append(v)
        if center not in seen:
            raise InvalidParameterError(
                f"structure center {center!r} is not among its nodes"
            )
        self._nodes = tuple(ordered)
        self._node_set = frozenset(ordered)

    @property
    def nodes(self) -> tuple[Hashable, ...]:
        return self._nodes

    @property
    def node_set(self) -> frozenset:
        return self._node_set

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._nodes)

    def __contains__(self, v: Hashable) -> bool:
        return v in self._node_set

    # -- lowering to the point-fault masks ----------------------------------

    def as_fault_set(self) -> FaultSet:
        """The structure as a plain node-fault mask."""
        return FaultSet(self.topology, self._nodes)

    def as_link_fault_set(self) -> LinkFaultSet:
        """Every link incident to a structure node, as a link-fault mask.

        The link-level lowering models a structure whose *wiring* dies
        while the nodes survive (a pulled cable bundle); membership covers
        both orientations via the canonical link form.
        """
        links = []
        for v in self._nodes:
            for w in self.topology.neighbors(v):
                links.append(canonical_link(v, w))
        return LinkFaultSet(self.topology, links)

    def boundary(self) -> tuple[Hashable, ...]:
        """The healthy frontier: survivors adjacent to the structure,
        sorted for deterministic iteration."""
        frontier: set[Hashable] = set()
        for v in self._nodes:
            for w in self.topology.neighbors(v):
                if w not in self._node_set:
                    frontier.add(w)
        return tuple(sorted(frontier))

    def to_jsonable(self) -> dict:
        return {
            "kind": self.kind,
            "center": repr(self.center),
            "nodes": len(self._nodes),
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StructureFault):
            return NotImplemented
        return (
            self.topology.name == other.topology.name
            and self.kind == other.kind
            and self._nodes == other._nodes
        )

    def __hash__(self) -> int:
        return hash((self.topology.name, self.kind, self._nodes))

    def __repr__(self) -> str:
        return (
            f"StructureFault({self.topology.name}, {self.kind}, "
            f"center={self.center!r}, {len(self._nodes)} nodes)"
        )


# -- generators --------------------------------------------------------------


def star_structure(
    topology: Topology, center: Hashable, *, radius: int = 1
) -> StructureFault:
    """The closed ball of ``radius`` around ``center`` (BFS discovery order).

    ``radius=1`` is the failed-router-card model from the structure-fault
    literature: the center plus its closed neighborhood.  Balls of growing
    radius at one center are nested, which the monotonicity properties of
    the structure-fault diameter rely on.
    """
    topology.validate_node(center)
    if radius < 0:
        raise InvalidParameterError(f"star radius must be >= 0, got {radius}")
    ordered = [center]
    depth = {center: 0}
    cursor = 0
    while cursor < len(ordered):
        v = ordered[cursor]
        cursor += 1
        if depth[v] == radius:
            continue
        for w in topology.neighbors(v):
            if w not in depth:
                depth[w] = depth[v] + 1
                ordered.append(w)
    return StructureFault(topology, "star", center, ordered)


def path_structure(
    topology: Topology, start: Hashable, *, length: int
) -> StructureFault:
    """A greedy failed path of up to ``length`` nodes from ``start``.

    Each step extends to the smallest-label unvisited neighbor, so the
    walk is fully deterministic and ``path(l)`` is a prefix of
    ``path(l')`` for ``l <= l'`` (nested structures).  A dead end stops
    the walk early.
    """
    topology.validate_node(start)
    if length < 1:
        raise InvalidParameterError(f"path length must be >= 1, got {length}")
    ordered = [start]
    visited = {start}
    current = start
    while len(ordered) < length:
        fresh = sorted(w for w in topology.neighbors(current) if w not in visited)
        if not fresh:
            break
        current = fresh[0]
        visited.add(current)
        ordered.append(current)
    return StructureFault(topology, "path", start, ordered)


def _cube_coordinate(
    topology: Topology,
) -> tuple[int, Callable[[Hashable, int], Hashable]] | None:
    """``(m, embed)`` for families with a hypercube coordinate, else ``None``.

    ``embed(label, mask)`` XORs ``mask`` into the hypercube part of a
    label — the whole label for ``H_m``, the left factor for products
    whose left factor is a hypercube (``HB``, ``HD``).
    """
    if isinstance(topology, Hypercube):
        return topology.m, lambda label, mask: label ^ mask  # type: ignore[operator]
    factors = getattr(topology, "factors", None)
    if callable(factors):
        left, _ = factors()
        if isinstance(left, Hypercube):
            return left.m, lambda label, mask: (label[0] ^ mask, label[1])  # type: ignore[index]
    return None


def _butterfly_coordinate(
    topology: Topology,
) -> tuple[int, Callable[[Hashable, int], Hashable]] | None:
    """``(n, embed)`` for families with a butterfly factor, else ``None``.

    ``embed(label, x)`` replaces the butterfly level ``PI`` with ``x``,
    keeping the cube word and the butterfly word ``CI`` fixed.
    """
    if isinstance(topology, CayleyButterfly):
        return topology.n, lambda label, x: (x, label[1])  # type: ignore[index]
    factors = getattr(topology, "factors", None)
    if callable(factors):
        _, right = factors()
        if isinstance(right, CayleyButterfly):
            return right.n, lambda label, x: (label[0], (x, label[1][1]))  # type: ignore[index]
    return None


def subcube_structure(
    topology: Topology, anchor: Hashable, *, dims: int
) -> StructureFault:
    """A failed sub-hypercube of dimension ``dims`` anchored at ``anchor``.

    The ``2^min(dims, m)`` nodes differ from ``anchor`` only in the first
    ``dims`` hypercube dimensions (the rack model).  Requires a hypercube
    coordinate (``H_m`` itself, or a product with ``H_m`` on the left —
    ``HB``/``HD``); subcubes of growing dimension at one anchor are
    nested.
    """
    topology.validate_node(anchor)
    if dims < 0:
        raise InvalidParameterError(f"subcube dims must be >= 0, got {dims}")
    coordinate = _cube_coordinate(topology)
    if coordinate is None:
        raise InvalidParameterError(
            f"{topology.name} has no hypercube coordinate for subcube faults"
        )
    m, embed = coordinate
    dims = min(dims, m)
    nodes = [embed(anchor, mask) for mask in range(1 << dims)]
    return StructureFault(topology, "subcube", anchor, nodes)


def ring_structure(topology: Topology, anchor: Hashable) -> StructureFault:
    """The failed butterfly level-ring through ``anchor`` (backplane model).

    The ``⟨g⟩``-coset of the butterfly factor: all ``n`` levels sharing
    the anchor's cube word and butterfly word ``CI`` — on ``HB(m, n)``
    exactly the ring the generator ``g`` traverses (``(x, c)·(1, 0) =
    (x+1, c)``).  Only families with a butterfly factor support it.
    """
    topology.validate_node(anchor)
    coordinate = _butterfly_coordinate(topology)
    if coordinate is None:
        raise InvalidParameterError(
            f"{topology.name} has no butterfly coordinate for ring faults"
        )
    n, embed = coordinate
    if isinstance(topology, CayleyButterfly):
        pi = anchor[0]  # type: ignore[index]
    else:
        pi = anchor[1][0]  # type: ignore[index]
    nodes = [embed(anchor, (pi + k) % n) for k in range(n)]
    return StructureFault(topology, "ring", anchor, nodes)


#: structure kinds in canonical order (campaign sweeps iterate this order)
_KINDS = ("star", "path", "subcube", "ring")


def structure_kinds(topology: Topology) -> tuple[str, ...]:
    """The structure kinds applicable to ``topology``, canonical order."""
    kinds = ["star", "path"]
    if _cube_coordinate(topology) is not None:
        kinds.append("subcube")
    if _butterfly_coordinate(topology) is not None:
        kinds.append("ring")
    return tuple(kinds)


def build_structure(
    topology: Topology, kind: str, center: Hashable, *, size: int = 1
) -> StructureFault:
    """Build one structure of ``kind`` at ``center`` with scale ``size``.

    ``size`` means: star radius, path ``2 * size`` nodes, subcube
    dimension (clamped to the cube order); rings have a fixed extent
    (the butterfly order ``n``) and ignore it.
    """
    if kind == "star":
        return star_structure(topology, center, radius=size)
    if kind == "path":
        return path_structure(topology, center, length=2 * size)
    if kind == "subcube":
        return subcube_structure(topology, center, dims=size)
    if kind == "ring":
        return ring_structure(topology, center)
    raise InvalidParameterError(
        f"unknown structure kind {kind!r} (expected one of {_KINDS})"
    )


def random_structures(
    topology: Topology,
    kind: str,
    count: int,
    *,
    size: int = 1,
    rng: random.Random | None = None,
    exclude: Iterable[Hashable] = (),
) -> list[StructureFault]:
    """``count`` structures at distinct seeded-random centers.

    Centers are reservoir-sampled over the node iterator (never touching
    ``exclude``); structures may overlap away from their centers — the
    union lowering handles that.  Without an explicit ``rng`` a fixed-seed
    ``Random(0)`` keeps the default reproducible (reprolint HB501).
    """
    rng = rng or random.Random(0)
    centers = sample_nodes(topology, count, rng=rng, exclude=exclude)
    return [build_structure(topology, kind, c, size=size) for c in centers]


def union_fault_set(
    topology: Topology, structures: Iterable[StructureFault]
) -> FaultSet:
    """The node-fault mask of several structures applied together."""
    nodes: set[Hashable] = set()
    for s in structures:
        nodes |= s.node_set
    return FaultSet(topology, nodes)


def union_link_fault_set(
    topology: Topology, structures: Iterable[StructureFault]
) -> LinkFaultSet:
    """The link-fault mask of several structures applied together."""
    links: set[tuple[Hashable, Hashable]] = set()
    for s in structures:
        links |= s.as_link_fault_set().links
    return LinkFaultSet(topology, links)


# -- structure-fault diameter ------------------------------------------------


@dataclass(frozen=True)
class StructureDiameterResult:
    """Outcome of one structure-fault diameter computation.

    ``diameter`` is the max masked eccentricity over the examined survivor
    sources — exact when every survivor was examined and the survivors
    stayed connected, otherwise a certified lower bound (``exact`` is
    ``False``; a disconnected placement reports the max *finite*
    eccentricity observed, flagged by ``connected``).
    """

    diameter: int
    connected: bool
    exact: bool
    sources_examined: int
    faulted: int
    survivors: int


def _masked_source_stats(
    topology: Topology,
    source: Hashable,
    blocked: frozenset,
    backend: str | None,
) -> tuple[int, int]:
    """``(eccentricity, reached)`` of one fault-masked BFS, any substrate."""
    if backend != "python":
        fast = get_fastgraph(topology)
        if fast is not None:
            return fast.masked_source_stats(source, blocked=blocked, backend=backend)
        if backend in ("csr", "implicit"):
            raise InvalidParameterError(
                f"{topology.name} has no fastgraph codec; backend={backend!r} "
                "is unavailable (use backend='python')"
            )
    dist = topology.bfs_distances(source, blocked=blocked, backend="python")
    return max(dist.values()), len(dist)


def structure_fault_diameter(
    topology: Topology,
    structures: StructureFault | Iterable[StructureFault],
    *,
    backend: str | None = None,
    source_sample: int | None = None,
    boundary_cap: int = 8,
    seed: int = 0,
) -> StructureDiameterResult:
    """Max masked eccentricity over survivors for one structure placement.

    ``source_sample=None`` examines every survivor source — exact, for
    instances where ``survivors`` BFS runs are affordable.  An integer
    examines the structure boundary (sorted, first ``boundary_cap``
    nodes — eccentric survivors hug the fault) plus that many
    reservoir-sampled extra sources drawn with ``Random(seed)``; the
    result is then a certified lower bound.  ``backend`` pins the BFS
    substrate (``"implicit"`` keeps million-node instances in
    ``O(num_nodes / 8)`` memory per BFS).
    """
    if isinstance(structures, StructureFault):
        structures = [structures]
    placement = list(structures)
    faults = union_fault_set(topology, placement)
    blocked = faults.nodes
    survivors = topology.num_nodes - len(blocked)
    if survivors <= 1:
        return StructureDiameterResult(
            diameter=0,
            connected=True,
            exact=True,
            sources_examined=0,
            faulted=len(blocked),
            survivors=survivors,
        )
    sources: Iterable[Hashable]
    exact_sources = source_sample is None
    if exact_sources:
        sources = (v for v in topology.nodes() if v not in blocked)
    else:
        frontier: set[Hashable] = set()
        for s in placement:
            frontier.update(s.boundary())
        chosen = sorted(frontier - blocked)[:boundary_cap]
        extra = min(source_sample or 0, survivors - len(chosen))
        if extra > 0:
            chosen += sample_nodes(
                topology,
                extra,
                rng=random.Random(seed),
                exclude=blocked | set(chosen),
            )
        sources = chosen
    diameter = 0
    connected = True
    examined = 0
    for source in sources:
        ecc, reached = _masked_source_stats(topology, source, blocked, backend)
        examined += 1
        diameter = max(diameter, ecc)
        if reached != survivors:
            connected = False
    return StructureDiameterResult(
        diameter=diameter,
        connected=connected,
        exact=exact_sources and connected,
        sources_examined=examined,
        faulted=len(blocked),
        survivors=survivors,
    )


# -- cascading failures ------------------------------------------------------


@dataclass(frozen=True)
class CascadeConfig:
    """Parameters of a seeded structure-failure cascade.

    Each epoch, every healthy boundary node of the failed region
    independently ignites a new ``kind``/``size`` structure with
    probability ``spread`` (boundary iterated in sorted label order, so
    the draw sequence is deterministic).  The cascade stops after
    ``epochs`` epochs, when an epoch ignites nothing, or when more than
    ``max_failed`` nodes are down.
    """

    kind: str = "star"
    size: int = 1
    epochs: int = 3
    spread: float = 0.3
    epoch_time: float = 1.0
    max_failed: int | None = None

    def validate(self) -> None:
        if self.epochs < 0:
            raise InvalidParameterError(f"epochs must be >= 0, got {self.epochs}")
        if not 0.0 <= self.spread <= 1.0:
            raise InvalidParameterError(
                f"spread must be within [0, 1], got {self.spread}"
            )
        if self.epoch_time <= 0:
            raise InvalidParameterError(
                f"epoch_time must be > 0, got {self.epoch_time}"
            )


class CascadeTrace:
    """The epochs of one cascade: which structures ignited when.

    ``epochs[0]`` holds the seed structures; ``epochs[i]`` the structures
    ignited at epoch ``i``.  The trace lowers to the point-fault world at
    any epoch (:meth:`fault_set`) and to a permanent
    :class:`~repro.faults.dynamic.FaultSchedule` (:meth:`to_schedule`)
    that the packet simulator replays unchanged.
    """

    def __init__(
        self,
        topology: Topology,
        config: CascadeConfig,
        epochs: Sequence[Sequence[StructureFault]],
    ) -> None:
        self.topology = topology
        self.config = config
        self.epochs = tuple(tuple(e) for e in epochs)
        newly: list[tuple[Hashable, ...]] = []
        failed: set[Hashable] = set()
        for epoch in self.epochs:
            fresh: list[Hashable] = []
            for s in epoch:
                for v in s.nodes:
                    if v not in failed:
                        failed.add(v)
                        fresh.append(v)
            newly.append(tuple(fresh))
        #: per-epoch newly failed nodes, in deterministic failure order
        self.newly_failed = tuple(newly)

    @property
    def total_failed(self) -> int:
        return sum(len(fresh) for fresh in self.newly_failed)

    def fault_set(self, epoch: int | None = None) -> FaultSet:
        """The cumulative node-fault mask through ``epoch`` (default all)."""
        upto = len(self.epochs) if epoch is None else epoch + 1
        nodes: list[Hashable] = []
        for fresh in self.newly_failed[:upto]:
            nodes.extend(fresh)
        return FaultSet(self.topology, nodes)

    def to_schedule(self) -> FaultSchedule:
        """Permanent fail events at ``epoch * epoch_time`` per fresh node."""
        events = [
            FaultEvent(i * self.config.epoch_time, "fail", "node", v)
            for i, fresh in enumerate(self.newly_failed)
            for v in fresh
        ]
        return FaultSchedule(self.topology, events)

    def to_jsonable(self) -> list[dict]:
        return [
            {
                "epoch": i,
                "structures": [s.to_jsonable() for s in epoch],
                "newly_failed": len(self.newly_failed[i]),
            }
            for i, epoch in enumerate(self.epochs)
        ]

    def __repr__(self) -> str:
        return (
            f"CascadeTrace({self.topology.name}, {len(self.epochs)} epochs, "
            f"{self.total_failed} failed)"
        )


def run_cascade(
    topology: Topology,
    seeds: Iterable[StructureFault],
    config: CascadeConfig,
    *,
    seed: int = 0,
) -> CascadeTrace:
    """Propagate structure failures for ``config.epochs`` epochs (seeded)."""
    config.validate()
    initial = list(seeds)
    if not initial:
        raise InvalidParameterError("a cascade needs at least one seed structure")
    rng = random.Random(seed)
    failed: set[Hashable] = set()
    for s in initial:
        if not isinstance(s, StructureFault):
            raise InvalidParameterError(
                f"cascade seeds must be StructureFault instances, got {type(s).__name__}"
            )
        failed |= s.node_set
    epochs: list[list[StructureFault]] = [initial]
    cap = config.max_failed if config.max_failed is not None else topology.num_nodes
    for _ in range(config.epochs):
        if len(failed) >= cap:
            break
        frontier: set[Hashable] = set()
        for v in failed:
            for w in topology.neighbors(v):
                if w not in failed:
                    frontier.add(w)
        ignited: list[StructureFault] = []
        for v in sorted(frontier):
            if rng.random() < config.spread:
                s = build_structure(topology, config.kind, v, size=config.size)
                if not s.node_set <= failed:
                    ignited.append(s)
                    failed |= s.node_set
        if not ignited:
            break
        epochs.append(ignited)
    return CascadeTrace(topology, config, epochs)
