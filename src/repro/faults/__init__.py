"""Fault models, dynamic fault injection, and connectivity analysis.

* :mod:`repro.faults.model` — node/link fault sets and random injection.
* :mod:`repro.faults.dynamic` — seeded fail/repair schedules (chaos layer).
* :mod:`repro.faults.structures` — correlated structure faults (stars,
  paths, subcubes, rings), structure-fault diameter, cascading failures.
* :mod:`repro.faults.connectivity` — exact vertex connectivity (max-flow),
  connectivity under faults, and maximal-fault-tolerance certificates.
* :mod:`repro.faults.experiments` — fault-sweep experiment driver (E6).
* :mod:`repro.faults.campaigns` — degradation campaigns past the ``m + 3``
  guarantee (``BENCH_faults.json``) and correlated structure-fault
  campaigns (``BENCH_structure.json``).
"""

from repro.faults.model import (
    FaultSet,
    LinkFaultSet,
    canonical_link,
    sample_nodes,
    random_node_faults,
    random_link_faults,
)
from repro.faults.dynamic import FaultEvent, FaultSchedule, FaultState
from repro.faults.structures import (
    StructureFault,
    star_structure,
    path_structure,
    subcube_structure,
    ring_structure,
    build_structure,
    structure_kinds,
    random_structures,
    union_fault_set,
    union_link_fault_set,
    StructureDiameterResult,
    structure_fault_diameter,
    CascadeConfig,
    CascadeTrace,
    run_cascade,
)
from repro.faults.connectivity import (
    vertex_connectivity,
    is_maximally_fault_tolerant,
    connectivity_certificate,
    connected_under_faults,
)
from repro.faults.experiments import FaultSweepResult, fault_sweep
from repro.faults.campaigns import (
    CampaignConfig,
    run_campaign,
    StructureCampaignConfig,
    run_structure_campaign,
    write_campaign_json,
)

__all__ = [
    "FaultSet",
    "LinkFaultSet",
    "canonical_link",
    "sample_nodes",
    "random_node_faults",
    "random_link_faults",
    "FaultEvent",
    "FaultSchedule",
    "FaultState",
    "StructureFault",
    "star_structure",
    "path_structure",
    "subcube_structure",
    "ring_structure",
    "build_structure",
    "structure_kinds",
    "random_structures",
    "union_fault_set",
    "union_link_fault_set",
    "StructureDiameterResult",
    "structure_fault_diameter",
    "CascadeConfig",
    "CascadeTrace",
    "run_cascade",
    "vertex_connectivity",
    "is_maximally_fault_tolerant",
    "connectivity_certificate",
    "connected_under_faults",
    "FaultSweepResult",
    "fault_sweep",
    "CampaignConfig",
    "run_campaign",
    "StructureCampaignConfig",
    "run_structure_campaign",
    "write_campaign_json",
]
