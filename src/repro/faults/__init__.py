"""Fault models, dynamic fault injection, and connectivity analysis.

* :mod:`repro.faults.model` — node/link fault sets and random injection.
* :mod:`repro.faults.dynamic` — seeded fail/repair schedules (chaos layer).
* :mod:`repro.faults.connectivity` — exact vertex connectivity (max-flow),
  connectivity under faults, and maximal-fault-tolerance certificates.
* :mod:`repro.faults.experiments` — fault-sweep experiment driver (E6).
* :mod:`repro.faults.campaigns` — degradation campaigns past the ``m + 3``
  guarantee (``BENCH_faults.json``).
"""

from repro.faults.model import (
    FaultSet,
    LinkFaultSet,
    canonical_link,
    random_node_faults,
    random_link_faults,
)
from repro.faults.dynamic import FaultEvent, FaultSchedule, FaultState
from repro.faults.connectivity import (
    vertex_connectivity,
    is_maximally_fault_tolerant,
    connectivity_certificate,
    connected_under_faults,
)
from repro.faults.experiments import FaultSweepResult, fault_sweep
from repro.faults.campaigns import CampaignConfig, run_campaign, write_campaign_json

__all__ = [
    "FaultSet",
    "LinkFaultSet",
    "canonical_link",
    "random_node_faults",
    "random_link_faults",
    "FaultEvent",
    "FaultSchedule",
    "FaultState",
    "vertex_connectivity",
    "is_maximally_fault_tolerant",
    "connectivity_certificate",
    "connected_under_faults",
    "FaultSweepResult",
    "fault_sweep",
    "CampaignConfig",
    "run_campaign",
    "write_campaign_json",
]
