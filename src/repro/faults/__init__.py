"""Fault models and connectivity analysis (paper Section 5).

* :mod:`repro.faults.model` — fault sets and random fault injection.
* :mod:`repro.faults.connectivity` — exact vertex connectivity (max-flow),
  connectivity under faults, and maximal-fault-tolerance certificates.
* :mod:`repro.faults.experiments` — fault-sweep experiment driver (E6).
"""

from repro.faults.model import FaultSet, random_node_faults
from repro.faults.connectivity import (
    vertex_connectivity,
    is_maximally_fault_tolerant,
    connectivity_certificate,
    connected_under_faults,
)
from repro.faults.experiments import FaultSweepResult, fault_sweep

__all__ = [
    "FaultSet",
    "random_node_faults",
    "vertex_connectivity",
    "is_maximally_fault_tolerant",
    "connectivity_certificate",
    "connected_under_faults",
    "FaultSweepResult",
    "fault_sweep",
]
