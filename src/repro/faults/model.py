"""Node- and link-fault sets and random fault injection.

The paper measures fault tolerance by vertex connectivity: a network with
connectivity ``κ`` stays connected under any set of fewer than ``κ`` node
faults.  :class:`FaultSet` is a small immutable wrapper that validates
fault labels against a topology and supports the common set algebra;
:class:`LinkFaultSet` is its edge-fault sibling (links stored undirected,
queried in either orientation).  Both are hashable so fault configurations
can key caches and deduplicate campaign trials.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Iterator

from repro.errors import InvalidParameterError
from repro.topologies.base import Topology

__all__ = [
    "FaultSet",
    "LinkFaultSet",
    "canonical_link",
    "sample_nodes",
    "random_node_faults",
    "random_link_faults",
]


def canonical_link(u: Hashable, v: Hashable) -> tuple[Hashable, Hashable]:
    """The orientation-free form of an undirected link ``{u, v}``.

    Node labels inside one topology are mutually comparable tuples/ints;
    the ``repr`` fallback keeps the canonicalisation total for exotic
    label types without ordering.
    """
    try:
        return (u, v) if u <= v else (v, u)
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class FaultSet:
    """An immutable set of faulty nodes of a given topology."""

    def __init__(self, topology: Topology, nodes: Iterable[Hashable] = ()) -> None:
        self.topology = topology
        frozen = frozenset(nodes)
        for v in frozen:
            topology.validate_node(v)
        self._nodes = frozen

    @property
    def nodes(self) -> frozenset:
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._nodes)

    def __contains__(self, v: Hashable) -> bool:
        return v in self._nodes

    def __or__(self, other: "FaultSet | Iterable[Hashable]") -> "FaultSet":
        extra = other.nodes if isinstance(other, FaultSet) else other
        return FaultSet(self.topology, self._nodes | frozenset(extra))

    def without(self, nodes: Iterable[Hashable]) -> "FaultSet":
        """A copy with ``nodes`` healed."""
        return FaultSet(self.topology, self._nodes - frozenset(nodes))

    def healthy_neighbors(self, v: Hashable) -> list[Hashable]:
        """Non-faulty neighbors of ``v`` (``v`` itself may be faulty)."""
        return [w for w in self.topology.neighbors(v) if w not in self._nodes]

    def __eq__(self, other: object) -> bool:
        """Equal iff the topologies agree by name and the nodes coincide.

        Name-based topology identity (rather than object identity) lets two
        independently constructed ``HB(2, 3)`` instances produce equal fault
        sets — the useful notion for dict keys and campaign dedup.
        """
        if not isinstance(other, FaultSet):
            return NotImplemented
        return (
            self.topology.name == other.topology.name
            and self._nodes == other._nodes
        )

    def __hash__(self) -> int:
        return hash((self.topology.name, self._nodes))

    def __repr__(self) -> str:
        return f"FaultSet({self.topology.name}, {len(self._nodes)} faults)"


class LinkFaultSet:
    """An immutable set of faulty undirected links of a given topology.

    Links are canonicalised on entry, so membership tests accept either
    orientation: ``(u, v) in lfs`` iff ``(v, u) in lfs``.
    """

    def __init__(
        self,
        topology: Topology,
        links: Iterable[tuple[Hashable, Hashable]] = (),
    ) -> None:
        self.topology = topology
        frozen = frozenset(canonical_link(u, v) for u, v in links)
        for u, v in frozen:
            if not topology.has_edge(u, v):
                raise InvalidParameterError(
                    f"({u!r}, {v!r}) is not an edge of {topology.name}"
                )
        self._links = frozen

    @property
    def links(self) -> frozenset:
        return self._links

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[tuple[Hashable, Hashable]]:
        return iter(self._links)

    def __contains__(self, link: tuple[Hashable, Hashable]) -> bool:
        u, v = link
        return canonical_link(u, v) in self._links

    def blocks(self, u: Hashable, v: Hashable) -> bool:
        """Whether traversing ``u -> v`` (either direction) is faulted."""
        return canonical_link(u, v) in self._links

    def __or__(
        self, other: "LinkFaultSet | Iterable[tuple[Hashable, Hashable]]"
    ) -> "LinkFaultSet":
        extra = other.links if isinstance(other, LinkFaultSet) else other
        return LinkFaultSet(self.topology, self._links | frozenset(
            canonical_link(u, v) for u, v in extra
        ))

    def without(
        self, links: Iterable[tuple[Hashable, Hashable]]
    ) -> "LinkFaultSet":
        """A copy with ``links`` healed."""
        healed = frozenset(canonical_link(u, v) for u, v in links)
        return LinkFaultSet(self.topology, self._links - healed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkFaultSet):
            return NotImplemented
        return (
            self.topology.name == other.topology.name
            and self._links == other._links
        )

    def __hash__(self) -> int:
        return hash((self.topology.name, self._links))

    def __repr__(self) -> str:
        return f"LinkFaultSet({self.topology.name}, {len(self._links)} faults)"


def sample_nodes(
    topology: Topology,
    count: int,
    *,
    rng: random.Random,
    exclude: Iterable[Hashable] = (),
) -> list[Hashable]:
    """``count`` distinct nodes reservoir-sampled over the node iterator.

    The whole node set is never materialised (topologies here can be
    large), and the draw sequence depends only on the iterator order and
    the ``rng`` state — never on ``PYTHONHASHSEED`` — so callers on
    different BFS backends pick identical nodes.  The reservoir order is
    the selection order, not sorted.
    """
    excluded = set(exclude)
    available = topology.num_nodes - len(excluded)
    if count < 0 or count > available:
        raise InvalidParameterError(
            f"cannot sample {count} nodes among {available} eligible nodes"
        )
    reservoir: list[Hashable] = []
    seen = 0
    for v in topology.nodes():
        if v in excluded:
            continue
        seen += 1
        if len(reservoir) < count:
            reservoir.append(v)
        else:
            j = rng.randrange(seen)
            if j < count:
                reservoir[j] = v
    return reservoir


def random_node_faults(
    topology: Topology,
    count: int,
    *,
    rng: random.Random | None = None,
    exclude: Iterable[Hashable] = (),
) -> FaultSet:
    """``count`` distinct random faulty nodes, never touching ``exclude``.

    Sampling delegates to :func:`sample_nodes`.  Without an explicit
    ``rng`` a fixed-seed ``Random(0)`` is used so the default is
    reproducible (reprolint HB501).
    """
    rng = rng or random.Random(0)
    return FaultSet(topology, sample_nodes(topology, count, rng=rng, exclude=exclude))


def random_link_faults(
    topology: Topology,
    count: int,
    *,
    rng: random.Random | None = None,
    exclude: Iterable[tuple[Hashable, Hashable]] = (),
) -> LinkFaultSet:
    """``count`` distinct random faulty links, never touching ``exclude``.

    Reservoir sampling over the edge iterator, mirroring
    :func:`random_node_faults` (edge streams can be much larger than the
    node set, so materialising them is avoided the same way; the seeded
    default ``Random(0)`` keeps the no-``rng`` path reproducible).
    """
    rng = rng or random.Random(0)
    excluded = {canonical_link(u, v) for u, v in exclude}
    if count < 0:
        raise InvalidParameterError(f"cannot place {count} link faults")
    reservoir: list[tuple[Hashable, Hashable]] = []
    seen = 0
    for u, v in topology.edges():
        link = canonical_link(u, v)
        if link in excluded:
            continue
        seen += 1
        if len(reservoir) < count:
            reservoir.append(link)
        else:
            j = rng.randrange(seen)
            if j < count:
                reservoir[j] = link
    if len(reservoir) < count:
        raise InvalidParameterError(
            f"cannot place {count} link faults among {seen} eligible links"
        )
    return LinkFaultSet(topology, reservoir)
