"""Node-fault sets and random fault injection.

The paper measures fault tolerance by vertex connectivity: a network with
connectivity ``κ`` stays connected under any set of fewer than ``κ`` node
faults.  :class:`FaultSet` is a small immutable wrapper that validates
fault labels against a topology and supports the common set algebra.
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable, Iterator

from repro.errors import InvalidParameterError
from repro.topologies.base import Topology

__all__ = ["FaultSet", "random_node_faults"]


class FaultSet:
    """An immutable set of faulty nodes of a given topology."""

    def __init__(self, topology: Topology, nodes: Iterable[Hashable] = ()) -> None:
        self.topology = topology
        frozen = frozenset(nodes)
        for v in frozen:
            topology.validate_node(v)
        self._nodes = frozen

    @property
    def nodes(self) -> frozenset:
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._nodes)

    def __contains__(self, v: Hashable) -> bool:
        return v in self._nodes

    def __or__(self, other: "FaultSet | Iterable[Hashable]") -> "FaultSet":
        extra = other.nodes if isinstance(other, FaultSet) else other
        return FaultSet(self.topology, self._nodes | frozenset(extra))

    def without(self, nodes: Iterable[Hashable]) -> "FaultSet":
        """A copy with ``nodes`` healed."""
        return FaultSet(self.topology, self._nodes - frozenset(nodes))

    def healthy_neighbors(self, v: Hashable) -> list[Hashable]:
        """Non-faulty neighbors of ``v`` (``v`` itself may be faulty)."""
        return [w for w in self.topology.neighbors(v) if w not in self._nodes]

    def __repr__(self) -> str:
        return f"FaultSet({self.topology.name}, {len(self._nodes)} faults)"


def random_node_faults(
    topology: Topology,
    count: int,
    *,
    rng: random.Random | None = None,
    exclude: Iterable[Hashable] = (),
) -> FaultSet:
    """``count`` distinct random faulty nodes, never touching ``exclude``.

    Sampling is done by reservoir over the node iterator so the whole node
    set is never materialised (topologies here can be large).
    """
    rng = rng or random.Random()
    excluded = set(exclude)
    available = topology.num_nodes - len(excluded)
    if count < 0 or count > available:
        raise InvalidParameterError(
            f"cannot place {count} faults among {available} eligible nodes"
        )
    reservoir: list[Hashable] = []
    seen = 0
    for v in topology.nodes():
        if v in excluded:
            continue
        seen += 1
        if len(reservoir) < count:
            reservoir.append(v)
        else:
            j = rng.randrange(seen)
            if j < count:
                reservoir[j] = v
    return FaultSet(topology, reservoir)
