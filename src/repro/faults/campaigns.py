"""Degradation campaigns: charting robustness past the ``m + 3`` guarantee.

Corollary 1 promises full pairwise connectivity — hence delivery ratio
1.0 with the disjoint-path scheme — for any ``<= m + 3`` node faults.
This module measures what happens *beyond* that line (the regime studied
for hypercubes in *Structure fault diameter of hypercubes*):

* **static sweep** — for each fault count (through the guarantee region,
  then fractions of the whole network), sample fault sets and healthy
  node pairs and route with the escalating
  :class:`repro.core.resilient.ResilientRouter` (on ``HB``) or adaptive
  BFS (baselines), recording delivery ratio, latency (hops), stretch over
  the fault-free distance, and the share of pairs still served by the
  paper's disjoint families.  The *breaking point* is the first fault
  count whose delivery ratio drops below 1.0.
* **transient transport sweep** — identical Poisson fail/repair schedules
  and traffic replayed through the packet simulator twice per fault rate:
  fire-and-forget versus the reliable per-hop transport (acks,
  exponential-backoff retransmission, duplicate suppression), measuring
  how much delivery the transport buys back.

Everything is seeded; the same :class:`CampaignConfig` reproduces the
emitted JSON bit for bit (the campaign determinism test enforces this).

The simulation layer is imported lazily inside functions: the ``faults``
package initialises this module, while ``simulation.network`` imports
``faults.dynamic`` — eager cross-imports here would cycle.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Hashable

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import RoutingError
from repro.faults.dynamic import FaultSchedule
from repro.faults.model import random_node_faults
from repro.topologies.base import Topology
from repro.topologies.hypercube import Hypercube
from repro.topologies.hyperdebruijn import HyperDeBruijn

__all__ = [
    "CampaignConfig",
    "run_campaign",
    "StructureCampaignConfig",
    "run_structure_campaign",
    "write_campaign_json",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one degradation campaign on ``HB(m, n)`` + baselines."""

    m: int = 3
    n: int = 4
    seed: int = 0
    trials: int = 3
    pairs: int = 25
    # static sweep: fractions of the node set, beyond the guarantee region
    fault_fractions: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
    # transient transport sweep: Poisson fault arrivals per time unit
    transient_rates: tuple[float, ...] = (0.05, 0.1, 0.2, 0.5, 1.0)
    transient_packets: int = 120
    horizon: float = 80.0
    repair_time: float = 6.0

    @classmethod
    def quick(cls, m: int, n: int, *, seed: int = 0) -> "CampaignConfig":
        """A seconds-scale configuration for smoke tests and CI."""
        return cls(
            m=m,
            n=n,
            seed=seed,
            trials=2,
            pairs=8,
            fault_fractions=(0.2, 0.5),
            transient_rates=(0.1, 0.5),
            transient_packets=30,
            horizon=40.0,
        )


def _round(x: float) -> float:
    return round(x, 6)


def _fault_counts(num_nodes: int, guarantee: int, config: CampaignConfig) -> list[int]:
    """The guarantee region step by step, then the configured fractions."""
    counts = set(range(0, guarantee + 3))
    for fraction in config.fault_fractions:
        counts.add(int(round(fraction * num_nodes)))
    # a fault set must leave at least two healthy nodes to route between
    return sorted(c for c in counts if c <= num_nodes - 2)


def _static_curve(
    topology: Topology,
    guarantee: int,
    config: CampaignConfig,
    *,
    resilient: bool,
) -> tuple[list[dict], int | None]:
    """Sweep static fault counts; returns (curve rows, breaking point)."""
    import random

    from repro.core.resilient import DegradedRouteError, ResilientRouter

    rng = random.Random(config.seed)
    router = ResilientRouter(topology) if resilient else None
    all_nodes = list(topology.nodes())
    curve: list[dict] = []
    breaking_point: int | None = None
    for count in _fault_counts(topology.num_nodes, guarantee, config):
        delivered = 0
        total = 0
        disjoint_hits = 0
        length_sum = 0
        stretch_sum = 0.0
        stretch_n = 0
        for _ in range(config.trials):
            faults = random_node_faults(topology, count, rng=rng)
            for _ in range(config.pairs):
                while True:
                    u, v = rng.sample(all_nodes, 2)
                    if u not in faults and v not in faults:
                        break
                total += 1
                path: list | None = None
                strategy = "adaptive"
                if router is not None:
                    try:
                        outcome = router.route_ex(u, v, node_faults=faults.nodes)
                        path = list(outcome.path)
                        strategy = outcome.strategy
                    except (DegradedRouteError, RoutingError):
                        path = None
                else:
                    path = topology.bfs_shortest_path(u, v, blocked=faults.nodes)
                if path is None:
                    continue
                delivered += 1
                if strategy == "disjoint":
                    disjoint_hits += 1
                length = len(path) - 1
                length_sum += length
                base = topology.bfs_shortest_path(u, v)
                if base is not None and len(base) > 1:
                    stretch_sum += length / (len(base) - 1)
                    stretch_n += 1
        ratio = delivered / total if total else 1.0
        if breaking_point is None and ratio < 1.0:
            breaking_point = count
        curve.append(
            {
                "faults": count,
                "fault_fraction": _round(count / topology.num_nodes),
                "delivery_ratio": _round(ratio),
                "mean_latency_hops": _round(length_sum / delivered)
                if delivered
                else None,
                "mean_stretch": _round(stretch_sum / stretch_n)
                if stretch_n
                else None,
                "disjoint_share": _round(disjoint_hits / total) if total else None,
            }
        )
    return curve, breaking_point


def _transient_curve(hb: HyperButterfly, config: CampaignConfig) -> list[dict]:
    """Fire-and-forget vs reliable transport on identical fault schedules."""
    import random

    from repro.simulation.network import NetworkSimulator, TransportConfig
    from repro.simulation.protocols import HBObliviousProtocol
    from repro.simulation.traffic import uniform_random_traffic

    transport = TransportConfig(
        ack_timeout=2.0,
        max_retries=10,
        backoff_base=1.0,
        backoff_factor=2.0,
        jitter=0.5,
    )
    rows: list[dict] = []
    for rate in config.transient_rates:
        schedule = FaultSchedule.generate(
            hb,
            rate=rate,
            horizon=config.horizon,
            seed=config.seed + 1,
            mode="transient",
            kinds=("node", "link"),
            repair_time=config.repair_time,
        )
        pairs = uniform_random_traffic(
            hb, config.transient_packets, seed=config.seed + 2
        )
        inject_rng = random.Random(config.seed + 3)
        inject_times = [
            inject_rng.uniform(0.0, 0.6 * config.horizon) for _ in pairs
        ]
        stats = {}
        for label, cfg in (("no_retry", None), ("retry", transport)):
            sim = NetworkSimulator(
                hb,
                HBObliviousProtocol(hb),
                schedule=schedule,
                transport=cfg,
                seed=config.seed + 4,
            )
            for (s, t), at in zip(pairs, inject_times, strict=True):
                sim.inject(s, t, at=at)
            sim.run()
            stats[label] = sim.stats()
        base, retry = stats["no_retry"], stats["retry"]
        rows.append(
            {
                "rate": _round(rate),
                "no_retry_delivery": _round(base.delivery_rate),
                "retry_delivery": _round(retry.delivery_rate),
                "mean_retransmissions": _round(
                    retry.retransmissions / retry.injected
                )
                if retry.injected
                else 0.0,
                "duplicates": retry.duplicates,
                "no_retry_mean_latency": _round(base.mean_latency),
                "retry_mean_latency": _round(retry.mean_latency),
            }
        )
    return rows


def run_campaign(config: CampaignConfig) -> dict:
    """The full campaign: static curves on HB/HD/hypercube + transient sweep."""
    import math

    hb = HyperButterfly(config.m, config.n)
    networks = []
    comparisons: list[tuple[Topology, int, bool]] = [
        # (topology, guaranteed tolerance = connectivity - 1, resilient?)
        (hb, hb.m + 3, True),
        (HyperDeBruijn(config.m, config.n), config.m + 1, False),
        (Hypercube(max(2, round(math.log2(hb.num_nodes)))), None, False),
    ]
    for topology, guarantee, resilient in comparisons:
        if guarantee is None:
            guarantee = topology.m - 1  # hypercube connectivity is its degree
        curve, breaking_point = _static_curve(
            topology, guarantee, config, resilient=resilient
        )
        networks.append(
            {
                "name": topology.name,
                "num_nodes": topology.num_nodes,
                "guaranteed_tolerance": guarantee,
                "scheme": "resilient(disjoint->adaptive)"
                if resilient
                else "adaptive-bfs",
                "curve": curve,
                "breaking_point": breaking_point,
            }
        )
    return {
        "config": asdict(config),
        "networks": networks,
        "transient": {
            "network": hb.name,
            "mode": "transient",
            "kinds": ["link", "node"],
            "repair_time": config.repair_time,
            "curve": _transient_curve(hb, config),
        },
    }


# -- correlated structure-fault campaigns ------------------------------------


@dataclass(frozen=True)
class StructureCampaignConfig:
    """Parameters of one correlated structure-fault campaign.

    The static sweep crosses structure ``kinds`` × ``sizes`` × ``counts``
    on ``HB(m, n)`` and the usual baselines (``HD``, hypercube), kinds
    filtered per network by applicability (rings need a butterfly factor).
    ``diameter_probes`` are ``(m, n, backend, kind, source_sample)``
    tuples: each computes the structure-fault diameter of a single
    structure on ``HB(m, n)`` — ``source_sample=None`` is exact, an int
    samples (boundary + reservoir) for instances where exact sweeps are
    out of reach; ``backend="implicit"`` keeps ``>= 2^20``-node probes in
    ``O(num_nodes / 8)`` memory per BFS.
    """

    m: int = 3
    n: int = 4
    seed: int = 0
    trials: int = 3
    pairs: int = 15
    kinds: tuple[str, ...] = ("star", "path", "subcube", "ring")
    sizes: tuple[int, ...] = (1, 2)
    counts: tuple[int, ...] = (1, 2, 3)
    cascade_epochs: int = 4
    cascade_spread: float = 0.35
    cascade_packets: int = 80
    horizon: float = 60.0
    diameter_probes: tuple[tuple[int, int, str, str, int | None], ...] = (
        (3, 4, "auto", "star", None),
        (3, 4, "auto", "ring", None),
        (6, 11, "implicit", "star", 3),
    )

    @classmethod
    def quick(cls, m: int, n: int, *, seed: int = 0) -> "StructureCampaignConfig":
        """A seconds-scale configuration for smoke tests and CI."""
        return cls(
            m=m,
            n=n,
            seed=seed,
            trials=2,
            pairs=6,
            kinds=("star", "path", "subcube", "ring"),
            sizes=(1,),
            counts=(1, 2),
            cascade_epochs=2,
            cascade_packets=24,
            horizon=30.0,
            diameter_probes=((m, n, "auto", "star", None),),
        )


def _structure_rows(
    topology: Topology,
    config: StructureCampaignConfig,
    *,
    resilient: bool,
    seed_offset: int,
) -> list[dict]:
    """The kind × size × count sweep on one network, aggregated over trials."""
    import random

    from repro.core.resilient import DegradedRouteError, ResilientRouter
    from repro.faults.connectivity import connected_under_faults
    from repro.faults.structures import (
        random_structures,
        structure_kinds,
        union_fault_set,
    )

    rng = random.Random(config.seed + seed_offset)
    router = ResilientRouter(topology) if resilient else None
    all_nodes = list(topology.nodes())
    applicable = [k for k in config.kinds if k in structure_kinds(topology)]
    rows: list[dict] = []
    for kind in applicable:
        for size in config.sizes:
            for count in config.counts:
                delivered = 0
                total = 0
                disjoint_hits = 0
                length_sum = 0
                stretch_sum = 0.0
                stretch_n = 0
                faulted_sum = 0
                connected_trials = 0
                for _ in range(config.trials):
                    structures = random_structures(
                        topology, kind, count, size=size, rng=rng
                    )
                    faults = union_fault_set(topology, structures)
                    faulted_sum += len(faults)
                    if connected_under_faults(topology, faults):
                        connected_trials += 1
                    if topology.num_nodes - len(faults) < 2:
                        continue  # nothing left to route between
                    if router is not None:
                        # the whole structure lands at once — exactly the
                        # standing-fault API (cache invalidated per call)
                        router.apply_faults(node_faults=faults.nodes)
                    for _ in range(config.pairs):
                        while True:
                            u, v = rng.sample(all_nodes, 2)
                            if u not in faults and v not in faults:
                                break
                        total += 1
                        path: list | None = None
                        strategy = "adaptive"
                        if router is not None:
                            try:
                                outcome = router.route_ex(u, v)
                                path = list(outcome.path)
                                strategy = outcome.strategy
                            except (DegradedRouteError, RoutingError):
                                path = None
                        else:
                            path = topology.bfs_shortest_path(
                                u, v, blocked=faults.nodes
                            )
                        if path is None:
                            continue
                        delivered += 1
                        if strategy == "disjoint":
                            disjoint_hits += 1
                        length = len(path) - 1
                        length_sum += length
                        base = topology.bfs_shortest_path(u, v)
                        if base is not None and len(base) > 1:
                            stretch_sum += length / (len(base) - 1)
                            stretch_n += 1
                    if router is not None:
                        router.clear_faults()
                rows.append(
                    {
                        "kind": kind,
                        "size": size,
                        "count": count,
                        "mean_faulted": _round(faulted_sum / config.trials),
                        "connected_fraction": _round(
                            connected_trials / config.trials
                        ),
                        "delivery_ratio": _round(delivered / total)
                        if total
                        else None,
                        "mean_latency_hops": _round(length_sum / delivered)
                        if delivered
                        else None,
                        "mean_stretch": _round(stretch_sum / stretch_n)
                        if stretch_n
                        else None,
                        "disjoint_share": _round(disjoint_hits / total)
                        if (total and router is not None)
                        else None,
                    }
                )
    return rows


def _cascade_section(hb: HyperButterfly, config: StructureCampaignConfig) -> dict:
    """One seeded cascade on HB + retry-vs-no-retry transport replay."""
    import random

    from repro.faults.connectivity import connected_under_faults
    from repro.faults.structures import CascadeConfig, random_structures, run_cascade
    from repro.simulation.network import NetworkSimulator, TransportConfig
    from repro.simulation.protocols import HBObliviousProtocol
    from repro.simulation.traffic import uniform_random_traffic

    epoch_time = config.horizon / (config.cascade_epochs + 2)
    cascade_config = CascadeConfig(
        kind="star",
        size=1,
        epochs=config.cascade_epochs,
        spread=config.cascade_spread,
        epoch_time=epoch_time,
        max_failed=hb.num_nodes // 2,
    )
    seeds = random_structures(
        hb, "star", 1, size=1, rng=random.Random(config.seed + 5)
    )
    trace = run_cascade(hb, seeds, cascade_config, seed=config.seed + 6)
    epochs = []
    cumulative = 0
    for i, epoch in enumerate(trace.epochs):
        cumulative += len(trace.newly_failed[i])
        epochs.append(
            {
                "epoch": i,
                "structures_ignited": len(epoch),
                "newly_failed": len(trace.newly_failed[i]),
                "cumulative_failed": cumulative,
                "connected": connected_under_faults(hb, trace.fault_set(i)),
            }
        )

    schedule = trace.to_schedule()
    traffic = uniform_random_traffic(hb, config.cascade_packets, seed=config.seed + 7)
    inject_rng = random.Random(config.seed + 8)
    inject_times = [inject_rng.uniform(0.0, 0.8 * config.horizon) for _ in traffic]
    transport = TransportConfig(
        ack_timeout=2.0,
        max_retries=10,
        backoff_base=1.0,
        backoff_factor=2.0,
        jitter=0.5,
    )
    replay = {}
    for label, cfg in (("no_retry", None), ("retry", transport)):
        sim = NetworkSimulator(
            hb,
            HBObliviousProtocol(hb),
            schedule=schedule,
            transport=cfg,
            seed=config.seed + 9,
        )
        for (s, t), at in zip(traffic, inject_times, strict=True):
            sim.inject(s, t, at=at)
        sim.run()
        stats = sim.stats()
        replay[label] = {
            "delivery": _round(stats.delivery_rate),
            "mean_latency": _round(stats.mean_latency),
            "retransmissions": stats.retransmissions,
            "duplicates": stats.duplicates,
        }
    return {
        "network": hb.name,
        "spread": _round(config.cascade_spread),
        "epoch_time": _round(epoch_time),
        "total_failed": trace.total_failed,
        "epochs": epochs,
        "transport_replay": replay,
    }


def _diameter_section(config: StructureCampaignConfig) -> list[dict]:
    """Structure-fault diameter probes, one structure per row.

    ``HB`` is a Cayley graph, hence vertex-transitive: a single
    structure's fault diameter does not depend on where its center lands,
    so anchoring every probe at the first codec-order node loses no
    generality while keeping the row deterministic.
    """
    from repro.faults.structures import build_structure, structure_fault_diameter

    rows: list[dict] = []
    for m, n, backend, kind, source_sample in config.diameter_probes:
        hb = HyperButterfly(m, n)
        anchor = next(iter(hb.nodes()))
        structure = build_structure(hb, kind, anchor, size=1)
        result = structure_fault_diameter(
            hb,
            structure,
            backend=None if backend == "auto" else backend,
            source_sample=source_sample,
            seed=config.seed + 10,
        )
        rows.append(
            {
                "name": hb.name,
                "num_nodes": hb.num_nodes,
                "backend": backend,
                "kind": kind,
                "structure_nodes": len(structure),
                "fault_free_diameter": hb.diameter_formula(),
                "structure_fault_diameter": result.diameter,
                "exact": result.exact,
                "connected": result.connected,
                "sources_examined": result.sources_examined,
            }
        )
    return rows


def run_structure_campaign(config: StructureCampaignConfig) -> dict:
    """Correlated sweep on HB/HD/hypercube + cascade + diameter probes."""
    import math

    hb = HyperButterfly(config.m, config.n)
    comparisons: list[tuple[Topology, bool, int]] = [
        (hb, True, 0),
        (HyperDeBruijn(config.m, config.n), False, 1),
        (Hypercube(max(2, round(math.log2(hb.num_nodes)))), False, 2),
    ]
    networks = []
    for topology, resilient, offset in comparisons:
        networks.append(
            {
                "name": topology.name,
                "num_nodes": topology.num_nodes,
                "scheme": "resilient(disjoint->adaptive)"
                if resilient
                else "adaptive-bfs",
                "rows": _structure_rows(
                    topology, config, resilient=resilient, seed_offset=offset
                ),
            }
        )
    return {
        "config": asdict(config),
        "networks": networks,
        "cascade": _cascade_section(hb, config),
        "structure_fault_diameter": _diameter_section(config),
    }


def write_campaign_json(results: dict, path: str | Path) -> str:
    """Serialise deterministically (sorted keys, fixed indent); returns text."""
    text = json.dumps(results, indent=2, sort_keys=True)
    Path(path).write_text(text + "\n")
    return text
