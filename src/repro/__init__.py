"""Reproduction of Shi & Srimani, *Hyper-Butterfly Network: A Scalable
Optimally Fault Tolerant Architecture* (IPPS 1998).

The central object is :class:`repro.core.HyperButterfly` — the graph
``HB(m, n) = H_m x B_n`` realised as a Cayley graph over ``m + 4``
generators — together with its optimal router, the Theorem 5 disjoint-path
machinery, the Section 4 embeddings, and the Figure 1/2 comparison
harness against hypercubes, wrapped butterflies and hyper-deBruijn graphs.

Quickstart::

    from repro import HyperButterfly, HBRouter

    hb = HyperButterfly(m=2, n=4)
    router = HBRouter(hb)
    u, v = hb.identity_node(), (3, (2, 9))
    route = router.route(u, v)
    assert route.length == router.distance(u, v)

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.core import (
    HyperButterfly,
    HBRouter,
    RouteResult,
    FaultTolerantRouter,
    disjoint_paths,
    verify_disjoint_paths,
    broadcast_tree,
    broadcast_rounds,
    format_hb_node,
    parse_hb_node,
)
from repro.errors import (
    ReproError,
    InvalidParameterError,
    InvalidLabelError,
    RoutingError,
    DisconnectedError,
    EmbeddingError,
    SimulationError,
)
from repro.topologies import (
    Hypercube,
    WrappedButterfly,
    CayleyButterfly,
    DeBruijn,
    HyperDeBruijn,
    CartesianProduct,
    Cycle,
    Torus,
    Mesh,
    CompleteBinaryTree,
    MeshOfTrees,
)

__version__ = "1.0.0"

__all__ = [
    "HyperButterfly",
    "HBRouter",
    "RouteResult",
    "FaultTolerantRouter",
    "disjoint_paths",
    "verify_disjoint_paths",
    "broadcast_tree",
    "broadcast_rounds",
    "format_hb_node",
    "parse_hb_node",
    "ReproError",
    "InvalidParameterError",
    "InvalidLabelError",
    "RoutingError",
    "DisconnectedError",
    "EmbeddingError",
    "SimulationError",
    "Hypercube",
    "WrappedButterfly",
    "CayleyButterfly",
    "DeBruijn",
    "HyperDeBruijn",
    "CartesianProduct",
    "Cycle",
    "Torus",
    "Mesh",
    "CompleteBinaryTree",
    "MeshOfTrees",
    "__version__",
]
