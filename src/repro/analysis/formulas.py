"""Closed-form property formulas for Figure 1's four families.

Each family exposes the same record so the Figure 1 harness can iterate
uniformly.  The parameterisation follows the paper's columns: all four
families are compared at the "(m, n)" design point, i.e. the hypercube and
butterfly columns use order ``m + n``.

Formula provenance:

* Hypercube ``H_{m+n}``: Section 2.1 / [5].
* Wrapped butterfly ``B_{m+n}``: Remark 1 / [4].
* Hyper-deBruijn ``HD(m, n)``: [1], as quoted by Figure 1.  The paper's
  edge entry ``2^{m+n+1}`` counts de Bruijn arcs only; our *exact* edge
  count for the simple undirected graph is
  ``m·2^{m+n-1} + 2^m·(2^{n+1} - 2 - 2^{ceil(n/2)-1} - 2^{floor(n/2)} + 1)``
  … which is messy enough that we simply report the computed count and note
  the discrepancy (the harness cross-checks the computed count against the
  explicit graph).
* Hyper-butterfly ``HB(m, n)``: Theorems 2 and 3, Corollary 1.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FamilyFormulas",
    "hypercube_formulas",
    "butterfly_formulas",
    "hyperdebruijn_formulas",
    "hyperbutterfly_formulas",
]


@dataclass(frozen=True)
class FamilyFormulas:
    """Closed-form Figure 1 row values for one family at design point (m, n)."""

    family: str
    nodes: int
    edges: int | None  # None = no clean closed form (computed instead)
    regular: bool
    degree_min: int
    degree_max: int
    diameter: int
    fault_tolerance: int
    cycles: str
    mesh: bool
    binary_tree: str
    mesh_of_trees: str


def hypercube_formulas(m: int, n: int) -> FamilyFormulas:
    """``H_{m+n}`` — the paper's first comparison column."""
    order = m + n
    return FamilyFormulas(
        family=f"H_{order}",
        nodes=1 << order,
        edges=order << (order - 1),
        regular=True,
        degree_min=order,
        degree_max=order,
        diameter=order,
        fault_tolerance=order,
        cycles="even cycles",
        mesh=True,
        binary_tree=f"T({order - 1})",
        mesh_of_trees="yes",
    )


def butterfly_formulas(m: int, n: int) -> FamilyFormulas:
    """``B_{m+n}`` — the second column (nodes ``(m+n)·2^{m+n}``)."""
    order = m + n
    return FamilyFormulas(
        family=f"B_{order}",
        nodes=order << order,
        edges=order << (order + 1),
        regular=True,
        degree_min=4,
        degree_max=4,
        diameter=(3 * order) // 2,
        fault_tolerance=4,
        cycles="even cycles (kn + 2k')",
        mesh=False,
        binary_tree=f"T({order + 1})",
        mesh_of_trees="yes",
    )


def hyperdebruijn_formulas(m: int, n: int) -> FamilyFormulas:
    """``HD(m, n)`` — Ganesan & Pradhan's family [1]."""
    return FamilyFormulas(
        family=f"HD({m},{n})",
        nodes=1 << (m + n),
        edges=None,  # exact count computed from the graph (see module doc)
        regular=False,
        degree_min=m + 2,
        degree_max=m + 4,
        diameter=m + n,
        fault_tolerance=m + 2,
        cycles="pancyclic",
        mesh=True,
        binary_tree=f"T({m + n - 1})",
        mesh_of_trees="yes",
    )


def hyperbutterfly_formulas(m: int, n: int) -> FamilyFormulas:
    """``HB(m, n)`` — the paper's contribution (Theorems 2–3, Corollary 1)."""
    return FamilyFormulas(
        family=f"HB({m},{n})",
        nodes=n << (m + n),
        edges=(m + 4) * n << (m + n - 1),
        regular=True,
        degree_min=m + 4,
        degree_max=m + 4,
        diameter=m + (3 * n) // 2,
        fault_tolerance=m + 4,
        cycles="even cycles 4..n*2^(m+n)",
        mesh=True,
        binary_tree=f"T({m + n - 1})",
        mesh_of_trees="MT(2^p,2^q), p<=m-2, q<=n",
    )
