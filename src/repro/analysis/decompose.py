"""Product-decomposition distance engine (paper Remarks 6 & 8).

Distances in a Cartesian product are the sums of factor distances, so the
full node-pair distance distribution of ``G × H`` is the **convolution**
of the factor distributions.  This module exploits that to make exact
global distance metrics — diameter, average distance, the whole
histogram — essentially free at any scale for every product family in
the library (``HB(m,n) = H_m × B_n``, ``HD(m,n) = H_m × D_n``, generic
:class:`~repro.topologies.product.CartesianProduct` nests):

* each **factor** is profiled once — a closed-form binomial for the
  hypercube (no BFS at all), one vectorized BFS for any vertex-transitive
  factor, a small all-pairs sweep for irregular factors like ``D_n``;
* the factor histograms are convolved into the product histogram without
  ever materializing the ``n·2^{m+n}``-node product.

``HB(8, 10)`` (2.6M nodes) resolves in the time it takes to BFS the
2048-node ``B_10`` factor once.  Dispatch is structural — any topology
exposing a ``factors()`` accessor participates — never by class name.

All arithmetic stays in exact integers until the caller divides, so the
derived metrics are bit-identical to brute-force BFS aggregation (pinned
by ``tests/analysis/test_decompose.py`` over a grid of small instances).
"""

from __future__ import annotations

from math import comb
from typing import Callable

from repro.errors import DisconnectedError
from repro.fastgraph.backend import get_fastgraph
from repro.topologies.base import Topology
from repro.topologies.hypercube import Hypercube

__all__ = [
    "leaf_factors",
    "factor_pair_histogram",
    "convolve_pair_histograms",
    "product_pair_histogram",
    "product_diameter",
    "product_average_distance",
]

#: memoization attribute for the convolved product histogram
_HIST_ATTR = "_decompose_pair_histogram"


def leaf_factors(topology: Topology) -> tuple[Topology, ...] | None:
    """The flattened Cartesian factors of ``topology``, or ``None``.

    Structural dispatch: a topology participates by exposing a
    ``factors()`` accessor (``CartesianProduct``, ``HyperButterfly``,
    ``HyperDeBruijn``); factors that are themselves products are flattened
    recursively.  ``None`` means "not a product" — the caller should fall
    back to whole-graph algorithms.
    """
    accessor: Callable[[], tuple[Topology, ...]] | None = getattr(
        topology, "factors", None
    )
    if accessor is None:
        return None
    flattened: list[Topology] = []
    for factor in accessor():
        sub = leaf_factors(factor)
        if sub is None:
            flattened.append(factor)
        else:
            flattened.extend(sub)
    return tuple(flattened)


def _transitive_pair_histogram(topology: Topology) -> dict[int, int]:
    """Single-source counts scaled to ordered pairs (vertex transitivity)."""
    anchor = next(iter(topology.nodes()))
    total = topology.num_nodes
    fast = get_fastgraph(topology)
    if fast is not None:
        import numpy as np

        dist = fast.distances_array(anchor)
        if int((dist < 0).sum()):
            raise DisconnectedError(
                f"{topology.name} is not connected from {anchor!r}"
            )
        counts = {
            d: int(c) for d, c in enumerate(np.bincount(dist)) if c
        }
    else:
        label_dist = topology.bfs_distances(anchor)
        if len(label_dist) != total:
            raise DisconnectedError(
                f"{topology.name} is not connected from {anchor!r}"
            )
        counts = {}
        for d in label_dist.values():
            counts[d] = counts.get(d, 0) + 1
    return {d: c * total for d, c in sorted(counts.items())}


def _allpairs_pair_histogram(topology: Topology) -> dict[int, int]:
    """Full all-ordered-pairs histogram for small irregular factors."""
    total = topology.num_nodes
    fast = get_fastgraph(topology, allow_enumeration=True)
    counts: dict[int, int] | None = None
    if fast is not None:
        try:
            from repro.fastgraph.kernels import distance_histogram

            counts = distance_histogram(fast.csr)
        except ImportError:
            counts = None  # no scipy: per-source label BFS below
    if counts is None:
        counts = {}
        for v in topology.nodes():
            for d in topology.bfs_distances(v).values():
                counts[d] = counts.get(d, 0) + 1
    if sum(counts.values()) != total * total:
        raise DisconnectedError(f"{topology.name} is not connected")
    return dict(sorted(counts.items()))


def factor_pair_histogram(topology: Topology) -> dict[int, int]:
    """Exact ``{distance: ordered-pair count}`` of one (non-product) factor.

    Includes the ``distance == 0`` diagonal (``num_nodes`` pairs).  Three
    routes, cheapest valid one first:

    * :class:`~repro.topologies.hypercube.Hypercube` — closed form:
      ``C(m, d) · 2^m`` pairs at distance ``d`` (no BFS at all);
    * vertex-transitive factors — one BFS, scaled by ``num_nodes``;
    * anything else — an all-pairs sweep (factors are small by design:
      the product's scale lives in the *combination*, not the factors).
    """
    if isinstance(topology, Hypercube):
        m = topology.m
        return {d: comb(m, d) << m for d in range(m + 1)}
    if topology.is_vertex_transitive:
        return _transitive_pair_histogram(topology)
    return _allpairs_pair_histogram(topology)


def convolve_pair_histograms(
    left: dict[int, int], right: dict[int, int]
) -> dict[int, int]:
    """Ordered-pair histogram of a product from its factor histograms.

    A product pair is a pair of factor pairs, and its distance is the sum
    of the factor distances (Remark 6/8), so counts multiply and distances
    add — an integer convolution.
    """
    out: dict[int, int] = {}
    for d1, c1 in sorted(left.items()):
        for d2, c2 in sorted(right.items()):
            out[d1 + d2] = out.get(d1 + d2, 0) + c1 * c2
    return dict(sorted(out.items()))


def product_pair_histogram(topology: Topology) -> dict[int, int] | None:
    """The exact full distance histogram of a product topology.

    ``None`` when ``topology`` exposes no ``factors()`` accessor — the
    caller falls back to whole-graph BFS.  The result is memoized on the
    topology instance (the underlying factor BFS is the only real cost).
    """
    cached = topology.__dict__.get(_HIST_ATTR)
    if cached is not None:
        return dict(cached)
    factors = leaf_factors(topology)
    if factors is None:
        return None
    histogram = factor_pair_histogram(factors[0])
    for factor in factors[1:]:
        histogram = convolve_pair_histograms(
            histogram, factor_pair_histogram(factor)
        )
    try:
        setattr(topology, _HIST_ATTR, dict(histogram))
    except (AttributeError, TypeError):
        pass  # slots/frozen instances: recompute next call
    return histogram


def product_diameter(topology: Topology) -> int | None:
    """Exact diameter via decomposition (sum of factor diameters), or
    ``None`` when ``topology`` is not a product."""
    histogram = product_pair_histogram(topology)
    if histogram is None:
        return None
    return max(histogram)


def product_average_distance(topology: Topology) -> float | None:
    """Exact mean distance over distinct ordered pairs, or ``None``.

    Matches the convention of
    :func:`repro.analysis.metrics.average_distance`: the ``u == v``
    diagonal is excluded from the denominator (it contributes nothing to
    the numerator).  Integer sums divided once — bit-identical to the
    brute-force aggregation it replaces.
    """
    histogram = product_pair_histogram(topology)
    if histogram is None:
        return None
    total_pairs = sum(histogram.values())
    distinct = total_pairs - topology.num_nodes
    if distinct <= 0:
        return 0.0
    return sum(d * c for d, c in histogram.items()) / distinct
