"""Graph-property analytics and the paper's comparison tables.

* :mod:`repro.analysis.decompose` — the product-decomposition distance
  engine: exact diameter / average distance / full distance histogram of
  any Cartesian-product family by factor-histogram convolution.
* :mod:`repro.analysis.metrics` — exact diameters (product decomposition,
  vertex-transitive single-BFS, pooled all-sources sweep, iFUB fallback),
  average distance, regularity.
* :mod:`repro.analysis.formulas` — closed-form property formulas for the
  four families of Figure 1.
* :mod:`repro.analysis.compare` — the Figure 1 and Figure 2 table builders
  (experiments E1 and E2).
"""

from repro.analysis.decompose import (
    convolve_pair_histograms,
    factor_pair_histogram,
    leaf_factors,
    product_average_distance,
    product_diameter,
    product_pair_histogram,
)
from repro.analysis.metrics import (
    exact_diameter,
    average_distance,
    degree_profile,
)
from repro.analysis.formulas import (
    FamilyFormulas,
    hypercube_formulas,
    butterfly_formulas,
    hyperdebruijn_formulas,
    hyperbutterfly_formulas,
)
from repro.analysis.compare import (
    Cell,
    figure1_table,
    figure2_table,
    render_table,
)
from repro.analysis.distance_stats import (
    DistanceProfile,
    distance_profile,
    pair_distance_counts,
    profile_table,
)
from repro.analysis.bisection import (
    BisectionReport,
    bisection_report,
    cube_cut_width,
    spectral_lower_bound,
    kernighan_lin_upper_bound,
)

__all__ = [
    "convolve_pair_histograms",
    "factor_pair_histogram",
    "leaf_factors",
    "product_average_distance",
    "product_diameter",
    "product_pair_histogram",
    "exact_diameter",
    "average_distance",
    "degree_profile",
    "FamilyFormulas",
    "hypercube_formulas",
    "butterfly_formulas",
    "hyperdebruijn_formulas",
    "hyperbutterfly_formulas",
    "Cell",
    "figure1_table",
    "figure2_table",
    "render_table",
    "BisectionReport",
    "bisection_report",
    "cube_cut_width",
    "spectral_lower_bound",
    "kernighan_lin_upper_bound",
    "DistanceProfile",
    "distance_profile",
    "pair_distance_counts",
    "profile_table",
]
