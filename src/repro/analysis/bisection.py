"""Bisection-width analysis — the VLSI angle of the paper's conclusion.

The conclusion announces "interesting results about the VLSI
implementation of the proposed topology"; the dominant VLSI cost driver
for an interconnection network is its **bisection width** (Thompson-model
layout area grows as the square of the bisection).  This module provides:

* :func:`cube_cut_width` — the canonical balanced cut along a hypercube
  dimension: exactly ``n·2^{m+n-1}`` edges for ``HB(m, n)`` (every node has
  one ``h_i`` edge across the cut), an upper bound on the bisection width;
* :func:`spectral_lower_bound` — the standard algebraic bound
  ``λ_2 · N / 4`` from the graph Laplacian (exact eigenvalue via dense
  solver on small instances, Lanczos beyond);
* :func:`kernighan_lin_upper_bound` — a local-search balanced cut, usually
  tightening the canonical cut on irregular families (hyper-deBruijn);
* :func:`bisection_report` — the three numbers side by side for any
  topology, the table behind the E10 bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.core.hyperbutterfly import HyperButterfly
from repro.errors import InvalidParameterError
from repro.topologies.base import Topology

__all__ = [
    "cube_cut_width",
    "spectral_lower_bound",
    "kernighan_lin_upper_bound",
    "BisectionReport",
    "bisection_report",
]


def cube_cut_width(hb: HyperButterfly, dimension: int | None = None) -> int:
    """Edges cut by splitting on one hypercube bit: ``n·2^{m+n-1}``.

    This is a *balanced* cut (each side is a ``HB(m-1, n)`` copy), hence an
    upper bound on the bisection width.  Requires ``m >= 1``.
    """
    if hb.m < 1:
        raise InvalidParameterError("cube cut needs at least one hypercube bit")
    if dimension is None:
        dimension = hb.m - 1
    if not 0 <= dimension < hb.m:
        raise InvalidParameterError(f"dimension {dimension} outside H_{hb.m}")
    # each of the n·2^{m+n} nodes has exactly one h_dimension edge; every
    # such edge crosses the cut, counted twice over its endpoints
    return hb.num_nodes // 2


def spectral_lower_bound(topology: Topology) -> float:
    """``λ_2 · N / 4`` — a valid lower bound on any balanced bisection.

    (For a bisection ``(S, V\\S)`` with ``|S| = N/2``, the Laplacian
    quadratic form gives ``cut >= λ_2 · |S| · |V\\S| / N = λ_2 N / 4``.)
    """
    graph = topology.to_networkx()
    n = graph.number_of_nodes()
    if n < 3:
        return 0.0
    if n <= 600:
        import numpy as np

        lap = nx.laplacian_matrix(graph).toarray().astype(float)
        eigenvalues = np.linalg.eigvalsh(lap)
        lam2 = float(eigenvalues[1])
    else:
        from scipy.sparse.linalg import eigsh

        lap = nx.laplacian_matrix(graph).asfptype()
        vals = eigsh(lap, k=2, which="SM", return_eigenvectors=False, tol=1e-6)
        lam2 = float(sorted(vals)[1])
    return lam2 * n / 4.0


def kernighan_lin_upper_bound(
    topology: Topology, *, seed: int = 0, rounds: int = 3
) -> int:
    """Best balanced cut found by repeated Kernighan–Lin local search."""
    graph = topology.to_networkx()
    best = None
    for r in range(rounds):
        parts = nx.algorithms.community.kernighan_lin_bisection(
            graph, seed=seed + r
        )
        cut = nx.cut_size(graph, parts[0], parts[1])
        best = cut if best is None else min(best, cut)
    return int(best)


@dataclass(frozen=True)
class BisectionReport:
    """Lower/upper bisection evidence for one topology."""

    name: str
    nodes: int
    spectral_lower: float
    best_cut_upper: int
    canonical_cut: int | None  # cube cut for HB; None otherwise

    @property
    def certified_interval(self) -> tuple[float, int]:
        upper = self.best_cut_upper
        if self.canonical_cut is not None:
            upper = min(upper, self.canonical_cut)
        return (self.spectral_lower, upper)


def bisection_report(
    topology: Topology, *, seed: int = 0, rounds: int = 3
) -> BisectionReport:
    """Bisection bounds for a topology (HB gets its canonical cube cut)."""
    if topology.num_nodes % 2:
        raise InvalidParameterError("bisection needs an even node count")
    canonical = None
    if isinstance(topology, HyperButterfly) and topology.m >= 1:
        canonical = cube_cut_width(topology)
    return BisectionReport(
        name=topology.name,
        nodes=topology.num_nodes,
        spectral_lower=spectral_lower_bound(topology),
        best_cut_upper=kernighan_lin_upper_bound(
            topology, seed=seed, rounds=rounds
        ),
        canonical_cut=canonical,
    )
