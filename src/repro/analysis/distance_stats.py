"""Distance-profile analytics (experiment E11).

Diameter is a worst-case number; sustained network performance tracks the
*average* distance and the full distance distribution.  Route selection,
cheapest first:

* product families (``HB``, ``HD``, generic Cartesian products) get the
  exact distribution by factor-histogram convolution
  (:mod:`repro.analysis.decompose`) — no BFS over the product at all;
* vertex-transitive families get it from one identity-rooted BFS;
* irregular non-product families aggregate BFS from every node (batched
  for large instances, optionally over a process pool with ``jobs``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.decompose import product_pair_histogram
from repro.fastgraph.backend import get_fastgraph
from repro.topologies.base import Topology

__all__ = [
    "DistanceProfile",
    "distance_profile",
    "pair_distance_counts",
    "profile_table",
]


@dataclass(frozen=True)
class DistanceProfile:
    """Exact distance distribution of a topology."""

    name: str
    nodes: int
    histogram: dict[int, float]  # distance -> fraction of ordered pairs
    mean: float
    diameter: int

    def percentile(self, q: float) -> int:
        """Smallest distance d with cumulative mass >= q (0 < q <= 1)."""
        total = 0.0
        for d in sorted(self.histogram):
            total += self.histogram[d]
            if total >= q - 1e-12:
                return d
        return self.diameter


def _transitive_profile(
    topology: Topology, *, backend: str | None = None
) -> dict[int, int]:
    """One BFS suffices when the graph is vertex transitive."""
    anchor = next(iter(topology.nodes()))
    fast = get_fastgraph(topology) if backend != "python" else None
    if fast is not None:
        counts = fast.source_histogram(anchor, backend=backend)
    else:
        counts = {}
        for dist in topology.bfs_distances(anchor, backend=backend).values():
            counts[dist] = counts.get(dist, 0) + 1
    # scale single-source counts up to ordered-pair counts
    return {d: c * topology.num_nodes for d, c in counts.items()}


def _generic_profile(
    topology: Topology, *, jobs: int = 1, backend: str | None = None
) -> dict[int, int]:
    fast = (
        get_fastgraph(topology, allow_enumeration=True)
        if backend != "python"
        else None
    )
    if fast is not None:
        resolved = fast.select_backend(backend)
        try:
            if resolved == "implicit" or jobs > 1:
                from repro.fastgraph.parallel import parallel_sweep

                # mirror distance_histogram: count reachable pairs only
                return parallel_sweep(
                    fast.codec if resolved == "implicit" else fast.csr,
                    jobs=jobs,
                    check_connected=False,
                    name=topology.name,
                ).histogram
            from repro.fastgraph.kernels import distance_histogram

            return distance_histogram(fast.csr)
        except ImportError:
            if backend in ("csr", "implicit"):
                raise  # pinned engine can't run: don't silently degrade
            pass  # no scipy: per-source label BFS below
    elif backend in ("csr", "implicit"):
        from repro.errors import InvalidParameterError

        raise InvalidParameterError(
            f"fastgraph is unavailable; cannot pin backend={backend!r}"
        )
    counts: dict[int, int] = {}
    for v in topology.nodes():
        for dist in topology.bfs_distances(v, backend=backend).values():
            counts[dist] = counts.get(dist, 0) + 1
    return counts


def pair_distance_counts(
    topology: Topology,
    *,
    jobs: int = 1,
    force_generic: bool = False,
    backend: str | None = None,
) -> dict[int, int]:
    """Exact ``{distance: ordered-pair count}`` (0-diagonal included).

    The single dispatch point for all distance-distribution consumers:
    product decomposition, then the vertex-transitive single BFS, then
    the all-sources sweep (process-pooled when ``jobs > 1``).
    ``force_generic=True`` pins the sweep path — tests and the metrics
    CLI use it to cross-check the fast paths against brute force.
    ``backend`` pins the BFS substrate and (like ``force_generic``) skips
    the BFS-free decomposition so the requested engine actually runs.
    """
    pinned = backend not in (None, "auto")
    if not force_generic:
        if not pinned:
            decomposed = product_pair_histogram(topology)
            if decomposed is not None:
                return decomposed
        if topology.is_vertex_transitive:
            return dict(
                sorted(_transitive_profile(topology, backend=backend).items())
            )
    return dict(
        sorted(_generic_profile(topology, jobs=jobs, backend=backend).items())
    )


def distance_profile(
    topology: Topology,
    *,
    jobs: int = 1,
    force_generic: bool = False,
    backend: str | None = None,
) -> DistanceProfile:
    """Exact profile; distances include the 0 self-distance mass."""
    counts = pair_distance_counts(
        topology, jobs=jobs, force_generic=force_generic, backend=backend
    )
    total = sum(counts.values())
    histogram = {d: c / total for d, c in sorted(counts.items())}
    mean = sum(d * c for d, c in counts.items()) / total
    return DistanceProfile(
        name=topology.name,
        nodes=topology.num_nodes,
        histogram=histogram,
        mean=mean,
        diameter=max(counts),
    )


def profile_table(profiles: list[DistanceProfile]) -> str:
    """Side-by-side summary rows for the E11 bench."""
    lines = ["network    nodes   mean-dist  median  p95  diameter"]
    for p in profiles:
        lines.append(
            f"{p.name:10s} {p.nodes:6d} {p.mean:10.3f} "
            f"{p.percentile(0.5):7d} {p.percentile(0.95):4d} {p.diameter:9d}"
        )
    return "\n".join(lines)
